GO ?= go

.PHONY: all build test race vet fmt-check lint ci eval bench microbench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo-invariant static-analysis suite plus the compiler-backed
# zero-alloc gate (see DESIGN.md "Static analysis"). Exits non-zero on
# any finding or stale //lint:ignore.
lint:
	$(GO) run ./cmd/enduratrace lint ./...

# The full tier-1 gate, same as the GitHub Actions workflow.
ci: fmt-check vet lint build race

# Run the §III experiment and drop the JSON report next to the repo.
eval:
	$(GO) run ./cmd/enduratrace eval -out BENCH_eval.json

# Run the default distance-ablation sweep at a CI-sized duration and drop
# the per-cell summary array (mean ± 95% CI over seeds) next to the repo.
bench:
	$(GO) run ./cmd/enduratrace sweep -seeds 3 -out BENCH_sweep.json

# Microbenchmarks for the monitoring hot path: LOF scoring (exact brute vs
# condensed flat kernels vs VP-tree, single vs batched), the distance
# row/gate kernels, frame decode (per-event vs batched), the monitor's
# per-window cost, the serve section (end-to-end loopback socket
# throughput: frame codec → queue → monitor → sink), and the alerting
# pipeline (quiet/flapping Observe fast paths, full fire→resolve emission,
# dedup hits, key encoding). The before/after pairs live side by side
# (ScoreBrute* vs ScoreCondensed*, RowsSymKL vs RowsSymKLFast,
# FrameDecodeNext vs FrameDecodeBatch); the output is kept in
# BENCH_micro.txt so CI can archive the perf trajectory and benchdiff can
# gate regressions.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 20x -benchmem \
		./internal/lof ./internal/distance ./internal/core ./internal/serve \
		./internal/traceio ./internal/alert | tee BENCH_micro.txt
