GO ?= go

.PHONY: all build test race vet fmt-check ci eval

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The full tier-1 gate, same as the GitHub Actions workflow.
ci: fmt-check vet build race

# Run the §III experiment and drop the JSON report next to the repo.
eval:
	$(GO) run ./cmd/enduratrace eval -out BENCH_eval.json
