package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/recorder"
)

// cmdReplay is the forensic/regression half of the anomaly store: re-score
// evidence captured by a live daemon (-store) or a raw recorded trace
// (-in) against any model from the registry, and report what each model
// makes of it now — still-detected / lost / new-detection per incident.
// With -alpha it doubles as a threshold what-if tuner over real traffic.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("enduratrace replay", flag.ContinueOnError)
	storeDir := fs.String("store", "", "anomaly store directory captured by 'enduratrace serve -anomaly-store'")
	in := fs.String("in", "", "raw binary trace (.etrc) to re-monitor instead of a store ('-' for stdin)")
	modelIn := fs.String("model", "", "single learned model file to replay against")
	modelsDir := fs.String("models", "", "directory of model JSON files; every model in it is replayed (overrides -model)")
	defaultModel := fs.String("default-model", "", "registry default when -models holds several (accepted for symmetry with serve; replay scores with every model)")
	alpha := fs.Float64("alpha", 0, "what-if LOF threshold overriding every model's own (0 = keep each model's alpha)")
	out := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*storeDir == "") == (*in == "") {
		fs.Usage()
		return fmt.Errorf("replay: exactly one of -store and -in is required")
	}

	models, err := replayModels(*modelsDir, *defaultModel, *modelIn, *alpha)
	if err != nil {
		return err
	}

	if *storeDir != "" {
		return replayStore(*storeDir, models, *alpha, *out)
	}
	return replayTrace(*in, models, *out)
}

// replayModels assembles the model list: every model of a -models
// directory, or the single -model file (named after the path convention
// serve uses).
func replayModels(modelsDir, defaultModel, modelFile string, alpha float64) ([]*core.NamedModel, error) {
	if modelsDir != "" {
		models, err := core.LoadModelDirAll(modelsDir)
		if err != nil {
			return nil, err
		}
		if defaultModel != "" { // put the named model first in the report
			for i, nm := range models {
				if nm.Name == defaultModel {
					models[0], models[i] = models[i], models[0]
					break
				}
			}
		}
		return models, nil
	}
	if modelFile == "" {
		return nil, fmt.Errorf("replay: one of -models and -model is required")
	}
	cfg, learned, err := core.LoadModelFile(modelFile)
	if err != nil {
		return nil, err
	}
	if alpha > 0 {
		cfg.Alpha = alpha
	}
	return []*core.NamedModel{{Name: "default", Cfg: cfg, Learned: learned}}, nil
}

// replayStore re-scores a captured incident store against every model.
func replayStore(dir string, models []*core.NamedModel, alpha float64, out string) error {
	rep, err := anomalystore.Replay(dir, models, alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replay: store %s: %d incidents across %d segments", dir, rep.Incidents, rep.Segments)
	if rep.TruncatedSegments > 0 {
		fmt.Fprintf(os.Stderr, " (%d with a truncated tail — crash damage, intact records replayed)", rep.TruncatedSegments)
	}
	fmt.Fprintln(os.Stderr)
	for _, mr := range rep.Models {
		fmt.Fprintf(os.Stderr,
			"replay: model %-12s alpha %.2f: %4d still-detected, %4d lost, %4d new, %4d still-clear\n",
			mr.Model, mr.Alpha, mr.StillDetected, mr.Lost, mr.NewDetections, mr.StillClear)
		for _, v := range mr.Verdicts {
			if v.Verdict == anomalystore.VerdictLost || v.Verdict == anomalystore.VerdictNewDetection {
				fmt.Fprintf(os.Stderr, "replay:   #%d %s (%s): recorded %.2f → %.2f, %s\n",
					v.Seq, v.Stream, v.RecordedModel, v.RecordedScore, v.Score, v.Verdict)
			}
		}
	}
	return emitJSON(rep, out)
}

// traceReplay is one model's outcome re-monitoring a raw trace — the
// store-less mode, for .etrc files recorded by monitor/serve sinks.
type traceReplay struct {
	Model           string   `json:"model"`
	Alpha           float64  `json:"alpha"`
	Windows         int      `json:"windows"`
	GateTrips       int      `json:"gate_trips"`
	Anomalies       int      `json:"anomalies"`
	FullBytes       int64    `json:"full_bytes"`
	RecordedBytes   int64    `json:"recorded_bytes"`
	ReductionFactor *float64 `json:"reduction_factor"`
	SpanS           float64  `json:"span_s"`
}

// replayTrace runs the full online monitor over a recorded trace once per
// model, reporting what each would have detected and recorded.
func replayTrace(in string, models []*core.NamedModel, out string) error {
	if in == "-" && len(models) > 1 {
		return errors.New("replay: -in '-' (stdin) cannot be replayed against multiple models; use a file")
	}
	results := make([]traceReplay, 0, len(models))
	for _, nm := range models {
		r, closer, err := openTrace(in)
		if err != nil {
			return err
		}
		sink := recorder.NewNullSink()
		stats, err := core.Run(nm.Cfg, nm.Learned, r, sink, nil)
		closer()
		if err != nil {
			return fmt.Errorf("replay: model %q: %w", nm.Name, err)
		}
		res := traceReplay{
			Model:         nm.Name,
			Alpha:         nm.Cfg.Alpha,
			Windows:       stats.Windows,
			GateTrips:     stats.GateTrips,
			Anomalies:     stats.Anomalies,
			FullBytes:     stats.FullBytes,
			RecordedBytes: sink.BytesWritten(),
			SpanS:         (stats.End - stats.Start).Seconds(),
		}
		if rf, ok := stats.ReductionFactor(); ok {
			res.ReductionFactor = &rf
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr,
			"replay: model %-12s alpha %.2f: %d windows over %.1fs, %d gate trips, %d anomalies\n",
			res.Model, res.Alpha, res.Windows, res.SpanS, res.GateTrips, res.Anomalies)
	}
	return emitJSON(struct {
		Name   string        `json:"name"`
		In     string        `json:"in"`
		Models []traceReplay `json:"models"`
	}{Name: "enduratrace-replay", In: in, Models: results}, out)
}
