package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"enduratrace/internal/eval"
)

// reductionString renders the headline reduction metric; a nil factor
// means nothing was recorded, where the ratio is undefined.
func reductionString(rf *float64) string {
	if rf == nil {
		return "inf (nothing recorded)"
	}
	return fmt.Sprintf("%.1fx", *rf)
}

// printEvalReport writes the human summary of a scored run to stderr; it
// is shared by the eval and soak subcommands.
func printEvalReport(tag string, rep *eval.Report, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "%s: %d windows, %d gate trips, %d anomalous (%.1fs wall)\n",
		tag, rep.Windows, rep.GateTrips, rep.Anomalies, elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "%s: reduction %s (%d of %d bytes), precision %.3f, recall %.3f\n",
		tag, reductionString(rep.ReductionFactor), rep.RecordedBytes, rep.FullBytes,
		rep.Precision, rep.Recall)
	fmt.Fprintf(os.Stderr, "%s: detected %d/%d perturbations, mean Δs %.0f ms, mean Δe %.0f ms\n",
		tag, rep.DetectedPerturbations, rep.TotalPerturbations, rep.MeanDeltaSMs, rep.MeanDeltaEMs)
	for _, p := range rep.Perturbations {
		if p.Detected {
			fmt.Fprintf(os.Stderr, "%s:   [%6.1fs %6.1fs) detected, Δs=%6.0f ms Δe=%6.0f ms, %d windows\n",
				tag, p.StartS, p.EndS, *p.DeltaSMs, *p.DeltaEMs, p.Windows)
		} else {
			fmt.Fprintf(os.Stderr, "%s:   [%6.1fs %6.1fs) MISSED\n", tag, p.StartS, p.EndS)
		}
	}
}

// emitJSON writes v, indented, to stdout and (when outPath is non-empty)
// to outPath — the BENCH_*.json convention shared by eval/sweep/soak.
func emitJSON(v any, outPath string) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	fenc := json.NewEncoder(f)
	fenc.SetIndent("", "  ")
	if err := fenc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
