package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"enduratrace/internal/core"
	"enduratrace/internal/distance"
	"enduratrace/internal/eval"
	"enduratrace/internal/lof"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/stats"
)

// coreFlags declares the monitor-configuration flags, defaulting every
// knob from def so the tuned experiment configuration lives in exactly one
// place (eval.DefaultOptions). It returns a builder that assembles the
// final core.Config.
func coreFlags(fs *flag.FlagSet, def core.Config) func() (core.Config, error) {
	window := fs.Duration("window", def.WindowDuration, "time-window length (0 with -count for count windows)")
	count := fs.Int("count", def.WindowCount, "events per count window (overrides -window when > 0)")
	k := fs.Int("k", def.K, "LOF neighbourhood size")
	alpha := fs.Float64("alpha", def.Alpha, "LOF anomaly threshold")
	gate := fs.String("gate", def.GateDistance.Name, "gate distance (see -list-distances)")
	gateThreshold := fs.String("gate-threshold", fmt.Sprintf("%g", def.GateThreshold),
		"gate distance above which LOF runs, or 'auto' to calibrate from the reference trace's gate-distance quantiles")
	gateAutoQ := fs.Float64("gate-auto-q", 0.90, "reference quantile used by '-gate-threshold auto'")
	lofDist := fs.String("lof-distance", def.LOFDistance.Name, "LOF dissimilarity")
	smoothing := fs.Float64("smoothing", def.Smoothing, "additive pmf smoothing epsilon")
	rate := fs.Bool("rate", def.IncludeRate, "append the saturating event-rate feature")
	vptree := fs.Bool("vptree", def.UseVPTree, "use the VP-tree index (metric LOF distance only)")
	seed := fs.Int64("model-seed", def.Seed, "VP-tree construction / condensation seed")
	condense := fs.Int("condense", def.CondenseTarget,
		"condense the reference set to at most N points by farthest-point sampling (0 = keep all, bit-exact scoring)")
	fastKernels := fs.Bool("fast-kernels", def.FastKernels,
		"score through precomputed-log KL-family kernels (~1e-9 relative error, several times faster; kl/symkl/jsd LOF distance only)")
	list := fs.Bool("list-distances", false, "print the distance catalogue and exit")
	return func() (core.Config, error) {
		if *list {
			fmt.Println(distance.Names())
			os.Exit(0)
		}
		cfg := def
		cfg.NumTypes = mediasim.NumEventTypes
		cfg.WindowDuration = *window
		cfg.WindowCount = *count
		if *count > 0 {
			cfg.WindowDuration = 0
		}
		cfg.K = *k
		cfg.Alpha = *alpha
		cfg.UseVPTree = *vptree
		cfg.Seed = *seed
		cfg.Smoothing = *smoothing
		cfg.IncludeRate = *rate
		cfg.CondenseTarget = *condense
		cfg.FastKernels = *fastKernels
		if err := applyGateThreshold(&cfg, *gateThreshold, *gateAutoQ); err != nil {
			return cfg, err
		}
		var err error
		if cfg.GateDistance, err = distance.ByName(*gate); err != nil {
			return cfg, err
		}
		if cfg.LOFDistance, err = distance.ByName(*lofDist); err != nil {
			return cfg, err
		}
		return cfg, cfg.Validate()
	}
}

// applyGateThreshold parses a -gate-threshold value: a number fixes the
// threshold, the literal "auto" enables reference-quantile calibration at
// quantile q.
func applyGateThreshold(cfg *core.Config, val string, q float64) error {
	if val == "auto" {
		cfg.GateAuto = true
		cfg.GateAutoQuantile = q
		return nil
	}
	thr, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad -gate-threshold %q (want a number or 'auto'): %w", val, err)
	}
	cfg.GateAuto = false
	cfg.GateThreshold = thr
	return nil
}

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("enduratrace learn", flag.ContinueOnError)
	in := fs.String("in", "", "reference trace file ('-' for stdin; required)")
	modelOut := fs.String("model", "model.json", "output model file")
	jsonOut := fs.Bool("json", false, "print the summary as JSON on stdout")
	mkCfg := coreFlags(fs, eval.DefaultOptions().Core)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := mkCfg()
	if err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("learn: -in is required")
	}
	r, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()

	learned, err := core.Learn(cfg, r)
	if err != nil {
		return err
	}
	if err := core.SaveModelFile(*modelOut, cfg, learned); err != nil {
		return err
	}

	scores := learned.Model.TrainScores()
	summary := struct {
		Model         string              `json:"model"`
		RefWindows    int                 `json:"ref_windows"`
		ModelPoints   int                 `json:"model_points"`
		MeanCount     float64             `json:"mean_count"`
		TrainP50      float64             `json:"train_lof_p50"`
		TrainP95      float64             `json:"train_lof_p95"`
		TrainP99      float64             `json:"train_lof_p99"`
		Condense      *lof.CondenseReport `json:"condense,omitempty"`
		GateThreshold *float64            `json:"auto_gate_threshold,omitempty"`
	}{
		Model:       *modelOut,
		RefWindows:  learned.RefWindows,
		ModelPoints: learned.Model.Len(),
		MeanCount:   learned.MeanCount,
		TrainP50:    stats.Quantile(scores, 0.50),
		TrainP95:    stats.Quantile(scores, 0.95),
		TrainP99:    stats.Quantile(scores, 0.99),
		Condense:    learned.Model.Cond,
	}
	if learned.AutoGateThreshold > 0 {
		summary.GateThreshold = &learned.AutoGateThreshold
	}
	fmt.Fprintf(os.Stderr,
		"learn: %d reference windows (mean %.1f events), train LOF p50=%.3f p95=%.3f p99=%.3f\nlearn: model written to %s\n",
		summary.RefWindows, summary.MeanCount, summary.TrainP50, summary.TrainP95, summary.TrainP99, *modelOut)
	if c := learned.Model.Cond; c != nil {
		fmt.Fprintf(os.Stderr,
			"learn: condensed %d -> %d points; full-set LOF under condensed model p50=%.3f p95=%.3f p99=%.3f\n",
			c.OriginalN, c.KeptN, c.P50, c.P95, c.P99)
	}
	if learned.AutoGateThreshold > 0 {
		fmt.Fprintf(os.Stderr, "learn: auto gate threshold %.4g (%s, q=%.3g)\n",
			learned.AutoGateThreshold, cfg.GateDistance.Name, cfg.GateAutoQuantile)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&summary)
	}
	return nil
}
