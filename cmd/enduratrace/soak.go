package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enduratrace/internal/eval"
	"enduratrace/internal/sweep"
)

func cmdSoak(args []string) (err error) {
	fs := flag.NewFlagSet("enduratrace soak", flag.ContinueOnError)
	// Same experiment semantics as eval (including RunSeedOffset 1): a
	// soak differs only in horizon and observability, so the same flags
	// and seed must reproduce the same metrics.
	opts := eval.DefaultOptions()
	evalFlags(fs, &opts)
	duration := fs.Duration("duration", time.Hour, "soak horizon (the monitored run length)")
	every := fs.Duration("progress-every", 30*time.Second, "trace time between progress lines")
	mkCfg := coreFlags(fs, opts.Core)
	out := fs.String("out", "", "also write the JSON report to this file (e.g. BENCH_soak.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.Core, err = mkCfg(); err != nil {
		return err
	}
	opts.RunDuration = *duration

	start := time.Now()
	rep, err := sweep.Soak(sweep.SoakOptions{
		Eval:  opts,
		Every: *every,
		OnProgress: func(p sweep.SoakProgress) {
			fmt.Fprintf(os.Stderr,
				"soak: t=%-8s %d windows, %d trips, %d anomalies, %d B recorded (%.0fx realtime)\n",
				p.TraceTime.Truncate(time.Second), p.Windows, p.GateTrips,
				p.Anomalies, p.RecordedBytes, p.Rate)
		},
	})
	if err != nil {
		return err
	}
	printEvalReport("soak", rep, time.Since(start))
	return emitJSON(rep, *out)
}
