package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"enduratrace/internal/sweep"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// metricCell renders one mean ± CI table cell; a metric no seed
// contributed to (N == 0, e.g. reduction when nothing was recorded)
// renders as n/a rather than masquerading as a measured zero.
func metricCell(m sweep.Metric, prec, meanW, ciW int) string {
	if m.N == 0 {
		return fmt.Sprintf("%*s %*s", meanW, "n/a", ciW+1, "")
	}
	return fmt.Sprintf("%*.*f ±%-*.*f", meanW, prec, m.Mean, ciW, prec, m.CI95)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("enduratrace sweep", flag.ContinueOnError)
	def := sweep.DefaultGrid(3)
	seeds := fs.Int("seeds", len(def.Seeds), "number of seeds per cell (seed-base, seed-base+1, ...)")
	seedBase := fs.Int64("seed-base", 1, "first seed")
	distances := fs.String("distances", strings.Join(def.Distances, ","), "comma-separated distance axis (gate and LOF)")
	alphas := fs.String("alphas", "", "comma-separated LOF alpha axis (default: the tuned alpha)")
	factors := fs.String("factors", "", "comma-separated perturbation factor axis (default: the tuned factor)")
	ks := fs.String("ks", "", "comma-separated LOF K axis (default: the tuned K)")
	gridFile := fs.String("grid", "", "JSON grid file; its fields override the axis flags")
	refDur := fs.Duration("ref-duration", def.Base.RefDuration, "clean reference run length per job")
	runDur := fs.Duration("run-duration", def.Base.RunDuration, "perturbed monitored run length per job")
	pFirst := fs.Duration("perturb-first", def.Base.PerturbFirst, "start of the first perturbation")
	pPeriod := fs.Duration("perturb-period", def.Base.PerturbPeriod, "perturbation period")
	pDur := fs.Duration("perturb-duration", def.Base.PerturbDuration, "length of each perturbation")
	gateThreshold := fs.String("gate-threshold", fmt.Sprintf("%g", def.Base.Core.GateThreshold),
		"gate distance above which LOF runs, or 'auto' to calibrate per cell from its reference quantiles")
	gateAutoQ := fs.Float64("gate-auto-q", 0.90, "reference quantile used by '-gate-threshold auto'")
	condense := fs.Int("condense", def.Base.Core.CondenseTarget,
		"condense each cell's reference set to at most N points (0 = keep all, bit-exact scoring)")
	workers := fs.Int("workers", 0, "parallel eval workers (0 = GOMAXPROCS)")
	out := fs.String("out", "BENCH_sweep.json", "write the per-cell summary array here ('' to skip)")
	sortBy := fs.String("sort", "reduction", fmt.Sprintf("summary table sort metric, one of %v", sweep.SortKeys()))
	quiet := fs.Bool("q", false, "suppress per-job progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := def
	g.Base.RefDuration = *refDur
	g.Base.RunDuration = *runDur
	g.Base.PerturbFirst = *pFirst
	g.Base.PerturbPeriod = *pPeriod
	g.Base.PerturbDuration = *pDur
	g.Base.Core.CondenseTarget = *condense
	if err := applyGateThreshold(&g.Base.Core, *gateThreshold, *gateAutoQ); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if *seeds <= 0 {
		return fmt.Errorf("sweep: -seeds must be positive, got %d", *seeds)
	}
	g.Seeds = make([]int64, *seeds)
	for i := range g.Seeds {
		g.Seeds[i] = *seedBase + int64(i)
	}
	g.Distances = strings.Split(*distances, ",")
	for i := range g.Distances {
		g.Distances[i] = strings.TrimSpace(g.Distances[i])
	}
	var err error
	if *alphas != "" {
		if g.Alphas, err = parseFloats(*alphas); err != nil {
			return fmt.Errorf("sweep: -alphas: %w", err)
		}
	}
	if *factors != "" {
		if g.Factors, err = parseFloats(*factors); err != nil {
			return fmt.Errorf("sweep: -factors: %w", err)
		}
	}
	if *ks != "" {
		if g.Ks, err = parseInts(*ks); err != nil {
			return fmt.Errorf("sweep: -ks: %w", err)
		}
	}
	if *gridFile != "" {
		data, err := os.ReadFile(*gridFile)
		if err != nil {
			return err
		}
		if g, err = sweep.ParseGrid(data, g); err != nil {
			return err
		}
	}

	jobs, err := g.Jobs()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells × %d seeds = %d jobs (%v run each)\n",
		len(g.Cells()), len(g.Seeds), len(jobs), g.Base.RunDuration)

	start := time.Now()
	var done int
	summaries, err := sweep.Run(g, sweep.RunOptions{
		Workers: *workers,
		OnResult: func(r sweep.Result) {
			done++
			if *quiet {
				return
			}
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "sweep: [%d/%d] FAILED: %v\n", done, len(jobs), r.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s seed %d: reduction %s, precision %.3f, recall %.3f (%.1fs)\n",
				done, len(jobs), r.Job.Cell, r.Job.Seed,
				reductionString(r.Report.ReductionFactor),
				r.Report.Precision, r.Report.Recall, r.Elapsed.Seconds())
		},
	})
	// Even when jobs failed, the completed cells' summaries still get
	// printed and written (sweep.Run finishes the surviving jobs); the
	// joined error is reported at the end.
	if serr := sweep.SortSummaries(summaries, *sortBy); serr != nil {
		return serr
	}
	fmt.Fprintf(os.Stderr, "sweep: %d jobs in %.1fs wall, sorted by %s:\n",
		len(jobs), time.Since(start).Seconds(), *sortBy)
	fmt.Fprintf(os.Stderr, "sweep: %-10s %5s %4s %3s  %-16s %-15s %-15s %-14s %-14s %s\n",
		"distance", "alpha", "f", "k", "reduction", "precision", "recall", "Δs ms", "Δe ms", "det")
	for _, s := range summaries {
		fmt.Fprintf(os.Stderr, "sweep: %-10s %5g %4g %3d  %s %s %s %s %s %d/%d\n",
			s.Distance, s.Alpha, s.Factor, s.K,
			metricCell(s.Reduction, 1, 6, 7),
			metricCell(s.Precision, 3, 6, 6),
			metricCell(s.Recall, 3, 6, 6),
			metricCell(s.DeltaSMs, 0, 6, 5),
			metricCell(s.DeltaEMs, 0, 6, 5),
			s.DetectedPerturbations, s.TotalPerturbations)
	}
	if jerr := emitJSON(summaries, *out); jerr != nil {
		return jerr
	}
	return err
}
