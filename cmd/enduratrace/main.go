// Command enduratrace drives the paper reproduction end-to-end:
//
//	enduratrace sim      simulate a pipeline run and write its trace
//	enduratrace learn    fit a reference model from a trace
//	enduratrace monitor  monitor a trace with a learned model
//	enduratrace eval     run the full §III experiment and report metrics
//	enduratrace sweep    run a parallel ablation sweep with multi-seed CIs
//	enduratrace soak     run one long-horizon cell with streaming scoring
//	enduratrace serve    network daemon monitoring live TCP trace streams
//	enduratrace replay   re-score a captured anomaly store or raw trace
//	                     against any model — regression check / alpha tuner
//
// Every subcommand prints a human summary to stderr; machine-readable JSON
// goes to stdout (monitor/learn/serve behind -json, eval/sweep/soak always).
// See docs/CLI.md for the full flag reference.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sim":
		err = cmdSim(os.Args[2:])
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "monitor":
		err = cmdMonitor(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "metricslint":
		err = cmdMetricsLint(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "enduratrace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err == flag.ErrHelp {
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "enduratrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: enduratrace <subcommand> [flags]

subcommands:
  sim      simulate a multimedia pipeline run and write its trace
  learn    fit a reference model (LOF over window pmfs) from a trace
  monitor  replay a trace through the online monitor, record anomalies
  eval     run the full reference+perturbed experiment and score it
  sweep    expand a parameter grid and run the cells in parallel,
           aggregating per-cell mean ± 95% CI over seeds
  soak     run one long-horizon cell with periodic progress and
           constant-memory streaming scoring
  serve    long-lived daemon: accept live trace streams over TCP, score
           each against a registry of named models (hot-reloadable via
           SIGHUP or POST /reload), expose HTTP admin + Prometheus
           /metrics endpoints; -anomaly-store persists every gate trip
  replay   re-score a captured anomaly store (or a raw .etrc trace)
           against any registry model: per-incident still-detected /
           lost / new-detection verdicts, -alpha threshold what-ifs
  metricslint  validate a Prometheus text exposition (a /metrics scrape)
           including the histogram family invariants; CI scrape check
  lint     run the repo-invariant static-analysis suite (counterlock,
           nonfinitejson, monotime, errsink, slogargs, floateq) and the
           //enduratrace:zeroalloc escape-analysis gate; exits 1 on any
           finding — the PR gate behind 'make lint'

run 'enduratrace <subcommand> -h' for per-subcommand flags, or see
docs/CLI.md for the full reference.
`)
}
