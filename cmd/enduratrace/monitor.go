package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
)

func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("enduratrace monitor", flag.ContinueOnError)
	in := fs.String("in", "", "trace file to monitor ('-' for stdin; required)")
	modelIn := fs.String("model", "model.json", "learned model file (from 'enduratrace learn')")
	rec := fs.String("rec", "", "record anomalous windows to this binary trace file")
	compress := fs.Int("compress", -1, "flate level for -rec (-1 = no compression)")
	pre := fs.Int("pre", 0, "context windows to record before each anomaly")
	post := fs.Int("post", 0, "context windows to record after each anomaly")
	alpha := fs.Float64("alpha", 0, "override the model's LOF threshold (0 = keep)")
	streams := fs.Int("streams", 1, "monitor N concurrent copies of the trace against the one shared model (requires a file input)")
	jsonOut := fs.Bool("json", false, "print run statistics as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("monitor: -in is required")
	}
	if *streams < 1 {
		return fmt.Errorf("monitor: -streams must be >= 1, got %d", *streams)
	}

	cfg, learned, err := core.LoadModelFile(*modelIn)
	if err != nil {
		return err
	}
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	if *streams > 1 {
		if *rec != "" || *pre > 0 || *post > 0 || *compress >= 0 {
			return fmt.Errorf("monitor: -rec/-pre/-post/-compress are not supported with -streams > 1 (stat-only mode)")
		}
		return monitorStreams(cfg, learned, *in, *streams, *jsonOut)
	}

	r, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()

	var sink recorder.Sink = recorder.NewNullSink()
	closeRec := func() error { return nil }
	if *rec != "" {
		f, err := os.Create(*rec)
		if err != nil {
			return err
		}
		closeRec = f.Close
		ss, err := recorder.NewStreamSink(f, *compress)
		if err != nil {
			f.Close()
			return err
		}
		sink = ss
	}
	if *pre > 0 || *post > 0 {
		sink = recorder.NewContextSink(sink, *pre, *post)
	}

	stats, err := core.Run(cfg, learned, r, sink, nil)
	if err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if err := closeRec(); err != nil {
		return err
	}

	// Recompute the reduction from post-Close sizes: a stream sink only
	// reports its final byte count after the flush. Nil (JSON null) when
	// nothing was recorded — the ratio is undefined.
	var reduction *float64
	if rec := sink.BytesWritten(); rec > 0 {
		r := float64(stats.FullBytes) / float64(rec)
		reduction = &r
	}
	out := struct {
		Windows         int      `json:"windows"`
		GateTrips       int      `json:"gate_trips"`
		Anomalies       int      `json:"anomalies"`
		RecordedWindows int      `json:"recorded_windows"`
		FullBytes       int64    `json:"full_bytes"`
		RecordedBytes   int64    `json:"recorded_bytes"`
		ReductionFactor *float64 `json:"reduction_factor"`
		SpanS           float64  `json:"span_s"`
	}{
		Windows:         stats.Windows,
		GateTrips:       stats.GateTrips,
		Anomalies:       stats.Anomalies,
		RecordedWindows: sink.WindowsRecorded(),
		FullBytes:       stats.FullBytes,
		RecordedBytes:   sink.BytesWritten(),
		ReductionFactor: reduction,
		SpanS:           (stats.End - stats.Start).Seconds(),
	}
	fmt.Fprintf(os.Stderr,
		"monitor: %d windows over %.1fs, %d gate trips, %d anomalies\nmonitor: recorded %d windows, %d of %d bytes (reduction %s)\n",
		out.Windows, out.SpanS, out.GateTrips, out.Anomalies,
		out.RecordedWindows, out.RecordedBytes, out.FullBytes, reductionString(out.ReductionFactor))
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&out)
	}
	return nil
}

// monitorStreams replays the trace through N concurrent monitor streams
// sharing one learned model (core.MultiMonitor): each stream gets its own
// file handle and per-stream state, the LOF matrix is read by all. It
// demonstrates — and measures — the shared-model fan-out: stderr reports
// aggregate throughput next to what the same windows would cost serially.
func monitorStreams(cfg core.Config, learned *core.Learned, in string, n int, jsonOut bool) error {
	if in == "-" {
		return fmt.Errorf("monitor: -streams %d needs a file input (stdin cannot be opened %d times)", n, n)
	}
	readers := make([]trace.Reader, n)
	closers := make([]func() error, 0, n)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := range readers {
		r, closer, err := openTrace(in)
		if err != nil {
			return err
		}
		readers[i] = r
		closers = append(closers, closer)
	}

	mm, err := core.NewMultiMonitor(cfg, learned, n)
	if err != nil {
		return err
	}
	start := time.Now()
	results, err := mm.RunAll(readers, nil)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	type streamOut struct {
		Stream    int     `json:"stream"`
		Windows   int     `json:"windows"`
		GateTrips int     `json:"gate_trips"`
		Anomalies int     `json:"anomalies"`
		SpanS     float64 `json:"span_s"`
	}
	out := struct {
		Streams      []streamOut `json:"streams"`
		Windows      int         `json:"windows"`
		GateTrips    int         `json:"gate_trips"`
		Anomalies    int         `json:"anomalies"`
		WallS        float64     `json:"wall_s"`
		WindowsPerS  float64     `json:"windows_per_s"`
		ModelPoints  int         `json:"model_points"`
		SharedModels int         `json:"shared_models"`
	}{
		Streams:      make([]streamOut, 0, n),
		WallS:        wall.Seconds(),
		ModelPoints:  learned.Model.Len(),
		SharedModels: 1,
	}
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("monitor: stream %d: %w", res.Stream, res.Err)
		}
		out.Streams = append(out.Streams, streamOut{
			Stream:    res.Stream,
			Windows:   res.Stats.Windows,
			GateTrips: res.Stats.GateTrips,
			Anomalies: res.Stats.Anomalies,
			SpanS:     (res.Stats.End - res.Stats.Start).Seconds(),
		})
		out.Windows += res.Stats.Windows
		out.GateTrips += res.Stats.GateTrips
		out.Anomalies += res.Stats.Anomalies
	}
	if wall > 0 {
		out.WindowsPerS = float64(out.Windows) / wall.Seconds()
	}
	fmt.Fprintf(os.Stderr,
		"monitor: %d streams over one %d-point model: %d windows total, %d gate trips, %d anomalies in %.2fs wall (%.0f windows/s)\n",
		n, out.ModelPoints, out.Windows, out.GateTrips, out.Anomalies, out.WallS, out.WindowsPerS)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&out)
	}
	return nil
}
