package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"enduratrace/internal/core"
	"enduratrace/internal/recorder"
)

func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("enduratrace monitor", flag.ContinueOnError)
	in := fs.String("in", "", "trace file to monitor ('-' for stdin; required)")
	modelIn := fs.String("model", "model.json", "learned model file (from 'enduratrace learn')")
	rec := fs.String("rec", "", "record anomalous windows to this binary trace file")
	compress := fs.Int("compress", -1, "flate level for -rec (-1 = no compression)")
	pre := fs.Int("pre", 0, "context windows to record before each anomaly")
	post := fs.Int("post", 0, "context windows to record after each anomaly")
	alpha := fs.Float64("alpha", 0, "override the model's LOF threshold (0 = keep)")
	jsonOut := fs.Bool("json", false, "print run statistics as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("monitor: -in is required")
	}

	mf, err := os.Open(*modelIn)
	if err != nil {
		return err
	}
	cfg, learned, err := core.LoadModel(mf)
	mf.Close()
	if err != nil {
		return err
	}
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	r, closer, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closer()

	var sink recorder.Sink = recorder.NewNullSink()
	closeRec := func() error { return nil }
	if *rec != "" {
		f, err := os.Create(*rec)
		if err != nil {
			return err
		}
		closeRec = f.Close
		ss, err := recorder.NewStreamSink(f, *compress)
		if err != nil {
			f.Close()
			return err
		}
		sink = ss
	}
	if *pre > 0 || *post > 0 {
		sink = recorder.NewContextSink(sink, *pre, *post)
	}

	stats, err := core.Run(cfg, learned, r, sink, nil)
	if err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if err := closeRec(); err != nil {
		return err
	}

	// Recompute the reduction from post-Close sizes: a stream sink only
	// reports its final byte count after the flush. Nil (JSON null) when
	// nothing was recorded — the ratio is undefined.
	var reduction *float64
	if rec := sink.BytesWritten(); rec > 0 {
		r := float64(stats.FullBytes) / float64(rec)
		reduction = &r
	}
	out := struct {
		Windows         int      `json:"windows"`
		GateTrips       int      `json:"gate_trips"`
		Anomalies       int      `json:"anomalies"`
		RecordedWindows int      `json:"recorded_windows"`
		FullBytes       int64    `json:"full_bytes"`
		RecordedBytes   int64    `json:"recorded_bytes"`
		ReductionFactor *float64 `json:"reduction_factor"`
		SpanS           float64  `json:"span_s"`
	}{
		Windows:         stats.Windows,
		GateTrips:       stats.GateTrips,
		Anomalies:       stats.Anomalies,
		RecordedWindows: sink.WindowsRecorded(),
		FullBytes:       stats.FullBytes,
		RecordedBytes:   sink.BytesWritten(),
		ReductionFactor: reduction,
		SpanS:           (stats.End - stats.Start).Seconds(),
	}
	fmt.Fprintf(os.Stderr,
		"monitor: %d windows over %.1fs, %d gate trips, %d anomalies\nmonitor: recorded %d windows, %d of %d bytes (reduction %s)\n",
		out.Windows, out.SpanS, out.GateTrips, out.Anomalies,
		out.RecordedWindows, out.RecordedBytes, out.FullBytes, reductionString(out.ReductionFactor))
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&out)
	}
	return nil
}
