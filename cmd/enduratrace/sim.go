package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"enduratrace/internal/mediasim"
	"enduratrace/internal/perturb"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
)

// loadFlags declares the shared perturbation-schedule flags and returns a
// builder for the resulting load profile.
func loadFlags(fs *flag.FlagSet) func(horizon time.Duration) (perturb.Load, error) {
	factor := fs.Float64("factor", 1, "CPU slowdown during perturbations (1 = none)")
	first := fs.Duration("perturb-first", 60*time.Second, "start of the first perturbation")
	period := fs.Duration("perturb-period", 2*time.Minute, "perturbation period")
	dur := fs.Duration("perturb-duration", 20*time.Second, "length of each perturbation")
	return func(horizon time.Duration) (perturb.Load, error) {
		if *factor <= 1 {
			return perturb.None{}, nil
		}
		return perturb.Periodic(*factor, *first, *period, *dur, horizon)
	}
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("enduratrace sim", flag.ContinueOnError)
	out := fs.String("out", "", "output trace file ('-' for stdout, 'tcp://host:port' to stream to a serve daemon; required)")
	text := fs.Bool("text", false, "write CSV text instead of the binary codec")
	duration := fs.Duration("duration", 10*time.Minute, "simulated horizon")
	seed := fs.Int64("seed", 1, "simulation seed")
	stream := fs.String("stream", "", "stream name sent to the serve daemon (tcp:// output only)")
	model := fs.String("model", "", "registry model to score this stream with (tcp:// output only; '' = the daemon's default, sent as a v1 frame header)")
	flushEvery := fs.Int("flush-every", 0, "flush the framed stream every N events (tcp:// output only; 0 = flush only when a frame fills, the batch-friendly default)")
	mkLoad := loadFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("sim: -out is required")
	}
	load, err := mkLoad(*duration)
	if err != nil {
		return err
	}
	cfg := mediasim.DefaultConfig()
	cfg.Duration = *duration
	cfg.Seed = *seed
	cfg.Load = load
	sim, err := mediasim.New(cfg)
	if err != nil {
		return err
	}

	if addr, ok := strings.CutPrefix(*out, "tcp://"); ok {
		if *text {
			return fmt.Errorf("sim: -text is not supported with a tcp:// output")
		}
		return simToServer(sim, addr, *stream, *model, *duration, *flushEvery)
	}
	if *model != "" {
		return fmt.Errorf("sim: -model only applies to a tcp:// output")
	}
	if *flushEvery != 0 {
		return fmt.Errorf("sim: -flush-every only applies to a tcp:// output")
	}

	var w io.Writer = os.Stdout
	closeOut := func() error { return nil }
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		closeOut = f.Close
		w = f
	}
	var tw trace.Writer
	var flush func() error
	var size func() int64
	if *text {
		t := traceio.NewTextWriter(w, mediasim.Registry())
		tw, flush, size = t, t.Flush, func() int64 { return -1 }
	} else {
		b, err := traceio.NewBinaryWriter(w)
		if err != nil {
			return err
		}
		tw, flush, size = b, b.Flush, b.BytesWritten
	}
	n, err := trace.Copy(tw, sim)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	if bytes := size(); bytes >= 0 {
		fmt.Fprintf(os.Stderr, "sim: %d events over %v, %d bytes encoded\n", n, *duration, bytes)
	} else {
		fmt.Fprintf(os.Stderr, "sim: %d events over %v\n", n, *duration)
	}
	return nil
}

// simToServer streams the simulation to a running `enduratrace serve`
// daemon over the framed TCP protocol and closes the stream cleanly. A
// non-empty model is sent in a v2 frame header, asking the daemon to
// score the stream with that registry model. flushEvery > 0 forces a
// frame flush every that many events, trading the batch-sized frames the
// server's batched ingest likes best for lower per-event latency.
func simToServer(sim *mediasim.Sim, addr, stream, model string, duration time.Duration, flushEvery int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("sim: dialing serve daemon: %w", err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriterModel(conn, stream, model)
	if err != nil {
		return err
	}
	var n int
	if flushEvery > 0 {
		for {
			ev, rerr := sim.Next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return rerr
			}
			if err := fw.Write(ev); err != nil {
				return err
			}
			n++
			if n%flushEvery == 0 {
				if err := fw.Flush(); err != nil {
					return err
				}
			}
		}
	} else {
		n, err = trace.Copy(fw, sim)
		if err != nil {
			return err
		}
	}
	if err := fw.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sim: streamed %d events over %v to %s\n", n, duration, addr)
	return nil
}

// openTrace opens a binary trace file ('-' for stdin).
func openTrace(path string) (trace.Reader, func() error, error) {
	if path == "-" {
		r, err := traceio.NewBinaryReader(os.Stdin)
		return r, func() error { return nil }, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := traceio.NewBinaryReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f.Close, nil
}
