package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"enduratrace/internal/alert"
	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/eval"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/recorder"
	"enduratrace/internal/serve"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("enduratrace serve", flag.ContinueOnError)
	modelIn := fs.String("model", "model.json", "learned model file (from 'enduratrace learn'; single-model serving)")
	modelsDir := fs.String("models", "", "directory of model JSON files served as a named registry (overrides -model; model name = file base name)")
	defaultModel := fs.String("default-model", "", "registry model served to streams that do not name one (required when -models holds several)")
	listen := fs.String("listen", "127.0.0.1:9464", "trace ingestion TCP address")
	admin := fs.String("admin", "127.0.0.1:9465", "HTTP admin address (/healthz /streams /stats /metrics, POST /reload; '' disables)")
	recDir := fs.String("rec-dir", "", "record each stream's anomalous windows to <dir>/<stream>.etrc ('' = stat-only)")
	compress := fs.Int("compress", -1, "flate level for -rec-dir sinks (-1 = no compression)")
	anomDir := fs.String("anomaly-store", "", "persist every gate trip (context windows + scores) to a segmented store in this directory; query via GET /anomalies, re-score via 'enduratrace replay'")
	anomCtx := fs.Int("anomaly-context", 0, "pre-trip context windows per stored incident (0 = default 2, negative = none)")
	anomSegBytes := fs.Int64("anomaly-segment-bytes", 0, "anomaly store segment rotation size in bytes (0 = default 8 MiB)")
	alertLog := fs.Bool("alert-log", false, "alerting: log firing/resolved notifications through the daemon logger")
	alertWebhook := fs.String("alert-webhook", "", "alerting: POST each notification as JSON to this URL (bounded retries with backoff)")
	alertExec := fs.String("alert-exec", "", "alerting: run this shell command per notification with its JSON on stdin")
	alertMinTrips := fs.Int("alert-min-trips", 0, "alerting: consecutive anomalous windows before an incident fires (0 = default 3)")
	alertClearAfter := fs.Duration("alert-clear-after", 0, "alerting: quiet time after the last trip before an incident resolves (0 = default 30s)")
	alertTripOnGate := fs.Bool("alert-trip-on-gate", false, "alerting: count every gate trip toward firing (default: only anomalous windows)")
	alertDedupTTL := fs.Duration("alert-dedup-ttl", 0, "alerting: suppress repeat notifications with the same content key for this long (0 = default 5m, negative = off)")
	alertDedupQuantum := fs.Float64("alert-dedup-quantum", 0, "alerting: gate-distance quantization step for the dedup key (0 = default 0.01)")
	alertRate := fs.Float64("alert-rate", 0, "alerting: global notification token-bucket refill per second (0 = unlimited)")
	alertBurst := fs.Float64("alert-burst", 0, "alerting: global token-bucket burst (0 = rate)")
	alertSinkRate := fs.Float64("alert-sink-rate", 0, "alerting: per-sink delivery token-bucket refill per second (0 = unlimited)")
	alertSinkBurst := fs.Float64("alert-sink-burst", 0, "alerting: per-sink token-bucket burst (0 = rate)")
	alertQueue := fs.Int("alert-queue", 0, "alerting: dispatch queue length; overflow is dropped and counted, never waited on (0 = default 256)")
	alertTimeout := fs.Duration("alert-timeout", 0, "alerting: per-delivery timeout (0 = default 10s)")
	selftestAlerts := fs.Bool("selftest-alerts", false, "alerting selftest: fake-clock flapping-stream choreography (exactly-once firing, balanced books, zero-alloc fast path), then exit")
	queue := fs.Int("queue", 1024, "per-stream bounded event queue length")
	bp := fs.String("backpressure", "block", "full-queue policy: block (TCP backpressure) or drop-oldest")
	alpha := fs.Float64("alpha", 0, "override the model's LOF threshold (0 = keep; single-model and in-process selftest only)")
	logFormat := fs.String("log-format", "text", "daemon log format on stderr: text or json (both timestamped)")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the admin listener")
	flightEvery := fs.Int("flight-every", 0, "flight recorder: sample every Nth event per stream (0 = default 256, negative = disable)")
	flightCap := fs.Int("flight-cap", 0, "flight recorder: retained record ring size (0 = default 512)")
	stallAfter := fs.Duration("stall-after", 0, "flag a stream stalled when its queue holds events but the scorer makes no progress for this long (0 = default 30s, negative = disable)")
	jsonOut := fs.Bool("json", false, "print the final report as JSON on stdout")
	selftest := fs.Bool("selftest", false, "loopback load test: fan simulated clients through real sockets, verify the books, exit")
	selftestModels := fs.Int("selftest-models", 1, "selftest: in-process models to learn when no -models dir is given (2 = two-model registry exercising per-stream model selection and a mid-run reload)")
	clients := fs.Int("clients", 8, "selftest: number of concurrent loopback clients")
	clientDur := fs.Duration("client-duration", 30*time.Second, "selftest: simulated trace time per client")
	clientSeed := fs.Int64("client-seed", 100, "selftest: client i simulates seed client-seed+i")
	clientFactor := fs.Float64("client-factor", 3, "selftest: periodic CPU perturbation factor per client (1 = clean)")
	refDur := fs.Duration("ref-duration", 30*time.Second, "selftest: reference run length when learning in-process (no model file)")
	fastKernels := fs.Bool("fast-kernels", false, "in-process learned models (selftest / missing -model) score through precomputed-log KL-family kernels (~1e-9 relative error, several times faster); file-loaded models keep their saved setting")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := serve.ParseBackpressure(*bp)
	if err != nil {
		return err
	}
	logger, err := serve.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	if *selftestAlerts {
		fmt.Fprintln(os.Stderr, "serve: alert selftest, fake-clock flapping-stream choreography")
		if err := alert.FlappingSelftest(logger); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "serve: alert selftest OK: exactly-once firing/resolution, delivery books balanced, no-alert fast path allocation-free")
		return nil
	}
	var sinks recorder.SinkFactory
	if *recDir != "" {
		if sinks, err = recorder.NewDirFactory(*recDir, *compress); err != nil {
			return err
		}
	}
	var anomalies *anomalystore.Store
	if *anomDir != "" {
		anomalies, err = anomalystore.Open(*anomDir, anomalystore.Options{SegmentBytes: *anomSegBytes})
		if err != nil {
			return err
		}
		defer func() {
			st := anomalies.Stats()
			if cerr := anomalies.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "serve: closing anomaly store: %v\n", cerr)
			}
			fmt.Fprintf(os.Stderr, "serve: anomaly store %s: %d incidents (%d recovered from earlier runs), %d segments, %d bytes\n",
				st.Dir, st.Incidents, st.Recovered, st.Segments, st.Bytes)
		}()
	}

	var alertSinks []alert.Sink
	if *alertLog {
		alertSinks = append(alertSinks, alert.NewSlogSink(logger))
	}
	if *alertWebhook != "" {
		alertSinks = append(alertSinks, alert.NewWebhookSink(*alertWebhook, alert.WebhookOptions{}))
	}
	if *alertExec != "" {
		alertSinks = append(alertSinks, alert.NewExecSink(*alertExec))
	}
	var alerts *alert.Pipeline
	if len(alertSinks) > 0 {
		alerts = alert.NewPipeline(alert.Options{
			MinTrips:        *alertMinTrips,
			ClearAfter:      *alertClearAfter,
			TripOnGate:      *alertTripOnGate,
			DedupTTL:        *alertDedupTTL,
			DedupQuantum:    *alertDedupQuantum,
			GlobalRate:      *alertRate,
			GlobalBurst:     *alertBurst,
			SinkRate:        *alertSinkRate,
			SinkBurst:       *alertSinkBurst,
			QueueLen:        *alertQueue,
			DeliveryTimeout: *alertTimeout,
			Sinks:           alertSinks,
		})
		// Registered after the anomaly store's deferred close, so this
		// runs first: queued notifications drain to the sinks while the
		// store is still open.
		defer func() {
			if !alerts.Drain(10 * time.Second) {
				fmt.Fprintln(os.Stderr, "serve: alert queue did not drain before close")
			}
			if cerr := alerts.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "serve: closing alert sinks: %v\n", cerr)
			}
			b := alerts.Books()
			var delivered, errs int64
			for _, sb := range b.Sinks {
				delivered += sb.Delivered
				errs += sb.Errors
			}
			fmt.Fprintf(os.Stderr, "serve: alerts: %d fired, %d resolved; %d delivered, %d deduped, %d rate-limited, %d dropped, %d errors\n",
				b.Fired, b.Resolved, delivered, b.Deduped, b.RateLimited(), b.QueueDropped, errs)
		}()
	}

	models, cleanup, err := serveRegistry(serveRegistryOptions{
		modelsDir:      *modelsDir,
		defaultModel:   *defaultModel,
		modelFile:      *modelIn,
		selftest:       *selftest,
		selftestModels: *selftestModels,
		refDur:         *refDur,
		alpha:          *alpha,
		fastKernels:    *fastKernels,
	})
	if err != nil {
		return err
	}
	if cleanup != nil {
		defer cleanup()
	}

	if *selftest {
		opts := serve.SelftestOptions{
			Models:       models,
			Clients:      *clients,
			Duration:     *clientDur,
			SeedBase:     *clientSeed,
			Factor:       *clientFactor,
			QueueLen:     *queue,
			Backpressure: policy,
			Sinks:        sinks,
			Anomalies:    anomalies,
			Alerts:       alerts,
			Logger:       logger,
		}
		if models.Len() > 1 {
			// Exercise the whole matrix: one v1-framed client on the
			// default model, the rest naming each registry model in turn,
			// with a hot reload fired while everything is mid-stream — and
			// one doomed client whose rejection the books must show.
			opts.ClientModels = append([]string{""}, models.Names()...)
			opts.ReloadMidRun = true
			opts.RejectClients = 1
		}
		return serveSelftest(opts, *jsonOut)
	}

	srv, err := serve.New(serve.Options{
		Models:         models,
		QueueLen:       *queue,
		Backpressure:   policy,
		Sinks:          sinks,
		Anomalies:      anomalies,
		AnomalyContext: *anomCtx,
		Alerts:         alerts,
		Logger:         logger,
		FlightEvery:    *flightEvery,
		FlightCap:      *flightCap,
		StallAfter:     *stallAfter,
		EnablePprof:    *pprof,
	})
	if err != nil {
		return err
	}
	if err := srv.Listen(*listen, *admin); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: %d model(s) [%s], default %q, trace ingest on %s",
		models.Len(), strings.Join(models.Names(), " "), models.DefaultName(), srv.TraceAddr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Fprintf(os.Stderr, ", admin on http://%s", a)
	}
	reloadHint := ""
	if models.Reloadable() {
		reloadHint = "SIGHUP or POST /reload to hot-reload models, "
	}
	fmt.Fprintf(os.Stderr, " (backpressure %s, queue %d); %sSIGINT to drain and stop\n", policy, *queue, reloadHint)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if models.Reloadable() {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if _, err := srv.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "serve: SIGHUP reload: %v\n", err)
				}
			}
		}()
	}
	if err := srv.Serve(ctx); err != nil {
		return err
	}

	results := srv.Results()
	stats := srv.Stats()
	for _, res := range results {
		fmt.Fprintf(os.Stderr,
			"serve: stream %-16s %7d windows, %5d trips, %4d anomalies, %d B recorded (model %s, clean=%v)\n",
			res.ID, res.Windows, res.GateTrips, res.Anomalies, res.RecordedBytes, res.Model, res.Clean)
	}
	fmt.Fprintf(os.Stderr,
		"serve: %d streams served: %d windows, %d gate trips, %d anomalies, recorded %d of %d bytes (reduction %s)\n",
		stats.StreamsClosed, stats.Windows, stats.GateTrips, stats.Anomalies,
		stats.RecordedBytes, stats.FullBytes, reductionString(stats.ReductionFactor))
	if *jsonOut {
		return emitJSON(struct {
			Stats   serve.StatsReport    `json:"stats"`
			Streams []serve.StreamResult `json:"streams"`
		}{stats, results}, "")
	}
	return nil
}

type serveRegistryOptions struct {
	modelsDir      string
	defaultModel   string
	modelFile      string
	selftest       bool
	selftestModels int
	refDur         time.Duration
	alpha          float64
	fastKernels    bool
}

// serveRegistry assembles the model registry the daemon serves from, in
// precedence order: an explicit -models directory (hot-reloadable), the
// selftest's in-process multi-model temp directory, a single -model file,
// or — selftest only — a single model learned in-process from a clean
// simulated reference so the selftest runs from a bare checkout. The
// returned cleanup (possibly nil) removes any temp directory.
func serveRegistry(o serveRegistryOptions) (*core.ModelRegistry, func(), error) {
	if o.modelsDir != "" {
		if o.alpha > 0 {
			return nil, nil, fmt.Errorf("serve: -alpha cannot override a -models registry; set alpha per model file")
		}
		reg, err := core.LoadModelDir(o.modelsDir, o.defaultModel)
		return reg, nil, err
	}

	if o.selftest && o.selftestModels > 1 {
		return selftestModelDir(o)
	}

	cfg, learned, err := core.LoadModelFile(o.modelFile)
	if err == nil {
		if o.alpha > 0 {
			cfg.Alpha = o.alpha
		}
		reg, err := core.NewModelRegistry("",
			&core.NamedModel{Name: "default", Cfg: cfg, Learned: learned})
		return reg, nil, err
	}
	if !o.selftest || !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "serve: no model at %s, learning in-process from a %v clean reference\n", o.modelFile, o.refDur)
	cfg, learned, err = learnInProcess(1, o.refDur, o.alpha, o.fastKernels)
	if err != nil {
		return nil, nil, err
	}
	reg, err := core.NewModelRegistry("",
		&core.NamedModel{Name: "default", Cfg: cfg, Learned: learned})
	return reg, nil, err
}

// selftestModelDir learns selftestModels models in-process (model i from
// reference seed i+1, named "a", "b", ...), writes them into a temp
// directory and loads it as a hot-reloadable registry with "a" as the
// default — the two-model reload-under-load selftest's fixture.
func selftestModelDir(o serveRegistryOptions) (*core.ModelRegistry, func(), error) {
	n := o.selftestModels
	if n > 26 {
		return nil, nil, fmt.Errorf("serve: -selftest-models %d exceeds 26", n)
	}
	dir, err := os.MkdirTemp("", "enduratrace-selftest-models-")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	fmt.Fprintf(os.Stderr, "serve: selftest, learning %d in-process models (%v clean reference each) into %s\n",
		n, o.refDur, dir)
	for i := 0; i < n; i++ {
		cfg, learned, err := learnInProcess(int64(i+1), o.refDur, o.alpha, o.fastKernels)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		name := string(rune('a' + i))
		if err := core.SaveModelFile(filepath.Join(dir, name+".json"), cfg, learned); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	reg, err := core.LoadModelDir(dir, "a")
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return reg, cleanup, nil
}

// learnInProcess learns one model from a clean simulated reference.
func learnInProcess(seed int64, refDur time.Duration, alpha float64, fastKernels bool) (core.Config, *core.Learned, error) {
	cfg := eval.DefaultOptions().Core
	if alpha > 0 {
		cfg.Alpha = alpha
	}
	cfg.FastKernels = fastKernels
	sc := mediasim.DefaultConfig()
	sc.Duration = refDur
	sc.Seed = seed
	sim, err := mediasim.New(sc)
	if err != nil {
		return core.Config{}, nil, err
	}
	learned, err := core.Learn(cfg, sim)
	if err != nil {
		return core.Config{}, nil, err
	}
	return cfg, learned, nil
}

func serveSelftest(opts serve.SelftestOptions, jsonOut bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mode := "single-model"
	if opts.Models.Len() > 1 {
		mode = fmt.Sprintf("%d-model registry [%s] with mid-run reload", opts.Models.Len(), strings.Join(opts.Models.Names(), " "))
	}
	fmt.Fprintf(os.Stderr, "serve: selftest, %d loopback clients × %v trace each over a %s\n",
		opts.Clients, opts.Duration, mode)
	rep, err := serve.Selftest(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"serve: selftest OK: %d clients, %d events / %d windows in %.2fs wall (%.0f events/s, %.0f windows/s)\n",
		rep.Clients, rep.EventsSent, rep.WindowsSent, rep.WallS, rep.EventsPerS, rep.WindowsPerS)
	books := fmt.Sprintf("/stats windows %d == sent %d", rep.Stats.Windows, rep.WindowsSent)
	if rep.Stats.DroppedEvents > 0 {
		books = fmt.Sprintf("/stats windows %d of %d sent (%d events shed by drop-oldest, all on record)",
			rep.Stats.Windows, rep.WindowsSent, rep.Stats.DroppedEvents)
	}
	fmt.Fprintf(os.Stderr,
		"serve: selftest books: %s; %d anomalies, recorded %d of %d bytes (reduction %s); /metrics %d samples\n",
		books, rep.Stats.Anomalies,
		rep.Stats.RecordedBytes, rep.Stats.FullBytes, reductionString(rep.Stats.ReductionFactor),
		rep.MetricsSamples)
	fmt.Fprintf(os.Stderr,
		"serve: selftest latency (event→decision, %d events): p50 %.3fms, p99 %.3fms, p99.9 %.3fms\n",
		rep.EventsObserved, rep.LatencyP50Ms, rep.LatencyP99Ms, rep.LatencyP999Ms)
	for model, w := range rep.ModelWindows {
		fmt.Fprintf(os.Stderr, "serve: selftest model %q scored %d windows\n", model, w)
	}
	if opts.Anomalies != nil {
		st := opts.Anomalies.Stats()
		fmt.Fprintf(os.Stderr, "serve: selftest anomaly store: %d incidents persisted == %d gate trips (%d segments, %d bytes)\n",
			rep.Stats.AnomalyIncidents, rep.Stats.GateTrips, st.Segments, st.Bytes)
	}
	if rep.Reload != nil {
		fmt.Fprintf(os.Stderr, "serve: selftest mid-run reload #%d OK (models [%s], default %q)\n",
			rep.Reload.Generation, strings.Join(rep.Reload.Models, " "), rep.Reload.Default)
	}
	if b := rep.Alerts; b != nil {
		var delivered, errs int64
		for _, sb := range b.Sinks {
			delivered += sb.Delivered
			errs += sb.Errors
		}
		fmt.Fprintf(os.Stderr,
			"serve: selftest alerts balanced: %d fired + %d resolved == %d delivered + %d deduped + %d rate-limited + %d dropped + %d errors; %d transitions persisted\n",
			b.Fired, b.Resolved, delivered, b.Deduped, b.RateLimited(), b.QueueDropped, errs, rep.Stats.AlertTransitions)
	}
	if jsonOut {
		return emitJSON(rep, "")
	}
	return nil
}
