package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/eval"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/recorder"
	"enduratrace/internal/serve"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("enduratrace serve", flag.ContinueOnError)
	modelIn := fs.String("model", "model.json", "learned model file (from 'enduratrace learn')")
	listen := fs.String("listen", "127.0.0.1:9464", "trace ingestion TCP address")
	admin := fs.String("admin", "127.0.0.1:9465", "HTTP admin address (/healthz /streams /stats; '' disables)")
	recDir := fs.String("rec-dir", "", "record each stream's anomalous windows to <dir>/<stream>.etrc ('' = stat-only)")
	compress := fs.Int("compress", -1, "flate level for -rec-dir sinks (-1 = no compression)")
	queue := fs.Int("queue", 1024, "per-stream bounded event queue length")
	bp := fs.String("backpressure", "block", "full-queue policy: block (TCP backpressure) or drop-oldest")
	alpha := fs.Float64("alpha", 0, "override the model's LOF threshold (0 = keep)")
	jsonOut := fs.Bool("json", false, "print the final report as JSON on stdout")
	selftest := fs.Bool("selftest", false, "loopback load test: fan simulated clients through real sockets, verify the books, exit")
	clients := fs.Int("clients", 8, "selftest: number of concurrent loopback clients")
	clientDur := fs.Duration("client-duration", 30*time.Second, "selftest: simulated trace time per client")
	clientSeed := fs.Int64("client-seed", 100, "selftest: client i simulates seed client-seed+i")
	clientFactor := fs.Float64("client-factor", 3, "selftest: periodic CPU perturbation factor per client (1 = clean)")
	refDur := fs.Duration("ref-duration", 30*time.Second, "selftest: reference run length when learning in-process (no model file)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := serve.ParseBackpressure(*bp)
	if err != nil {
		return err
	}
	var sinks recorder.SinkFactory
	if *recDir != "" {
		if sinks, err = recorder.NewDirFactory(*recDir, *compress); err != nil {
			return err
		}
	}

	cfg, learned, err := serveModel(*modelIn, *selftest, *refDur)
	if err != nil {
		return err
	}
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	if *selftest {
		return serveSelftest(cfg, learned, serve.SelftestOptions{
			Clients:      *clients,
			Duration:     *clientDur,
			SeedBase:     *clientSeed,
			Factor:       *clientFactor,
			QueueLen:     *queue,
			Backpressure: policy,
			Sinks:        sinks,
			Log:          os.Stderr,
		}, *jsonOut)
	}

	srv, err := serve.New(serve.Options{
		Cfg:          cfg,
		Learned:      learned,
		QueueLen:     *queue,
		Backpressure: policy,
		Sinks:        sinks,
		Log:          os.Stderr,
	})
	if err != nil {
		return err
	}
	if err := srv.Listen(*listen, *admin); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: %d-point model, trace ingest on %s", learned.Model.Len(), srv.TraceAddr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Fprintf(os.Stderr, ", admin on http://%s", a)
	}
	fmt.Fprintf(os.Stderr, " (backpressure %s, queue %d); SIGINT to drain and stop\n", policy, *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		return err
	}

	results := srv.Results()
	stats := srv.Stats()
	for _, res := range results {
		fmt.Fprintf(os.Stderr,
			"serve: stream %-16s %7d windows, %5d trips, %4d anomalies, %d B recorded (clean=%v)\n",
			res.ID, res.Windows, res.GateTrips, res.Anomalies, res.RecordedBytes, res.Clean)
	}
	fmt.Fprintf(os.Stderr,
		"serve: %d streams served: %d windows, %d gate trips, %d anomalies, recorded %d of %d bytes (reduction %s)\n",
		stats.StreamsClosed, stats.Windows, stats.GateTrips, stats.Anomalies,
		stats.RecordedBytes, stats.FullBytes, reductionString(stats.ReductionFactor))
	if *jsonOut {
		return emitJSON(struct {
			Stats   serve.StatsReport    `json:"stats"`
			Streams []serve.StreamResult `json:"streams"`
		}{stats, results}, "")
	}
	return nil
}

// serveModel loads the model file, or — in selftest mode when the file is
// absent — learns one in-process from a clean simulated reference so the
// selftest is runnable from a bare checkout.
func serveModel(path string, selftest bool, refDur time.Duration) (core.Config, *core.Learned, error) {
	f, err := os.Open(path)
	if err == nil {
		defer f.Close()
		return core.LoadModel(f)
	}
	if !selftest || !os.IsNotExist(err) {
		return core.Config{}, nil, err
	}
	fmt.Fprintf(os.Stderr, "serve: no model at %s, learning in-process from a %v clean reference\n", path, refDur)
	cfg := eval.DefaultOptions().Core
	sc := mediasim.DefaultConfig()
	sc.Duration = refDur
	sim, err := mediasim.New(sc)
	if err != nil {
		return core.Config{}, nil, err
	}
	learned, err := core.Learn(cfg, sim)
	if err != nil {
		return core.Config{}, nil, err
	}
	return cfg, learned, nil
}

func serveSelftest(cfg core.Config, learned *core.Learned, opts serve.SelftestOptions, jsonOut bool) error {
	opts.Cfg = cfg
	opts.Learned = learned
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "serve: selftest, %d loopback clients × %v trace each over a %d-point model\n",
		opts.Clients, opts.Duration, learned.Model.Len())
	rep, err := serve.Selftest(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"serve: selftest OK: %d clients, %d events / %d windows in %.2fs wall (%.0f events/s, %.0f windows/s)\n",
		rep.Clients, rep.EventsSent, rep.WindowsSent, rep.WallS, rep.EventsPerS, rep.WindowsPerS)
	books := fmt.Sprintf("/stats windows %d == sent %d", rep.Stats.Windows, rep.WindowsSent)
	if rep.Stats.DroppedEvents > 0 {
		books = fmt.Sprintf("/stats windows %d of %d sent (%d events shed by drop-oldest, all on record)",
			rep.Stats.Windows, rep.WindowsSent, rep.Stats.DroppedEvents)
	}
	fmt.Fprintf(os.Stderr,
		"serve: selftest books: %s; %d anomalies, recorded %d of %d bytes (reduction %s)\n",
		books, rep.Stats.Anomalies,
		rep.Stats.RecordedBytes, rep.Stats.FullBytes, reductionString(rep.Stats.ReductionFactor))
	if jsonOut {
		return emitJSON(rep, "")
	}
	return nil
}
