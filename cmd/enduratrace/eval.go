package main

import (
	"flag"
	"time"

	"enduratrace/internal/eval"
)

// evalFlags declares the experiment-shape flags shared by the eval and
// soak subcommands, bound directly into opts. The monitored-run length is
// deliberately excluded: eval exposes it as -run-duration, soak as
// -duration.
func evalFlags(fs *flag.FlagSet, opts *eval.Options) {
	fs.Int64Var(&opts.Seed, "seed", opts.Seed, "experiment seed")
	fs.DurationVar(&opts.RefDuration, "ref-duration", opts.RefDuration, "clean reference run length")
	fs.Float64Var(&opts.Factor, "factor", opts.Factor, "CPU slowdown during perturbations")
	fs.DurationVar(&opts.PerturbFirst, "perturb-first", opts.PerturbFirst, "start of the first perturbation")
	fs.DurationVar(&opts.PerturbPeriod, "perturb-period", opts.PerturbPeriod, "perturbation period")
	fs.DurationVar(&opts.PerturbDuration, "perturb-duration", opts.PerturbDuration, "length of each perturbation")
	fs.DurationVar(&opts.Slack, "slack", opts.Slack, "post-interval slack when matching detections")
	fs.DurationVar(&opts.Warmup, "warmup", opts.Warmup, "startup transient excluded from precision/recall")
}

func cmdEval(args []string) (err error) {
	fs := flag.NewFlagSet("enduratrace eval", flag.ContinueOnError)
	opts := eval.DefaultOptions()
	evalFlags(fs, &opts)
	fs.DurationVar(&opts.RunDuration, "run-duration", opts.RunDuration, "perturbed monitored run length")
	mkCfg := coreFlags(fs, opts.Core)
	out := fs.String("out", "", "also write the JSON report to this file (e.g. BENCH_eval.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.Core, err = mkCfg(); err != nil {
		return err
	}

	start := time.Now()
	rep, err := eval.Run(opts)
	if err != nil {
		return err
	}
	printEvalReport("eval", rep, time.Since(start))
	return emitJSON(rep, *out)
}
