package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"enduratrace/internal/eval"
)

func cmdEval(args []string) (err error) {
	fs := flag.NewFlagSet("enduratrace eval", flag.ContinueOnError)
	opts := eval.DefaultOptions()
	fs.Int64Var(&opts.Seed, "seed", opts.Seed, "experiment seed")
	fs.DurationVar(&opts.RefDuration, "ref-duration", opts.RefDuration, "clean reference run length")
	fs.DurationVar(&opts.RunDuration, "run-duration", opts.RunDuration, "perturbed monitored run length")
	fs.Float64Var(&opts.Factor, "factor", opts.Factor, "CPU slowdown during perturbations")
	fs.DurationVar(&opts.PerturbFirst, "perturb-first", opts.PerturbFirst, "start of the first perturbation")
	fs.DurationVar(&opts.PerturbPeriod, "perturb-period", opts.PerturbPeriod, "perturbation period")
	fs.DurationVar(&opts.PerturbDuration, "perturb-duration", opts.PerturbDuration, "length of each perturbation")
	fs.DurationVar(&opts.Slack, "slack", opts.Slack, "post-interval slack when matching detections")
	fs.DurationVar(&opts.Warmup, "warmup", opts.Warmup, "startup transient excluded from precision/recall")
	mkCfg := coreFlags(fs, opts.Core)
	out := fs.String("out", "", "also write the JSON report to this file (e.g. BENCH_eval.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opts.Core, err = mkCfg(); err != nil {
		return err
	}

	start := time.Now()
	rep, err := eval.Run(opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "eval: %d windows, %d gate trips, %d anomalous (%.1fs wall)\n",
		rep.Windows, rep.GateTrips, rep.Anomalies, elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "eval: reduction %.1fx (%d of %d bytes), precision %.3f, recall %.3f\n",
		rep.ReductionFactor, rep.RecordedBytes, rep.FullBytes, rep.Precision, rep.Recall)
	fmt.Fprintf(os.Stderr, "eval: detected %d/%d perturbations, mean Δs %.0f ms, mean Δe %.0f ms\n",
		rep.DetectedPerturbations, rep.TotalPerturbations, rep.MeanDeltaSMs, rep.MeanDeltaEMs)
	for _, p := range rep.Perturbations {
		if p.Detected {
			fmt.Fprintf(os.Stderr, "eval:   [%6.1fs %6.1fs) detected, Δs=%6.0f ms Δe=%6.0f ms, %d windows\n",
				p.StartS, p.EndS, *p.DeltaSMs, *p.DeltaEMs, p.Windows)
		} else {
			fmt.Fprintf(os.Stderr, "eval:   [%6.1fs %6.1fs) MISSED\n", p.StartS, p.EndS)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		if err := fenc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
