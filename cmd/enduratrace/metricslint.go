package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"enduratrace/internal/serve"
)

// cmdMetricsLint validates a Prometheus text exposition — typically a
// saved /metrics scrape — with serve.ValidatePrometheusText: every line
// must parse, and histogram families must satisfy the bucket invariants
// (cumulative counts, le="+Inf" == _count, _sum present). CI scrapes the
// daemon and pipes the body through this to catch exposition regressions
// without a real Prometheus in the loop.
func cmdMetricsLint(args []string) error {
	fs := flag.NewFlagSet("enduratrace metricslint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, "usage: enduratrace metricslint [file]\n\nvalidates a Prometheus text exposition (reads stdin without a file)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	var body []byte
	var err error
	switch fs.NArg() {
	case 0:
		body, err = io.ReadAll(os.Stdin)
	case 1:
		body, err = os.ReadFile(fs.Arg(0))
	default:
		fs.Usage()
		return flag.ErrHelp
	}
	if err != nil {
		return err
	}
	samples, err := serve.ValidatePrometheusText(body)
	if err != nil {
		return fmt.Errorf("metricslint: %w", err)
	}
	fmt.Fprintf(os.Stderr, "metricslint: OK, %d samples\n", samples)
	return nil
}
