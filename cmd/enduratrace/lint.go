package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"enduratrace/internal/lint"
)

// cmdLint runs the repo-invariant static-analysis suite plus the
// compiler-backed zero-alloc gate over the module containing the current
// directory. Exit status 1 on any finding, so CI can gate on it.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	zeroAlloc := fs.Bool("zeroalloc", true, "run the //enduratrace:zeroalloc escape-analysis gate")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, `usage: enduratrace lint [flags] [packages]

Runs the repo's static-analysis suite over the module packages matched
by the patterns (default ./...): analyzers for the invariant classes
this codebase has shipped bugs against, plus a zero-alloc gate that
checks //enduratrace:zeroalloc functions against the compiler's escape
analysis. Suppress a finding with //lint:ignore <analyzer> <reason> on
the flagged line or the line above; an ignore that suppresses nothing
is itself an error. Exits 1 on any finding.

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-15s %s\n", "zeroalloc", "//enduratrace:zeroalloc functions must not heap-allocate (go build -gcflags=-m)")
		fmt.Printf("%-15s %s\n", "staleignore", "//lint:ignore comments must suppress something")
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	findings, err := lint.Run(root, patterns, lint.Options{ZeroAlloc: *zeroAlloc})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("lint: %d finding(s)", n)
	}
	if !*jsonOut {
		fmt.Fprintln(os.Stderr, "lint: clean")
	}
	return nil
}
