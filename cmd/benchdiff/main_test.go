package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFile(t *testing.T) {
	p := writeBench(t, "bench.txt", `goos: linux
BenchmarkServeLoopback-8             20      31669724 ns/op    157894 events/s     319295 B/op       776 allocs/op
BenchmarkRowsSymKL1000-8           5000        507000 ns/op
BenchmarkRowsSymKL1000-8           5000        490000 ns/op
PASS
`)
	res, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(res), res)
	}
	// -8 suffix stripped, allocs column captured.
	sl, ok := res["BenchmarkServeLoopback"]
	if !ok || sl.nsPerOp != 31669724 || sl.allocsPerOp != 776 {
		t.Fatalf("ServeLoopback parsed as %+v (present %v)", sl, ok)
	}
	// Duplicate names keep the best (lowest ns/op) run; no -benchmem
	// columns means allocsPerOp -1.
	rk := res["BenchmarkRowsSymKL1000"]
	if rk.nsPerOp != 490000 || rk.allocsPerOp != -1 {
		t.Fatalf("RowsSymKL parsed as %+v", rk)
	}
}
