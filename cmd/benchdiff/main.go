// Command benchdiff compares two `go test -bench` output files and fails
// when a gated benchmark regressed: CI runs the microbenchmark suite on
// the base commit and the PR head, then gates the serve/score/decode hot
// path on the ns/op delta. It is deliberately cruder than benchstat — one
// sample per side, no significance testing — so the threshold must absorb
// runner noise; 10% catches the step regressions that matter (an extra
// allocation per event, a lost batch path) without flaking on jitter.
//
//	benchdiff -old BENCH_base.txt -new BENCH_head.txt \
//	    -gate 'Serve|Score|Rows|Frame|Queue' -threshold 10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line's numbers.
type result struct {
	nsPerOp     float64
	allocsPerOp float64 // -1 when the line carried no -benchmem columns
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)
var allocsCol = regexp.MustCompile(`([0-9.]+) allocs/op`)

// parseFile reads every benchmark line, keyed by name with the
// -GOMAXPROCS suffix stripped so runs from different machines line up.
// A name appearing more than once (e.g. -count > 1) keeps the best run,
// which is the standard way to discard warm-up and scheduling noise.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{nsPerOp: ns, allocsPerOp: -1}
		if am := allocsCol.FindStringSubmatch(m[3]); am != nil {
			r.allocsPerOp, _ = strconv.ParseFloat(am[1], 64)
		}
		if prev, ok := out[name]; ok && prev.nsPerOp <= r.nsPerOp {
			continue
		}
		out[name] = r
	}
	return out, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output (required)")
	newPath := flag.String("new", "", "candidate benchmark output (required)")
	threshold := flag.Float64("threshold", 10, "max allowed ns/op regression in percent on gated benchmarks")
	gate := flag.String("gate", ".", "regexp of benchmark names to gate (others are reported but never fail)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -gate: %v\n", err)
		os.Exit(2)
	}
	oldRes, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(oldRes) == 0 || len(newRes) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark lines in %s or %s\n", *oldPath, *newPath)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	for _, name := range names {
		nw := newRes[name]
		od, ok := oldRes[name]
		if !ok {
			fmt.Printf("NEW     %-50s %12.0f ns/op\n", name, nw.nsPerOp)
			continue
		}
		pct := (nw.nsPerOp - od.nsPerOp) / od.nsPerOp * 100
		status := "ok"
		gated := gateRe.MatchString(name)
		if gated && pct > *threshold {
			status = "REGRESSED"
			regressed++
		} else if !gated {
			status = "ungated"
		}
		fmt.Printf("%-9s %-50s %12.0f → %12.0f ns/op (%+.1f%%)", status, name, od.nsPerOp, nw.nsPerOp, pct)
		//lint:ignore floateq allocs/op are small integers parsed into float64; exact compare intended
		if od.allocsPerOp >= 0 && nw.allocsPerOp >= 0 && nw.allocsPerOp != od.allocsPerOp {
			fmt.Printf("  allocs %0.f → %0.f", od.allocsPerOp, nw.allocsPerOp)
		}
		fmt.Println()
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated benchmark(s) regressed more than %.0f%%\n", regressed, *threshold)
		os.Exit(1)
	}
}
