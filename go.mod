module enduratrace

go 1.24
