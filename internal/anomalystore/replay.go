package anomalystore

import (
	"fmt"

	"enduratrace/internal/core"
)

// Verdict classifies one incident's replay outcome against its recorded
// outcome. The interesting transitions are Lost (a model regression: the
// evidence that tripped in production no longer scores anomalous) and
// NewDetection (a candidate improvement, or a threshold lowered too far).
type Verdict string

const (
	// VerdictStillDetected: recorded anomalous, still anomalous on replay.
	VerdictStillDetected Verdict = "still-detected"
	// VerdictLost: recorded anomalous, but the replay model clears it.
	VerdictLost Verdict = "lost"
	// VerdictNewDetection: recorded below alpha (a gate trip that LOF
	// cleared), but the replay model flags it.
	VerdictNewDetection Verdict = "new-detection"
	// VerdictStillClear: below alpha then, below alpha now.
	VerdictStillClear Verdict = "still-clear"
)

// IncidentVerdict is one incident re-scored under one model.
type IncidentVerdict struct {
	Seq      uint64 `json:"seq"`
	Stream   string `json:"stream"`
	WallTime string `json:"wall"`
	// RecordedModel/RecordedScore/RecordedAnomalous are what the daemon
	// persisted at trip time.
	RecordedModel     string  `json:"recorded_model"`
	RecordedScore     float64 `json:"recorded_score"`
	RecordedAnomalous bool    `json:"recorded_anomalous"`
	// Score is the replay model's LOF of the incident's principal (tripped)
	// window; MaxContextScore is the max LOF across all carried windows,
	// context included — an anomaly that shifted a window under the replay
	// model's eye still shows up there.
	Score           float64 `json:"score"`
	MaxContextScore float64 `json:"max_context_score"`
	Detected        bool    `json:"detected"`
	Verdict         Verdict `json:"verdict"`
}

// ModelReplay is the outcome of re-scoring every incident with one model.
type ModelReplay struct {
	Model string `json:"model"`
	// Alpha is the detection threshold applied on replay (the model's own,
	// or the what-if override).
	Alpha float64 `json:"alpha"`

	Incidents     int `json:"incidents"`
	StillDetected int `json:"still_detected"`
	Lost          int `json:"lost"`
	NewDetections int `json:"new_detections"`
	StillClear    int `json:"still_clear"`

	Verdicts []IncidentVerdict `json:"verdicts"`
}

// ReplayReport is the full replay outcome, shaped like the eval harness's
// reports (stable name field, flat JSON, one block per model).
type ReplayReport struct {
	Name  string `json:"name"`
	Store string `json:"store"`

	Incidents int `json:"incidents"`
	Segments  int `json:"segments"`
	// TruncatedSegments counts segments whose tail was damaged (crash);
	// their intact records are still replayed.
	TruncatedSegments int `json:"truncated_segments"`
	// AlphaOverride echoes the what-if threshold, nil when each model's
	// own alpha was used.
	AlphaOverride *float64 `json:"alpha_override"`

	Models []ModelReplay `json:"models"`
}

// Replay re-scores every incident in the store at dir against each given
// model and classifies the outcomes. alphaOverride > 0 replaces every
// model's own threshold — the threshold what-if knob: replay the same
// evidence under a candidate alpha without touching production.
func Replay(dir string, models []*core.NamedModel, alphaOverride float64) (*ReplayReport, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("anomalystore: replay needs at least one model")
	}
	r, err := OpenReader(dir)
	if err != nil {
		return nil, err
	}

	rep := &ReplayReport{Name: "enduratrace-replay", Store: dir}
	if alphaOverride > 0 {
		a := alphaOverride
		rep.AlphaOverride = &a
	}

	type cell struct {
		mon   *core.Monitor
		alpha float64
		out   *ModelReplay
	}
	cells := make([]cell, len(models))
	rep.Models = make([]ModelReplay, len(models))
	for i, nm := range models {
		mon, err := core.NewMonitor(nm.Cfg, nm.Learned)
		if err != nil {
			return nil, fmt.Errorf("anomalystore: replay model %q: %w", nm.Name, err)
		}
		alpha := mon.Alpha()
		if alphaOverride > 0 {
			alpha = alphaOverride
		}
		rep.Models[i] = ModelReplay{Model: nm.Name, Alpha: alpha}
		cells[i] = cell{mon: mon, alpha: alpha, out: &rep.Models[i]}
	}

	scans, err := r.Walk(func(inc *Incident) error {
		rep.Incidents++
		principal, ok := inc.Principal()
		if !ok {
			return nil // window-free incident: nothing to re-score
		}
		for _, c := range cells {
			score := c.mon.ScoreWindow(principal)
			maxScore := score
			for _, w := range inc.Windows {
				if s := c.mon.ScoreWindow(w); s > maxScore {
					maxScore = s
				}
			}
			v := IncidentVerdict{
				Seq:               inc.Seq,
				Stream:            inc.Stream,
				WallTime:          inc.Meta().Wall,
				RecordedModel:     inc.Model,
				RecordedScore:     inc.Score,
				RecordedAnomalous: inc.Anomalous,
				Score:             score,
				MaxContextScore:   maxScore,
				Detected:          score >= c.alpha,
			}
			c.out.Incidents++
			switch {
			case v.RecordedAnomalous && v.Detected:
				v.Verdict = VerdictStillDetected
				c.out.StillDetected++
			case v.RecordedAnomalous && !v.Detected:
				v.Verdict = VerdictLost
				c.out.Lost++
			case !v.RecordedAnomalous && v.Detected:
				v.Verdict = VerdictNewDetection
				c.out.NewDetections++
			default:
				v.Verdict = VerdictStillClear
				c.out.StillClear++
			}
			c.out.Verdicts = append(c.out.Verdicts, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Segments = len(scans)
	for _, s := range scans {
		if s.Truncated {
			rep.TruncatedSegments++
		}
	}
	return rep, nil
}
