package anomalystore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SegmentScan summarises one pass over a segment's records.
type SegmentScan struct {
	// Version is the decoded format version.
	Version int
	// Records counts intact records (length, CRC, and decode all valid).
	Records int
	// FirstSeq/LastSeq are the sequence range of intact records (0/0 when
	// the segment holds none).
	FirstSeq, LastSeq uint64
	// Sealed reports whether the end-of-records marker (and so the tail
	// index) was reached; a segment that was active at crash time is not
	// sealed.
	Sealed bool
	// Truncated reports that the scan stopped at a torn or corrupt tail —
	// a partial record, a CRC mismatch, or a payload that fails to decode.
	// Everything counted in Records precedes the damage.
	Truncated bool
	// Bytes is the number of bytes consumed, including the header.
	Bytes int64
}

// errStopScan lets a ScanSegment callback end the walk early without
// flagging the segment as damaged.
var errStopScan = errors.New("anomalystore: stop scan")

// ScanSegment reads segment bytes sequentially, invoking fn for every
// intact record (seq is decoded from the payload; the payload slice is
// only valid during the call). Corrupt or truncated input — including a
// segment cut anywhere by a crash — terminates the scan cleanly with
// Truncated set; it is never an error and must never panic. An error is
// returned only for a bad header, a failing reader, or an fn failure.
func ScanSegment(r io.Reader, fn func(seq uint64, payload []byte) error) (SegmentScan, error) {
	var scan SegmentScan
	cr := &countReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	defer func() { scan.Bytes = cr.n - int64(br.Buffered()) }()

	head := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return scan, fmt.Errorf("anomalystore: reading segment header: %w", unexpectedEOF(err))
	}
	if string(head) != segMagic {
		return scan, fmt.Errorf("anomalystore: bad magic, not an anomaly segment")
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return scan, fmt.Errorf("anomalystore: reading segment version: %w", unexpectedEOF(err))
	}
	if v != segVersion {
		return scan, fmt.Errorf("anomalystore: unsupported segment version %d", v)
	}
	scan.Version = int(v)
	if _, err := binary.ReadUvarint(br); err != nil { // baseSeq
		return scan, fmt.Errorf("anomalystore: reading segment base sequence: %w", unexpectedEOF(err))
	}

	var payload []byte
	for {
		plen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			// EOF exactly at a record boundary: an unsealed (crashed)
			// segment whose last record made it out whole.
			return scan, nil
		}
		if err != nil {
			scan.Truncated = true
			return scan, nil
		}
		if plen == 0 {
			scan.Sealed = true
			return scan, nil
		}
		if plen > maxRecordSize {
			scan.Truncated = true
			return scan, nil
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			scan.Truncated = true
			return scan, nil
		}
		want := binary.LittleEndian.Uint32(crcb[:])
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			scan.Truncated = true
			return scan, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			scan.Truncated = true
			return scan, nil
		}
		seq, n := binary.Uvarint(payload)
		if n <= 0 {
			scan.Truncated = true
			return scan, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				if err == errStopScan {
					return scan, nil
				}
				return scan, err
			}
		}
		if scan.Records == 0 {
			scan.FirstSeq = seq
		}
		scan.LastSeq = seq
		scan.Records++
	}
}

// countReader counts bytes read from the underlying reader so SegmentScan
// can report consumption despite bufio read-ahead.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// scanSegmentFile runs ScanSegment over one file.
func scanSegmentFile(path string, fn func(seq uint64, payload []byte) error) (SegmentScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentScan{}, fmt.Errorf("anomalystore: %w", err)
	}
	defer f.Close()
	scan, err := ScanSegment(f, fn)
	if err != nil {
		return scan, fmt.Errorf("anomalystore: segment %s: %w", path, err)
	}
	return scan, nil
}

// readSegmentIndex loads the sparse index from a sealed segment's tail.
// ok is false (with no error) when the segment has no intact index —
// unsealed, too short, or a corrupt footer — in which case callers fall
// back to a sequential scan.
func readSegmentIndex(path string) (entries []indexEntry, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("anomalystore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("anomalystore: %w", err)
	}
	const trailer = 4 + 4 + len(indexMagic) // crc + ilen + magic
	if st.Size() < int64(trailer) {
		return nil, false, nil
	}
	var tail [trailer]byte
	if _, err := f.ReadAt(tail[:], st.Size()-int64(trailer)); err != nil {
		return nil, false, nil
	}
	if string(tail[8:]) != indexMagic {
		return nil, false, nil
	}
	wantCRC := binary.LittleEndian.Uint32(tail[:4])
	ilen := int64(binary.LittleEndian.Uint32(tail[4:8]))
	if ilen < 1 || ilen > st.Size()-int64(trailer) {
		return nil, false, nil
	}
	idx := make([]byte, ilen)
	if _, err := f.ReadAt(idx, st.Size()-int64(trailer)-ilen); err != nil {
		return nil, false, nil
	}
	if crc32.ChecksumIEEE(idx) != wantCRC {
		return nil, false, nil
	}
	d := &decoder{b: idx}
	count := d.uvarint("index count")
	if d.err != nil || count > uint64(ilen) {
		return nil, false, nil
	}
	entries = make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		e := indexEntry{seq: d.uvarint("index seq"), off: d.uvarint("index offset")}
		if d.err != nil {
			return nil, false, nil
		}
		entries = append(entries, e)
	}
	return entries, true, nil
}

// Reader is the read side of a store directory: it walks every segment in
// sequence order and fetches single incidents via the sealed segments'
// tail indexes. A Reader takes no lock on the directory; reading while a
// Store appends is safe (it simply stops at the current tail).
type Reader struct {
	dir  string
	segs []segmentFile
}

// OpenReader opens a store directory for reading.
func OpenReader(dir string) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{dir: dir, segs: segs}, nil
}

// Segments returns the number of segment files.
func (r *Reader) Segments() int { return len(r.segs) }

// Walk decodes every intact incident across all segments in sequence
// order and invokes fn. It returns the per-segment scans (damage is
// reported there, not as an error). fn returning an error aborts the walk.
func (r *Reader) Walk(fn func(*Incident) error) ([]SegmentScan, error) {
	scans := make([]SegmentScan, 0, len(r.segs))
	for _, seg := range r.segs {
		scan, err := scanSegmentFile(seg.path, func(seq uint64, payload []byte) error {
			inc, derr := DecodeIncident(payload)
			if derr != nil {
				// A CRC-clean payload that fails decode is tail damage in
				// disguise (e.g. a crashed write of a corrupt buffer) —
				// stop this segment like any other truncation.
				return errStopScan
			}
			return fn(inc)
		})
		if err != nil {
			return scans, err
		}
		scans = append(scans, scan)
	}
	return scans, nil
}

// ErrNotFound is returned by Get for a sequence number not present in the
// store.
var ErrNotFound = errors.New("anomalystore: incident not found")

// Get fetches one incident by sequence number. Sealed segments are
// located via their tail index (seek to the nearest preceding entry, then
// scan forward); unsealed segments fall back to a sequential scan.
func (r *Reader) Get(seq uint64) (*Incident, error) {
	// Segments are named by base sequence: the owner is the last segment
	// whose base is <= seq.
	for i := len(r.segs) - 1; i >= 0; i-- {
		seg := r.segs[i]
		if seg.base > seq {
			continue
		}
		if idx, ok, err := readSegmentIndex(seg.path); err != nil {
			return nil, err
		} else if ok {
			return r.getIndexed(seg, idx, seq)
		}
		return r.getScan(seg, seq)
	}
	return nil, ErrNotFound
}

func (r *Reader) getIndexed(seg segmentFile, idx []indexEntry, seq uint64) (*Incident, error) {
	// Nearest index entry at or before seq (entries are ascending).
	off := int64(-1)
	for _, e := range idx {
		if e.seq > seq {
			break
		}
		off = int64(e.off)
	}
	if off < 0 {
		return nil, ErrNotFound
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, fmt.Errorf("anomalystore: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("anomalystore: %w", err)
	}
	return findInRecords(bufio.NewReaderSize(f, 1<<16), seq)
}

func (r *Reader) getScan(seg segmentFile, seq uint64) (*Incident, error) {
	var found *Incident
	_, err := scanSegmentFile(seg.path, func(got uint64, payload []byte) error {
		if got != seq {
			return nil
		}
		inc, derr := DecodeIncident(payload)
		if derr != nil {
			return derr
		}
		found = inc
		return errStopScan
	})
	if err != nil {
		return nil, err
	}
	if found == nil {
		return nil, ErrNotFound
	}
	return found, nil
}

// findInRecords reads length-prefixed records (no segment header) from br
// until it decodes the record with the wanted sequence number.
func findInRecords(br *bufio.Reader, seq uint64) (*Incident, error) {
	var payload []byte
	for {
		plen, err := binary.ReadUvarint(br)
		if err != nil || plen == 0 || plen > maxRecordSize {
			return nil, ErrNotFound
		}
		var crcb [4]byte
		if _, err := io.ReadFull(br, crcb[:]); err != nil {
			return nil, ErrNotFound
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, ErrNotFound
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb[:]) {
			return nil, ErrNotFound
		}
		got, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, ErrNotFound
		}
		if got == seq {
			return DecodeIncident(payload)
		}
		if got > seq {
			return nil, ErrNotFound
		}
	}
}
