package anomalystore

import (
	"bytes"
	"os"
	"testing"
)

// segmentBytes builds a real sealed segment in memory to seed the fuzzer
// with structurally valid input — mutations of true segments exercise far
// deeper decode paths than random bytes.
func segmentBytes(t testing.TB, n int, seal bool) []byte {
	dir := t.TempDir()
	s, err := Open(dir, Options{IndexEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Append(testIncident(i)); err != nil {
			t.Fatal(err)
		}
	}
	if seal {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatal("no segment written")
	}
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzSegmentReader feeds arbitrary bytes through the full read path:
// ScanSegment plus DecodeIncident on every CRC-clean payload. The contract
// under fuzz is "corrupt input never panics and never over-allocates" —
// errors and Truncated flags are the expected outcomes, crashes are bugs.
func FuzzSegmentReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(segmentBytes(f, 3, true))
	f.Add(segmentBytes(f, 5, false))
	// A deliberately torn tail and a bit-flipped body as starting points.
	whole := segmentBytes(f, 4, true)
	f.Add(whole[:len(whole)-9])
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		scan, err := ScanSegment(bytes.NewReader(data), func(seq uint64, payload []byte) error {
			// A CRC-clean payload may still be garbage to DecodeIncident
			// (the fuzzer can forge a matching CRC); it must error, not
			// panic.
			_, _ = DecodeIncident(payload)
			return nil
		})
		if err == nil && scan.Records < 0 {
			t.Fatal("negative record count")
		}
		// DecodeIncident over the raw input too — the payload decoder must
		// hold on its own against arbitrary bytes.
		_, _ = DecodeIncident(data)
	})
}
