package anomalystore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// testIncident builds a deterministic incident with i-dependent content so
// round-trip mismatches are attributable to a specific record.
func testIncident(i int) Incident {
	mkWin := func(idx int) window.Window {
		evs := make([]trace.Event, 0, 8)
		for j := 0; j < 8; j++ {
			var pl []byte // nil when empty: the codec decodes no payload as nil
			if j%3 != 0 {
				pl = bytes.Repeat([]byte{byte(i)}, j%3*16)
			}
			evs = append(evs, trace.Event{
				TS:      time.Duration(idx*1000+j) * time.Millisecond,
				Type:    trace.EventType(j % 5),
				Arg:     uint64(i*100 + j),
				Payload: pl,
			})
		}
		return window.Window{
			Index:  idx,
			Start:  time.Duration(idx) * time.Second,
			End:    time.Duration(idx+1) * time.Second,
			Events: evs,
		}
	}
	return Incident{
		Stream:      fmt.Sprintf("stream-%02d", i%3),
		Model:       "model-a",
		ModelGen:    int64(i % 2),
		Wall:        time.Unix(1700000000+int64(i), int64(i)*1001).UTC(),
		Score:       2.5 + float64(i)*0.125,
		GateDist:    0.75 + float64(i)*0.0625,
		Alpha:       2.5,
		Anomalous:   i%2 == 0,
		WindowIndex: i + 2,
		Start:       time.Duration(i+2) * time.Second,
		End:         time.Duration(i+3) * time.Second,
		Windows:     []window.Window{mkWin(i), mkWin(i + 1), mkWin(i + 2)},
	}
}

// appendN appends n test incidents and returns them with their assigned
// sequence numbers filled in.
func appendN(t *testing.T, s *Store, n int) []Incident {
	t.Helper()
	incs := make([]Incident, 0, n)
	for i := 0; i < n; i++ {
		inc := testIncident(i)
		seq, err := s.Append(inc)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		inc.Seq = seq
		incs = append(incs, inc)
	}
	return incs
}

// walkAll collects every incident a Reader can see.
func walkAll(t *testing.T, dir string) ([]*Incident, []SegmentScan) {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Incident
	scans, err := r.Walk(func(inc *Incident) error {
		got = append(got, inc)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, scans
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 25)
	st := s.Stats()
	if st.Appended != 25 || st.Incidents != 25 || st.Recovered != 0 {
		t.Fatalf("stats %+v, want 25 appended", st)
	}
	if st.LastSeq != 25 || st.Segments != 1 {
		t.Fatalf("stats %+v, want last seq 25 in 1 segment", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Append(Incident{}); err == nil {
		t.Fatal("append on closed store succeeded")
	}

	got, scans := walkAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("walked %d incidents, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(*got[i], want[i]) {
			t.Fatalf("incident %d round-trip mismatch:\n got %+v\nwant %+v", i, *got[i], want[i])
		}
	}
	if len(scans) != 1 || !scans[0].Sealed || scans[0].Truncated {
		t.Fatalf("scan %+v, want one sealed untruncated segment", scans)
	}
	if scans[0].FirstSeq != 1 || scans[0].LastSeq != 25 {
		t.Fatalf("scan sequence range %d..%d, want 1..25", scans[0].FirstSeq, scans[0].LastSeq)
	}

	// Recent keeps metas newest-last; Get round-trips through the Store.
	recent := s.Recent(5)
	if len(recent) != 5 || recent[4].Seq != 25 {
		t.Fatalf("recent %+v, want 5 entries ending at seq 25", recent)
	}
	inc, err := s.Get(13)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*inc, want[12]) {
		t.Fatalf("Get(13) mismatch: %+v", *inc)
	}
}

func TestStoreRotationAndIndexedGet(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments and a dense-ish index force rotation and the indexed
	// Get path across several sealed segments.
	s, err := Open(dir, Options{SegmentBytes: 4096, IndexEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 60)
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("only %d segments after 60 appends of ~%dB records, rotation broken", st.Segments, 4096)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Segments() != st.Segments {
		t.Fatalf("reader sees %d segments, store reported %d", r.Segments(), st.Segments)
	}
	// Every sealed segment must carry a usable tail index.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if _, ok, err := readSegmentIndex(seg.path); err != nil || !ok {
			t.Fatalf("segment %s has no tail index (err %v)", seg.path, err)
		}
	}
	// Get every record back, including ones not on an index boundary.
	for _, w := range want {
		inc, err := r.Get(w.Seq)
		if err != nil {
			t.Fatalf("Get(%d): %v", w.Seq, err)
		}
		if !reflect.DeepEqual(*inc, w) {
			t.Fatalf("Get(%d) mismatch", w.Seq)
		}
	}
	if _, err := r.Get(0); err != ErrNotFound {
		t.Fatalf("Get(0) = %v, want ErrNotFound", err)
	}
	if _, err := r.Get(uint64(len(want) + 1)); err != ErrNotFound {
		t.Fatalf("Get(past end) = %v, want ErrNotFound", err)
	}

	got, _ := walkAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("walked %d incidents across segments, want %d", len(got), len(want))
	}
}

// TestCrashDurability simulates kill -9: the active segment is never
// sealed, and its tail may be cut mid-record. Reopening must recover every
// complete record, flag the damage, and never panic; a new Store over the
// same dir must continue the sequence without reusing numbers.
func TestCrashDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, s, 40)
	// Crash: drop the store on the floor without Close. The *os.File goes
	// out of scope unsealed, exactly like SIGKILL (data was fsynced per
	// append, the seal never happened).
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments to test crash recovery, got %d", len(segs))
	}
	active := segs[len(segs)-1].path

	got, scans := walkAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("recovered %d incidents after crash, want %d", len(got), len(want))
	}
	last := scans[len(scans)-1]
	if last.Sealed {
		t.Fatal("crashed active segment reads as sealed")
	}
	if last.Truncated {
		t.Fatal("active segment cut at a record boundary flagged as truncated")
	}
	for _, sc := range scans[:len(scans)-1] {
		if !sc.Sealed {
			t.Fatalf("rotated segment not sealed: %+v", sc)
		}
	}

	// Tear the active segment mid-record: every cut length from the record
	// boundary back into the previous record must still yield the earlier
	// records and a clean Truncated flag.
	whole, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 40; cut += 7 {
		if cut >= len(whole) {
			break
		}
		torn := filepath.Join(t.TempDir(), "torn.seg")
		if err := os.WriteFile(torn, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := scanSegmentFile(torn, nil)
		if err != nil {
			t.Fatalf("cut %d: scan error %v", cut, err)
		}
		if !scan.Truncated {
			t.Fatalf("cut %d: torn tail not flagged truncated: %+v", cut, scan)
		}
		if scan.Records >= last.Records || scan.LastSeq >= last.LastSeq {
			// The tear removed at least the final record.
			t.Fatalf("cut %d: scan %+v counts the torn record", cut, scan)
		}
	}

	// Flip a byte inside a payload: the CRC must reject the record and
	// everything after it, again without error or panic.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)/2] ^= 0xFF
	scan, err := ScanSegment(bytes.NewReader(corrupt), nil)
	if err != nil {
		t.Fatalf("corrupt scan error: %v", err)
	}
	if !scan.Truncated {
		t.Fatal("bit flip not caught by the record CRC")
	}
	if scan.Records >= last.Records {
		t.Fatalf("corrupt scan counted %d records, active had %d intact", scan.Records, last.Records)
	}

	// Reopen the directory as a Store: sequence numbering continues past
	// everything recovered, and old + new records coexist.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Recovered != int64(len(want)) {
		t.Fatalf("reopen recovered %d, want %d", st.Recovered, len(want))
	}
	seq, err := s2.Append(testIncident(99))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= want[len(want)-1].Seq {
		t.Fatalf("reopened store reused sequence %d (last was %d)", seq, want[len(want)-1].Seq)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = walkAll(t, dir)
	if len(got) != len(want)+1 {
		t.Fatalf("after reopen+append walked %d, want %d", len(got), len(want)+1)
	}
	if got[len(got)-1].Seq != seq {
		t.Fatalf("appended incident seq %d not last in walk (%d)", seq, got[len(got)-1].Seq)
	}
}

// TestOpenOnCrashedEmptySegment: a crash can leave a segment holding only
// its header (no intact record). The filename still reserves its base
// sequence; reopening must not hand that number out again.
func TestOpenOnCrashedEmptySegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testIncident(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testIncident(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Fake a header-only crashed segment with a base past the live records.
	hdr := []byte(segMagic)
	hdr = append(hdr, 1) // version uvarint
	hdr = append(hdr, 7) // baseSeq uvarint: 7
	if err := os.WriteFile(filepath.Join(dir, segmentName(7)), hdr, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seq, err := s2.Append(testIncident(2))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 7 {
		t.Fatalf("reopened store assigned seq %d inside the crashed segment's reservation", seq)
	}
}

func TestDecodeIncidentRejectsCorruptLengths(t *testing.T) {
	inc := testIncident(3)
	inc.Seq = 1
	payload, err := appendIncident(nil, &inc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeIncident(payload); err != nil {
		t.Fatalf("clean payload failed to decode: %v", err)
	}
	// Every prefix of a valid payload must error cleanly, never panic.
	for n := 0; n < len(payload); n++ {
		if _, err := DecodeIncident(payload[:n]); err == nil {
			t.Fatalf("truncated payload of %d bytes decoded without error", n)
		}
	}
}

// TestAlertRecordRoundTrip covers the alert-pipeline transition records:
// window-free incidents whose flags carry the firing/resolved marker.
// They must round-trip the Alert field, skip replay (no principal
// window), and reject the corrupt both-bits case.
func TestAlertRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(alert string, anom bool) Incident {
		return Incident{
			Stream:      "flap-0",
			Model:       "model-a",
			ModelGen:    3,
			Wall:        time.Unix(1700000100, 42).UTC(),
			Score:       3.25,
			GateDist:    1.5,
			Alpha:       2.5,
			Anomalous:   anom,
			Alert:       alert,
			WindowIndex: 17,
			Start:       17 * time.Second,
			End:         18 * time.Second,
		}
	}
	want := []Incident{mk("firing", true), mk("resolved", false), mk("", true)}
	for i, inc := range want {
		seq, err := s.Append(inc)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want[i].Seq = seq
	}
	if _, err := s.Append(mk("exploded", false)); err == nil {
		t.Fatal("append accepted an unknown alert marker")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	got, _ := walkAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("walked %d records, want %d", len(got), len(want))
	}
	for i := range want {
		// A window-free record decodes into an empty (non-nil) slice;
		// normalise before the deep compare.
		if len(got[i].Windows) == 0 {
			got[i].Windows = nil
		}
		if !reflect.DeepEqual(*got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, *got[i], want[i])
		}
		if _, ok := got[i].Principal(); ok {
			t.Fatalf("record %d: window-free alert record has a principal window", i)
		}
	}
	metas := s.Recent(0)
	if metas[0].Alert != "firing" || metas[1].Alert != "resolved" || metas[2].Alert != "" {
		t.Fatalf("metas carry wrong alert markers: %+v", metas)
	}

	// Both alert bits set is corrupt, never a silent pick-one.
	payload, err := appendIncident(nil, &Incident{Seq: 9, Stream: "s", Model: "m", Alert: "firing"})
	if err != nil {
		t.Fatal(err)
	}
	// Flip in the resolved bit: the flags uvarint follows seq, wall,
	// stream, model, gen, and three fixed floats — locate it by
	// re-encoding with the other marker and diffing.
	other, err := appendIncident(nil, &Incident{Seq: 9, Stream: "s", Model: "m", Alert: "resolved"})
	if err != nil {
		t.Fatal(err)
	}
	diff := -1
	for i := range payload {
		if payload[i] != other[i] {
			diff = i
			break
		}
	}
	if diff < 0 {
		t.Fatal("could not locate the flags byte")
	}
	payload[diff] |= other[diff]
	if _, err := DecodeIncident(payload); err == nil {
		t.Fatal("decode accepted both alert bits set")
	}
}

// TestIncidentMetaMarshalNonFinite: incidents recorded with +Inf gate
// distance (disjoint distributions) must not error out the JSON encoding
// of the whole /anomalies body — non-finite scores render as null.
func TestIncidentMetaMarshalNonFinite(t *testing.T) {
	m := IncidentMeta{Seq: 7, Stream: "s", Model: "m",
		Score: JSONFloat(math.NaN()), GateDist: JSONFloat(math.Inf(1))}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("non-finite meta failed to marshal: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("marshaled meta is not valid JSON: %v\n%s", err, b)
	}
	if got["score"] != nil || got["gate_dist"] != nil {
		t.Fatalf("non-finite scores not null: score=%v gate_dist=%v", got["score"], got["gate_dist"])
	}
	if got["seq"] != 7.0 || got["stream"] != "s" {
		t.Fatalf("finite fields mangled: %v", got)
	}
	m.Score, m.GateDist = 2.5, 0.75
	if b, err = json.Marshal(m); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got["score"] != 2.5 || got["gate_dist"] != 0.75 {
		t.Fatalf("finite scores mangled: %v", got)
	}
}
