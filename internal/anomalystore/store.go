// Package anomalystore is the embedded forensic record of the monitor: an
// append-only store of gate-trip incidents that survives daemon restarts
// and crashes. The paper's whole point is trace *reduction* — keep only
// the windows around an anomaly so a human can do forensics later — so
// the evidence must outlive the process that captured it. Each incident
// carries the context windows, the LOF score and gate distance, the model
// that scored it (name + registry generation), the stream id, and wall
// and trace timestamps.
//
// On disk the store is a directory of append-only segment files. Each
// segment is length-prefixed records with a CRC32 per record over the
// existing traceio binary event codec, a sparse in-file index appended
// when the segment is sealed, and size-based rotation:
//
//	segment file (<firstSeq as %016d>.seg):
//
//	  magic   "EASG"            4 bytes
//	  version uvarint           (currently 1)
//	  baseSeq uvarint           sequence number of the first record
//	  records *                 repeated
//	  sealed segments then end with:
//	  0       uvarint           end-of-records marker
//	  index   (see below)
//
//	each record:
//
//	  plen    uvarint           payload length (> 0)
//	  crc     uint32 LE         CRC-32 (IEEE) of the payload
//	  payload plen bytes        one encoded Incident
//
//	index (sealed segments only):
//
//	  count   uvarint           number of entries (every IndexEvery-th record)
//	  entries count ×           uvarint seq, uvarint file offset of the record
//	  crc     uint32 LE         CRC-32 (IEEE) of count+entries
//	  ilen    uint32 LE         byte length of count+entries
//	  magic   "EAIX"            4 bytes
//
// The fixed-size trailer (ilen + magic) lets a reader load the index of a
// sealed segment from the file tail without scanning; segments that were
// active when the daemon died have no index and are scanned sequentially,
// with the CRC detecting (never panicking on) a truncated tail record.
// Appends are fsynced (per record by default, see Options.SyncEvery), and
// rotation always fsyncs before opening the next segment, so a crash loses
// at most the unsynced tail of the active segment — never a previously
// rotated one.
package anomalystore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

const (
	segMagic   = "EASG"
	segVersion = 1
	indexMagic = "EAIX"
	segExt     = ".seg"

	// maxRecordSize bounds one incident record when decoding; corrupt
	// length fields must not drive huge allocations.
	maxRecordSize = 16 << 20
	// maxNameLen bounds the stream/model name fields when decoding.
	maxNameLen = 4096
	// maxIncidentWindows bounds the context-window count when decoding.
	maxIncidentWindows = 4096
)

// Record flag bits (the uvarint flags field of each payload). Bit 0 has
// meant "anomalous" since version 1; bits 1 and 2 mark alert-pipeline
// transition records and are mutually exclusive. Old readers ignore the
// new bits; old records never have them set — no format break.
const (
	flagAnomalous     = 1 << 0
	flagAlertFiring   = 1 << 1
	flagAlertResolved = 1 << 2
)

// Alert marker values carried by Incident.Alert / IncidentMeta.Alert.
const (
	alertFiring   = "firing"
	alertResolved = "resolved"
)

// Incident is one persisted gate trip: the window that tripped the gate
// (the last entry of Windows, identified by WindowIndex), the context
// windows preceding it, and everything a forensic replay needs to re-score
// the evidence later.
type Incident struct {
	// Seq is the store-assigned, strictly increasing sequence number.
	Seq uint64
	// Stream is the registry-assigned stream id the trip happened on.
	Stream string
	// Model names the registry model that scored the window; ModelGen is
	// the registry's hot-reload generation at stream registration, so two
	// same-named models from different reloads stay distinguishable.
	Model    string
	ModelGen int64
	// Wall is the wall-clock time the trip was recorded.
	Wall time.Time
	// Score is the LOF the monitor computed; Anomalous reports whether it
	// reached the model's Alpha (the recorded outcome replay compares
	// against). GateDist is the gate distance that tripped LOF scoring.
	Score     float64
	GateDist  float64
	Alpha     float64
	Anomalous bool
	// WindowIndex/Start/End locate the tripped window in stream trace time.
	WindowIndex int
	Start, End  time.Duration
	// Alert marks alert-pipeline transition records: "firing" or
	// "resolved" (empty for ordinary gate-trip incidents). Alert records
	// carry no windows — they are the incident timeline, not evidence —
	// so replay skips them (Principal reports no window).
	Alert string
	// Windows holds the pre-trip context windows followed by the tripped
	// window itself (always last).
	Windows []window.Window
}

// Principal returns the tripped window itself (the one WindowIndex names,
// by convention the last of Windows) and false when the incident carries
// no windows at all.
func (inc *Incident) Principal() (window.Window, bool) {
	for _, w := range inc.Windows {
		if w.Index == inc.WindowIndex {
			return w, true
		}
	}
	if n := len(inc.Windows); n > 0 {
		return inc.Windows[n-1], true
	}
	return window.Window{}, false
}

// IncidentMeta is the window-free view of an incident served by the
// /anomalies admin endpoint and kept in the store's recent ring.
type IncidentMeta struct {
	Seq       uint64    `json:"seq"`
	Stream    string    `json:"stream"`
	Model     string    `json:"model"`
	ModelGen  int64     `json:"model_gen"`
	Wall      string    `json:"wall"`
	Score     JSONFloat `json:"score"`
	GateDist  JSONFloat `json:"gate_dist"`
	Alpha     JSONFloat `json:"alpha"`
	Anomalous bool      `json:"anomalous"`
	Alert     string    `json:"alert,omitempty"`
	StartS    JSONFloat `json:"start_s"`
	EndS      JSONFloat `json:"end_s"`
	Windows   int       `json:"windows"`
	Events    int       `json:"events"`
}

// JSONFloat marshals like float64 but renders NaN/±Inf as null: gate
// distances are legitimately +Inf for disjoint distributions, but JSON
// has no Inf/NaN and one such incident must not break the whole
// /anomalies body with a marshal error. A field type (rather than a
// MarshalJSON on IncidentMeta) so structs embedding the meta keep their
// own fields — a promoted struct marshaler would silently drop them.
type JSONFloat float64

func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Meta returns the incident's window-free summary.
func (inc *Incident) Meta() IncidentMeta {
	events := 0
	for _, w := range inc.Windows {
		events += len(w.Events)
	}
	return IncidentMeta{
		Seq:       inc.Seq,
		Stream:    inc.Stream,
		Model:     inc.Model,
		ModelGen:  inc.ModelGen,
		Wall:      inc.Wall.UTC().Format(time.RFC3339Nano),
		Score:     JSONFloat(inc.Score),
		GateDist:  JSONFloat(inc.GateDist),
		Alpha:     JSONFloat(inc.Alpha),
		Anomalous: inc.Anomalous,
		Alert:     inc.Alert,
		StartS:    JSONFloat(inc.Start.Seconds()),
		EndS:      JSONFloat(inc.End.Seconds()),
		Windows:   len(inc.Windows),
		Events:    events,
	}
}

// Options configures a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). Rotation seals the segment: index appended, file
	// fsynced and closed — after that a crash cannot touch it.
	SegmentBytes int64
	// IndexEvery is the sparse-index stride: every IndexEvery-th record of
	// a segment gets an index entry (default 16).
	IndexEvery int
	// SyncEvery is the fsync cadence in records: 1 (the default) fsyncs
	// after every append, so a crash loses at most the record being
	// written; larger values trade tail-loss for throughput. Rotation and
	// Close always fsync regardless.
	SyncEvery int
	// Recent is how many incident metas the in-memory recent ring retains
	// for the /anomalies listing (default 256).
	Recent int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = 16
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.Recent <= 0 {
		o.Recent = 256
	}
	return o
}

// StoreStats is a point-in-time view of the store's books.
type StoreStats struct {
	Dir string `json:"dir"`
	// Appended counts incidents appended by this Store since Open;
	// Recovered counts intact records found in pre-existing segments at
	// Open; Incidents is their sum (everything on disk).
	Appended  int64 `json:"appended"`
	Recovered int64 `json:"recovered"`
	Incidents int64 `json:"incidents"`
	// Anomalous counts appended incidents whose LOF reached alpha.
	Anomalous int64 `json:"anomalous"`
	// Segments counts segment files (sealed + active); Bytes is their
	// total size.
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	LastSeq  uint64 `json:"last_seq"`
}

// indexEntry is one sparse-index row: the sequence number and file offset
// of a record.
type indexEntry struct {
	seq uint64
	off uint64
}

// Store is the write side: a single-directory incident log. Append is safe
// for concurrent use (every serve stream appends into one Store).
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          *os.File
	off        int64
	segBase    uint64
	segRecords int
	index      []indexEntry
	unsynced   int
	nextSeq    uint64
	sealedSegs int
	sealedB    int64
	recovered  int64
	appended   int64
	anoms      int64
	recent     []IncidentMeta
	buf        []byte
	closed     bool
}

// Open creates dir if needed, scans any existing segments (recovering the
// sequence counter past every intact record — a truncated tail from a
// crash is skipped, not fatal), and returns a Store appending to a fresh
// segment. The previously active segment is left as-is; readers recover
// its complete records by scanning.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("anomalystore: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, nextSeq: 1}
	for _, seg := range segs {
		scan, err := scanSegmentFile(seg.path, nil)
		if err != nil {
			return nil, err
		}
		s.recovered += int64(scan.Records)
		s.sealedSegs++
		s.sealedB += scan.Bytes
		if scan.Records > 0 && scan.LastSeq >= s.nextSeq {
			s.nextSeq = scan.LastSeq + 1
		}
		if seg.base >= s.nextSeq {
			// A crashed segment may hold no intact records; its filename
			// still reserves the sequence numbers it was opened for.
			s.nextSeq = seg.base + 1
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append persists one incident and returns its assigned sequence number.
// The caller's Windows slices are encoded immediately and not retained.
func (s *Store) Append(inc Incident) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("anomalystore: append on closed store")
	}
	if s.f != nil && s.off >= s.opts.SegmentBytes {
		if err := s.sealLocked(); err != nil {
			return 0, err
		}
	}
	if s.f == nil {
		if err := s.openSegmentLocked(); err != nil {
			return 0, err
		}
	}

	inc.Seq = s.nextSeq
	payload, err := appendIncident(s.buf[:0], &inc)
	if err != nil {
		return 0, err
	}
	s.buf = payload[:0] // keep the grown buffer
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("anomalystore: incident record %d bytes exceeds %d", len(payload), maxRecordSize)
	}

	recOff := s.off
	var head [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(head[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(head[n:], crc32.ChecksumIEEE(payload))
	if _, err := s.f.Write(head[:n+4]); err != nil {
		return 0, fmt.Errorf("anomalystore: %w", err)
	}
	if _, err := s.f.Write(payload); err != nil {
		return 0, fmt.Errorf("anomalystore: %w", err)
	}
	s.off += int64(n+4) + int64(len(payload))

	if s.segRecords%s.opts.IndexEvery == 0 {
		s.index = append(s.index, indexEntry{seq: inc.Seq, off: uint64(recOff)})
	}
	s.segRecords++
	s.nextSeq++
	s.appended++
	if inc.Anomalous {
		s.anoms++
	}
	s.recent = append(s.recent, inc.Meta())
	if len(s.recent) > s.opts.Recent {
		s.recent = s.recent[len(s.recent)-s.opts.Recent:]
	}

	s.unsynced++
	if s.unsynced >= s.opts.SyncEvery {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("anomalystore: %w", err)
		}
		s.unsynced = 0
	}
	return inc.Seq, nil
}

// Sync forces the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	s.unsynced = 0
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("anomalystore: %w", err)
	}
	return nil
}

// Close seals the active segment (index, fsync) and closes the store.
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	return s.sealLocked()
}

// Stats returns the store's current books.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Dir:       s.dir,
		Appended:  s.appended,
		Recovered: s.recovered,
		Incidents: s.appended + s.recovered,
		Anomalous: s.anoms,
		Segments:  s.sealedSegs,
		Bytes:     s.sealedB,
		LastSeq:   s.nextSeq - 1,
	}
	if s.f != nil {
		st.Segments++
		st.Bytes += s.off
	}
	return st
}

// Recent returns up to n of the most recently appended incident metas,
// newest last. n <= 0 returns the whole ring.
func (s *Store) Recent(n int) []IncidentMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.recent
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	cp := make([]IncidentMeta, len(out))
	copy(cp, out)
	return cp
}

// Get fetches one incident by sequence number, reading from disk (sealed
// segments via their tail index, the active segment by scan). Safe to call
// while appends continue.
func (s *Store) Get(seq uint64) (*Incident, error) {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	r, err := OpenReader(dir)
	if err != nil {
		return nil, err
	}
	return r.Get(seq)
}

// openSegmentLocked creates the next segment file and writes its header.
func (s *Store) openSegmentLocked() error {
	base := s.nextSeq
	path := filepath.Join(s.dir, segmentName(base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("anomalystore: %w", err)
	}
	var head [len(segMagic) + 2*binary.MaxVarintLen64]byte
	n := copy(head[:], segMagic)
	n += binary.PutUvarint(head[n:], segVersion)
	n += binary.PutUvarint(head[n:], base)
	if _, err := f.Write(head[:n]); err != nil {
		f.Close()
		return fmt.Errorf("anomalystore: %w", err)
	}
	s.f = f
	s.off = int64(n)
	s.segBase = base
	s.segRecords = 0
	s.index = s.index[:0]
	s.unsynced = 0
	// Make the new directory entry itself durable: a rotated-away segment
	// that the directory forgot would be as lost as an unsynced one.
	syncDir(s.dir)
	return nil
}

// sealLocked appends the end-of-records marker and the sparse index,
// fsyncs, and closes the active segment.
func (s *Store) sealLocked() error {
	f := s.f
	s.f = nil
	idx := make([]byte, 0, 16+len(s.index)*2*binary.MaxVarintLen64)
	idx = binary.AppendUvarint(idx, uint64(len(s.index)))
	for _, e := range s.index {
		idx = binary.AppendUvarint(idx, e.seq)
		idx = binary.AppendUvarint(idx, e.off)
	}
	var tail [1 + 4 + 4 + len(indexMagic)]byte
	tail[0] = 0 // uvarint(0): end-of-records marker
	out := append(tail[:1], idx...)
	var crcb [8]byte
	binary.LittleEndian.PutUint32(crcb[:4], crc32.ChecksumIEEE(idx))
	binary.LittleEndian.PutUint32(crcb[4:], uint32(len(idx)))
	out = append(out, crcb[:]...)
	out = append(out, indexMagic...)
	_, werr := f.Write(out)
	s.off += int64(len(out))
	serr := f.Sync()
	cerr := f.Close()
	s.sealedSegs++
	s.sealedB += s.off
	s.off = 0
	s.index = s.index[:0]
	if werr != nil {
		return fmt.Errorf("anomalystore: sealing segment: %w", werr)
	}
	if serr != nil {
		return fmt.Errorf("anomalystore: syncing segment: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("anomalystore: closing segment: %w", cerr)
	}
	return nil
}

// syncDir best-effort fsyncs a directory (durability of create/rename).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func segmentName(base uint64) string {
	return fmt.Sprintf("%016d%s", base, segExt)
}

type segmentFile struct {
	path string
	base uint64
}

// listSegments returns dir's segment files sorted by base sequence.
func listSegments(dir string) ([]segmentFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if err != nil {
		return nil, fmt.Errorf("anomalystore: %w", err)
	}
	segs := make([]segmentFile, 0, len(paths))
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), segExt)
		base, err := strconv.ParseUint(name, 10, 64)
		if err != nil {
			continue // not one of ours
		}
		segs = append(segs, segmentFile{path: p, base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// ---- incident encoding ----

// appendIncident appends the record-payload encoding of inc to buf.
func appendIncident(buf []byte, inc *Incident) ([]byte, error) {
	buf = binary.AppendUvarint(buf, inc.Seq)
	buf = binary.AppendUvarint(buf, uint64(inc.Wall.UnixNano()))
	buf = appendLenBytes(buf, []byte(inc.Stream))
	buf = appendLenBytes(buf, []byte(inc.Model))
	buf = binary.AppendUvarint(buf, uint64(inc.ModelGen))
	buf = appendFloat64(buf, inc.Score)
	buf = appendFloat64(buf, inc.GateDist)
	buf = appendFloat64(buf, inc.Alpha)
	var flags uint64
	if inc.Anomalous {
		flags |= flagAnomalous
	}
	switch inc.Alert {
	case "":
	case alertFiring:
		flags |= flagAlertFiring
	case alertResolved:
		flags |= flagAlertResolved
	default:
		return nil, fmt.Errorf("anomalystore: unknown alert marker %q", inc.Alert)
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(inc.WindowIndex))
	buf = binary.AppendUvarint(buf, uint64(inc.Start))
	buf = binary.AppendUvarint(buf, uint64(inc.End))
	if len(inc.Windows) > maxIncidentWindows {
		return nil, fmt.Errorf("anomalystore: incident carries %d windows, limit %d", len(inc.Windows), maxIncidentWindows)
	}
	buf = binary.AppendUvarint(buf, uint64(len(inc.Windows)))
	for _, w := range inc.Windows {
		buf = binary.AppendUvarint(buf, uint64(w.Index))
		buf = binary.AppendUvarint(buf, uint64(w.Start))
		buf = binary.AppendUvarint(buf, uint64(w.End))
		blob, err := encodeEvents(w.Events)
		if err != nil {
			return nil, err
		}
		buf = appendLenBytes(buf, blob)
	}
	return buf, nil
}

// encodeEvents serialises a window's events as one self-contained binary
// trace blob (the existing traceio codec, header included).
func encodeEvents(evs []trace.Event) ([]byte, error) {
	var b bytes.Buffer
	bw, err := traceio.NewBinaryWriter(&b)
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		if err := bw.Write(ev); err != nil {
			return nil, fmt.Errorf("anomalystore: encoding window events: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendFloat64(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

// decoder is a bounds-checked cursor over one record payload. Every length
// field is validated against the remaining bytes before any allocation, so
// corrupt input fails cleanly instead of panicking or ballooning memory.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("anomalystore: decoding %s: %w", what, io.ErrUnexpectedEOF)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes(what string, n uint64, max int) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(max) || n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

func (d *decoder) float64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// DecodeIncident decodes one record payload. Arbitrary (corrupt) input
// must yield an error, never a panic — the fuzz target hammers this.
func DecodeIncident(payload []byte) (*Incident, error) {
	d := &decoder{b: payload}
	inc := &Incident{}
	inc.Seq = d.uvarint("seq")
	inc.Wall = time.Unix(0, int64(d.uvarint("wall"))).UTC()
	inc.Stream = string(d.bytes("stream", d.uvarint("stream length"), maxNameLen))
	inc.Model = string(d.bytes("model", d.uvarint("model length"), maxNameLen))
	inc.ModelGen = int64(d.uvarint("model generation"))
	inc.Score = d.float64("score")
	inc.GateDist = d.float64("gate distance")
	inc.Alpha = d.float64("alpha")
	flags := d.uvarint("flags")
	inc.Anomalous = flags&flagAnomalous != 0
	switch flags & (flagAlertFiring | flagAlertResolved) {
	case 0:
	case flagAlertFiring:
		inc.Alert = alertFiring
	case flagAlertResolved:
		inc.Alert = alertResolved
	default:
		return nil, fmt.Errorf("anomalystore: record flags %#x set both alert bits", flags)
	}
	inc.WindowIndex = int(d.uvarint("window index"))
	inc.Start = time.Duration(d.uvarint("start"))
	inc.End = time.Duration(d.uvarint("end"))
	nw := d.uvarint("window count")
	if d.err != nil {
		return nil, d.err
	}
	if nw > maxIncidentWindows || nw > uint64(len(payload)) {
		return nil, fmt.Errorf("anomalystore: window count %d exceeds limit", nw)
	}
	inc.Windows = make([]window.Window, 0, nw)
	for i := uint64(0); i < nw; i++ {
		var w window.Window
		w.Index = int(d.uvarint("window index"))
		w.Start = time.Duration(d.uvarint("window start"))
		w.End = time.Duration(d.uvarint("window end"))
		blob := d.bytes("window events", d.uvarint("window events length"), maxRecordSize)
		if d.err != nil {
			return nil, d.err
		}
		evs, err := decodeEvents(blob)
		if err != nil {
			return nil, err
		}
		w.Events = evs
		inc.Windows = append(inc.Windows, w)
	}
	return inc, d.err
}

func decodeEvents(blob []byte) ([]trace.Event, error) {
	br, err := traceio.NewBinaryReader(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("anomalystore: decoding window events: %w", err)
	}
	evs, err := trace.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("anomalystore: decoding window events: %w", err)
	}
	return evs, nil
}
