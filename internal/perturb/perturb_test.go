package perturb

import (
	"testing"
	"time"
)

func TestNoneIsIdentity(t *testing.T) {
	var l None
	if l.FactorAt(time.Second) != 1 {
		t.Fatal("None has a factor != 1")
	}
	if l.NextChange(0) != Horizon {
		t.Fatal("None changes")
	}
}

func TestIntervalsFactorAndNextChange(t *testing.T) {
	l, err := NewIntervals(3, []Interval{
		{10 * time.Second, 20 * time.Second},
		{40 * time.Second, 50 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at     time.Duration
		factor float64
		next   time.Duration
	}{
		{0, 1, 10 * time.Second},
		{10 * time.Second, 3, 20 * time.Second},
		{15 * time.Second, 3, 20 * time.Second},
		{20 * time.Second, 1, 40 * time.Second}, // End is exclusive
		{45 * time.Second, 3, 50 * time.Second},
		{50 * time.Second, 1, Horizon},
	}
	for _, c := range cases {
		if f := l.FactorAt(c.at); f != c.factor {
			t.Fatalf("FactorAt(%v) = %g, want %g", c.at, f, c.factor)
		}
		if n := l.NextChange(c.at); n != c.next {
			t.Fatalf("NextChange(%v) = %v, want %v", c.at, n, c.next)
		}
	}
}

func TestNewIntervalsRejectsBadSpans(t *testing.T) {
	if _, err := NewIntervals(0.5, nil); err == nil {
		t.Fatal("factor < 1 accepted")
	}
	if _, err := NewIntervals(2, []Interval{{10, 5}}); err == nil {
		t.Fatal("inverted span accepted")
	}
	if _, err := NewIntervals(2, []Interval{{0, 10}, {5, 15}}); err == nil {
		t.Fatal("overlapping spans accepted")
	}
}

func TestPeriodicSchedule(t *testing.T) {
	l, err := Periodic(2, 60*time.Second, 180*time.Second, 20*time.Second, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at 60, 240, 420 — 600 is past the horizon.
	if len(l.Spans) != 3 {
		t.Fatalf("got %d spans: %v", len(l.Spans), l.Spans)
	}
	for i, want := range []time.Duration{60 * time.Second, 240 * time.Second, 420 * time.Second} {
		if l.Spans[i].Start != want || l.Spans[i].Duration() != 20*time.Second {
			t.Fatalf("span %d = %v", i, l.Spans[i])
		}
	}
	if _, err := Periodic(2, 0, 0, 10, 100); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := Periodic(2, 0, 10, 20, 100); err == nil {
		t.Fatal("duration >= period accepted")
	}
}

func TestPaperSchedule(t *testing.T) {
	l, err := Paper(4, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Spans) == 0 {
		t.Fatal("no spans")
	}
	if l.Spans[0].Start != 480*time.Second {
		t.Fatalf("first perturbation at %v, want 480s (300s reference + 180s)", l.Spans[0].Start)
	}
	for i := 1; i < len(l.Spans); i++ {
		if l.Spans[i].Start-l.Spans[i-1].Start != 180*time.Second {
			t.Fatalf("period %v, want 180s", l.Spans[i].Start-l.Spans[i-1].Start)
		}
	}
}

func TestWorkFinishHandComputed(t *testing.T) {
	l, err := NewIntervals(2, []Interval{{10 * time.Second, 20 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	// Start at 5 s with 10 s of CPU demand: 5 s run at factor 1 until the
	// span opens, the remaining 5 s take 10 s at factor 2 → finish at 20 s.
	if got := WorkFinish(l, 5*time.Second, 10*time.Second); got != 20*time.Second {
		t.Fatalf("WorkFinish = %v, want 20s", got)
	}
	// Entirely outside any span: factor 1.
	if got := WorkFinish(l, 30*time.Second, 2*time.Second); got != 32*time.Second {
		t.Fatalf("WorkFinish = %v, want 32s", got)
	}
	// Work spanning the end of a perturbation: 2 s of demand starting at
	// 19 s runs 1 wall-second at factor 2 (0.5 s of work done), then the
	// remaining 1.5 s at factor 1 → finish at 21.5 s.
	if got := WorkFinish(l, 19*time.Second, 2*time.Second); got != 21500*time.Millisecond {
		t.Fatalf("WorkFinish = %v, want 21.5s", got)
	}
}

func TestRandomIntervalsDisjointSorted(t *testing.T) {
	l, err := RandomIntervals(2, 5, time.Second, 0, 60*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Spans) != 5 {
		t.Fatalf("got %d spans", len(l.Spans))
	}
	for i := 1; i < len(l.Spans); i++ {
		if l.Spans[i].Start < l.Spans[i-1].End {
			t.Fatalf("spans overlap: %v", l.Spans)
		}
	}
	if _, err := RandomIntervals(2, 10, time.Second, 0, 5*time.Second, 7); err == nil {
		t.Fatal("impossible packing accepted")
	}
}

func TestStackMultiplies(t *testing.T) {
	a, _ := NewIntervals(2, []Interval{{0, 10}})
	b, _ := NewIntervals(3, []Interval{{5, 15}})
	s := Stack{a, b}
	if f := s.FactorAt(7); f != 6 {
		t.Fatalf("stacked factor = %g, want 6", f)
	}
	if f := s.FactorAt(12); f != 3 {
		t.Fatalf("stacked factor = %g, want 3", f)
	}
	if n := s.NextChange(0); n != 5 {
		t.Fatalf("NextChange = %v, want 5", n)
	}
}
