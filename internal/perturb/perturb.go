// Package perturb models the CPU-contention perturbations of the paper's
// experiment (§III): every 3 minutes a heavy processing application runs
// for 20 s, stealing cycles from the single core the pipeline is pinned to.
//
// A Load is a piecewise-constant time-varying slowdown factor: factor 1
// means the pipeline runs at full speed, factor F > 1 means every unit of
// CPU work takes F times longer. Piecewise constancy lets the simulator
// integrate service times exactly across load changes.
package perturb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Horizon is the sentinel returned by NextChange when the load never
// changes again.
const Horizon = time.Duration(math.MaxInt64)

// Load is a piecewise-constant slowdown profile.
type Load interface {
	// FactorAt returns the slowdown factor (>= 1) in effect at time t.
	FactorAt(t time.Duration) float64
	// NextChange returns the earliest time strictly after t at which the
	// factor changes, or Horizon if it never does.
	NextChange(t time.Duration) time.Duration
}

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start, End time.Duration
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t time.Duration) bool { return t >= iv.Start && t < iv.End }

// Duration returns End - Start.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

func (iv Interval) String() string { return fmt.Sprintf("[%v,%v)", iv.Start, iv.End) }

// None is the identity load: no perturbation, factor 1 everywhere.
type None struct{}

// FactorAt implements Load.
func (None) FactorAt(time.Duration) float64 { return 1 }

// NextChange implements Load.
func (None) NextChange(time.Duration) time.Duration { return Horizon }

// Intervals applies a constant slowdown factor inside each of a fixed list
// of disjoint, sorted intervals and factor 1 elsewhere.
type Intervals struct {
	Factor float64
	Spans  []Interval
}

// NewIntervals validates and returns an interval load. Spans must be
// disjoint and sorted by start; Factor must be >= 1.
func NewIntervals(factor float64, spans []Interval) (*Intervals, error) {
	if factor < 1 {
		return nil, fmt.Errorf("perturb: factor %g < 1", factor)
	}
	for i, s := range spans {
		if s.End <= s.Start {
			return nil, fmt.Errorf("perturb: span %d %v is empty or inverted", i, s)
		}
		if i > 0 && s.Start < spans[i-1].End {
			return nil, fmt.Errorf("perturb: span %d %v overlaps span %d %v", i, s, i-1, spans[i-1])
		}
	}
	return &Intervals{Factor: factor, Spans: spans}, nil
}

// FactorAt implements Load.
func (l *Intervals) FactorAt(t time.Duration) float64 {
	if _, ok := l.find(t); ok {
		return l.Factor
	}
	return 1
}

// find returns the index of the span containing t.
func (l *Intervals) find(t time.Duration) (int, bool) {
	i := sort.Search(len(l.Spans), func(i int) bool { return l.Spans[i].End > t })
	if i < len(l.Spans) && l.Spans[i].Contains(t) {
		return i, true
	}
	return i, false
}

// NextChange implements Load.
func (l *Intervals) NextChange(t time.Duration) time.Duration {
	i, inside := l.find(t)
	if inside {
		return l.Spans[i].End
	}
	if i < len(l.Spans) {
		return l.Spans[i].Start
	}
	return Horizon
}

// Periodic builds the paper's schedule: perturbations of the given duration
// starting at first and repeating every period until horizon. factor is the
// slowdown while active.
func Periodic(factor float64, first, period, duration, horizon time.Duration) (*Intervals, error) {
	if period <= 0 {
		return nil, fmt.Errorf("perturb: period %v must be positive", period)
	}
	if duration <= 0 || duration >= period {
		return nil, fmt.Errorf("perturb: duration %v must be in (0, period=%v)", duration, period)
	}
	var spans []Interval
	for start := first; start < horizon; start += period {
		end := start + duration
		if end > horizon {
			end = horizon
		}
		spans = append(spans, Interval{Start: start, End: end})
	}
	return NewIntervals(factor, spans)
}

// Paper returns the exact perturbation schedule of §III: a heavy load every
// 3 minutes for 20 s, starting after the 300 s reference period, over the
// given horizon. The slowdown factor is the one free parameter (the paper
// does not quantify its hog's intensity).
func Paper(factor float64, horizon time.Duration) (*Intervals, error) {
	return Periodic(factor, 300*time.Second+180*time.Second, 180*time.Second, 20*time.Second, horizon)
}

// RandomIntervals draws n non-overlapping perturbation spans of the given
// duration uniformly over [lo, hi), for randomized robustness tests.
func RandomIntervals(factor float64, n int, duration, lo, hi time.Duration, seed int64) (*Intervals, error) {
	if hi-lo < time.Duration(n)*2*duration {
		return nil, fmt.Errorf("perturb: range %v too small for %d spans of %v", hi-lo, n, duration)
	}
	rng := rand.New(rand.NewSource(seed))
	var spans []Interval
	for len(spans) < n {
		start := lo + time.Duration(rng.Int63n(int64(hi-lo-duration)))
		cand := Interval{Start: start, End: start + duration}
		ok := true
		for _, s := range spans {
			if cand.Start < s.End+duration && s.Start < cand.End+duration {
				ok = false
				break
			}
		}
		if ok {
			spans = append(spans, cand)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return NewIntervals(factor, spans)
}

// Stack composes several loads multiplicatively; the factor at t is the
// product of the component factors. Useful to overlay background jitter on
// the paper's periodic schedule.
type Stack []Load

// FactorAt implements Load.
func (s Stack) FactorAt(t time.Duration) float64 {
	f := 1.0
	for _, l := range s {
		f *= l.FactorAt(t)
	}
	return f
}

// NextChange implements Load.
func (s Stack) NextChange(t time.Duration) time.Duration {
	next := Horizon
	for _, l := range s {
		if c := l.NextChange(t); c < next {
			next = c
		}
	}
	return next
}

// WorkFinish integrates a piecewise-constant load: starting work at t0 with
// w seconds of CPU-time demand, it returns the wall-clock completion time.
// This is the service-time primitive every simulated server uses.
func WorkFinish(l Load, t0 time.Duration, w time.Duration) time.Duration {
	t := t0
	remaining := float64(w) // CPU-nanoseconds of demand
	for remaining > 0 {
		f := l.FactorAt(t)
		if f < 1 {
			f = 1
		}
		change := l.NextChange(t)
		if change == Horizon {
			return t + time.Duration(remaining*f)
		}
		span := float64(change - t)
		capacity := span / f // CPU-ns deliverable before the change
		if capacity >= remaining {
			return t + time.Duration(remaining*f)
		}
		remaining -= capacity
		t = change
	}
	return t
}
