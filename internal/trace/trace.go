// Package trace defines the execution-trace event model shared by every
// other package in enduratrace.
//
// A trace is a sequence of timestamped, typed events, exactly as produced by
// the dedicated low-intrusion tracing hardware described in the paper
// (§I–§II): each event carries a timestamp, a small integer event type, an
// integer argument and an optional opaque payload. Event types are declared
// in a Registry so that tools can print symbolic names and so that the
// pmf dimensionality (one dimension per event type) is known up front.
package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// EventType identifies the kind of a trace event. Types are small integers
// so that a window's event-type histogram can be a dense vector.
type EventType uint16

// Event is a single timestamped trace record.
//
// TS is the time since the start of the trace (simulated time for synthetic
// workloads). Arg is an event-specific integer (frame number, queue depth,
// error code…). Payload carries opaque extra bytes; it exists chiefly so
// that encoded trace sizes are realistic, which matters because the paper's
// headline result is a byte-size reduction factor.
type Event struct {
	TS      time.Duration
	Type    EventType
	Arg     uint64
	Payload []byte
}

// String renders the event for debugging; symbolic names require a Registry.
func (e Event) String() string {
	return fmt.Sprintf("%v type=%d arg=%d payload=%dB", e.TS, e.Type, e.Arg, len(e.Payload))
}

// Reader is a stream of events. Next returns io.EOF after the last event.
// Implementations must return events in non-decreasing timestamp order.
type Reader interface {
	Next() (Event, error)
}

// BatchReader is a Reader that can also deliver events many at a time.
// ReadBatch fills dst with as many immediately available events as fit
// and returns the count; it blocks only when no event is available at
// all. The contract mirrors io.Reader: n > 0 with a nil error even if
// the stream has since ended or failed — the error surfaces on the next
// call, so a batch consumer sees exactly the events a Next loop would.
// Consumers own dst and the returned events.
type BatchReader interface {
	Reader
	ReadBatch(dst []Event) (int, error)
}

// Writer consumes a stream of events.
type Writer interface {
	Write(Event) error
}

// ErrOutOfOrder is returned by writers and validators when an event's
// timestamp precedes its predecessor's.
var ErrOutOfOrder = errors.New("trace: event timestamps out of order")

// SliceReader replays an in-memory event slice. The zero value is an empty
// trace.
type SliceReader struct {
	events []Event
	pos    int
}

// NewSliceReader returns a Reader over evs. The slice is not copied.
func NewSliceReader(evs []Event) *SliceReader {
	return &SliceReader{events: evs}
}

// Next implements Reader.
func (r *SliceReader) Next() (Event, error) {
	if r.pos >= len(r.events) {
		return Event{}, io.EOF
	}
	ev := r.events[r.pos]
	r.pos++
	return ev, nil
}

// ReadBatch implements BatchReader.
func (r *SliceReader) ReadBatch(dst []Event) (int, error) {
	if r.pos >= len(r.events) {
		return 0, io.EOF
	}
	n := copy(dst, r.events[r.pos:])
	r.pos += n
	return n, nil
}

// Reset rewinds the reader to the first event.
func (r *SliceReader) Reset() { r.pos = 0 }

// Collector is a Writer that appends every event to an in-memory slice.
type Collector struct {
	Events []Event
}

// Write implements Writer.
func (c *Collector) Write(ev Event) error {
	c.Events = append(c.Events, ev)
	return nil
}

// ReadAll drains r into a slice. It is intended for tests and small traces;
// endurance-scale traces should be streamed.
func ReadAll(r Reader) ([]Event, error) {
	var evs []Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

// Copy streams every event from r to w and reports the number of events
// copied. It stops at io.EOF or the first error from either side.
func Copy(w Writer, r Reader) (int, error) {
	n := 0
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(ev); err != nil {
			return n, err
		}
		n++
	}
}

// LimitReader returns a Reader that yields at most the events of r whose
// timestamp is strictly below limit. It is used to cut a reference prefix
// (e.g. the first 300 s) out of a longer trace, as the paper's learning step
// does.
func LimitReader(r Reader, limit time.Duration) Reader {
	return &limitReader{r: r, limit: limit}
}

type limitReader struct {
	r     Reader
	limit time.Duration
	done  bool
}

func (l *limitReader) Next() (Event, error) {
	if l.done {
		return Event{}, io.EOF
	}
	ev, err := l.r.Next()
	if err != nil {
		return Event{}, err
	}
	if ev.TS >= l.limit {
		l.done = true
		return Event{}, io.EOF
	}
	return ev, nil
}

// ValidatingReader wraps r and returns ErrOutOfOrder if timestamps regress.
type ValidatingReader struct {
	r    Reader
	last time.Duration
	seen bool
}

// NewValidatingReader returns a Reader that enforces timestamp monotonicity.
func NewValidatingReader(r Reader) *ValidatingReader {
	return &ValidatingReader{r: r}
}

// Next implements Reader.
func (v *ValidatingReader) Next() (Event, error) {
	ev, err := v.r.Next()
	if err != nil {
		return ev, err
	}
	if v.seen && ev.TS < v.last {
		return ev, fmt.Errorf("%w: %v after %v", ErrOutOfOrder, ev.TS, v.last)
	}
	v.seen = true
	v.last = ev.TS
	return ev, nil
}

// MultiReader concatenates several readers in order. Each reader is expected
// to begin at or after the previous reader's final timestamp; wrap with
// NewValidatingReader to enforce that.
func MultiReader(readers ...Reader) Reader {
	return &multiReader{readers: readers}
}

type multiReader struct {
	readers []Reader
}

func (m *multiReader) Next() (Event, error) {
	for len(m.readers) > 0 {
		ev, err := m.readers[0].Next()
		if err == io.EOF {
			m.readers = m.readers[1:]
			continue
		}
		return ev, err
	}
	return Event{}, io.EOF
}

// MergeReaders merges several timestamp-ordered readers into one ordered
// stream, the way multiple hardware trace sources (CPU, DMA, peripherals)
// are multiplexed into one trace port.
func MergeReaders(readers ...Reader) Reader {
	m := &mergeReader{}
	for _, r := range readers {
		ev, err := r.Next()
		if err == io.EOF {
			continue
		}
		m.heads = append(m.heads, mergeHead{ev: ev, err: err, r: r})
	}
	return m
}

type mergeHead struct {
	ev  Event
	err error
	r   Reader
}

type mergeReader struct {
	heads []mergeHead
}

func (m *mergeReader) Next() (Event, error) {
	if len(m.heads) == 0 {
		return Event{}, io.EOF
	}
	best := 0
	for i := 1; i < len(m.heads); i++ {
		if m.heads[i].err == nil && (m.heads[best].err != nil || m.heads[i].ev.TS < m.heads[best].ev.TS) {
			best = i
		}
	}
	h := m.heads[best]
	if h.err != nil {
		return Event{}, h.err
	}
	next, err := h.r.Next()
	if err == io.EOF {
		m.heads = append(m.heads[:best], m.heads[best+1:]...)
	} else {
		m.heads[best] = mergeHead{ev: next, err: err, r: h.r}
	}
	return h.ev, nil
}

// Registry maps event types to symbolic names. It defines the pmf
// dimensionality: NumTypes is one past the highest registered type.
type Registry struct {
	names map[EventType]string
	max   EventType
	any   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[EventType]string)}
}

// Register assigns name to t. Registering the same type twice with a
// different name is a programming error and panics.
func (reg *Registry) Register(t EventType, name string) {
	if old, ok := reg.names[t]; ok && old != name {
		panic(fmt.Sprintf("trace: event type %d registered twice (%q, %q)", t, old, name))
	}
	reg.names[t] = name
	if !reg.any || t > reg.max {
		reg.max = t
		reg.any = true
	}
}

// Name returns the symbolic name of t, or "type<N>" if unregistered.
func (reg *Registry) Name(t EventType) string {
	if n, ok := reg.names[t]; ok {
		return n
	}
	return fmt.Sprintf("type%d", t)
}

// Lookup returns the type registered under name.
func (reg *Registry) Lookup(name string) (EventType, bool) {
	for t, n := range reg.names {
		if n == name {
			return t, true
		}
	}
	return 0, false
}

// NumTypes reports the pmf dimensionality implied by the registry: one past
// the highest registered event type, or 0 for an empty registry.
func (reg *Registry) NumTypes() int {
	if !reg.any {
		return 0
	}
	return int(reg.max) + 1
}

// Types returns all registered types in ascending order.
func (reg *Registry) Types() []EventType {
	ts := make([]EventType, 0, len(reg.names))
	for t := range reg.names {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// Writer adapter so an io-style callback can consume events.
type WriterFunc func(Event) error

// Write implements Writer.
func (f WriterFunc) Write(ev Event) error { return f(ev) }
