package trace

import (
	"errors"
	"testing"
	"time"
)

func evs(tss ...time.Duration) []Event {
	out := make([]Event, len(tss))
	for i, ts := range tss {
		out[i] = Event{TS: ts, Type: EventType(i)}
	}
	return out
}

func timestamps(events []Event) []time.Duration {
	out := make([]time.Duration, len(events))
	for i, e := range events {
		out[i] = e.TS
	}
	return out
}

func TestSliceReaderAndReadAll(t *testing.T) {
	in := evs(1, 2, 3)
	r := NewSliceReader(in)
	got, err := ReadAll(r)
	if err != nil || len(got) != 3 {
		t.Fatalf("ReadAll: %v, %d events", err, len(got))
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("exhausted reader returned an event")
	}
	r.Reset()
	if ev, err := r.Next(); err != nil || ev.TS != 1 {
		t.Fatalf("Reset did not rewind: %v %v", ev, err)
	}
}

func TestCopyAndCollector(t *testing.T) {
	in := evs(1, 2, 3, 4)
	var c Collector
	n, err := Copy(&c, NewSliceReader(in))
	if err != nil || n != 4 || len(c.Events) != 4 {
		t.Fatalf("Copy: n=%d err=%v collected=%d", n, err, len(c.Events))
	}
}

func TestLimitReaderCutsStrictlyBelowLimit(t *testing.T) {
	in := evs(0, 10, 20, 30)
	got, err := ReadAll(LimitReader(NewSliceReader(in), 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].TS != 10 {
		t.Fatalf("limit 20 yielded %v", timestamps(got))
	}
}

func TestValidatingReader(t *testing.T) {
	ordered := []Event{{TS: 5}, {TS: 5}, {TS: 9}}
	if _, err := ReadAll(NewValidatingReader(NewSliceReader(ordered))); err != nil {
		t.Fatalf("equal timestamps rejected: %v", err)
	}
	regressing := []Event{{TS: 5}, {TS: 3}}
	if _, err := ReadAll(NewValidatingReader(NewSliceReader(regressing))); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestMultiReaderConcatenates(t *testing.T) {
	a := NewSliceReader(evs(1, 2))
	b := NewSliceReader(nil)
	c := NewSliceReader(evs(3))
	got, err := ReadAll(MultiReader(a, b, c))
	if err != nil || len(got) != 3 {
		t.Fatalf("MultiReader: %v, %d events", err, len(got))
	}
	want := []time.Duration{1, 2, 3}
	for i, ts := range timestamps(got) {
		if ts != want[i] {
			t.Fatalf("order %v, want %v", timestamps(got), want)
		}
	}
}

func TestMergeReadersInterleaves(t *testing.T) {
	cpu := NewSliceReader(evs(1, 4, 7))
	dma := NewSliceReader(evs(2, 5))
	irq := NewSliceReader(evs(3, 6, 8))
	got, err := ReadAll(MergeReaders(cpu, dma, irq))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("merged %d events, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("merge out of order: %v", timestamps(got))
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if reg.NumTypes() != 0 {
		t.Fatalf("empty registry NumTypes = %d", reg.NumTypes())
	}
	reg.Register(0, "vsync")
	reg.Register(5, "decode")
	if reg.NumTypes() != 6 {
		t.Fatalf("NumTypes = %d, want 6", reg.NumTypes())
	}
	if reg.Name(5) != "decode" || reg.Name(3) != "type3" {
		t.Fatalf("names wrong: %q %q", reg.Name(5), reg.Name(3))
	}
	if typ, ok := reg.Lookup("decode"); !ok || typ != 5 {
		t.Fatalf("Lookup(decode) = %d, %v", typ, ok)
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
	ts := reg.Types()
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 5 {
		t.Fatalf("Types() = %v", ts)
	}
	// Re-registering the same name is fine; a different name panics.
	reg.Register(0, "vsync")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting Register did not panic")
		}
	}()
	reg.Register(0, "other")
}

func TestWriterFunc(t *testing.T) {
	var n int
	w := WriterFunc(func(Event) error { n++; return nil })
	if _, err := Copy(w, NewSliceReader(evs(1, 2))); err != nil || n != 2 {
		t.Fatalf("WriterFunc saw %d events, err %v", n, err)
	}
}
