// Package window slices a trace stream into the elementary processing units
// of the paper's approach (§II, "Data representation"): windows of N
// consecutive events, as delivered by the tracing hardware's buffers, or
// fixed-duration time windows (the experiment in §III uses 40 ms windows).
package window

import (
	"fmt"
	"io"
	"time"

	"enduratrace/internal/trace"
)

// Window is a contiguous slice of a trace.
//
// For count windows, Start/End are the first/last event timestamps; for time
// windows they are the window boundaries (End exclusive). Index counts
// windows from 0 in stream order.
type Window struct {
	Index  int
	Start  time.Duration
	End    time.Duration
	Events []trace.Event
}

// Duration returns End - Start.
func (w Window) Duration() time.Duration { return w.End - w.Start }

// Len returns the number of events in the window.
func (w Window) Len() int { return len(w.Events) }

// Contains reports whether ts lies in [Start, End).
func (w Window) Contains(ts time.Duration) bool { return ts >= w.Start && ts < w.End }

// Windower turns an event stream into a window stream. Add consumes one
// event and reports a completed window when one closes. Flush returns the
// final partial window, if any. A Windower is single-use.
type Windower interface {
	Add(trace.Event) (Window, bool)
	Flush() (Window, bool)
}

// ByCount groups every n consecutive events into a window, mirroring
// hardware trace buffers of n entries.
type ByCount struct {
	n     int
	buf   []trace.Event
	index int
}

// NewByCount returns a count windower; n must be positive.
func NewByCount(n int) *ByCount {
	if n <= 0 {
		panic(fmt.Sprintf("window: ByCount size must be positive, got %d", n))
	}
	return &ByCount{n: n, buf: make([]trace.Event, 0, n)}
}

// Add implements Windower.
func (c *ByCount) Add(ev trace.Event) (Window, bool) {
	c.buf = append(c.buf, ev)
	if len(c.buf) < c.n {
		return Window{}, false
	}
	return c.emit(), true
}

// Flush implements Windower.
func (c *ByCount) Flush() (Window, bool) {
	if len(c.buf) == 0 {
		return Window{}, false
	}
	return c.emit(), true
}

func (c *ByCount) emit() Window {
	events := make([]trace.Event, len(c.buf))
	copy(events, c.buf)
	w := Window{
		Index:  c.index,
		Start:  events[0].TS,
		End:    events[len(events)-1].TS,
		Events: events,
	}
	c.index++
	c.buf = c.buf[:0]
	return w
}

// ByTime groups events into fixed-duration windows aligned to multiples of
// the window length. Empty windows ARE emitted for gaps in the stream:
// during a decoder stall the event rate collapses, and those near-empty
// windows are precisely the behaviour change the monitor must see.
type ByTime struct {
	d       time.Duration
	buf     []trace.Event
	index   int
	cur     time.Duration // start of the current window
	started bool
	pending []Window
}

// NewByTime returns a time windower; d must be positive.
func NewByTime(d time.Duration) *ByTime {
	if d <= 0 {
		panic(fmt.Sprintf("window: ByTime duration must be positive, got %v", d))
	}
	return &ByTime{d: d}
}

// Add implements Windower. When an event jumps several window lengths
// ahead, the intervening empty windows are queued and returned one per
// subsequent Add/Drain call; callers should use Drain after each Add to
// collect all completed windows.
func (t *ByTime) Add(ev trace.Event) (Window, bool) {
	if !t.started {
		t.started = true
		t.cur = ev.TS - ev.TS%t.d
	}
	for ev.TS >= t.cur+t.d {
		t.pending = append(t.pending, t.emit())
	}
	t.buf = append(t.buf, ev)
	return t.pop()
}

// Drain returns the next queued completed window, if any. Call repeatedly
// after Add until ok is false.
func (t *ByTime) Drain() (Window, bool) { return t.pop() }

// Flush implements Windower: it closes the current window if it holds any
// events. Queued windows must be collected with Drain first.
func (t *ByTime) Flush() (Window, bool) {
	if w, ok := t.pop(); ok {
		return w, ok
	}
	if !t.started || len(t.buf) == 0 {
		return Window{}, false
	}
	return t.emit(), true
}

func (t *ByTime) pop() (Window, bool) {
	if len(t.pending) == 0 {
		return Window{}, false
	}
	w := t.pending[0]
	t.pending = t.pending[1:]
	return w, true
}

func (t *ByTime) emit() Window {
	events := make([]trace.Event, len(t.buf))
	copy(events, t.buf)
	w := Window{
		Index:  t.index,
		Start:  t.cur,
		End:    t.cur + t.d,
		Events: events,
	}
	t.index++
	t.buf = t.buf[:0]
	t.cur += t.d
	return w
}

// Stream applies a windower to a reader and invokes fn for every completed
// window including the final flush. fn returning an error aborts the stream.
func Stream(r trace.Reader, w Windower, fn func(Window) error) error {
	byTime, _ := w.(*ByTime)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if win, ok := w.Add(ev); ok {
			if err := fn(win); err != nil {
				return err
			}
		}
		if byTime != nil {
			for {
				win, ok := byTime.Drain()
				if !ok {
					break
				}
				if err := fn(win); err != nil {
					return err
				}
			}
		}
	}
	for {
		win, ok := w.Flush()
		if !ok {
			break
		}
		if err := fn(win); err != nil {
			return err
		}
	}
	return nil
}

// Collect gathers every window produced from r into a slice. Intended for
// tests and small traces.
func Collect(r trace.Reader, w Windower) ([]Window, error) {
	var out []Window
	err := Stream(r, w, func(win Window) error {
		out = append(out, win)
		return nil
	})
	return out, err
}
