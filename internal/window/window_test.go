package window

import (
	"testing"
	"time"

	"enduratrace/internal/trace"
)

func ev(ts time.Duration) trace.Event { return trace.Event{TS: ts, Type: 1} }

func TestByCountSizing(t *testing.T) {
	w := NewByCount(3)
	var out []Window
	for i := 0; i < 7; i++ {
		if win, ok := w.Add(ev(time.Duration(i) * time.Millisecond)); ok {
			out = append(out, win)
		}
	}
	if win, ok := w.Flush(); ok {
		out = append(out, win)
	}
	if len(out) != 3 {
		t.Fatalf("got %d windows, want 3", len(out))
	}
	wantLens := []int{3, 3, 1}
	for i, win := range out {
		if win.Index != i {
			t.Fatalf("window %d has index %d", i, win.Index)
		}
		if win.Len() != wantLens[i] {
			t.Fatalf("window %d has %d events, want %d", i, win.Len(), wantLens[i])
		}
		if win.Start != win.Events[0].TS || win.End != win.Events[len(win.Events)-1].TS {
			t.Fatalf("window %d bounds %v..%v don't match events", i, win.Start, win.End)
		}
	}
	if _, ok := w.Flush(); ok {
		t.Fatal("second Flush produced a window")
	}
}

func TestByTimeBoundaries(t *testing.T) {
	// 10 ms windows; an event exactly on a boundary belongs to the next
	// window (End is exclusive).
	w := NewByTime(10 * time.Millisecond)
	if _, ok := w.Add(ev(0)); ok {
		t.Fatal("window closed too early")
	}
	if _, ok := w.Add(ev(5 * time.Millisecond)); ok {
		t.Fatal("window closed too early")
	}
	win, ok := w.Add(ev(10 * time.Millisecond))
	if !ok {
		t.Fatal("boundary event did not close the window")
	}
	if win.Start != 0 || win.End != 10*time.Millisecond || win.Len() != 2 {
		t.Fatalf("bad first window: %+v", win)
	}
	for _, e := range win.Events {
		if !win.Contains(e.TS) {
			t.Fatalf("event %v outside window [%v,%v)", e.TS, win.Start, win.End)
		}
	}
	win, ok = w.Flush()
	if !ok || win.Start != 10*time.Millisecond || win.Len() != 1 {
		t.Fatalf("bad flush window: %+v ok=%v", win, ok)
	}
}

func TestByTimeEmitsEmptyGapWindows(t *testing.T) {
	// Events at 0 and 35 ms with 10 ms windows: the stream crosses windows
	// [0,10) [10,20) [20,30), of which the last two are empty. Empty
	// windows must be emitted — a stalled pipeline looks exactly like this.
	w := NewByTime(10 * time.Millisecond)
	var out []Window
	collect := func(win Window, ok bool) {
		if ok {
			out = append(out, win)
		}
	}
	collect(w.Add(ev(0)))
	collect(w.Add(ev(35 * time.Millisecond)))
	for {
		win, ok := w.Drain()
		if !ok {
			break
		}
		out = append(out, win)
	}
	collect(w.Flush())
	if len(out) != 4 {
		t.Fatalf("got %d windows, want 4 (including empties)", len(out))
	}
	wantLens := []int{1, 0, 0, 1}
	for i, win := range out {
		if win.Index != i {
			t.Fatalf("window %d has index %d", i, win.Index)
		}
		if win.Len() != wantLens[i] {
			t.Fatalf("window %d has %d events, want %d", i, win.Len(), wantLens[i])
		}
		if win.Start != time.Duration(i)*10*time.Millisecond || win.Duration() != 10*time.Millisecond {
			t.Fatalf("window %d spans [%v,%v)", i, win.Start, win.End)
		}
	}
}

func TestByTimeAlignsToMultiples(t *testing.T) {
	// First event at 25 ms with 10 ms windows: windows align to multiples
	// of the window length, so the first window is [20,30).
	w := NewByTime(10 * time.Millisecond)
	w.Add(ev(25 * time.Millisecond))
	win, ok := w.Flush()
	if !ok || win.Start != 20*time.Millisecond || win.End != 30*time.Millisecond {
		t.Fatalf("first window [%v,%v), want [20ms,30ms)", win.Start, win.End)
	}
}

func TestStreamAndCollect(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, ev(time.Duration(i)*3*time.Millisecond))
	}
	ws, err := Collect(trace.NewSliceReader(evs), NewByTime(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, win := range ws {
		if win.Index != i {
			t.Fatalf("window %d has index %d", i, win.Index)
		}
		for _, e := range win.Events {
			if !win.Contains(e.TS) {
				t.Fatalf("event %v outside its window", e.TS)
			}
		}
		total += win.Len()
	}
	if total != len(evs) {
		t.Fatalf("windows hold %d events, want %d", total, len(evs))
	}
	// 100 events at 3 ms cover [0, 297]; 10 ms windows → 30 windows.
	if len(ws) != 30 {
		t.Fatalf("got %d windows, want 30", len(ws))
	}
}

func TestNewByCountPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for ByCount(0)")
		}
	}()
	NewByCount(0)
}
