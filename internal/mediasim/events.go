// Package mediasim simulates a GStreamer-style multimedia decoding pipeline
// and emits the execution trace the paper's monitor consumes.
//
// The paper's testbed (§III) is the real GStreamer framework decoding a
// 6 h 17 m video on one core of a laptop, traced by dedicated hardware, with
// a CPU-hog "perturbation" started every 3 minutes. That testbed is not
// available offline, so this package substitutes a discrete-event simulation
// of the same structure:
//
//	source → demuxer → video decoder → frame queue → display sink
//	                 → audio decoder → audio sink
//
// plus the OS background (vsync, timer ticks, scheduler switches, IRQs,
// allocator activity) that dominates real trace event counts. The decoder is
// a single server whose service times scale with a CPU-contention load
// factor; the frame queue between decoder and sink reproduces GStreamer's
// buffering, which *delays* the visible impact of a perturbation (the Δs and
// Δe of §III). QoS underflow and error-message events play the role of the
// GStreamer error log used for ground-truth labelling.
package mediasim

import (
	"enduratrace/internal/trace"
)

// Event types emitted by the simulated pipeline. The order groups the types
// roughly by rate; the pmf dimensionality is NumEventTypes.
const (
	EvVsync          trace.EventType = iota // display refresh tick
	EvTimerTick                             // periodic OS timer
	EvSchedSwitch                           // scheduler context switch
	EvIRQ                                   // interrupt entry
	EvMemAlloc                              // allocator activity
	EvIORead                                // source reads from storage
	EvQueueLevel                            // periodic frame-queue depth sample (Arg = depth)
	EvBufferLow                             // queue below low watermark at sample time
	EvDemuxPacket                           // container packet parsed
	EvFrameIn                               // encoded video frame enters decoder (Arg = frame #)
	EvDecodeStart                           // video decode begins (Arg = frame #)
	EvDecodeEnd                             // video decode ends (Arg = frame #)
	EvFrameQueued                           // decoded frame pushed to queue (Arg = depth)
	EvFrameRender                           // sink displays a frame on time (Arg = frame #)
	EvFrameDrop                             // decoder skips a late non-reference frame (QoS)
	EvFrameDropLate                         // sink discards a stale frame
	EvFrameSkipped                          // display slot missed because its frame was dropped upstream
	EvQoSUnderflow                          // display deadline missed with an empty queue
	EvQoSRecovered                          // first successful render after misses
	EvErrorMsg                              // pipeline error message (the GStreamer error log)
	EvAudioIn                               // encoded audio buffer arrives
	EvAudioDecode                           // audio decode completes
	EvAudioOut                              // audio buffer hits the audio sink
	EvAudioUnderflow                        // audio sink starved
	EvOther                                 // fold-over bucket for unknown types

	// NumEventTypes is the pmf dimensionality of simulated traces.
	NumEventTypes = int(EvOther) + 1
)

var eventNames = map[trace.EventType]string{
	EvVsync:          "vsync",
	EvTimerTick:      "timer_tick",
	EvSchedSwitch:    "sched_switch",
	EvIRQ:            "irq",
	EvMemAlloc:       "mem_alloc",
	EvIORead:         "io_read",
	EvQueueLevel:     "queue_level",
	EvBufferLow:      "buffer_low",
	EvDemuxPacket:    "demux_packet",
	EvFrameIn:        "frame_in",
	EvDecodeStart:    "decode_start",
	EvDecodeEnd:      "decode_end",
	EvFrameQueued:    "frame_queued",
	EvFrameRender:    "frame_render",
	EvFrameDrop:      "frame_drop",
	EvFrameDropLate:  "frame_drop_late",
	EvFrameSkipped:   "frame_skipped",
	EvQoSUnderflow:   "qos_underflow",
	EvQoSRecovered:   "qos_recovered",
	EvErrorMsg:       "error_msg",
	EvAudioIn:        "audio_in",
	EvAudioDecode:    "audio_decode",
	EvAudioOut:       "audio_out",
	EvAudioUnderflow: "audio_underflow",
	EvOther:          "other",
}

// Registry returns a trace.Registry naming every simulated event type.
func Registry() *trace.Registry {
	reg := trace.NewRegistry()
	for t, n := range eventNames {
		reg.Register(t, n)
	}
	return reg
}

// IsErrorEvent reports whether t signals a playback error, i.e. whether the
// real GStreamer would have written an error message for it. The evaluation
// harness uses this as the paper's "GStreamer reports an error" criterion.
func IsErrorEvent(t trace.EventType) bool {
	switch t {
	case EvQoSUnderflow, EvErrorMsg, EvAudioUnderflow:
		return true
	}
	return false
}
