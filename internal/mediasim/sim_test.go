package mediasim

import (
	"testing"
	"time"

	"enduratrace/internal/perturb"
	"enduratrace/internal/trace"
)

func shortConfig(d time.Duration) Config {
	cfg := DefaultConfig()
	cfg.Duration = d
	return cfg
}

func TestRegistryCoversAllTypes(t *testing.T) {
	reg := Registry()
	if reg.NumTypes() != NumEventTypes {
		t.Fatalf("registry NumTypes %d != NumEventTypes %d", reg.NumTypes(), NumEventTypes)
	}
	for _, typ := range reg.Types() {
		if reg.Name(typ) == "" {
			t.Fatalf("type %d unnamed", typ)
		}
	}
	if len(reg.Types()) != NumEventTypes {
		t.Fatalf("registry names %d types, want %d", len(reg.Types()), NumEventTypes)
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	a, err := Events(shortConfig(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Events(shortConfig(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TS != b[i].TS || a[i].Type != b[i].Type || a[i].Arg != b[i].Arg ||
			len(a[i].Payload) != len(b[i].Payload) {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	cfg := shortConfig(5 * time.Second)
	cfg.Seed = 99
	c, err := Events(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i].TS != a[i].TS || c[i].Type != a[i].Type {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestTimestampsMonotoneAndWithinHorizon(t *testing.T) {
	cfg := shortConfig(5 * time.Second)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(trace.NewValidatingReader(sim))
	if err != nil {
		t.Fatalf("timestamp order violated: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	for _, ev := range evs {
		if ev.TS < 0 || ev.TS >= cfg.Duration {
			t.Fatalf("event at %v outside [0,%v)", ev.TS, cfg.Duration)
		}
		if int(ev.Type) >= NumEventTypes {
			t.Fatalf("event type %d out of range", ev.Type)
		}
	}
	// ~1 kHz aggregate rate: a 5 s trace should hold a few thousand events.
	if len(evs) < 2000 || len(evs) > 20000 {
		t.Fatalf("implausible event count %d for 5s", len(evs))
	}
}

func TestCleanRunHasNoQoSErrors(t *testing.T) {
	evs, err := Events(shortConfig(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	renders := 0
	for _, ev := range evs {
		if IsErrorEvent(ev.Type) {
			t.Fatalf("clean run emitted error event %v at %v", ev.Type, ev.TS)
		}
		if ev.Type == EvFrameRender {
			renders++
		}
	}
	// 25 fps over 30 s minus startup: essentially every deadline met.
	if renders < 700 {
		t.Fatalf("only %d renders in a clean 30s run", renders)
	}
}

func TestPerturbationCausesQoSErrorsAndRecovery(t *testing.T) {
	cfg := shortConfig(60 * time.Second)
	load, err := perturb.NewIntervals(3, []perturb.Interval{
		{Start: 20 * time.Second, End: 35 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Load = load
	evs, err := Events(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var errsBefore, errsDuring, errsAfter, recoveries int
	for _, ev := range evs {
		switch {
		case IsErrorEvent(ev.Type):
			switch {
			case ev.TS < 20*time.Second:
				errsBefore++
			case ev.TS < 36*time.Second: // one second of grace for drain
				errsDuring++
			default:
				errsAfter++
			}
		case ev.Type == EvQoSRecovered:
			recoveries++
		}
	}
	if errsBefore != 0 {
		t.Fatalf("%d QoS errors before the perturbation", errsBefore)
	}
	if errsDuring == 0 {
		t.Fatal("perturbation caused no QoS errors")
	}
	if recoveries == 0 {
		t.Fatal("pipeline never recovered")
	}
	// The pipeline must settle again: the tail of the run stays clean
	// (allow a few stragglers right after the perturbation ends).
	var lateErrs int
	for _, ev := range evs {
		if IsErrorEvent(ev.Type) && ev.TS > 45*time.Second {
			lateErrs++
		}
	}
	if lateErrs != 0 {
		t.Fatalf("%d QoS errors long after the perturbation ended", lateErrs)
	}
}

func TestQueueLevelsStayInBounds(t *testing.T) {
	cfg := shortConfig(20 * time.Second)
	evs, err := Events(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.Type == EvQueueLevel || ev.Type == EvFrameQueued {
			if ev.Arg > uint64(cfg.QueueCap) {
				t.Fatalf("queue depth %d exceeds cap %d", ev.Arg, cfg.QueueCap)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Load = nil },
		func(c *Config) { c.FramePeriod = 0 },
		func(c *Config) { c.DecodeMean = 0 },
		func(c *Config) { c.QueueCap = 0 },
		func(c *Config) { c.StartupFrames = c.QueueCap + 1 },
		func(c *Config) { c.KeyframeCost = 0.5 },
	}
	for i, mutate := range bad {
		cfg := shortConfig(time.Second)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
