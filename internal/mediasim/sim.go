package mediasim

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"enduratrace/internal/perturb"
	"enduratrace/internal/trace"
)

// Config tunes the simulated pipeline. DefaultConfig supplies values whose
// aggregate event rate (~1 kHz) and per-frame decode cost reproduce the
// qualitative behaviour of the paper's testbed at a size that simulates in
// well under real time.
type Config struct {
	// Duration is the simulated horizon; events have timestamps in
	// [0, Duration).
	Duration time.Duration
	// Load is the CPU-contention profile every simulated server integrates
	// its service times against (perturb.None for a clean reference run).
	Load perturb.Load
	// Seed makes the simulation deterministic: equal configs and seeds
	// produce byte-identical traces.
	Seed int64

	// FramePeriod is the display cadence (40 ms → 25 fps, as in §III).
	FramePeriod time.Duration
	// DecodeMean is the mean CPU demand of decoding one frame at load
	// factor 1. Utilisation is roughly DecodeMean/FramePeriod.
	DecodeMean time.Duration
	// DecodeJitter is the lognormal sigma of per-frame demand.
	DecodeJitter float64
	// KeyframeEvery makes every Nth frame cost KeyframeCost times the mean
	// (I-frames are more expensive than P/B-frames). 0 disables.
	KeyframeEvery int
	KeyframeCost  float64
	// DropLateAfter abandons a non-keyframe whose projected decode finish
	// lies more than DropLateAfter frame periods in the future (the
	// decoder's own QoS mechanism). 0 disables dropping.
	DropLateAfter int
	// QueueCap bounds the decoded-frame queue between decoder and sink; a
	// full queue blocks the decoder, exactly like a GStreamer queue element.
	QueueCap int
	// StartupFrames is the prebuffer depth before playback starts.
	StartupFrames int

	// IOReadEvery emits one io_read per N frames (container reads are
	// batched). PacketPayload/FramePayload size the demux and frame events
	// so encoded trace bytes are realistic.
	IOReadEvery   int
	PacketPayload int
	FramePayload  int

	// AudioPeriod is the audio buffer cadence; AudioDecodeMean the CPU
	// demand per buffer (an underflow is emitted when decode misses the
	// next buffer deadline). AudioPayload sizes audio_in events.
	AudioPeriod     time.Duration
	AudioDecodeMean time.Duration
	AudioPayload    int

	// OS background processes. VsyncPeriod/TimerPeriod are strictly
	// periodic; SchedHz, IRQHz, AllocHz and OtherHz are Poisson rates.
	// The scheduler rate is additionally scaled by the load factor: CPU
	// contention means more context switches.
	VsyncPeriod time.Duration
	TimerPeriod time.Duration
	SchedHz     float64
	IRQHz       float64
	AllocHz     float64
	OtherHz     float64

	// QueueSampleEvery emits periodic queue_level samples; a sample below
	// LowWatermark also emits buffer_low.
	QueueSampleEvery time.Duration
	LowWatermark     int

	// ErrorEvery emits one error_msg per N consecutive missed display
	// deadlines — the simulated GStreamer error log.
	ErrorEvery int
}

// DefaultConfig returns the simulation used by the evaluation harness: a
// 25 fps pipeline at ~72% CPU utilisation with an aggregate trace rate of
// about one thousand events per second.
func DefaultConfig() Config {
	return Config{
		Duration:         10 * time.Minute,
		Load:             perturb.None{},
		Seed:             1,
		FramePeriod:      40 * time.Millisecond,
		DecodeMean:       28 * time.Millisecond,
		DecodeJitter:     0.12,
		KeyframeEvery:    12,
		KeyframeCost:     1.6,
		DropLateAfter:    3,
		QueueCap:         8,
		StartupFrames:    4,
		IOReadEvery:      4,
		PacketPayload:    96,
		FramePayload:     160,
		AudioPeriod:      21333 * time.Microsecond,
		AudioDecodeMean:  8 * time.Millisecond,
		AudioPayload:     24,
		VsyncPeriod:      time.Second / 60,
		TimerPeriod:      4 * time.Millisecond,
		SchedHz:          180,
		IRQHz:            90,
		AllocHz:          150,
		OtherHz:          2,
		QueueSampleEvery: 50 * time.Millisecond,
		LowWatermark:     2,
		ErrorEvery:       25,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("mediasim: Duration %v must be positive", c.Duration)
	case c.Load == nil:
		return fmt.Errorf("mediasim: nil Load (use perturb.None{})")
	case c.FramePeriod <= 0:
		return fmt.Errorf("mediasim: FramePeriod %v must be positive", c.FramePeriod)
	case c.DecodeMean <= 0:
		return fmt.Errorf("mediasim: DecodeMean %v must be positive", c.DecodeMean)
	case c.DecodeJitter < 0:
		return fmt.Errorf("mediasim: DecodeJitter %g must be >= 0", c.DecodeJitter)
	case c.QueueCap <= 0:
		return fmt.Errorf("mediasim: QueueCap %d must be positive", c.QueueCap)
	case c.StartupFrames < 0 || c.StartupFrames > c.QueueCap:
		return fmt.Errorf("mediasim: StartupFrames %d outside [0, QueueCap=%d]", c.StartupFrames, c.QueueCap)
	case c.AudioPeriod <= 0:
		return fmt.Errorf("mediasim: AudioPeriod %v must be positive", c.AudioPeriod)
	case c.VsyncPeriod <= 0 || c.TimerPeriod <= 0 || c.QueueSampleEvery <= 0:
		return fmt.Errorf("mediasim: periodic background periods must be positive")
	case c.KeyframeEvery > 0 && c.KeyframeCost < 1:
		return fmt.Errorf("mediasim: KeyframeCost %g must be >= 1", c.KeyframeCost)
	}
	return nil
}

// action is one calendar entry: fn runs at time t. seq breaks ties so that
// simultaneous actions execute in scheduling order, which keeps the
// simulation deterministic.
type action struct {
	t   time.Duration
	seq int
	fn  func()
}

type calendar []*action

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].t != c[j].t {
		return c[i].t < c[j].t
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x any)   { *c = append(*c, x.(*action)) }
func (c *calendar) Pop() (x any) {
	old := *c
	n := len(old)
	x = old[n-1]
	*c = old[:n-1]
	return x
}

// Sim is the discrete-event pipeline simulator. It implements trace.Reader:
// events are generated lazily as Next is called, so arbitrarily long runs
// stream in constant memory. A Sim is single-use and not safe for
// concurrent use.
type Sim struct {
	cfg Config
	rng *rand.Rand
	cal calendar
	seq int
	now time.Duration
	out []trace.Event
	pos int
	err error

	queue    int    // decoded frames buffered between decoder and sink
	blocked  bool   // decoder waiting for queue space
	started  bool   // prebuffer complete, playback running
	frameIn  uint64 // next frame number entering the decoder
	frameOut uint64 // next frame number leaving the sink
	misses   int    // consecutive missed display deadlines
	drops    int    // decoder-dropped frames not yet seen by the sink
	audioSeq uint64
}

// New validates cfg and returns a ready simulator.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	heap.Init(&s.cal)
	s.at(0, s.vsync)
	s.at(500*time.Microsecond, s.timer)
	s.at(time.Millisecond, s.decodeNext)
	s.at(cfg.FramePeriod, s.render)
	s.at(cfg.AudioPeriod, s.audio)
	s.at(cfg.QueueSampleEvery, s.sampleQueue)
	s.poissonStart(EvSchedSwitch, cfg.SchedHz, true)
	s.poissonStart(EvIRQ, cfg.IRQHz, false)
	s.poissonStart(EvMemAlloc, cfg.AllocHz, false)
	s.poissonStart(EvOther, cfg.OtherHz, false)
	return s, nil
}

// Next implements trace.Reader. Events come out in non-decreasing timestamp
// order; the stream ends with io.EOF at the horizon.
func (s *Sim) Next() (trace.Event, error) {
	for s.pos >= len(s.out) {
		if s.err != nil {
			return trace.Event{}, s.err
		}
		if len(s.cal) == 0 {
			s.err = io.EOF
			return trace.Event{}, io.EOF
		}
		a := heap.Pop(&s.cal).(*action)
		if a.t >= s.cfg.Duration {
			continue // beyond the horizon: the chain dies here
		}
		s.out = s.out[:0]
		s.pos = 0
		s.now = a.t
		a.fn()
	}
	ev := s.out[s.pos]
	s.pos++
	return ev, nil
}

// Events runs the whole simulation into a slice; intended for tests and
// short traces.
func Events(cfg Config) ([]trace.Event, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(s)
}

func (s *Sim) at(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.cal, &action{t: t, seq: s.seq, fn: fn})
}

func (s *Sim) emit(t trace.EventType, arg uint64, payload int) {
	var p []byte
	if payload > 0 {
		p = make([]byte, payload)
		s.rng.Read(p)
	}
	s.out = append(s.out, trace.Event{TS: s.now, Type: t, Arg: arg, Payload: p})
}

func (s *Sim) load() float64 { return s.cfg.Load.FactorAt(s.now) }

// --- OS background -------------------------------------------------------

func (s *Sim) vsync() {
	s.emit(EvVsync, 0, 0)
	s.at(s.now+s.cfg.VsyncPeriod, s.vsync)
}

func (s *Sim) timer() {
	s.emit(EvTimerTick, 0, 0)
	s.at(s.now+s.cfg.TimerPeriod, s.timer)
}

// poissonStart launches a Poisson event source. When scaled, the rate is
// multiplied by the current load factor: a CPU hog means more context
// switches on the contended core.
func (s *Sim) poissonStart(t trace.EventType, hz float64, scaled bool) {
	if hz <= 0 {
		return
	}
	var tick func()
	tick = func() {
		s.emit(t, uint64(s.rng.Intn(64)), 0)
		rate := hz
		if scaled {
			rate *= s.load()
		}
		s.at(s.now+s.expInterval(rate), tick)
	}
	s.at(s.expInterval(hz), tick)
}

func (s *Sim) expInterval(hz float64) time.Duration {
	return time.Duration(s.rng.ExpFloat64() / hz * float64(time.Second))
}

// --- video path ----------------------------------------------------------

func (s *Sim) isKeyframe(frame uint64) bool {
	return s.cfg.KeyframeEvery > 0 && frame%uint64(s.cfg.KeyframeEvery) == 0
}

func (s *Sim) demand(frame uint64) time.Duration {
	m := float64(s.cfg.DecodeMean)
	if s.isKeyframe(frame) {
		m *= s.cfg.KeyframeCost
	}
	return time.Duration(m * math.Exp(s.rng.NormFloat64()*s.cfg.DecodeJitter))
}

// decodeNext pulls the next frame through source → demux → decoder. The
// source never starves (the file is local), so the decoder is the single
// server whose service time the load profile stretches.
func (s *Sim) decodeNext() {
	if s.queue >= s.cfg.QueueCap {
		s.blocked = true
		return
	}
	frame := s.frameIn
	s.frameIn++
	if s.cfg.IOReadEvery > 0 && frame%uint64(s.cfg.IOReadEvery) == 0 {
		s.emit(EvIORead, frame, 0)
	}
	s.emit(EvDemuxPacket, frame, s.cfg.PacketPayload)
	s.emit(EvFrameIn, frame, s.cfg.FramePayload)
	s.emit(EvDecodeStart, frame, 0)

	w := s.demand(frame)
	finish := perturb.WorkFinish(s.cfg.Load, s.now, w)
	dropped := false
	if s.cfg.DropLateAfter > 0 && !s.isKeyframe(frame) &&
		finish-s.now > time.Duration(s.cfg.DropLateAfter)*s.cfg.FramePeriod {
		// Decoder QoS: a hopelessly late non-reference frame is abandoned
		// after a third of its work rather than decoded in full.
		dropped = true
		finish = perturb.WorkFinish(s.cfg.Load, s.now, w/3)
	}
	s.at(finish, func() { s.decodeDone(frame, dropped) })
}

func (s *Sim) decodeDone(frame uint64, dropped bool) {
	s.emit(EvDecodeEnd, frame, 0)
	if dropped {
		s.emit(EvFrameDrop, frame, 0)
		s.drops++
	} else {
		s.queue++
		s.emit(EvFrameQueued, uint64(s.queue), 0)
	}
	s.decodeNext()
}

// wake restarts a decoder that blocked on a full queue.
func (s *Sim) wake() {
	if s.blocked && s.queue < s.cfg.QueueCap {
		s.blocked = false
		s.decodeNext()
	}
}

// render is the display sink's deadline tick, once per FramePeriod.
func (s *Sim) render() {
	s.at(s.now+s.cfg.FramePeriod, s.render)
	if !s.started {
		if s.queue < s.cfg.StartupFrames {
			return
		}
		s.started = true
	}
	if s.queue == 0 {
		s.misses++
		if s.drops > 0 {
			// The frame for this slot was dropped upstream by the decoder.
			s.drops--
			s.emit(EvFrameSkipped, s.frameOut, 0)
			s.frameOut++
		} else {
			s.emit(EvQoSUnderflow, uint64(s.misses), 0)
		}
		if s.cfg.ErrorEvery > 0 && s.misses%s.cfg.ErrorEvery == 0 {
			s.emit(EvErrorMsg, uint64(s.misses), 0)
		}
		return
	}
	if s.misses >= 4 {
		// The queue refilled after a long stall: its head frame is stale
		// and the sink discards it before resuming playback.
		s.queue--
		s.emit(EvFrameDropLate, s.frameOut, 0)
		s.frameOut++
		s.wake()
		if s.queue == 0 {
			s.misses++
			s.emit(EvQoSUnderflow, uint64(s.misses), 0)
			return
		}
	}
	s.queue--
	s.emit(EvFrameRender, s.frameOut, 0)
	s.frameOut++
	if s.misses > 0 {
		s.emit(EvQoSRecovered, uint64(s.misses), 0)
		s.misses = 0
	}
	s.wake()
}

// --- audio path ----------------------------------------------------------

// audio models the lighter audio chain: one buffer per AudioPeriod, decoded
// by a server that shares the contended CPU. Missing the next buffer
// deadline starves the audio sink.
func (s *Sim) audio() {
	s.at(s.now+s.cfg.AudioPeriod, s.audio)
	n := s.audioSeq
	s.audioSeq++
	s.emit(EvAudioIn, n, s.cfg.AudioPayload)
	w := time.Duration(float64(s.cfg.AudioDecodeMean) * math.Exp(s.rng.NormFloat64()*s.cfg.DecodeJitter))
	finish := perturb.WorkFinish(s.cfg.Load, s.now, w)
	deadline := s.now + s.cfg.AudioPeriod
	if finish > deadline {
		s.at(deadline, func() { s.emit(EvAudioUnderflow, n, 0) })
	}
	s.at(finish, func() {
		s.emit(EvAudioDecode, n, 0)
		s.emit(EvAudioOut, n, 0)
	})
}

// --- housekeeping --------------------------------------------------------

func (s *Sim) sampleQueue() {
	s.at(s.now+s.cfg.QueueSampleEvery, s.sampleQueue)
	s.emit(EvQueueLevel, uint64(s.queue), 0)
	if s.queue < s.cfg.LowWatermark {
		s.emit(EvBufferLow, uint64(s.queue), 0)
	}
}
