package obs

import "runtime"

// RuntimeStats is the handful of Go runtime gauges worth exporting from a
// serving daemon: enough to spot a goroutine leak, heap growth, or GC
// pressure from a dashboard without attaching pprof.
type RuntimeStats struct {
	Goroutines     int
	HeapAllocBytes uint64
	HeapSysBytes   uint64
	GCPauseTotalNs uint64
	GCCycles       uint32
}

// ReadRuntime collects the runtime gauges. runtime.ReadMemStats briefly
// stops the world, so this belongs on the scrape path, never the hot path.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCPauseTotalNs: ms.PauseTotalNs,
		GCCycles:       ms.NumGC,
	}
}
