package obs

import (
	"sync"
	"time"
)

// Record is one sampled event's flight through the serve pipeline: where
// time went (per-stage durations) and what the monitor decided about the
// window the event landed in. Non-finite scores are omitted rather than
// breaking JSON encoding (GateDist is +Inf on a stream's first window,
// LOF is NaN when the gate did not trip).
type Record struct {
	Stream string `json:"stream"`
	Model  string `json:"model"`
	// Seq is the event's 1-based ordinal within its stream.
	Seq uint64 `json:"seq"`
	// Wall is the event's wall-clock arrival time (decode complete).
	Wall time.Time `json:"wall"`
	// Per-stage durations in nanoseconds. E2E spans arrival (enqueue) to
	// the decision on the window the event closed; it includes QueueNs and
	// ScoreNs but not DecodeNs, which precedes arrival.
	DecodeNs int64 `json:"decode_ns"`
	QueueNs  int64 `json:"queue_ns"`
	ScoreNs  int64 `json:"score_ns"`
	E2ENs    int64 `json:"e2e_ns"`
	// Window is the index of the window whose decision completed the span.
	Window      int      `json:"window"`
	GateDist    *float64 `json:"gate_dist,omitempty"`
	GateTripped bool     `json:"gate_tripped"`
	Anomalous   bool     `json:"anomalous"`
	LOF         *float64 `json:"lof,omitempty"`
}

// Flight is the event flight recorder: a bounded ring of Records fed by
// sampling every Nth event of every stream. Appends take a mutex, but at a
// sampling interval of hundreds of events the lock is touched ~kHz at
// worst — invisible next to the per-event path, which only does a modulo.
type Flight struct {
	every uint64

	mu      sync.Mutex
	ring    []Record
	next    int
	full    bool
	sampled uint64 // records ever added
	skipped uint64 // sampled events whose span never completed (overwritten in flight)
}

// NewFlight builds a recorder sampling every Nth event per stream into a
// ring of the given capacity. every and capacity must be positive.
func NewFlight(every, capacity int) *Flight {
	if every <= 0 || capacity <= 0 {
		return nil
	}
	return &Flight{every: uint64(every), ring: make([]Record, capacity)}
}

// EveryN returns the sampling interval.
func (f *Flight) EveryN() uint64 { return f.every }

// Add appends one completed record, evicting the oldest when full.
func (f *Flight) Add(r Record) {
	f.mu.Lock()
	f.ring[f.next] = r
	f.next++
	if f.next == len(f.ring) {
		f.next, f.full = 0, true
	}
	f.sampled++
	f.mu.Unlock()
}

// NoteSkipped counts a sampled event whose span was abandoned (a second
// sampled event reached the scorer before the first one's window closed).
func (f *Flight) NoteSkipped() {
	f.mu.Lock()
	f.skipped++
	f.mu.Unlock()
}

// FlightStats are the recorder's books.
type FlightStats struct {
	Every    uint64 `json:"every"`
	Capacity int    `json:"capacity"`
	Sampled  uint64 `json:"sampled"`
	Skipped  uint64 `json:"skipped"`
}

// Stats returns the recorder's books.
func (f *Flight) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightStats{Every: f.every, Capacity: len(f.ring), Sampled: f.sampled, Skipped: f.skipped}
}

// Records returns the retained records, oldest first.
func (f *Flight) Records() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		out := make([]Record, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Record, len(f.ring))
	n := copy(out, f.ring[f.next:])
	copy(out[n:], f.ring[:f.next])
	return out
}
