// Package obs is the serving layer's latency-and-introspection toolkit:
// fixed-bucket log-scaled latency histograms cheap enough to live on the
// event hot path, a sampled per-event flight recorder, and a monotonic
// clock helper shared by both.
//
// The histogram is the load-bearing piece. Requirements, in order:
//
//   - Observe must be safe from any goroutine with no lock (the ingest and
//     scoring goroutines of every stream write concurrently);
//   - Observe must allocate nothing (it runs once per event on a path that
//     is otherwise allocation-free);
//   - snapshots must be mergeable and expressible as a Prometheus
//     `histogram` family (cumulative buckets, _sum, _count).
//
// The design is the standard one: a fixed array of atomic bins over
// log-spaced bucket bounds. Bounds run from 1µs upward with four buckets
// per octave (each bound 2^(1/4) ≈ 1.19× the previous), 96 bounds total,
// covering 1µs to ~16.8s at ~19% relative resolution; everything above the
// last bound lands in an explicit overflow (+Inf) bin, so tail latencies
// are never invisible. _count is derived from the bins (never tracked
// separately), which makes `+Inf bucket == _count` hold by construction
// even while writers race the snapshot.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	// bucketsPerOctave is the log2 subdivision: 4 → bounds grow by
	// 2^(1/4) ≈ 1.19×, i.e. ~19% relative latency resolution.
	bucketsPerOctave = 4
	// NumBounds is the number of finite bucket bounds; one overflow bin
	// sits beyond the last bound.
	NumBounds = 96
	// loNs is the first bucket bound in nanoseconds (1µs): sub-microsecond
	// latencies are below anything the pipeline can act on.
	loNs = 1000
)

// boundsS holds the finite bucket upper bounds in seconds:
// boundsS[i] = 1µs · 2^((i+1)/4).
var boundsS [NumBounds]float64

func init() {
	for i := range boundsS {
		boundsS[i] = (loNs / 1e9) * math.Pow(2, float64(i+1)/bucketsPerOctave)
	}
}

// Bounds returns the finite bucket upper bounds in seconds, ascending.
// The returned slice is shared; do not modify.
func Bounds() []float64 { return boundsS[:] }

// bucketIdx maps a duration in nanoseconds to its bin: the smallest i with
// ns <= bound[i], or NumBounds (the overflow bin) beyond the last bound.
func bucketIdx(ns int64) int {
	if ns <= loNs {
		return 0
	}
	i := int(math.Ceil(math.Log2(float64(ns)/loNs) * bucketsPerOctave))
	// ns <= loNs·2^(i/4) = bound[i-1], and (i-1) is the smallest such
	// index because ceil is tight.
	i--
	if i >= NumBounds {
		return NumBounds
	}
	return i
}

// Histogram is a lock-free fixed-bucket log-scaled latency histogram. The
// zero value is ready to use. Observe is safe from any number of
// goroutines concurrently with Snapshot and allocates nothing.
type Histogram struct {
	bins  [NumBounds + 1]atomic.Uint64 // bins[NumBounds] is the overflow (+Inf) bin
	sumNs atomic.Int64
}

// Observe records one duration.
//
//enduratrace:zeroalloc
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds. Non-positive
// durations (clock went backwards between the two reads) count as 1ns so
// the observation is never lost.
//
//enduratrace:zeroalloc
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 1 {
		ns = 1
	}
	h.sumNs.Add(ns)
	h.bins[bucketIdx(ns)].Add(1)
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Observes may straddle the copy — an observation can appear in the sum
// but not yet in a bin, or vice versa — but every bin is internally exact
// and Count is always the sum of the bins.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Counts: make([]uint64, NumBounds+1)}
	for i := range h.bins {
		s.Counts[i] = h.bins[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// Snapshot is one observation of a Histogram: per-bucket (non-cumulative)
// counts — Counts[NumBounds] is the overflow bin — plus the duration sum.
type Snapshot struct {
	Counts []uint64
	SumNs  int64
}

// Count returns the total number of observations (including overflow).
func (s Snapshot) Count() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// SumSeconds returns the sum of all observed durations in seconds.
func (s Snapshot) SumSeconds() float64 { return float64(s.SumNs) / 1e9 }

// Merge folds another snapshot into this one (for cross-model or
// cross-shard aggregation). Merging an empty snapshot is a no-op.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counts == nil {
		s.Counts = make([]uint64, NumBounds+1)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.SumNs += o.SumNs
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation inside the bucket holding the target rank. Observations in
// the overflow bin are attributed to the last finite bound (the estimate
// is a lower bound there). Returns 0 for an empty snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= NumBounds {
				return boundsS[NumBounds-1]
			}
			lo := 0.0
			if i > 0 {
				lo = boundsS[i-1]
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (boundsS[i]-lo)*frac
		}
		cum = next
	}
	return boundsS[NumBounds-1]
}

// Pipeline bundles the four per-stage histograms of the serve path for one
// model: socket ingest (frame read + decode), queue wait, window scoring
// (ProcessWindow), and end-to-end event→decision latency.
type Pipeline struct {
	Decode    Histogram
	QueueWait Histogram
	Score     Histogram
	E2E       Histogram
}

// PipelineSnapshot is a point-in-time copy of all four stage histograms.
type PipelineSnapshot struct {
	Decode, QueueWait, Score, E2E Snapshot
}

// Snapshot copies all four stages at once.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		Decode:    p.Decode.Snapshot(),
		QueueWait: p.QueueWait.Snapshot(),
		Score:     p.Score.Snapshot(),
		E2E:       p.E2E.Snapshot(),
	}
}

// epoch anchors the package's monotonic clock; all Now values are
// comparable within one process.
//
//lint:ignore monotime the epoch is the one wall-clock read obs.Now itself is built on
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start: the timestamp
// currency of the pipeline instrumentation. Subtraction of two Now values
// is immune to wall-clock steps, and the int64 form keeps the per-event
// metadata flat (no time.Time in the queue ring).
func Now() int64 { return int64(time.Since(epoch)) }
