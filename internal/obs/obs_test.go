package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketIdx pins the bucket mapping: every observation must land in
// the smallest bucket whose bound is >= the value, out-of-range values in
// the clamp bins, so no latency is ever invisible.
func TestBucketIdx(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want int
	}{
		{0, 0},               // clock glitch → first bin
		{1, 0},               // 1ns → first bin
		{1000, 0},            // exactly 1µs = bound[0]
		{1200, 1},            // above bound[0] (1.19µs), under bound[1] (1.41µs)
		{2000, 4},            // 2µs = bound[3]·2^(1/4)... exactly one octave up: bound[3]=2µs
		{1 << 62, NumBounds}, // far beyond the last bound → overflow bin
	} {
		got := bucketIdx(tc.ns)
		if tc.ns == 2000 {
			// 2µs is exactly bound[3] = 1µs·2^(4/4); allow for the float
			// log landing on either side of the exact power.
			if got != 3 && got != 4 {
				t.Errorf("bucketIdx(%d) = %d, want 3 or 4", tc.ns, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}

	// Invariant over a sweep: the chosen bucket's bound covers the value
	// and the previous bound does not (modulo float slack at exact powers).
	for ns := int64(1); ns < int64(40*time.Second); ns = ns*3/2 + 1 {
		i := bucketIdx(ns)
		v := float64(ns) / 1e9
		if i < NumBounds && v > boundsS[i]*(1+1e-9) {
			t.Fatalf("ns=%d: bucket %d bound %g does not cover value", ns, i, boundsS[i])
		}
		if i > 0 && i <= NumBounds && v < boundsS[i-1]*(1-1e-9) {
			t.Fatalf("ns=%d: previous bound %g already covers value, bucket %d too high", ns, boundsS[i-1], i)
		}
	}
}

func TestBoundsAscending(t *testing.T) {
	bs := Bounds()
	if len(bs) != NumBounds {
		t.Fatalf("len(Bounds()) = %d, want %d", len(bs), NumBounds)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, bs[i], bs[i-1])
		}
	}
	if bs[0] != 0.001/1e6*math.Pow(2, 0.25) {
		// First bound is 1µs·2^(1/4) ≈ 1.19µs.
		want := 1e-6 * math.Pow(2, 0.25)
		if math.Abs(bs[0]-want) > 1e-15 {
			t.Fatalf("bounds[0] = %g, want %g", bs[0], want)
		}
	}
}

func TestHistogramCountSumQuantile(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1ms..100ms.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*99*time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count())
	}
	p50 := s.Quantile(0.5)
	if p50 < 0.035 || p50 > 0.075 {
		t.Fatalf("p50 = %g, want ~0.05 (±bucket resolution)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 0.08 || p99 > 0.13 {
		t.Fatalf("p99 = %g, want ~0.1", p99)
	}
	if got, want := s.SumSeconds(), 1000*0.001+99e-6*999*1000/2; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("SumSeconds = %g, want %g", got, want)
	}
}

func TestHistogramOverflowVisible(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Second) // beyond the last bound (~16.8s)
	s := h.Snapshot()
	if s.Counts[NumBounds] != 1 {
		t.Fatalf("overflow bin = %d, want 1", s.Counts[NumBounds])
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (overflow must be counted)", s.Count())
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	var m Snapshot
	m.Merge(sa)
	m.Merge(sb)
	if m.Count() != 3 {
		t.Fatalf("merged Count = %d, want 3", m.Count())
	}
	if m.SumNs != sa.SumNs+sb.SumNs {
		t.Fatalf("merged SumNs = %d, want %d", m.SumNs, sa.SumNs+sb.SumNs)
	}
}

// TestHistogramConcurrentObserveSnapshot is the race gate: many writers
// hammering Observe while readers take snapshots must be race-clean (run
// under -race) and lose no observations.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two concurrent snapshot readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if c := s.Count(); c > writers*perW {
					t.Errorf("snapshot Count %d exceeds writes", c)
					return
				}
				_ = s.Quantile(0.99)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.ObserveNs(int64(w*1000 + i + 1))
			}
		}(w)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		if s.Count() == writers*perW {
			break
		}
		select {
		case <-done:
		case <-time.After(time.Millisecond):
		}
		if s := h.Snapshot(); s.Count() == writers*perW {
			break
		}
	}
	close(stop)
	<-done
	if c := h.Snapshot().Count(); c != writers*perW {
		t.Fatalf("final Count = %d, want %d", c, writers*perW)
	}
}

// TestObserveZeroAlloc is half of the satellite allocation gate: recording
// a latency sample must not allocate (the other half lives in core and
// serve, over the real ProcessWindow and queue paths).
func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(137 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = Now()
	}); allocs != 0 {
		t.Fatalf("Now allocates %v times per call, want 0", allocs)
	}
}

func TestFlightRing(t *testing.T) {
	f := NewFlight(4, 3)
	if f.EveryN() != 4 {
		t.Fatalf("EveryN = %d", f.EveryN())
	}
	for i := 1; i <= 5; i++ {
		f.Add(Record{Seq: uint64(i)})
	}
	recs := f.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Oldest first after wrap: 3, 4, 5.
	for i, want := range []uint64{3, 4, 5} {
		if recs[i].Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, recs[i].Seq, want)
		}
	}
	st := f.Stats()
	if st.Sampled != 5 || st.Capacity != 3 || st.Every != 4 {
		t.Fatalf("stats = %+v", st)
	}
	f.NoteSkipped()
	if f.Stats().Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", f.Stats().Skipped)
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	var s Snapshot
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	var h Histogram
	h.Observe(time.Millisecond)
	snap := h.Snapshot()
	if q := snap.Quantile(-1); q < 0 {
		t.Fatalf("clamped quantile negative: %g", q)
	}
	if q := snap.Quantile(2); q <= 0 {
		t.Fatalf("clamped quantile = %g", q)
	}
}
