// Package lint is the repo-invariant static-analysis suite behind
// `enduratrace lint`: a set of analyzers for the bug classes this
// codebase has actually shipped (counters bumped outside their mutex,
// non-finite floats fed to encoding/json, wall-clock reads on monotonic
// hot paths, swallowed sink errors, malformed slog calls, float
// equality), plus a compiler-backed zero-alloc gate that verifies
// functions annotated `//enduratrace:zeroalloc` against `go build
// -gcflags=-m` escape-analysis output.
//
// Findings are suppressible with a `//lint:ignore <analyzer> <reason>`
// comment on the flagged line or the line directly above it. Ignores are
// validated: one that suppresses nothing is itself reported (staleignore),
// so suppressions cannot outlive the code they excuse.
//
// The suite is stdlib-only (go/parser, go/types, go/importer); the only
// external requirement is the go toolchain on PATH, which the loader
// uses for export data and the zero-alloc gate uses for escape analysis.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one rule violation: analyzer name, position, a one-line
// message, and a one-line fix hint.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // root-relative
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Hint     string         `json:"hint,omitempty"`
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// An Analyzer is one named rule: Run inspects a package and reports
// findings through the pass.
type Analyzer struct {
	Name string
	Doc  string // one line, shown by `enduratrace lint -list`
	Hint string // default fix hint attached to findings
	Run  func(*Pass)
}

// Pass is one (analyzer, package) execution context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Load     *Load

	runner *runner
}

// Reportf records a finding at pos unless an ignore comment suppresses
// it. The message should state the defect; the analyzer's Hint says how
// to fix it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.runner.report(p.Analyzer.Name, p.Analyzer.Hint, p.Load.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerCounterlock,
		analyzerNonfiniteJSON,
		analyzerMonotime,
		analyzerErrsink,
		analyzerSlogArgs,
		analyzerFloatEq,
	}
}

// Options configures a Run.
type Options struct {
	Analyzers []*Analyzer // nil means All()
	ZeroAlloc bool        // also run the compiler-backed zero-alloc gate
}

// runner carries the shared per-run state: the ignore index and the
// accumulated findings.
type runner struct {
	load     *Load
	ignores  *ignoreIndex
	findings []Finding
}

func (r *runner) report(analyzer, hint string, pos token.Position, msg string) {
	if r.ignores.suppress(analyzer, pos) {
		return
	}
	r.findings = append(r.findings, Finding{
		Analyzer: analyzer,
		Pos:      pos,
		File:     relPath(r.load.Root, pos.Filename),
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  msg,
		Hint:     hint,
	})
}

// Run loads the packages matched by patterns under root and runs the
// analyzer suite (and, if opts.ZeroAlloc, the escape-analysis gate) over
// them. The returned findings are sorted by file, line and analyzer; an
// empty slice means the tree is clean.
func Run(root string, patterns []string, opts Options) ([]Finding, error) {
	load, err := LoadPackages(root, patterns)
	if err != nil {
		return nil, err
	}
	return RunLoaded(load, opts)
}

// RunLoaded runs the suite over an already-loaded tree (the testdata
// harness loads once and runs analyzers selectively).
func RunLoaded(load *Load, opts Options) ([]Finding, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	r := &runner{load: load, ignores: collectIgnores(load)}

	// Malformed ignore comments are findings in their own right, reported
	// before any analyzer runs so a broken suppression never silently
	// matches nothing.
	for _, bad := range r.ignores.malformed {
		r.findings = append(r.findings, Finding{
			Analyzer: "staleignore",
			Pos:      bad.pos,
			File:     relPath(load.Root, bad.pos.Filename),
			Line:     bad.pos.Line,
			Col:      bad.pos.Column,
			Message:  bad.msg,
			Hint:     "write //lint:ignore <analyzer> <reason>",
		})
	}
	// Unknown annotation directives (//enduratrace:<something else>) are
	// validated here too: the grammar has exactly two productions.
	validateDirectives(load, r)

	for _, pkg := range load.Pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Load: load, runner: r})
		}
	}

	ran := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if opts.ZeroAlloc {
		ran["zeroalloc"] = true
		if err := runZeroAlloc(load, r); err != nil {
			return nil, err
		}
	}

	// Stale-ignore validation: every ignore whose analyzer ran must have
	// suppressed at least one finding this run.
	for _, ig := range r.ignores.all {
		if !ran[ig.analyzer] || ig.used {
			continue
		}
		r.findings = append(r.findings, Finding{
			Analyzer: "staleignore",
			Pos:      ig.pos,
			File:     relPath(load.Root, ig.pos.Filename),
			Line:     ig.pos.Line,
			Col:      ig.pos.Column,
			Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing — the violation it excused is gone", ig.analyzer),
			Hint:     "delete the stale ignore comment",
		})
	}

	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return r.findings, nil
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
