package lint

import (
	"go/ast"
	"go/types"
)

// counterlock: writes to struct fields annotated
// `//enduratrace:guarded-by <mutex>` must happen while that mutex is
// held in the enclosing function. This is the PR 5 books race: the
// eventQueue's scored counter was bumped after the unlock, so a
// concurrent /stats read could catch an event that had left the buffer
// but was counted nowhere.
//
// The analysis is a branch-aware source-order scan of each function
// body, not a full dataflow analysis: `mu.Lock()` marks the mutex held
// for the base expression it was called on (matched textually, e.g. `q`
// in `q.mu.Lock()`), `mu.Unlock()` clears it, `defer mu.Unlock()` keeps
// it held to the end of the function, and branches that terminate
// (return/break/continue/panic) do not leak their lock-state changes
// past the branch. Function literals are scanned separately with an
// empty lock set — a goroutine does not inherit its creator's locks.
// Writes counted: assignments, ++/--, map-index writes through the
// field, and Add/Store/Swap/CompareAndSwap calls on atomic-typed fields.
var analyzerCounterlock = &Analyzer{
	Name: "counterlock",
	Doc:  "writes to //enduratrace:guarded-by fields must hold the named mutex",
	Hint: "move the write inside the mu.Lock()/Unlock() critical section, or //lint:ignore counterlock <why the caller holds it>",
	Run:  runCounterlock,
}

// guardInfo is one annotated field: the sibling mutex field name that
// must be held when the field is written.
type guardInfo struct {
	mutex string
}

func runCounterlock(pass *Pass) {
	// Pass 1: collect annotated fields (field object -> guard) and
	// validate that the named mutex is a sibling field of the struct.
	guards := make(map[*types.Var]guardInfo)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mutex, ok := fieldDirective(fld)
				if !ok {
					continue
				}
				if !fieldNames[mutex] {
					pass.Reportf(fld.Pos(), "guarded-by names %q, which is not a field of this struct", mutex)
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok {
						guards[obj] = guardInfo{mutex: mutex}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: scan every function body (and every function literal,
	// each with a fresh lock set).
	sc := &lockScan{pass: pass, guards: guards}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					sc.stmts(fn.Body.List, make(lockSet))
				}
				return false // nested FuncLits are visited by the scan itself
			case *ast.FuncLit:
				// A FuncLit outside any FuncDecl (package-level var).
				sc.stmts(fn.Body.List, make(lockSet))
				return false
			}
			return true
		})
	}
}

// lockSet tracks which mutexes are held, keyed "<baseExpr>.<mutexField>"
// (e.g. "q.mu", "h.reg.mu").
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both sets.
func intersect(a, b lockSet) lockSet {
	out := make(lockSet)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

type lockScan struct {
	pass   *Pass
	guards map[*types.Var]guardInfo
}

// stmts scans a statement list in source order, mutating and returning
// the lock state that holds after the list.
func (sc *lockScan) stmts(list []ast.Stmt, held lockSet) lockSet {
	for _, st := range list {
		held = sc.stmt(st, held)
	}
	return held
}

func (sc *lockScan) stmt(st ast.Stmt, held lockSet) lockSet {
	switch s := st.(type) {
	case *ast.ExprStmt:
		sc.expr(s.X, held, false)
	case *ast.SendStmt:
		sc.expr(s.Chan, held, false)
		sc.expr(s.Value, held, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			sc.expr(rhs, held, false)
		}
		for _, lhs := range s.Lhs {
			sc.expr(lhs, held, true)
		}
	case *ast.IncDecStmt:
		sc.expr(s.X, held, true)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to the end of the
		// function; any other deferred call is scanned for writes with
		// the *current* state (a heuristic — deferred bodies run last,
		// but deferring an unguarded write is vanishingly rare).
		if key, op := sc.lockOp(s.Call); op == "Unlock" || op == "RUnlock" {
			_ = key // held stays held
		} else {
			sc.expr(s.Call, held, false)
		}
	case *ast.GoStmt:
		sc.expr(s.Call, make(lockSet), false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.expr(r, held, false)
		}
	case *ast.BlockStmt:
		held = sc.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = sc.stmt(s.Init, held)
		}
		sc.expr(s.Cond, held, false)
		bodyHeld := sc.stmts(s.Body.List, held.clone())
		bodyTerm := terminates(s.Body)
		if s.Else == nil {
			if !bodyTerm {
				held = intersect(held, bodyHeld)
			}
			// A terminating then-branch (early return) leaks nothing.
			return held
		}
		elseHeld := sc.stmt(s.Else, held.clone())
		elseTerm := stmtTerminates(s.Else)
		switch {
		case bodyTerm && elseTerm:
			return held // unreachable after; state is moot
		case bodyTerm:
			return elseHeld
		case elseTerm:
			return bodyHeld
		default:
			return intersect(bodyHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = sc.stmt(s.Init, held)
		}
		if s.Cond != nil {
			sc.expr(s.Cond, held, false)
		}
		bodyHeld := sc.stmts(s.Body.List, held.clone())
		if s.Post != nil {
			bodyHeld = sc.stmt(s.Post, bodyHeld)
		}
		return intersect(held, bodyHeld) // the loop may run zero times
	case *ast.RangeStmt:
		sc.expr(s.X, held, false)
		bodyHeld := sc.stmts(s.Body.List, held.clone())
		return intersect(held, bodyHeld)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				held = sc.stmt(sw.Init, held)
			}
			if sw.Tag != nil {
				sc.expr(sw.Tag, held, false)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		out := held
		for _, cl := range clauses {
			var body []ast.Stmt
			switch c := cl.(type) {
			case *ast.CaseClause:
				body = c.Body
			case *ast.CommClause:
				if c.Comm != nil {
					sc.stmt(c.Comm, held.clone())
				}
				body = c.Body
			}
			clHeld := sc.stmts(body, held.clone())
			if !blockTerminates(body) {
				out = intersect(out, clHeld)
			}
		}
		return out
	case *ast.LabeledStmt:
		return sc.stmt(s.Stmt, held)
	}
	return held
}

// expr walks an expression: toggles lock state on Lock/Unlock calls,
// checks guarded-field accesses when write is set, and recurses. FuncLit
// bodies are scanned with a fresh lock set.
func (sc *lockScan) expr(e ast.Expr, held lockSet, write bool) {
	switch x := e.(type) {
	case *ast.CallExpr:
		if key, op := sc.lockOp(x); key != "" {
			switch op {
			case "Lock", "RLock":
				held[key] = true
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		// Atomic mutation through a guarded field: q.counter.Add(1).
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Add", "Store", "Swap", "CompareAndSwap":
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					sc.checkAccess(inner, held)
				}
			}
		}
		sc.expr(x.Fun, held, false)
		for _, arg := range x.Args {
			sc.expr(arg, held, false)
		}
	case *ast.FuncLit:
		sc.stmts(x.Body.List, make(lockSet))
	case *ast.SelectorExpr:
		if write {
			sc.checkAccess(x, held)
		}
		sc.expr(x.X, held, false)
	case *ast.IndexExpr:
		// Writing through a map/slice field: q.byName[k] = v.
		if sel, ok := x.X.(*ast.SelectorExpr); ok && write {
			sc.checkAccess(sel, held)
		}
		sc.expr(x.X, held, false)
		sc.expr(x.Index, held, false)
	case *ast.StarExpr:
		sc.expr(x.X, held, write)
	case *ast.ParenExpr:
		sc.expr(x.X, held, write)
	case *ast.UnaryExpr:
		sc.expr(x.X, held, false)
	case *ast.BinaryExpr:
		sc.expr(x.X, held, false)
		sc.expr(x.Y, held, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			sc.expr(el, held, false)
		}
	case *ast.KeyValueExpr:
		sc.expr(x.Value, held, false)
	case *ast.TypeAssertExpr:
		sc.expr(x.X, held, false)
	case *ast.SliceExpr:
		sc.expr(x.X, held, false)
	}
}

// checkAccess reports a write to a guarded field when its mutex is not
// held.
func (sc *lockScan) checkAccess(sel *ast.SelectorExpr, held lockSet) {
	selection, ok := sc.pass.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	g, ok := sc.guards[v]
	if !ok {
		return
	}
	key := exprKey(sel.X) + "." + g.mutex
	if !held[key] {
		sc.pass.Reportf(sel.Pos(), "write to %s outside %s (field is //enduratrace:guarded-by %s)",
			v.Name(), key+".Lock()", g.mutex)
	}
}

// lockOp recognises <base>.<mutexField>.Lock/Unlock/RLock/RUnlock calls,
// returning the lock-set key and the operation.
func (sc *lockScan) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	// The receiver must be a sync.Mutex/RWMutex-typed expression; its
	// textual form is the key.
	tv, ok := sc.pass.Pkg.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", ""
	}
	return exprKey(sel.X), sel.Sel.Name
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprKey renders the textual form of a lock/field base expression:
// idents and dotted selector chains ("q", "h.reg"). Anything more
// exotic renders to a position-independent best effort.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	default:
		return "?"
	}
}

// terminates reports whether a block always transfers control out
// (return, break/continue/goto, panic, os.Exit).
func terminates(b *ast.BlockStmt) bool { return blockTerminates(b.List) }

func blockTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					return id.Name == "os" && fun.Sel.Name == "Exit"
				}
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
