// Package badmeta is golden-test input for the comment grammars: ignores
// and directives that do not parse. Expectations live in the lint test
// (not in want comments) because a malformed comment cannot also carry a
// marker without changing what it parses as.
package badmeta

import "sync"

func reasonless(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

func unknownAnalyzer(a, b float64) bool {
	//lint:ignore gofancy not a real analyzer name
	return a == b
}

type wrongDirectives struct {
	mu sync.Mutex
	//enduratrace:guarded-by
	a int
	//enduratrace:guarded-by mu extra words
	b int
	//enduratrace:frobnicate
	c int
}

func (w *wrongDirectives) use() {
	w.mu.Lock()
	w.a, w.b, w.c = 1, 2, 3
	w.mu.Unlock()
}
