// Package floateq is golden-test input: float equality comparisons and
// the carve-outs that stay legal.
package floateq

func compare(a, b float64) bool {
	return a == b // want "floateq"
}

func nanSpelledOut(x float64) bool {
	return x != x // want "floateq"
}

func narrow(a, b float32) bool {
	return a != b // want "floateq"
}

func zeroSentinel(sum float64) bool {
	return sum == 0 // exact-zero sentinel: clean
}

func bothConst() bool {
	return 0.1+0.2 == 0.3 // compile-time constants: clean
}

func intended(a, b float64) bool {
	//lint:ignore floateq bit-exactness is the property under test here
	return a == b
}
