// Package monotime is golden-test input: wall-clock reads in a hot-path
// package, with and without a validated ignore.
package monotime

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want "monotime"
}

func deadline(c interface{ SetReadDeadline(time.Time) error }) {
	//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // Since is not Now: clean
}
