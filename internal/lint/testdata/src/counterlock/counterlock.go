// Package counterlock is golden-test input: writes to
// //enduratrace:guarded-by fields with and without their mutex held.
package counterlock

import (
	"os"
	"sync"
)

type book struct {
	mu     sync.Mutex
	n      int            //enduratrace:guarded-by mu
	byName map[string]int //enduratrace:guarded-by mu
	free   int            // unguarded: never flagged
}

func (b *book) lockedIncrement() {
	b.mu.Lock()
	b.n++
	b.byName["x"] = b.n
	b.mu.Unlock()
}

func (b *book) lockedByDefer() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = 7
}

func (b *book) unlockedIncrement() {
	b.n++ // want "counterlock"
	b.free++
}

func (b *book) writeAfterUnlock() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.n-- // want "counterlock"
}

func (b *book) earlyReturnStaysHeld(drop bool) {
	b.mu.Lock()
	if drop {
		b.mu.Unlock()
		return
	}
	b.n++ // still held on this path: clean
	b.mu.Unlock()
}

func (b *book) branchReleases(drop bool) {
	b.mu.Lock()
	if drop {
		b.mu.Unlock()
	}
	b.n++ // want "counterlock"
	if !drop {
		b.mu.Unlock()
	}
}

func (b *book) goroutineDoesNotInherit() {
	b.mu.Lock()
	go func() {
		b.n++ // want "counterlock"
	}()
	b.mu.Unlock()
}

func (b *book) loopMayRunZeroTimes(rounds int) {
	for i := 0; i < rounds; i++ {
		b.mu.Lock()
	}
	b.n++ // want "counterlock"
	for i := 0; i < rounds; i++ {
		b.mu.Unlock()
	}
}

func (b *book) panicPathTerminates(ok bool) {
	b.mu.Lock()
	if !ok {
		b.mu.Unlock()
		panic("bail")
	}
	b.n++ // held: the panic branch terminated
	b.mu.Unlock()
}

func (b *book) exitPathTerminates(ok bool) {
	b.mu.Lock()
	if !ok {
		os.Exit(1)
	}
	b.n++ // held: os.Exit never returns
	b.mu.Unlock()
}

type badGuard struct {
	mu sync.Mutex
	//enduratrace:guarded-by missing
	n int // want "guarded-by names"
}

func (b *badGuard) use() { b.mu.Lock(); b.n++; b.mu.Unlock() }
