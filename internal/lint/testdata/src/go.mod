// The golden-test module for enduratrace's lint suite. A separate module
// so the repo's own `enduratrace lint ./...` (and go build/test ./...)
// never descends into these deliberately broken packages; the lint tests
// load this root explicitly.
module lint/testdata/src

go 1.24
