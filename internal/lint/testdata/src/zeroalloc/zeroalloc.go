// Package zeroalloc is golden-test input for the escape-analysis gate:
// an annotated function with a deliberate heap escape, a clean one, and
// an escape excused inline.
package zeroalloc

// Leaky is annotated but returns a pointer to a local: the compiler
// moves x to the heap, and the gate must fail on it.
//
//enduratrace:zeroalloc
func Leaky() *int {
	x := 42 // want "zeroalloc"
	return &x
}

// Clean allocates nothing; the gate stays quiet.
//
//enduratrace:zeroalloc
func Clean(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Unannotated may allocate freely.
func Unannotated() *int {
	x := 7
	return &x
}

// Excused has the amortized-scratch shape: the escape is excused with a
// line-precise ignore, so the gate stays quiet without losing coverage
// of the rest of the function.
//
//enduratrace:zeroalloc
func Excused(scratch *[]byte, n int) []byte {
	if cap(*scratch) < n {
		//lint:ignore zeroalloc amortized scratch growth: reused across calls, steady-state zero
		*scratch = make([]byte, n)
	}
	return (*scratch)[:n]
}
