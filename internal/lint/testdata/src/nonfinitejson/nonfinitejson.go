// Package nonfinitejson is golden-test input: float64 values reachable
// from json.Marshal without a non-finite-safe representation.
package nonfinitejson

import "encoding/json"

// SafeFloat carries its own MarshalJSON: trusted, never entered.
type SafeFloat float64

func (f SafeFloat) MarshalJSON() ([]byte, error) { return []byte("1"), nil }

type report struct {
	Score   float64 // want "nonfinitejson"
	Safe    SafeFloat
	Shadow  *float64 // the blessed null-for-non-finite shape
	Skipped float64  `json:"-"`
	hidden  float64
}

func emit() ([]byte, error) {
	return json.Marshal(report{})
}

// writeJSON is the one-level wrapper the analyzer resolves: its call
// sites become marshal sites.
func writeJSON(v any) {
	_, _ = json.Marshal(v)
}

type viaWrapper struct {
	Ratio float64 // want "nonfinitejson"
}

func callWrapper() {
	writeJSON(viaWrapper{})
}

// Embedded-field shadowing, the `type plain T` idiom: outer F hides the
// promoted float64 F, so only the unshadowed G is a finding.
type inner struct {
	F float64 `json:"f"`
	G float64 `json:"g"` // want "nonfinitejson"
}

type outer struct {
	inner
	F SafeFloat `json:"f"`
}

func marshalOuter() ([]byte, error) {
	return json.Marshal(outer{})
}

// A type with MarshalJSON marshalling floats inside that method is its
// own non-finite story: not entered, not flagged.
type custom struct{ v float64 }

func (c custom) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.v)
}

func direct(x float64) ([]byte, error) {
	return json.Marshal(x) // want "nonfinitejson"
}

func nested() ([]byte, error) {
	type row struct {
		Vals []float64 // reached through map elem + slice elem: reported at the marshal site
	}
	return json.Marshal(map[string]row{}) // want "nonfinitejson"
}
