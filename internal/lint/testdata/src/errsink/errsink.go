// Package errsink is golden-test input: discarded Write/Flush/Close/Sync
// errors on module-declared sink types.
package errsink

import "os"

// Sink is a module-declared type, so its error results are in scope.
type Sink struct{}

func (s *Sink) Write(p []byte) (int, error) { return len(p), nil }
func (s *Sink) Flush() error                { return nil }
func (s *Sink) Close() error                { return nil }
func (s *Sink) Sync() error                 { return nil }

func discards(s *Sink) {
	s.Write(nil)    // want "errsink"
	s.Flush()       // want "errsink"
	defer s.Close() // want "errsink"
	go s.Sync()     // want "errsink"
}

func checks(s *Sink) error {
	if _, err := s.Write(nil); err != nil {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}
	return s.Close()
}

func ignored(s *Sink) {
	//lint:ignore errsink best-effort flush on an error path already returning an error
	s.Flush()
}

func stdlibOutOfScope(f *os.File) {
	f.Close() // stdlib receiver: clean by design
}
