// Package slogargs is golden-test input: slog calls with broken
// key/value arity or non-string keys.
package slogargs

import (
	"context"
	"log/slog"
)

func broken(l *slog.Logger, ctx context.Context) {
	l.Info("msg", "key")           // want "slogargs"
	l.Warn("msg", 42, "x")         // want "slogargs"
	l.ErrorContext(ctx, "m", "k")  // want "slogargs"
	slog.Error("msg", "a", 1, "b") // want "slogargs"
}

func fine(l *slog.Logger, args []any) {
	l.Info("msg", "key", 1)
	l.Error("msg", slog.Int("n", 2), "k", "v")
	l.Warn("msg", args...) // spread: arity not statically decidable
	slog.Info("msg")
}
