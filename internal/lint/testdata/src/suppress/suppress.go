// Package suppress is golden-test input for the suppression machinery
// itself: a working ignore (no finding escapes), an end-of-line ignore,
// and a stale ignore that must be reported.
package suppress

func suppressedAbove(a, b float64) bool {
	//lint:ignore floateq golden test: the ignore on the line above suppresses
	return a == b
}

func suppressedSameLine(a, b float64) bool {
	return a == b //lint:ignore floateq golden test: end-of-line ignore suppresses
}

func stale(a, b float64) bool {
	//lint:ignore floateq the comparison this excused is long gone // want "staleignore"
	return a < b
}
