package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floateq: == and != on floating-point expressions are almost always a
// bug outside the bit-exactness tests that assert them on purpose (the
// batched kernels are proven bitwise-equal to the scalar forms in
// _test.go files, which this suite never loads — test files are outside
// the analysis by construction). Two carve-outs keep the rule usable:
// comparisons against an exact constant zero (the division-guard /
// sentinel idiom: `if sum == 0 { return }`) and comparisons where both
// operands are untyped constants (resolved at compile time). Everything
// else — epsilon-free convergence checks, NaN tests spelled x != x —
// is flagged.
var analyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "== / != on floats (except exact-zero sentinels) is flagged",
	Hint: "compare with an epsilon, use math.Float64bits for bit identity, or //lint:ignore floateq <why exact equality is intended>",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, xok := info.Types[bin.X]
			yt, yok := info.Types[bin.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			// Exact-zero sentinel comparisons are the idiom for "was this
			// ever set / dare I divide": allowed.
			if isConstZero(xt) || isConstZero(yt) {
				return true
			}
			// Both sides compile-time constants: the comparison is exact
			// by definition.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			pass.Reportf(bin.OpPos, "%s on float operands", bin.Op)
			return true
		})
	}
}

func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil || tv.Value.Kind() == constant.Unknown {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
