package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and typechecked module package: the unit
// analyzers run over. Files holds the package's non-test source files
// (test files never reach the analyzers — the bit-exactness tests that
// intentionally compare floats stay out of floateq's way by
// construction).
type Package struct {
	Path      string // import path, e.g. enduratrace/internal/serve
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string // absolute, parallel to Files
	Types     *types.Package
	Info      *types.Info
}

// Load is the result of loading a module tree for analysis.
type Load struct {
	Root       string // module root (directory holding go.mod)
	ModulePath string // module path from go.mod
	Fset       *token.FileSet
	Pkgs       []*Package // the packages matched by the patterns, load order
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// LoadPackages parses and typechecks the module packages matched by
// patterns (e.g. "./..."), rooted at the directory holding go.mod. It
// shells out to `go list -export -deps` once: the go toolchain compiles
// the tree and hands back export data for every dependency (stdlib and
// intra-module alike), so each target package typechecks independently
// against compiled import data — no source-order topo sort, and the
// types seen by analyzers are exactly the compiler's. Code that does not
// compile fails the load with the toolchain's error text.
func LoadPackages(root string, patterns []string) (*Load, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && strings.HasPrefix(p.ImportPath, modPath) {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no module packages match %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := &exportImporter{inner: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})}

	out := &Load{Root: root, ModulePath: modPath, Fset: fset}
	for _, t := range targets {
		pkg := &Package{Path: t.ImportPath, Dir: t.Dir, Fset: fset}
		for _, name := range t.GoFiles {
			fn := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			pkg.Files = append(pkg.Files, f)
			pkg.Filenames = append(pkg.Filenames, fn)
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			// go list already compiled this package, so a type error here
			// is a loader bug (importer mismatch), not a user error — but
			// surface it either way.
			return nil, fmt.Errorf("lint: typecheck %s: %v", t.ImportPath, err)
		}
		pkg.Types = tpkg
		out.Pkgs = append(out.Pkgs, pkg)
	}
	return out, nil
}

// exportImporter wraps the gc export-data importer, special-casing
// "unsafe" (which has no export file).
type exportImporter struct {
	inner types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.inner.Import(path)
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %v (lint must run inside a module)", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod — the root lint loads and reports relative to.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
