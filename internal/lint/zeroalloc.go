package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// The zero-alloc gate: functions annotated //enduratrace:zeroalloc are
// verified against the compiler's escape analysis. `go build
// -gcflags=<module>/...=-m` emits one diagnostic per allocation decision
// ("escapes to heap", "moved to heap", "func literal escapes to heap");
// any such line attributed to an annotated function's body is a finding.
// This catches at compile time what testing.AllocsPerRun only catches at
// test time — and catches it on every build, not just on the benchmarked
// configuration.
//
// Two classes of in-function allocation are legitimately suppressed with
// an inline //lint:ignore zeroalloc <reason>: amortized scratch growth
// (a make() assigned to a reused field — steady-state zero, first-call
// nonzero) and panic-path formatting (fmt.Sprintf inside a panic()).
// The suppression is line-precise, so a *new* escape in the same
// function still fails the gate.
//
// The diagnostics are served from the go build cache (the compiler's
// -m output is replayed on cache hits), so a clean re-run costs one
// no-op build.

// zeroAllocFn is one annotated function: its file and body line range,
// used to attribute compiler diagnostics.
type zeroAllocFn struct {
	name      string // display name, e.g. (*eventQueue).ReadBatch
	file      string // absolute path
	startLine int
	endLine   int
	pos       token.Pos
}

// runZeroAlloc collects the //enduratrace:zeroalloc annotations from the
// loaded packages, runs the compiler's escape analysis over the module,
// and reports every heap escape attributed to an annotated function.
func runZeroAlloc(load *Load, r *runner) error {
	fns := collectZeroAllocFns(load)
	if len(fns) == 0 {
		return nil
	}

	cmd := exec.Command("go", "build", fmt.Sprintf("-gcflags=%s/...=-m", load.ModulePath), "./...")
	cmd.Dir = load.Root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("lint: zeroalloc gate: go build -gcflags=-m: %v\n%s", err, out.String())
	}

	seen := make(map[string]bool) // dedup identical diagnostics
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		file, lineNo, col, msg, ok := parseDiag(line)
		if !ok || !isHeapEscape(msg) {
			continue
		}
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(load.Root, file)
		}
		for _, fn := range fns {
			if fn.file != abs || lineNo < fn.startLine || lineNo > fn.endLine {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d:%s", abs, lineNo, col, msg)
			if seen[key] {
				break
			}
			seen[key] = true
			r.report("zeroalloc", "hoist the allocation out of the hot path, reuse scratch, or //lint:ignore zeroalloc <reason>",
				token.Position{Filename: abs, Line: lineNo, Column: col},
				fmt.Sprintf("%s is //enduratrace:zeroalloc but the compiler says: %s", fn.name, msg))
			break
		}
	}
	return sc.Err()
}

// collectZeroAllocFns finds every annotated function declaration.
func collectZeroAllocFns(load *Load) []zeroAllocFn {
	var fns []zeroAllocFn
	for _, pkg := range load.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !funcHasDirective(fn, "zeroalloc") {
					continue
				}
				start := load.Fset.Position(fn.Pos())
				end := load.Fset.Position(fn.Body.End())
				name := fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) > 0 {
					name = "(" + recvString(fn.Recv.List[0].Type) + ")." + name
				}
				fns = append(fns, zeroAllocFn{
					name:      name,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
					pos:       fn.Pos(),
				})
			}
		}
	}
	return fns
}

func recvString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + recvString(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvString(t.X)
	}
	return "?"
}

// parseDiag splits a compiler diagnostic "file.go:12:6: message".
func parseDiag(line string) (file string, lineNo, col int, msg string, ok bool) {
	// Skip the "# package" headers and blank lines cheaply.
	if line == "" || line[0] == '#' {
		return "", 0, 0, "", false
	}
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	lineNo, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return file, lineNo, col, strings.TrimSpace(parts[2]), true
}

// isHeapEscape classifies the -m diagnostics that mean "this line
// allocates on the heap".
func isHeapEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}
