package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errsink: the error results of Write/Flush/Close/Sync on this module's
// own sinks, recorders, stores and frame codecs — and on
// http.ResponseWriter — may not be discarded. This is the PR 6/9
// family: a FileSink.Close that skipped fsync, a StreamSink.Close that
// leaked its flate writer when the buffered flush failed, a writeJSON
// that swallowed the marshal error and served an empty body. Stdlib
// receivers (os.File cleanup on error paths, net.Conn defers) are out
// of scope — the idiomatic `f.Close()` after a failed write, where an
// error is already on its way out, stays legal.
var analyzerErrsink = &Analyzer{
	Name: "errsink",
	Doc:  "Write/Flush/Close/Sync errors on module sink types must be checked",
	Hint: "check the error (log, count or propagate it), or //lint:ignore errsink <why the error is meaningless here>",
	Run:  runErrsink,
}

var errsinkMethods = map[string]bool{
	"Write": true, "Flush": true, "Close": true, "Sync": true,
}

func runErrsink(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !errsinkMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !returnsError(sig) {
				return true
			}
			if !errsinkReceiverInScope(pass, sig.Recv().Type()) {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s error discarded", typeShortName(sig.Recv().Type()), fn.Name())
			return true
		})
	}
}

// errsinkReceiverInScope: the receiver is a type declared in this module
// (sinks, recorders, stores, codecs) or the http.ResponseWriter
// interface.
func errsinkReceiverInScope(pass *Pass, recv types.Type) bool {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "net/http" && obj.Name() == "ResponseWriter" {
		return true
	}
	return strings.HasPrefix(path, pass.Load.ModulePath)
}

// returnsError reports whether the signature's results include an error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

func typeShortName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
