package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nonfinitejson: encoding/json refuses non-finite float64 values
// (json.Marshal returns an error on NaN/±Inf), and this repo's gate
// distances are legitimately +Inf on disjoint distributions — the PR 9
// bug served an empty /alerts body because a +Inf GateDist aborted the
// marshal inside an error-swallowing writeJSON. Every float64 struct
// field statically reachable from a json.Marshal / Encoder.Encode call
// site in the serving-side packages must therefore be a type with a
// non-finite-safe MarshalJSON (anomalystore.JSONFloat) or a *float64
// null-for-non-finite shadow.
//
// Reachability is a type walk from the static type of each marshal
// argument: struct fields (exported, not json:"-"), slice/array/map
// elements and pointers are followed; named types carrying their own
// MarshalJSON are trusted and not entered, and embedded-field shadowing
// is modelled the way encoding/json resolves it (an outer field hides
// the promoted field of the same JSON name — the `type plain T` shadow
// idiom). Marshal sites lexically inside a MarshalJSON method are not
// walked: the method is the type's non-finite story, the same trust the
// walk extends to it from outside. One level of wrapper indirection is
// resolved: a function whose parameter flows into json.Marshal
// (writeJSON) turns its own call sites into marshal sites. Findings are
// reported at the offending field's declaration, naming one marshal
// site that reaches it.
var analyzerNonfiniteJSON = &Analyzer{
	Name: "nonfinitejson",
	Doc:  "float64 fields reachable from json.Marshal must be non-finite-safe",
	Hint: "use anomalystore.JSONFloat, a *float64 null shadow, or a custom MarshalJSON",
	Run:  runNonfiniteJSON,
}

// nonfiniteScopeSuffixes: the packages whose marshal call sites seed the
// walk — the serving-side JSON producers.
var nonfiniteScopeSuffixes = []string{
	"/internal/serve",
	"/internal/alert",
	"/internal/anomalystore",
	"lint/testdata/src/nonfinitejson",
}

func runNonfiniteJSON(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path, nonfiniteScopeSuffixes) {
		return
	}
	info := pass.Pkg.Info

	// Wrapper detection: package functions with a parameter that is
	// passed (as a bare identifier) to json.Marshal/MarshalIndent or
	// Encoder.Encode inside the body. Maps the function object to the
	// index of that parameter.
	wrappers := make(map[types.Object]int)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			paramIdx := make(map[types.Object]int)
			i := 0
			for _, fld := range fn.Type.Params.List {
				for _, name := range fld.Names {
					if obj := info.Defs[name]; obj != nil {
						paramIdx[obj] = i
					}
					i++
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isMarshalCall(info, call) || len(call.Args) == 0 {
					return true
				}
				if id, ok := call.Args[0].(*ast.Ident); ok {
					if idx, ok := paramIdx[info.Uses[id]]; ok {
						wrappers[info.Defs[fn.Name]] = idx
					}
				}
				return true
			})
		}
	}

	w := &jsonWalk{
		pass:      pass,
		seenType:  make(map[types.Type]bool),
		seenField: make(map[*types.Var]bool),
		seenSite:  make(map[token.Pos]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv != nil && fn.Name.Name == "MarshalJSON" {
				// The method owns its type's non-finite handling; its
				// internal marshal calls are the implementation of that
				// handling, not a leak.
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var root ast.Expr
				switch {
				case isMarshalCall(info, call) && len(call.Args) > 0:
					root = call.Args[0]
				default:
					// A call to a detected wrapper (writeJSON(w, status, v)).
					var callee types.Object
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						callee = info.Uses[fun]
					case *ast.SelectorExpr:
						callee = info.Uses[fun.Sel]
					}
					if idx, ok := wrappers[callee]; ok && idx < len(call.Args) {
						root = call.Args[idx]
					}
				}
				if root == nil {
					return true
				}
				tv, ok := info.Types[root]
				if !ok {
					return true
				}
				w.site = pass.Load.Fset.Position(call.Pos())
				w.walk(tv.Type, call.Pos())
				return true
			})
		}
	}
}

// isMarshalCall recognises json.Marshal, json.MarshalIndent and
// (*json.Encoder).Encode from encoding/json.
func isMarshalCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/json" {
		return false
	}
	switch obj.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		return true
	}
	return false
}

type jsonWalk struct {
	pass      *Pass
	site      token.Position
	seenType  map[types.Type]bool
	seenField map[*types.Var]bool
	seenSite  map[token.Pos]bool
}

// walk descends the type reachable from a marshal site. callPos is used
// only when the root itself is a bare float (no field to anchor to).
func (w *jsonWalk) walk(t types.Type, callPos token.Pos) {
	w.walkShadowed(t, callPos, nil)
}

// walkShadowed is walk with the set of JSON field names already claimed
// by an outer embedding level: encoding/json resolves name conflicts in
// favour of the shallower field, so a promoted float64 hidden by an
// outer jsonFloat of the same name is never marshalled.
func (w *jsonWalk) walkShadowed(t types.Type, callPos token.Pos, shadowed map[string]bool) {
	if w.seenType[t] {
		return
	}
	w.seenType[t] = true
	defer delete(w.seenType, t) // per-root cycle guard, not a global memo

	if hasMarshalJSON(t) {
		return // custom marshaller owns its non-finite story
	}
	if isFloat(t) {
		if !w.seenSite[callPos] {
			w.seenSite[callPos] = true
			w.pass.Reportf(callPos, "float64 value marshalled directly at %s — non-finite values make json.Marshal fail", w.site)
		}
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		if isFloat(u.Elem()) {
			return // the blessed null-for-non-finite shadow shape
		}
		w.walkShadowed(u.Elem(), callPos, shadowed)
	case *types.Slice:
		w.walkShadowed(u.Elem(), callPos, nil)
	case *types.Array:
		w.walkShadowed(u.Elem(), callPos, nil)
	case *types.Map:
		w.walkShadowed(u.Elem(), callPos, nil)
	case *types.Struct:
		// Names claimed at this level shadow same-named promoted fields
		// of the embedded structs one level down.
		claimed := make(map[string]bool)
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if fld.Embedded() || !fld.Exported() || tagName(u.Tag(i)) == "-" {
				continue
			}
			claimed[jsonFieldName(fld, u.Tag(i))] = true
		}
		for k := range shadowed {
			claimed[k] = true
		}
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			if tagName(u.Tag(i)) == "-" {
				continue
			}
			if fld.Embedded() {
				w.walkShadowed(fld.Type(), callPos, claimed)
				continue
			}
			if !fld.Exported() || shadowed[jsonFieldName(fld, u.Tag(i))] {
				continue
			}
			ft := fld.Type()
			if isFloat(ft) && !hasMarshalJSON(ft) {
				if !w.seenField[fld] {
					w.seenField[fld] = true
					w.pass.Reportf(fld.Pos(), "float64 field %s is reachable from json.Marshal at %s — non-finite values make the whole marshal fail",
						fld.Name(), w.site)
				}
				continue
			}
			w.walkShadowed(ft, callPos, nil)
		}
	}
}

// jsonFieldName is the name encoding/json marshals the field under.
func jsonFieldName(fld *types.Var, tag string) string {
	if n := tagName(tag); n != "" {
		return n
	}
	return fld.Name()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.Float32)
}

// hasMarshalJSON reports whether *T or T has a MarshalJSON method.
func hasMarshalJSON(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, nil, "MarshalJSON")
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// tagName extracts the name part of a json struct tag ("-", "foo", ...).
func tagName(tag string) string {
	v, ok := lookupTag(tag, "json")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(v, ','); i >= 0 {
		v = v[:i]
	}
	return v
}

// lookupTag is reflect.StructTag.Lookup without importing reflect into
// the analysis (struct tags here are already raw strings).
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' && tag[i] != 0x7f {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		qvalue := tag[:i+1]
		tag = tag[i+1:]
		if key == name {
			return strings.Trim(qvalue, `"`), true
		}
	}
	return "", false
}

// pathHasSuffix reports whether pkgPath ends with (or contains, for the
// testdata mirrors) one of the scope suffixes.
func pathHasSuffix(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}
