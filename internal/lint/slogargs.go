package lint

import (
	"go/ast"
	"go/types"
)

// slogargs: log/slog's variadic key/value convention is unchecked at
// compile time — an odd number of trailing args or a non-string key
// silently logs a !BADKEY attribute, so the structured log line that was
// supposed to carry the evidence carries garbage instead. This analyzer
// checks every slog call with a statically known argument list: after
// the message (and level/context, where the variant takes them), args
// must pair up as string-key/value, with slog.Attr values consuming one
// slot. Calls spreading a slice (args...) are skipped — arity is not
// decidable statically.
var analyzerSlogArgs = &Analyzer{
	Name: "slogargs",
	Doc:  "slog key/value args must pair up with string keys",
	Hint: "add the missing value, or make the key a string (or use slog.Attr)",
	Run:  runSlogArgs,
}

// slogKVStart maps slog function/method names to the index of the first
// key/value argument.
var slogKVStart = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log":   3, // (ctx, level, msg, args...)
	"With":  0,
	"Group": 1,
}

func runSlogArgs(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Ellipsis.IsValid() {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			start, ok := slogKVStart[sel.Sel.Name]
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
				return true
			}
			if start > len(call.Args) {
				return true // malformed enough for the compiler to own
			}
			args := call.Args[start:]
			for i := 0; i < len(args); {
				if isSlogAttr(info, args[i]) {
					i++
					continue
				}
				if !isStringish(info, args[i]) {
					pass.Reportf(args[i].Pos(), "slog key is %s, not a string (logs as !BADKEY)", typeOf(info, args[i]))
					return true
				}
				if i+1 >= len(args) {
					pass.Reportf(args[i].Pos(), "odd number of slog key/value args: key %s has no value", exprKey(args[i]))
					return true
				}
				i += 2
			}
			return true
		})
	}
}

func isSlogAttr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "log/slog" && obj.Name() == "Attr"
}

func isStringish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return true // no type info: give the benefit of the doubt
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeOf(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok {
		return tv.Type.String()
	}
	return "unknown"
}
