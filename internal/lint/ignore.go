package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignore is one parsed //lint:ignore comment.
type ignore struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// badIgnore is a malformed suppression comment, reported as a finding.
type badIgnore struct {
	pos token.Position
	msg string
}

// ignoreIndex locates suppression comments by (file, line). A finding at
// line L is suppressed by a matching ignore on L (end-of-line comment)
// or L-1 (comment on its own line above the flagged statement).
type ignoreIndex struct {
	byLine    map[string]map[int][]*ignore
	all       []*ignore
	malformed []badIgnore
}

const ignorePrefix = "lint:ignore"

// knownAnalyzers is the set of names an ignore may reference: the suite
// plus the zero-alloc gate and staleignore itself is deliberately absent
// (an unsuppressable meta-check keeps the mechanism honest).
func knownAnalyzers() map[string]bool {
	m := map[string]bool{"zeroalloc": true}
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// collectIgnores parses every //lint:ignore comment in the loaded files.
func collectIgnores(load *Load) *ignoreIndex {
	idx := &ignoreIndex{byLine: make(map[string]map[int][]*ignore)}
	known := knownAnalyzers()
	for _, pkg := range load.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := load.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						idx.malformed = append(idx.malformed, badIgnore{pos, "//lint:ignore without an analyzer name"})
						continue
					case len(fields) == 1:
						idx.malformed = append(idx.malformed, badIgnore{pos,
							fmt.Sprintf("//lint:ignore %s without a reason — say why the rule does not apply", fields[0])})
						continue
					case !known[fields[0]]:
						idx.malformed = append(idx.malformed, badIgnore{pos,
							fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0])})
						continue
					}
					ig := &ignore{
						analyzer: fields[0],
						reason:   strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
						pos:      pos,
					}
					idx.all = append(idx.all, ig)
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*ignore)
						idx.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], ig)
				}
			}
		}
	}
	return idx
}

// suppress reports whether a finding by analyzer at pos is covered by an
// ignore comment, marking the ignore as used.
func (idx *ignoreIndex) suppress(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, ig := range lines[line] {
			if ig.analyzer == analyzer {
				ig.used = true
				return true
			}
		}
	}
	return false
}

// Annotation directives: the grammar has exactly two productions,
//
//	//enduratrace:guarded-by <mutexField>   (on a struct field)
//	//enduratrace:zeroalloc                 (on a function declaration)
//
// validateDirectives reports any //enduratrace: comment outside that
// grammar, so a typo'd annotation fails loudly instead of silently
// guarding nothing.
const directivePrefix = "enduratrace:"

func validateDirectives(load *Load, r *runner) {
	for _, pkg := range load.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, directivePrefix)
					fields := strings.Fields(rest)
					pos := load.Fset.Position(c.Pos())
					bad := func(msg string) {
						r.findings = append(r.findings, Finding{
							Analyzer: "directive",
							Pos:      pos,
							File:     relPath(load.Root, pos.Filename),
							Line:     pos.Line,
							Col:      pos.Column,
							Message:  msg,
							Hint:     "the grammar is //enduratrace:guarded-by <mutexField> or //enduratrace:zeroalloc",
						})
					}
					switch {
					case len(fields) == 0:
						bad("//enduratrace: directive without a name")
					case fields[0] == "guarded-by":
						if len(fields) != 2 {
							bad("//enduratrace:guarded-by needs exactly one mutex field name")
						}
					case fields[0] == "zeroalloc":
						if len(fields) != 1 {
							bad("//enduratrace:zeroalloc takes no arguments")
						}
					default:
						bad(fmt.Sprintf("unknown //enduratrace: directive %q", fields[0]))
					}
				}
			}
		}
	}
}

// fieldDirective scans a struct field's comments (doc and trailing) for
// an //enduratrace:guarded-by directive, returning the named mutex field.
func fieldDirective(field *ast.Field) (mutex string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			fields := strings.Fields(text)
			if len(fields) == 2 && fields[0] == directivePrefix+"guarded-by" {
				return fields[1], true
			}
		}
	}
	return "", false
}

// funcHasDirective reports whether a function declaration's doc comment
// carries the given //enduratrace: directive (e.g. "zeroalloc").
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directivePrefix+name {
			return true
		}
	}
	return false
}
