package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden suite: testdata/src is a separate module of deliberately
// broken packages, one per analyzer. Expected findings are `// want "re"`
// comments on the offending lines (multiple regexes per line allowed);
// the regex matches against "analyzer: message". Every finding must be
// wanted and every want must find — asymmetry either way is a failure.
// The badmeta package is the exception: its malformed comments cannot
// carry same-line markers without changing what they parse as, so its
// expectations are the pattern table in TestGoldenSuite.

func testdataRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("testdata module missing: %v", err)
	}
	return root
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every .go file under root for `// want "re"` markers.
func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", rel, line, m[1], err)
				}
				wants = append(wants, &want{file: rel, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no want markers found in testdata")
	}
	return wants
}

func TestGoldenSuite(t *testing.T) {
	root := testdataRoot(t)
	findings, err := Run(root, []string{"./..."}, Options{ZeroAlloc: true})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, root)
	byPos := make(map[string][]*want)
	for _, w := range wants {
		key := fmt.Sprintf("%s:%d", w.file, w.line)
		byPos[key] = append(byPos[key], w)
	}

	// badmeta's expectations: every finding there must match a pattern,
	// every pattern must match a finding.
	badmetaPatterns := []*regexp.Regexp{
		regexp.MustCompile(`staleignore: .*without a reason`),
		regexp.MustCompile(`staleignore: .*unknown analyzer "gofancy"`),
		regexp.MustCompile(`floateq: == on float operands`),
		regexp.MustCompile(`directive: .*needs exactly one mutex field name`),
		regexp.MustCompile(`directive: .*unknown //enduratrace: directive "frobnicate"`),
	}
	badmetaHits := make([]int, len(badmetaPatterns))

	for _, f := range findings {
		text := f.Analyzer + ": " + f.Message
		if strings.HasPrefix(filepath.ToSlash(f.File), "badmeta/") {
			matched := false
			for i, re := range badmetaPatterns {
				if re.MatchString(text) {
					badmetaHits[i]++
					matched = true
				}
			}
			if !matched {
				t.Errorf("unexpected badmeta finding: %s", f)
			}
			continue
		}
		matched := false
		for _, w := range byPos[fmt.Sprintf("%s:%d", f.File, f.Line)] {
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no finding", w.file, w.line, w.re)
		}
	}
	for i, n := range badmetaHits {
		if n == 0 {
			t.Errorf("badmeta: pattern %q matched no finding", badmetaPatterns[i])
		}
	}
}

// TestStaleIgnoreOnlyForRanAnalyzers: an ignore naming an analyzer that
// did not run this invocation is not stale — running a single analyzer
// must not report every other analyzer's ignores.
func TestStaleIgnoreOnlyForRanAnalyzers(t *testing.T) {
	root := testdataRoot(t)
	findings, err := Run(root, []string{"./floateq"}, Options{
		Analyzers: []*Analyzer{analyzerMonotime},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding with only monotime running: %s", f)
	}
}

// TestFindingString pins the canonical rendering CI greps for.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "floateq", File: "a/b.go", Line: 3, Col: 9,
		Message: "== on float operands", Hint: "compare with an epsilon"}
	got := f.String()
	want := "a/b.go:3:9: floateq: == on float operands (fix: compare with an epsilon)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestParseDiag covers the -m diagnostic splitter the zero-alloc gate
// feeds on.
func TestParseDiag(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		ok   bool
	}{
		{"internal/lof/lof.go:240:9: fmt.Sprintf(...) escapes to heap", "internal/lof/lof.go", 240, true},
		{"# enduratrace/internal/lof", "", 0, false},
		{"", "", 0, false},
		{"not a diagnostic", "", 0, false},
	}
	for _, c := range cases {
		file, line, _, _, ok := parseDiag(c.in)
		if ok != c.ok || file != c.file || line != c.line {
			t.Errorf("parseDiag(%q) = %q,%d,%v; want %q,%d,%v", c.in, file, line, ok, c.file, c.line, c.ok)
		}
	}
}

// TestIsHeapEscape: "does not escape" must never read as an escape.
func TestIsHeapEscape(t *testing.T) {
	if isHeapEscape("q does not escape") {
		t.Error("'does not escape' classified as escape")
	}
	if !isHeapEscape("moved to heap: x") || !isHeapEscape("make([]float64, n) escapes to heap") {
		t.Error("real escapes not classified")
	}
}
