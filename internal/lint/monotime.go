package lint

import (
	"go/ast"
	"strings"
)

// monotime: time.Now() is forbidden in the hot-path packages — the
// pipeline's timestamp currency is obs.Now() (monotonic nanoseconds
// since process start), which is immune to wall-clock steps and keeps
// per-event metadata flat. A stray time.Now() in a scoring or queue
// path both allocates nothing *visible* and silently re-introduces
// wall-clock skew into latency math (the PR 7 family). Legitimately
// wall-clock sites — net deadlines, displayed timestamps, incident
// Wall fields — carry a validated //lint:ignore monotime <reason>.
var analyzerMonotime = &Analyzer{
	Name: "monotime",
	Doc:  "time.Now() is forbidden in hot-path packages; use obs.Now()",
	Hint: "use obs.Now() for monotonic pipeline time, or //lint:ignore monotime <why wall clock is required>",
	Run:  runMonotime,
}

// monotimeScopeSuffixes: the packages where wall-clock reads are
// quarantined. obs itself is included — its only time.Now() is the
// monotonic epoch, under a validated ignore.
var monotimeScopeSuffixes = []string{
	"/internal/lof",
	"/internal/distance",
	"/internal/pmf",
	"/internal/obs",
	"/internal/core",
	"/internal/serve",
	"lint/testdata/src/monotime",
}

func runMonotime(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path, monotimeScopeSuffixes) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && obj.Name() == "Now" {
				pass.Reportf(call.Pos(), "time.Now() in hot-path package %s", shortPkg(pass.Pkg.Path))
			}
			return true
		})
	}
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
