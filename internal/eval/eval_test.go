package eval

import (
	"encoding/json"
	"testing"
	"time"
)

// smallOptions shrinks the experiment so the test runs in a few seconds
// even under the race detector: a 40 s reference run and a 2-minute
// perturbed run with two strong perturbations.
func smallOptions() Options {
	opts := DefaultOptions()
	opts.RefDuration = 40 * time.Second
	opts.RunDuration = 2 * time.Minute
	opts.Factor = 3
	opts.PerturbFirst = 30 * time.Second
	opts.PerturbPeriod = 50 * time.Second
	opts.PerturbDuration = 15 * time.Second
	return opts
}

func TestRunProducesPaperMetrics(t *testing.T) {
	opts := smallOptions()
	var ticks []Progress
	opts.ProgressInterval = 20 * time.Second
	opts.OnProgress = func(p Progress) { ticks = append(ticks, p) }
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPerturbations != 2 {
		t.Fatalf("schedule has %d perturbations, want 2", rep.TotalPerturbations)
	}
	if rep.DetectedPerturbations == 0 {
		t.Fatal("no perturbation detected")
	}
	if rep.ReductionFactor == nil || *rep.ReductionFactor <= 1 {
		t.Fatalf("reduction factor %v, want > 1", rep.ReductionFactor)
	}
	// Progress ticks: a 2-minute run at a 20 s interval reports several
	// times, with monotonically increasing trace time and counters.
	if len(ticks) < 3 {
		t.Fatalf("got %d progress ticks, want >= 3", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i].TraceTime <= ticks[i-1].TraceTime || ticks[i].Windows <= ticks[i-1].Windows {
			t.Fatalf("progress not monotonic: %+v then %+v", ticks[i-1], ticks[i])
		}
	}
	if rep.RecordedBytes <= 0 || rep.RecordedBytes >= rep.FullBytes {
		t.Fatalf("recorded %d of %d bytes", rep.RecordedBytes, rep.FullBytes)
	}
	if rep.Precision <= 0 || rep.Precision > 1 {
		t.Fatalf("precision %g outside (0,1]", rep.Precision)
	}
	if rep.Recall <= 0 || rep.Recall > 1 {
		t.Fatalf("recall %g outside (0,1]", rep.Recall)
	}
	for _, p := range rep.Perturbations {
		if !p.Detected {
			continue
		}
		if p.DeltaSMs == nil || p.DeltaEMs == nil {
			t.Fatalf("detected perturbation missing Δs/Δe: %+v", p)
		}
		if *p.DeltaSMs < 0 {
			t.Fatalf("negative Δs: %+v", p)
		}
		// Detection must begin inside or shortly after the interval, not
		// tens of seconds later.
		if *p.DeltaSMs > 10_000 {
			t.Fatalf("Δs %g ms implausibly large", *p.DeltaSMs)
		}
	}
	if rep.Windows == 0 || rep.GateTrips == 0 || rep.Anomalies == 0 {
		t.Fatalf("degenerate run stats: %+v", rep)
	}
	if rep.Anomalies != rep.RecordedWindows {
		t.Fatalf("anomalies %d != recorded windows %d", rep.Anomalies, rep.RecordedWindows)
	}
}

func TestReportMarshalsToJSON(t *testing.T) {
	rep, err := Run(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"reduction_factor", "precision", "recall", "perturbations",
		"mean_delta_s_ms", "mean_delta_e_ms"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q", key)
		}
	}
}

func TestNoPerturbationMeansFewRecordings(t *testing.T) {
	opts := smallOptions()
	opts.Factor = 1 // clean run: the monitor should record almost nothing
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPerturbations != 0 {
		t.Fatalf("clean run reports %d perturbations", rep.TotalPerturbations)
	}
	// False positives are allowed but must be rare: under 2% of windows.
	if frac := float64(rep.Anomalies) / float64(rep.Windows); frac > 0.02 {
		t.Fatalf("clean run flagged %.1f%% of windows", frac*100)
	}
	// A clean run records little or nothing; nil means literally nothing
	// was recorded (infinite reduction), which is also fine.
	if rep.ReductionFactor != nil && *rep.ReductionFactor <= 10 {
		t.Fatalf("clean-run reduction factor %g suspiciously low", *rep.ReductionFactor)
	}
	if rep.ReductionFactor == nil && rep.RecordedBytes != 0 {
		t.Fatalf("nil reduction factor with %d recorded bytes", rep.RecordedBytes)
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.RefDuration = 0 },
		func(o *Options) { o.RunDuration = -time.Second },
		func(o *Options) { o.Factor = 0.5 },
		func(o *Options) { o.Slack = -time.Second },
		func(o *Options) { o.RunSeedOffset = 0 },
	}
	for i, mutate := range bad {
		opts := smallOptions()
		mutate(&opts)
		if _, err := Run(opts); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
}
