package eval

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"enduratrace/internal/perturb"
)

// batchSpan mirrors the pre-streaming scorer's input: one decided window.
type batchSpan struct {
	start, end time.Duration
	anomalous  bool
}

// batchScore is the original batch implementation of detection scoring
// (quadratic scan over all effect intervals, whole decision slice in
// memory), kept here as the reference the streaming Scorer must match.
func batchScore(rep *Report, decisions []batchSpan, truth []perturb.Interval, slack, warmup time.Duration) {
	effect := make([]perturb.Interval, len(truth))
	for i, iv := range truth {
		end := iv.End + slack
		if i+1 < len(truth) && end > truth[i+1].Start {
			end = truth[i+1].Start
		}
		effect[i] = perturb.Interval{Start: iv.Start, End: end}
	}
	overlaps := func(s batchSpan, iv perturb.Interval) bool {
		return s.start < iv.End && iv.Start < s.end
	}

	var tp, fp, truthPos int
	firstAnom := make([]time.Duration, len(truth))
	lastAnom := make([]time.Duration, len(truth))
	counts := make([]int, len(truth))
	for i := range firstAnom {
		firstAnom[i] = -1
	}
	for _, d := range decisions {
		if d.start < warmup {
			continue
		}
		hit := -1
		for i, iv := range effect {
			if overlaps(d, iv) {
				hit = i
				break
			}
		}
		if hit >= 0 {
			truthPos++
		}
		if !d.anomalous {
			continue
		}
		if hit < 0 {
			fp++
			continue
		}
		tp++
		counts[hit]++
		if firstAnom[hit] < 0 {
			firstAnom[hit] = d.start
		}
		lastAnom[hit] = d.end
	}

	if tp+fp > 0 {
		rep.Precision = float64(tp) / float64(tp+fp)
	}
	if truthPos > 0 {
		rep.Recall = float64(tp) / float64(truthPos)
	}
	rep.TotalPerturbations = len(truth)
	var dss, des []float64
	for i, iv := range truth {
		p := Perturbation{StartS: iv.Start.Seconds(), EndS: iv.End.Seconds(), Windows: counts[i]}
		if counts[i] > 0 {
			p.Detected = true
			rep.DetectedPerturbations++
			ds := (firstAnom[i] - iv.Start).Seconds() * 1000
			if ds < 0 {
				ds = 0
			}
			de := (lastAnom[i] - iv.End).Seconds() * 1000
			p.DeltaSMs = &ds
			p.DeltaEMs = &de
			dss = append(dss, ds)
			des = append(des, de)
		}
		rep.Perturbations = append(rep.Perturbations, p)
	}
	var sum float64
	if len(dss) > 0 {
		for _, v := range dss {
			sum += v
		}
		rep.MeanDeltaSMs = sum / float64(len(dss))
		sum = 0
		for _, v := range des {
			sum += v
		}
		rep.MeanDeltaEMs = sum / float64(len(des))
	}
}

func reportsEqual(t *testing.T, got, want *Report) {
	t.Helper()
	near := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	if !near(got.Precision, want.Precision) || !near(got.Recall, want.Recall) {
		t.Fatalf("precision/recall %g/%g, want %g/%g",
			got.Precision, got.Recall, want.Precision, want.Recall)
	}
	if got.TotalPerturbations != want.TotalPerturbations ||
		got.DetectedPerturbations != want.DetectedPerturbations {
		t.Fatalf("perturbation counts %d/%d, want %d/%d",
			got.DetectedPerturbations, got.TotalPerturbations,
			want.DetectedPerturbations, want.TotalPerturbations)
	}
	if !near(got.MeanDeltaSMs, want.MeanDeltaSMs) || !near(got.MeanDeltaEMs, want.MeanDeltaEMs) {
		t.Fatalf("mean Δs/Δe %g/%g, want %g/%g",
			got.MeanDeltaSMs, got.MeanDeltaEMs, want.MeanDeltaSMs, want.MeanDeltaEMs)
	}
	if len(got.Perturbations) != len(want.Perturbations) {
		t.Fatalf("%d perturbation entries, want %d", len(got.Perturbations), len(want.Perturbations))
	}
	for i := range got.Perturbations {
		g, w := got.Perturbations[i], want.Perturbations[i]
		if g.Detected != w.Detected || g.Windows != w.Windows ||
			!near(g.StartS, w.StartS) || !near(g.EndS, w.EndS) {
			t.Fatalf("perturbation %d: %+v, want %+v", i, g, w)
		}
		if g.Detected && (!near(*g.DeltaSMs, *w.DeltaSMs) || !near(*g.DeltaEMs, *w.DeltaEMs)) {
			t.Fatalf("perturbation %d deltas %g/%g, want %g/%g",
				i, *g.DeltaSMs, *g.DeltaEMs, *w.DeltaSMs, *w.DeltaEMs)
		}
	}
}

func TestScorerHandChecked(t *testing.T) {
	truth := []perturb.Interval{
		{Start: 1 * time.Second, End: 2 * time.Second},
		{Start: 4 * time.Second, End: 5 * time.Second},
	}
	s := NewScorer(truth, 500*time.Millisecond, 200*time.Millisecond)
	win := 100 * time.Millisecond
	// Windows: one ignored by warmup, one clean before the interval, two
	// anomalous inside interval 0, one anomalous in interval 0's slack,
	// one anomalous false positive at 3 s, interval 1 never detected.
	obs := []struct {
		at   time.Duration
		anom bool
	}{
		{0, true},                       // < warmup: ignored entirely
		{500 * time.Millisecond, false}, // clean, outside truth
		{1100 * time.Millisecond, true}, // in interval 0
		{1300 * time.Millisecond, true}, // in interval 0
		{2200 * time.Millisecond, true}, // in interval 0's slack region
		{3 * time.Second, true},         // false positive
		{4500 * time.Millisecond, false},
	}
	for _, o := range obs {
		s.Observe(o.at, o.at+win, o.anom)
	}
	var rep Report
	s.Finish(&rep)

	if rep.Precision != 0.75 { // 3 of 4 anomalous windows inside effect regions
		t.Fatalf("precision %g, want 0.75", rep.Precision)
	}
	// truth-positive windows: 1100, 1300, 2200, 4500 → recall 3/4.
	if rep.Recall != 0.75 {
		t.Fatalf("recall %g, want 0.75", rep.Recall)
	}
	if rep.DetectedPerturbations != 1 || rep.TotalPerturbations != 2 {
		t.Fatalf("detected %d/%d", rep.DetectedPerturbations, rep.TotalPerturbations)
	}
	p0 := rep.Perturbations[0]
	if !p0.Detected || p0.Windows != 3 {
		t.Fatalf("interval 0: %+v", p0)
	}
	if *p0.DeltaSMs != 100 { // first anomalous window starts 1.1 s, onset 1 s
		t.Fatalf("Δs %g ms, want 100", *p0.DeltaSMs)
	}
	if *p0.DeltaEMs != 300 { // last anomalous window ends 2.3 s, offset 2 s
		t.Fatalf("Δe %g ms, want 300", *p0.DeltaEMs)
	}
	if rep.Perturbations[1].Detected {
		t.Fatalf("interval 1 should be undetected: %+v", rep.Perturbations[1])
	}
}

// TestScorerMatchesBatchOnRandomFixtures drives the streaming scorer and
// the original batch implementation over randomised sequential window
// streams and periodic-ish truth schedules; every scored field must match.
func TestScorerMatchesBatchOnRandomFixtures(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))

		// Random disjoint truth schedule.
		var truth []perturb.Interval
		at := time.Duration(rng.Intn(2000)) * time.Millisecond
		for i := 0; i < 1+rng.Intn(5); i++ {
			start := at + time.Duration(500+rng.Intn(3000))*time.Millisecond
			end := start + time.Duration(200+rng.Intn(2000))*time.Millisecond
			truth = append(truth, perturb.Interval{Start: start, End: end})
			at = end
		}
		slack := time.Duration(rng.Intn(1000)) * time.Millisecond
		warmup := time.Duration(rng.Intn(800)) * time.Millisecond

		// Sequential 40 ms windows over the whole horizon with random
		// anomaly flags (denser inside the truth intervals).
		horizon := at + 2*time.Second
		win := 40 * time.Millisecond
		var decisions []batchSpan
		for s := time.Duration(0); s < horizon; s += win {
			d := batchSpan{start: s, end: s + win}
			p := 0.05
			for _, iv := range truth {
				if s < iv.End && iv.Start < s+win {
					p = 0.6
				}
			}
			d.anomalous = rng.Float64() < p
			decisions = append(decisions, d)
		}

		var want Report
		batchScore(&want, decisions, truth, slack, warmup)

		sc := NewScorer(truth, slack, warmup)
		for _, d := range decisions {
			sc.Observe(d.start, d.end, d.anomalous)
		}
		var got Report
		sc.Finish(&got)

		reportsEqual(t, &got, &want)
	}
}
