package eval

import (
	"time"

	"enduratrace/internal/perturb"
	"enduratrace/internal/stats"
)

// Scorer scores monitor decisions against a ground-truth perturbation
// schedule incrementally: decisions are consumed one at a time, in window
// order, and only O(len(truth)) state is retained. This is what lets a
// soak-length run (the paper's 6 h 17 m scale) be scored in constant
// memory instead of holding every window decision in a slice.
//
// Semantics match the original batch scorer: an anomalous window is
// credited to the first ground-truth interval whose effect region (the
// interval extended by slack, clipped at the next interval's start) it
// overlaps; windows starting before warmup are ignored entirely.
type Scorer struct {
	truth  []perturb.Interval
	effect []perturb.Interval
	slack  time.Duration
	warmup time.Duration

	// cursor indexes the first effect interval whose end is still ahead of
	// the decision stream; it only moves forward, making Observe O(1)
	// amortised.
	cursor int

	tp, fp, truthPos int
	firstAnom        []time.Duration
	lastAnom         []time.Duration
	counts           []int
}

// NewScorer builds a scorer for the ground-truth schedule. truth must be
// sorted by start and non-overlapping (perturb.Periodic's output);
// decisions must subsequently be observed in non-decreasing window-start
// order, which is how the monitor emits them.
func NewScorer(truth []perturb.Interval, slack, warmup time.Duration) *Scorer {
	s := &Scorer{
		truth:     truth,
		effect:    make([]perturb.Interval, len(truth)),
		slack:     slack,
		warmup:    warmup,
		firstAnom: make([]time.Duration, len(truth)),
		lastAnom:  make([]time.Duration, len(truth)),
		counts:    make([]int, len(truth)),
	}
	// effect[i] is the region in which anomalous windows are credited to
	// truth[i]: the interval plus trailing slack, clipped at the next
	// interval's start so detections are attributed unambiguously.
	for i, iv := range truth {
		end := iv.End + slack
		if i+1 < len(truth) && end > truth[i+1].Start {
			end = truth[i+1].Start
		}
		s.effect[i] = perturb.Interval{Start: iv.Start, End: end}
	}
	for i := range s.firstAnom {
		s.firstAnom[i] = -1
	}
	return s
}

// Observe folds one window decision into the score.
func (s *Scorer) Observe(start, end time.Duration, anomalous bool) {
	if start < s.warmup {
		return
	}
	for s.cursor < len(s.effect) && s.effect[s.cursor].End <= start {
		s.cursor++
	}
	hit := -1
	if s.cursor < len(s.effect) {
		iv := s.effect[s.cursor]
		if start < iv.End && iv.Start < end {
			hit = s.cursor
		}
	}
	if hit >= 0 {
		s.truthPos++
	}
	if !anomalous {
		return
	}
	if hit < 0 {
		s.fp++
		return
	}
	s.tp++
	s.counts[hit]++
	if s.firstAnom[hit] < 0 {
		s.firstAnom[hit] = start
	}
	s.lastAnom[hit] = end
}

// Finish fills the precision/recall and per-perturbation Δs/Δe fields of
// rep from everything observed so far.
func (s *Scorer) Finish(rep *Report) {
	rep.ScoredAnomalousWindows = s.tp + s.fp
	rep.TruthWindows = s.truthPos
	if s.tp+s.fp > 0 {
		rep.Precision = float64(s.tp) / float64(s.tp+s.fp)
	}
	if s.truthPos > 0 {
		rep.Recall = float64(s.tp) / float64(s.truthPos)
	}

	rep.TotalPerturbations = len(s.truth)
	var dss, des stats.Running
	for i, iv := range s.truth {
		p := Perturbation{StartS: iv.Start.Seconds(), EndS: iv.End.Seconds(), Windows: s.counts[i]}
		if s.counts[i] > 0 {
			p.Detected = true
			rep.DetectedPerturbations++
			ds := (s.firstAnom[i] - iv.Start).Seconds() * 1000
			if ds < 0 {
				ds = 0 // the first anomalous window straddles the onset
			}
			de := (s.lastAnom[i] - iv.End).Seconds() * 1000
			p.DeltaSMs = &ds
			p.DeltaEMs = &de
			dss.Add(ds)
			des.Add(de)
		}
		rep.Perturbations = append(rep.Perturbations, p)
	}
	if dss.N() > 0 {
		rep.MeanDeltaSMs = dss.Mean()
		rep.MeanDeltaEMs = des.Mean()
	}
}
