// Package eval reproduces the paper's §III experiment end-to-end: it
// generates a clean reference run and a perturbed run of the simulated
// pipeline, learns the reference model with core.Learn, monitors the
// perturbed run with core.Run, and scores the outcome against the
// ground-truth perturbation schedule.
//
// Three families of metrics come out:
//
//   - the headline storage metric, RunStats.ReductionFactor (full trace
//     bytes over recorded bytes);
//   - detection latency per perturbation, Δs (perturbation start → first
//     anomalous window) and Δe (perturbation end → last anomalous window),
//     the quantities §III bounds;
//   - window-level precision/recall of the recorded windows against the
//     ground-truth perturbation intervals.
package eval

import (
	"fmt"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/perturb"
	"enduratrace/internal/recorder"
	"enduratrace/internal/stats"
)

// Options configures one experiment.
type Options struct {
	// Seed drives both simulations (the perturbed run uses
	// Seed+RunSeedOffset so the two traces are independent draws of the
	// same workload).
	Seed int64
	// RunSeedOffset separates the perturbed run's RNG stream from the
	// reference stream; it must be non-zero or the two runs would replay
	// the same randomness. Single experiments use 1; multi-seed sweeps use
	// a large offset so that seed s's run stream cannot collide with seed
	// s+1's reference stream.
	RunSeedOffset int64
	// RefDuration is the length of the clean reference run fed to Learn.
	RefDuration time.Duration
	// RunDuration is the length of the perturbed, monitored run.
	RunDuration time.Duration
	// Factor is the CPU slowdown during a perturbation (>= 1; 1 disables).
	Factor float64
	// PerturbFirst/PerturbPeriod/PerturbDuration lay out the periodic
	// perturbation schedule, mirroring §III's "every 3 minutes for 20 s".
	PerturbFirst    time.Duration
	PerturbPeriod   time.Duration
	PerturbDuration time.Duration
	// Slack extends each ground-truth interval at its end when matching
	// anomalous windows: the frame queue delays both the visible onset and
	// the recovery, so detections legitimately trail the interval.
	Slack time.Duration
	// Warmup excludes the pipeline's startup transient (prebuffering) from
	// precision/recall accounting.
	Warmup time.Duration
	// Sim is the base pipeline configuration; Duration, Load and Seed are
	// overridden per run.
	Sim mediasim.Config
	// Core is the monitor configuration.
	Core core.Config
	// OnProgress, when non-nil, receives a snapshot roughly every
	// ProgressInterval of trace time during the monitored run. Soak mode
	// uses it for periodic progress lines; it does not affect results.
	OnProgress func(Progress)
	// ProgressInterval is the trace time between OnProgress calls
	// (default 30 s when OnProgress is set).
	ProgressInterval time.Duration
}

// Progress is the snapshot passed to Options.OnProgress while the
// monitored run streams.
type Progress struct {
	// TraceTime is the end of the last processed window.
	TraceTime time.Duration
	Windows   int
	GateTrips int
	Anomalies int
	// RecordedBytes is the size of everything recorded so far.
	RecordedBytes int64
}

// DefaultOptions returns a paper-shaped experiment scaled to run in a few
// seconds: a 2-minute reference run and a 10-minute perturbed run with five
// 20-second factor-3 CPU hogs.
// The monitor thresholds differ from §III's (alpha 1.2, tight gate): the
// simulator's 40 ms windows hold ~42 events, so their multinomial noise
// puts the reference train-LOF p95 near 2.0; alpha 2.5 sits just above
// that floor, and the 0.1 gate keeps LOF engaged through the interior of a
// stalled regime instead of only at its edges.
func DefaultOptions() Options {
	cc := core.NewConfig(mediasim.NumEventTypes)
	cc.IncludeRate = true
	cc.Alpha = 2.5
	cc.GateThreshold = 0.1
	return Options{
		Seed:            1,
		RunSeedOffset:   1,
		RefDuration:     2 * time.Minute,
		RunDuration:     10 * time.Minute,
		Factor:          3,
		PerturbFirst:    60 * time.Second,
		PerturbPeriod:   2 * time.Minute,
		PerturbDuration: 20 * time.Second,
		Slack:           5 * time.Second,
		Warmup:          5 * time.Second,
		Sim:             mediasim.DefaultConfig(),
		Core:            cc,
	}
}

// Validate reports option errors beyond what core/mediasim validate
// themselves.
func (o Options) Validate() error {
	switch {
	case o.RefDuration <= 0:
		return fmt.Errorf("eval: RefDuration %v must be positive", o.RefDuration)
	case o.RunDuration <= 0:
		return fmt.Errorf("eval: RunDuration %v must be positive", o.RunDuration)
	case o.Factor < 1:
		return fmt.Errorf("eval: Factor %g must be >= 1", o.Factor)
	case o.Slack < 0 || o.Warmup < 0:
		return fmt.Errorf("eval: Slack and Warmup must be >= 0")
	case o.RunSeedOffset == 0:
		return fmt.Errorf("eval: RunSeedOffset must be non-zero (the perturbed run would replay the reference seed)")
	}
	return nil
}

// Perturbation is the per-interval detection outcome.
type Perturbation struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Detected reports whether any anomalous window fell inside the
	// interval (extended by Slack).
	Detected bool `json:"detected"`
	// DeltaSMs is the §III detection-start delay in milliseconds: first
	// anomalous window start minus perturbation start. Nil when undetected.
	DeltaSMs *float64 `json:"delta_s_ms"`
	// DeltaEMs is the detection-end delay: last anomalous window end minus
	// perturbation end (negative when detection dies down before the
	// perturbation does). Nil when undetected.
	DeltaEMs *float64 `json:"delta_e_ms"`
	// Windows counts anomalous windows attributed to this perturbation.
	Windows int `json:"anomalous_windows"`
}

// Report is the experiment outcome; it marshals directly to the harness's
// BENCH_*.json shape.
type Report struct {
	Name string `json:"name"`

	Seed           int64   `json:"seed"`
	RefDurationS   float64 `json:"ref_duration_s"`
	RunDurationS   float64 `json:"run_duration_s"`
	Factor         float64 `json:"factor"`
	Alpha          float64 `json:"alpha"`
	K              int     `json:"k"`
	WindowMS       float64 `json:"window_ms"`
	GateThreshold  float64 `json:"gate_threshold"`
	GateDistance   string  `json:"gate_distance"`
	LOFDistance    string  `json:"lof_distance"`
	RefWindows     int     `json:"ref_windows"`
	RefTrainP95LOF float64 `json:"ref_train_p95_lof"`

	Windows         int   `json:"windows"`
	GateTrips       int   `json:"gate_trips"`
	Anomalies       int   `json:"anomalies"`
	RecordedWindows int   `json:"recorded_windows"`
	FullBytes       int64 `json:"full_bytes"`
	RecordedBytes   int64 `json:"recorded_bytes"`
	// ReductionFactor is FullBytes/RecordedBytes, the paper's headline
	// metric. It is nil — marshalling as JSON null — when nothing was
	// recorded, where the ratio is undefined (RecordedBytes reports 0
	// honestly rather than via a float sentinel).
	ReductionFactor *float64 `json:"reduction_factor"`

	// Precision is tp/(tp+fp) over post-warmup windows; 0 when
	// ScoredAnomalousWindows is 0, where the ratio is undefined.
	Precision float64 `json:"precision"`
	// Recall is tp/truthPos over post-warmup windows; 0 when TruthWindows
	// is 0, where the ratio is undefined.
	Recall float64 `json:"recall"`
	// ScoredAnomalousWindows is precision's denominator (tp+fp): anomalous
	// windows after warmup.
	ScoredAnomalousWindows int `json:"scored_anomalous_windows"`
	// TruthWindows is recall's denominator: post-warmup windows overlapping
	// a ground-truth effect region, anomalous or not.
	TruthWindows int `json:"truth_windows"`

	TotalPerturbations    int            `json:"total_perturbations"`
	DetectedPerturbations int            `json:"detected_perturbations"`
	MeanDeltaSMs          float64        `json:"mean_delta_s_ms"`
	MeanDeltaEMs          float64        `json:"mean_delta_e_ms"`
	Perturbations         []Perturbation `json:"perturbations"`
}

// Learn executes just the learning step: a clean reference run of the
// same workload, fitted with core.Learn. The returned Learned is
// immutable; it can back any number of concurrent RunWithLearned calls —
// sweeps use this to share one model across every cell that only varies
// monitoring knobs (alpha, factor).
func Learn(opts Options) (*core.Learned, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	refCfg := opts.Sim
	refCfg.Duration = opts.RefDuration
	refCfg.Load = perturb.None{}
	refCfg.Seed = opts.Seed
	refSim, err := mediasim.New(refCfg)
	if err != nil {
		return nil, err
	}
	learned, err := core.Learn(opts.Core, refSim)
	if err != nil {
		return nil, fmt.Errorf("eval: learning reference model: %w", err)
	}
	return learned, nil
}

// Run executes the experiment: Learn, then RunWithLearned.
func Run(opts Options) (*Report, error) {
	learned, err := Learn(opts)
	if err != nil {
		return nil, err
	}
	return RunWithLearned(opts, learned)
}

// RunWithLearned executes the monitoring step of the experiment against
// an already-learned model (from Learn with compatible options: same
// seed, durations, simulator shape, and the learning-relevant core
// fields — distances, K, smoothing, window). The learned model is only
// read, never mutated, so concurrent calls may share one instance.
func RunWithLearned(opts Options, learned *core.Learned) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// Monitoring step: the same workload under the perturbation schedule.
	var load perturb.Load = perturb.None{}
	var truth []perturb.Interval
	if opts.Factor > 1 {
		ivs, err := perturb.Periodic(opts.Factor, opts.PerturbFirst,
			opts.PerturbPeriod, opts.PerturbDuration, opts.RunDuration)
		if err != nil {
			return nil, err
		}
		load = ivs
		truth = ivs.Spans
	}
	runCfg := opts.Sim
	runCfg.Duration = opts.RunDuration
	runCfg.Load = load
	runCfg.Seed = opts.Seed + opts.RunSeedOffset
	runSim, err := mediasim.New(runCfg)
	if err != nil {
		return nil, err
	}

	// Decisions are scored online — the callback feeds the incremental
	// Scorer directly, so an arbitrarily long run needs O(len(truth))
	// memory, not O(windows).
	sink := recorder.NewNullSink()
	scorer := NewScorer(truth, opts.Slack, opts.Warmup)
	tick := opts.ProgressInterval
	if tick <= 0 {
		tick = 30 * time.Second
	}
	nextTick := tick
	var prog Progress
	runStats, err := core.Run(opts.Core, learned, runSim, sink, func(d core.Decision) error {
		scorer.Observe(d.Window.Start, d.Window.End, d.Anomalous)
		if opts.OnProgress == nil {
			return nil
		}
		prog.Windows++
		if d.GateTripped {
			prog.GateTrips++
		}
		if d.Anomalous {
			prog.Anomalies++
		}
		if d.Window.End >= nextTick {
			prog.TraceTime = d.Window.End
			prog.RecordedBytes = sink.BytesWritten()
			opts.OnProgress(prog)
			for nextTick <= d.Window.End {
				nextTick += tick
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("eval: monitoring perturbed run: %w", err)
	}

	rep := &Report{
		Name:            "enduratrace-eval",
		Seed:            opts.Seed,
		RefDurationS:    opts.RefDuration.Seconds(),
		RunDurationS:    opts.RunDuration.Seconds(),
		Factor:          opts.Factor,
		Alpha:           opts.Core.Alpha,
		K:               opts.Core.K,
		WindowMS:        float64(opts.Core.WindowDuration) / float64(time.Millisecond),
		GateThreshold:   opts.Core.GateThreshold,
		GateDistance:    opts.Core.GateDistance.Name,
		LOFDistance:     opts.Core.LOFDistance.Name,
		RefWindows:      learned.RefWindows,
		RefTrainP95LOF:  stats.Quantile(learned.Model.TrainScores(), 0.95),
		Windows:         runStats.Windows,
		GateTrips:       runStats.GateTrips,
		Anomalies:       runStats.Anomalies,
		RecordedWindows: runStats.RecWindows,
		FullBytes:       runStats.FullBytes,
		RecordedBytes:   runStats.RecBytes,
	}
	if rf, ok := runStats.ReductionFactor(); ok {
		rep.ReductionFactor = &rf
	}

	scorer.Finish(rep)
	return rep, nil
}
