// Package eval reproduces the paper's §III experiment end-to-end: it
// generates a clean reference run and a perturbed run of the simulated
// pipeline, learns the reference model with core.Learn, monitors the
// perturbed run with core.Run, and scores the outcome against the
// ground-truth perturbation schedule.
//
// Three families of metrics come out:
//
//   - the headline storage metric, RunStats.ReductionFactor (full trace
//     bytes over recorded bytes);
//   - detection latency per perturbation, Δs (perturbation start → first
//     anomalous window) and Δe (perturbation end → last anomalous window),
//     the quantities §III bounds;
//   - window-level precision/recall of the recorded windows against the
//     ground-truth perturbation intervals.
package eval

import (
	"fmt"
	"math"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/perturb"
	"enduratrace/internal/recorder"
	"enduratrace/internal/stats"
)

// Options configures one experiment.
type Options struct {
	// Seed drives both simulations (the perturbed run uses Seed+1 so the
	// two traces are independent draws of the same workload).
	Seed int64
	// RefDuration is the length of the clean reference run fed to Learn.
	RefDuration time.Duration
	// RunDuration is the length of the perturbed, monitored run.
	RunDuration time.Duration
	// Factor is the CPU slowdown during a perturbation (>= 1; 1 disables).
	Factor float64
	// PerturbFirst/PerturbPeriod/PerturbDuration lay out the periodic
	// perturbation schedule, mirroring §III's "every 3 minutes for 20 s".
	PerturbFirst    time.Duration
	PerturbPeriod   time.Duration
	PerturbDuration time.Duration
	// Slack extends each ground-truth interval at its end when matching
	// anomalous windows: the frame queue delays both the visible onset and
	// the recovery, so detections legitimately trail the interval.
	Slack time.Duration
	// Warmup excludes the pipeline's startup transient (prebuffering) from
	// precision/recall accounting.
	Warmup time.Duration
	// Sim is the base pipeline configuration; Duration, Load and Seed are
	// overridden per run.
	Sim mediasim.Config
	// Core is the monitor configuration.
	Core core.Config
}

// DefaultOptions returns a paper-shaped experiment scaled to run in a few
// seconds: a 2-minute reference run and a 10-minute perturbed run with five
// 20-second factor-3 CPU hogs.
// The monitor thresholds differ from §III's (alpha 1.2, tight gate): the
// simulator's 40 ms windows hold ~42 events, so their multinomial noise
// puts the reference train-LOF p95 near 2.0; alpha 2.5 sits just above
// that floor, and the 0.1 gate keeps LOF engaged through the interior of a
// stalled regime instead of only at its edges.
func DefaultOptions() Options {
	cc := core.NewConfig(mediasim.NumEventTypes)
	cc.IncludeRate = true
	cc.Alpha = 2.5
	cc.GateThreshold = 0.1
	return Options{
		Seed:            1,
		RefDuration:     2 * time.Minute,
		RunDuration:     10 * time.Minute,
		Factor:          3,
		PerturbFirst:    60 * time.Second,
		PerturbPeriod:   2 * time.Minute,
		PerturbDuration: 20 * time.Second,
		Slack:           5 * time.Second,
		Warmup:          5 * time.Second,
		Sim:             mediasim.DefaultConfig(),
		Core:            cc,
	}
}

// Validate reports option errors beyond what core/mediasim validate
// themselves.
func (o Options) Validate() error {
	switch {
	case o.RefDuration <= 0:
		return fmt.Errorf("eval: RefDuration %v must be positive", o.RefDuration)
	case o.RunDuration <= 0:
		return fmt.Errorf("eval: RunDuration %v must be positive", o.RunDuration)
	case o.Factor < 1:
		return fmt.Errorf("eval: Factor %g must be >= 1", o.Factor)
	case o.Slack < 0 || o.Warmup < 0:
		return fmt.Errorf("eval: Slack and Warmup must be >= 0")
	}
	return nil
}

// Perturbation is the per-interval detection outcome.
type Perturbation struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Detected reports whether any anomalous window fell inside the
	// interval (extended by Slack).
	Detected bool `json:"detected"`
	// DeltaSMs is the §III detection-start delay in milliseconds: first
	// anomalous window start minus perturbation start. Nil when undetected.
	DeltaSMs *float64 `json:"delta_s_ms"`
	// DeltaEMs is the detection-end delay: last anomalous window end minus
	// perturbation end (negative when detection dies down before the
	// perturbation does). Nil when undetected.
	DeltaEMs *float64 `json:"delta_e_ms"`
	// Windows counts anomalous windows attributed to this perturbation.
	Windows int `json:"anomalous_windows"`
}

// Report is the experiment outcome; it marshals directly to the harness's
// BENCH_*.json shape.
type Report struct {
	Name string `json:"name"`

	Seed           int64   `json:"seed"`
	RefDurationS   float64 `json:"ref_duration_s"`
	RunDurationS   float64 `json:"run_duration_s"`
	Factor         float64 `json:"factor"`
	Alpha          float64 `json:"alpha"`
	K              int     `json:"k"`
	WindowMS       float64 `json:"window_ms"`
	GateThreshold  float64 `json:"gate_threshold"`
	GateDistance   string  `json:"gate_distance"`
	LOFDistance    string  `json:"lof_distance"`
	RefWindows     int     `json:"ref_windows"`
	RefTrainP95LOF float64 `json:"ref_train_p95_lof"`

	Windows         int     `json:"windows"`
	GateTrips       int     `json:"gate_trips"`
	Anomalies       int     `json:"anomalies"`
	RecordedWindows int     `json:"recorded_windows"`
	FullBytes       int64   `json:"full_bytes"`
	RecordedBytes   int64   `json:"recorded_bytes"`
	ReductionFactor float64 `json:"reduction_factor"`

	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`

	TotalPerturbations    int            `json:"total_perturbations"`
	DetectedPerturbations int            `json:"detected_perturbations"`
	MeanDeltaSMs          float64        `json:"mean_delta_s_ms"`
	MeanDeltaEMs          float64        `json:"mean_delta_e_ms"`
	Perturbations         []Perturbation `json:"perturbations"`
}

// span is a decided window reduced to what the metrics need.
type span struct {
	start, end time.Duration
	anomalous  bool
}

// Run executes the experiment.
func Run(opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// Learning step: a clean reference run of the same workload.
	refCfg := opts.Sim
	refCfg.Duration = opts.RefDuration
	refCfg.Load = perturb.None{}
	refCfg.Seed = opts.Seed
	refSim, err := mediasim.New(refCfg)
	if err != nil {
		return nil, err
	}
	learned, err := core.Learn(opts.Core, refSim)
	if err != nil {
		return nil, fmt.Errorf("eval: learning reference model: %w", err)
	}

	// Monitoring step: the same workload under the perturbation schedule.
	var load perturb.Load = perturb.None{}
	var truth []perturb.Interval
	if opts.Factor > 1 {
		ivs, err := perturb.Periodic(opts.Factor, opts.PerturbFirst,
			opts.PerturbPeriod, opts.PerturbDuration, opts.RunDuration)
		if err != nil {
			return nil, err
		}
		load = ivs
		truth = ivs.Spans
	}
	runCfg := opts.Sim
	runCfg.Duration = opts.RunDuration
	runCfg.Load = load
	runCfg.Seed = opts.Seed + 1
	runSim, err := mediasim.New(runCfg)
	if err != nil {
		return nil, err
	}

	sink := recorder.NewNullSink()
	var decisions []span
	runStats, err := core.Run(opts.Core, learned, runSim, sink, func(d core.Decision) error {
		decisions = append(decisions, span{d.Window.Start, d.Window.End, d.Anomalous})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("eval: monitoring perturbed run: %w", err)
	}

	rep := &Report{
		Name:            "enduratrace-eval",
		Seed:            opts.Seed,
		RefDurationS:    opts.RefDuration.Seconds(),
		RunDurationS:    opts.RunDuration.Seconds(),
		Factor:          opts.Factor,
		Alpha:           opts.Core.Alpha,
		K:               opts.Core.K,
		WindowMS:        float64(opts.Core.WindowDuration) / float64(time.Millisecond),
		GateThreshold:   opts.Core.GateThreshold,
		GateDistance:    opts.Core.GateDistance.Name,
		LOFDistance:     opts.Core.LOFDistance.Name,
		RefWindows:      learned.RefWindows,
		RefTrainP95LOF:  stats.Quantile(learned.Model.TrainScores(), 0.95),
		Windows:         runStats.Windows,
		GateTrips:       runStats.GateTrips,
		Anomalies:       runStats.Anomalies,
		RecordedWindows: runStats.RecWindows,
		FullBytes:       runStats.FullBytes,
		RecordedBytes:   runStats.RecBytes,
		ReductionFactor: runStats.ReductionFactor(),
	}
	if math.IsInf(rep.ReductionFactor, 1) {
		rep.ReductionFactor = math.MaxFloat64 // nothing recorded; keep JSON finite
	}

	scoreDetections(rep, decisions, truth, opts)
	return rep, nil
}

// scoreDetections fills the precision/recall and per-perturbation Δs/Δe
// fields of rep from the decided windows and the ground-truth schedule.
func scoreDetections(rep *Report, decisions []span, truth []perturb.Interval, opts Options) {
	// effect[i] is the region in which anomalous windows are credited to
	// truth[i]: the interval plus trailing slack, clipped at the next
	// interval's start so detections are attributed unambiguously.
	effect := make([]perturb.Interval, len(truth))
	for i, iv := range truth {
		end := iv.End + opts.Slack
		if i+1 < len(truth) && end > truth[i+1].Start {
			end = truth[i+1].Start
		}
		effect[i] = perturb.Interval{Start: iv.Start, End: end}
	}
	overlaps := func(s span, iv perturb.Interval) bool {
		return s.start < iv.End && iv.Start < s.end
	}

	var tp, fp, truthPos int
	firstAnom := make([]time.Duration, len(truth))
	lastAnom := make([]time.Duration, len(truth))
	counts := make([]int, len(truth))
	for i := range firstAnom {
		firstAnom[i] = -1
	}
	for _, d := range decisions {
		if d.start < opts.Warmup {
			continue
		}
		hit := -1
		for i, iv := range effect {
			if overlaps(d, iv) {
				hit = i
				break
			}
		}
		if hit >= 0 {
			truthPos++
		}
		if !d.anomalous {
			continue
		}
		if hit < 0 {
			fp++
			continue
		}
		tp++
		counts[hit]++
		if firstAnom[hit] < 0 {
			firstAnom[hit] = d.start
		}
		lastAnom[hit] = d.end
	}

	if tp+fp > 0 {
		rep.Precision = float64(tp) / float64(tp+fp)
	}
	if truthPos > 0 {
		rep.Recall = float64(tp) / float64(truthPos)
	}

	rep.TotalPerturbations = len(truth)
	var dss, des []float64
	for i, iv := range truth {
		p := Perturbation{StartS: iv.Start.Seconds(), EndS: iv.End.Seconds(), Windows: counts[i]}
		if counts[i] > 0 {
			p.Detected = true
			rep.DetectedPerturbations++
			ds := (firstAnom[i] - iv.Start).Seconds() * 1000
			if ds < 0 {
				ds = 0 // the first anomalous window straddles the onset
			}
			de := (lastAnom[i] - iv.End).Seconds() * 1000
			p.DeltaSMs = &ds
			p.DeltaEMs = &de
			dss = append(dss, ds)
			des = append(des, de)
		}
		rep.Perturbations = append(rep.Perturbations, p)
	}
	if len(dss) > 0 {
		rep.MeanDeltaSMs = stats.Mean(dss)
		rep.MeanDeltaEMs = stats.Mean(des)
	}
}
