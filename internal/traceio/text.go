package traceio

import (
	"bufio"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"time"

	"enduratrace/internal/trace"
)

// TextWriter encodes events as CSV lines: ts_ns,type,arg,hex(payload).
// The text codec exists for human inspection and interoperability with
// spreadsheet/gnuplot tooling; size accounting always uses the binary codec.
type TextWriter struct {
	w   *bufio.Writer
	reg *trace.Registry // optional: emit symbolic names
}

// NewTextWriter creates a CSV trace writer. reg may be nil; when provided,
// a fifth column with the symbolic event name is appended.
func NewTextWriter(w io.Writer, reg *trace.Registry) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w), reg: reg}
}

// Write implements trace.Writer.
func (tw *TextWriter) Write(ev trace.Event) error {
	var err error
	if tw.reg != nil {
		_, err = fmt.Fprintf(tw.w, "%d,%d,%d,%s,%s\n",
			ev.TS.Nanoseconds(), ev.Type, ev.Arg, hex.EncodeToString(ev.Payload), tw.reg.Name(ev.Type))
	} else {
		_, err = fmt.Fprintf(tw.w, "%d,%d,%d,%s\n",
			ev.TS.Nanoseconds(), ev.Type, ev.Arg, hex.EncodeToString(ev.Payload))
	}
	return err
}

// Flush forces buffered bytes out.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader decodes the CSV trace format produced by TextWriter.
type TextReader struct {
	r *csv.Reader
}

// NewTextReader returns a reader over CSV trace lines.
func NewTextReader(r io.Reader) *TextReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow the optional name column
	cr.ReuseRecord = true
	return &TextReader{r: cr}
}

// Next implements trace.Reader.
func (tr *TextReader) Next() (trace.Event, error) {
	rec, err := tr.r.Read()
	if err != nil {
		return trace.Event{}, err
	}
	if len(rec) < 4 {
		return trace.Event{}, fmt.Errorf("traceio: short CSV record (%d fields)", len(rec))
	}
	ns, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return trace.Event{}, fmt.Errorf("traceio: bad timestamp %q: %w", rec[0], err)
	}
	typ, err := strconv.ParseUint(rec[1], 10, 16)
	if err != nil {
		return trace.Event{}, fmt.Errorf("traceio: bad type %q: %w", rec[1], err)
	}
	arg, err := strconv.ParseUint(rec[2], 10, 64)
	if err != nil {
		return trace.Event{}, fmt.Errorf("traceio: bad arg %q: %w", rec[2], err)
	}
	var payload []byte
	if rec[3] != "" {
		payload, err = hex.DecodeString(rec[3])
		if err != nil {
			return trace.Event{}, fmt.Errorf("traceio: bad payload %q: %w", rec[3], err)
		}
	}
	return trace.Event{TS: time.Duration(ns), Type: trace.EventType(typ), Arg: arg, Payload: payload}, nil
}
