// Package traceio provides byte-accurate codecs for trace streams.
//
// The paper's headline metric is the on-disk size of the recorded trace
// (418 MB vs 5.9 GB, §III), so sizes here are not estimates: every reduction
// factor reported by the harness is computed from the exact number of bytes
// the binary codec emits.
//
// Binary format (version 1):
//
//	magic   "ETRC"            4 bytes
//	version uvarint           (currently 1)
//	events  *                 repeated until EOF
//
// each event:
//
//	dts     uvarint           timestamp delta vs previous event, ns
//	type    uvarint
//	arg     uvarint
//	plen    uvarint           payload length
//	payload plen bytes
//
// Delta-encoded timestamps keep regular multimedia traces compact, which is
// representative of real hardware trace formats (e.g. STP / KPTrace).
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"enduratrace/internal/trace"
)

const (
	magic          = "ETRC"
	formatVersion  = 1
	maxPayloadSize = 1 << 20 // sanity bound when decoding
)

// ErrBadMagic is returned when a stream does not start with the trace magic.
var ErrBadMagic = errors.New("traceio: bad magic, not an enduratrace binary stream")

// deltaTS validates timestamp monotonicity and returns the delta encoded
// for ev given the stream's previous timestamp (the absolute timestamp
// for the first event). Shared by the plain and framed writers so the
// wire layout is defined once.
func deltaTS(ev trace.Event, last time.Duration, started bool) (uint64, error) {
	if started && ev.TS < last {
		return 0, fmt.Errorf("%w: %v after %v", trace.ErrOutOfOrder, ev.TS, last)
	}
	if !started {
		return uint64(ev.TS), nil
	}
	return uint64(ev.TS - last), nil
}

// appendEventHeader appends the four uvarints of one encoded event (dts,
// type, arg, payload length); the payload bytes follow separately. This
// is the event wire layout — both codecs and EncodedSize must agree with
// it.
func appendEventHeader(buf []byte, dts uint64, ev trace.Event) []byte {
	buf = binary.AppendUvarint(buf, dts)
	buf = binary.AppendUvarint(buf, uint64(ev.Type))
	buf = binary.AppendUvarint(buf, ev.Arg)
	return binary.AppendUvarint(buf, uint64(len(ev.Payload)))
}

// BinaryWriter encodes events to an io.Writer in the binary trace format.
type BinaryWriter struct {
	w       *bufio.Writer
	n       int64
	last    time.Duration
	started bool
	scratch [4 * binary.MaxVarintLen64]byte
}

// NewBinaryWriter creates a writer and emits the stream header.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := bw.w.WriteString(magic); err != nil {
		return nil, err
	}
	bw.n += int64(len(magic))
	n := binary.PutUvarint(bw.scratch[:], formatVersion)
	if _, err := bw.w.Write(bw.scratch[:n]); err != nil {
		return nil, err
	}
	bw.n += int64(n)
	return bw, nil
}

// Write implements trace.Writer.
func (bw *BinaryWriter) Write(ev trace.Event) error {
	dts, err := deltaTS(ev, bw.last, bw.started)
	if err != nil {
		return err
	}
	bw.started = true
	bw.last = ev.TS

	buf := appendEventHeader(bw.scratch[:0], dts, ev)
	if _, err := bw.w.Write(buf); err != nil {
		return err
	}
	bw.n += int64(len(buf))
	if len(ev.Payload) > 0 {
		if _, err := bw.w.Write(ev.Payload); err != nil {
			return err
		}
		bw.n += int64(len(ev.Payload))
	}
	return nil
}

// Flush forces buffered bytes to the underlying writer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

// BytesWritten reports the total encoded size so far, including the header.
func (bw *BinaryWriter) BytesWritten() int64 { return bw.n }

// BinaryReader decodes a binary trace stream.
type BinaryReader struct {
	r    *bufio.Reader
	last time.Duration
	err  error
}

// NewBinaryReader validates the header and returns a reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br.r, head); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	v, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading version: %w", err)
	}
	if v != formatVersion {
		return nil, fmt.Errorf("traceio: unsupported format version %d", v)
	}
	return br, nil
}

// Next implements trace.Reader.
func (br *BinaryReader) Next() (trace.Event, error) {
	if br.err != nil {
		return trace.Event{}, br.err
	}
	dts, err := binary.ReadUvarint(br.r)
	if err != nil {
		if err == io.EOF {
			br.err = io.EOF
			return trace.Event{}, io.EOF
		}
		br.err = fmt.Errorf("traceio: reading dts: %w", err)
		return trace.Event{}, br.err
	}
	typ, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.err = fmt.Errorf("traceio: reading type: %w", unexpectedEOF(err))
		return trace.Event{}, br.err
	}
	arg, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.err = fmt.Errorf("traceio: reading arg: %w", unexpectedEOF(err))
		return trace.Event{}, br.err
	}
	plen, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.err = fmt.Errorf("traceio: reading payload length: %w", unexpectedEOF(err))
		return trace.Event{}, br.err
	}
	if plen > maxPayloadSize {
		br.err = fmt.Errorf("traceio: payload length %d exceeds limit", plen)
		return trace.Event{}, br.err
	}
	var payload []byte
	if plen > 0 {
		payload = make([]byte, plen)
		if _, err := io.ReadFull(br.r, payload); err != nil {
			br.err = fmt.Errorf("traceio: reading payload: %w", unexpectedEOF(err))
			return trace.Event{}, br.err
		}
	}
	br.last += time.Duration(dts)
	return trace.Event{TS: br.last, Type: trace.EventType(typ), Arg: arg, Payload: payload}, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// EncodedSize returns the exact number of bytes Write would emit for ev
// given the previous event timestamp prev (use 0 and first=true for the
// first event). It lets size accounting run without materialising bytes.
func EncodedSize(ev trace.Event, prev time.Duration, first bool) int {
	dts := uint64(ev.TS - prev)
	if first {
		dts = uint64(ev.TS)
	}
	return uvarintLen(dts) +
		uvarintLen(uint64(ev.Type)) +
		uvarintLen(ev.Arg) +
		uvarintLen(uint64(len(ev.Payload))) +
		len(ev.Payload)
}

// HeaderSize is the encoded size of the stream header.
func HeaderSize() int { return len(magic) + uvarintLen(formatVersion) }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SizeAccountant accumulates the exact encoded size of an event stream
// without writing any bytes. It is the cheap path used by the evaluation
// harness to price the "record everything" baseline.
type SizeAccountant struct {
	n     int64
	last  time.Duration
	first bool
}

// NewSizeAccountant returns an accountant primed with the header size.
func NewSizeAccountant() *SizeAccountant {
	return &SizeAccountant{n: int64(HeaderSize()), first: true}
}

// Write implements trace.Writer; it only accumulates size.
func (s *SizeAccountant) Write(ev trace.Event) error {
	s.n += int64(EncodedSize(ev, s.last, s.first))
	s.last = ev.TS
	s.first = false
	return nil
}

// Bytes reports the accumulated encoded size.
func (s *SizeAccountant) Bytes() int64 { return s.n }
