package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

// randomStream generates n events with non-decreasing timestamps, mixing
// zero deltas, empty payloads and payloads of various sizes.
func randomStream(rng *rand.Rand, n int) []trace.Event {
	evs := make([]trace.Event, n)
	ts := time.Duration(0)
	for i := range evs {
		switch rng.Intn(4) {
		case 0: // zero delta: same timestamp as the previous event
		default:
			ts += time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		}
		var payload []byte
		switch rng.Intn(3) {
		case 0:
		case 1:
			payload = []byte{}
		default:
			payload = make([]byte, 1+rng.Intn(64))
			rng.Read(payload)
		}
		evs[i] = trace.Event{
			TS:      ts,
			Type:    trace.EventType(rng.Intn(40)),
			Arg:     uint64(rng.Int63()),
			Payload: payload,
		}
	}
	return evs
}

func sameEvent(a, b trace.Event) bool {
	return a.TS == b.TS && a.Type == b.Type && a.Arg == b.Arg && bytes.Equal(a.Payload, b.Payload)
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 500} {
		evs := randomStream(rng, n)
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if err := bw.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := bw.BytesWritten(); got != int64(buf.Len()) {
			t.Fatalf("n=%d: BytesWritten %d != buffer %d", n, got, buf.Len())
		}
		br, err := NewBinaryReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(br)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(evs) {
			t.Fatalf("n=%d: decoded %d events", n, len(got))
		}
		for i := range evs {
			if !sameEvent(evs[i], got[i]) {
				t.Fatalf("n=%d event %d: %v != %v", n, i, got[i], evs[i])
			}
		}
	}
}

func TestSizeAccountantMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	evs := randomStream(rng, 300)
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	acct := NewSizeAccountant()
	for _, ev := range evs {
		if err := bw.Write(ev); err != nil {
			t.Fatal(err)
		}
		if err := acct.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if acct.Bytes() != int64(buf.Len()) || acct.Bytes() != bw.BytesWritten() {
		t.Fatalf("accountant %d, writer %d, buffer %d: want all equal",
			acct.Bytes(), bw.BytesWritten(), buf.Len())
	}
}

func TestCorruptMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(trace.Event{TS: time.Millisecond, Type: 1})
	bw.Flush()
	raw := buf.Bytes()
	raw[0] = 'X'
	if _, err := NewBinaryReader(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	// Hand-assemble a stream whose event declares a payload beyond the
	// decoder's sanity bound.
	var buf bytes.Buffer
	buf.WriteString(magic)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	put(formatVersion)
	put(100)                // dts
	put(3)                  // type
	put(7)                  // arg
	put(maxPayloadSize + 1) // payload length over the limit
	br, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil || err == io.EOF {
		t.Fatalf("oversized payload accepted, err = %v", err)
	}
}

func TestTruncatedStreamIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(trace.Event{TS: time.Millisecond, Type: 1, Arg: 2, Payload: []byte("abcdef")})
	bw.Flush()
	raw := buf.Bytes()
	br, err := NewBinaryReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	if err := bw.Write(trace.Event{TS: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(trace.Event{TS: time.Millisecond}); !errors.Is(err, trace.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
}

func TestEncodedSizeAgainstWriter(t *testing.T) {
	evs := []trace.Event{
		{TS: 0, Type: 0, Arg: 0},
		{TS: 0, Type: 300, Arg: 1 << 40, Payload: make([]byte, 130)},
		{TS: time.Second, Type: 5, Arg: 9},
	}
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	total := int64(HeaderSize())
	prev := time.Duration(0)
	for i, ev := range evs {
		if err := bw.Write(ev); err != nil {
			t.Fatal(err)
		}
		total += int64(EncodedSize(ev, prev, i == 0))
		prev = ev.TS
	}
	if total != bw.BytesWritten() {
		t.Fatalf("EncodedSize sum %d != writer %d", total, bw.BytesWritten())
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	evs := randomStream(rng, 50)
	var buf bytes.Buffer
	tw := NewTextWriter(&buf, nil)
	for _, ev := range evs {
		if err := tw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if !sameEvent(evs[i], got[i]) {
			t.Fatalf("event %d: %v != %v", i, got[i], evs[i])
		}
	}
}
