package traceio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"enduratrace/internal/trace"
)

// Framed stream format — the network transport used by `enduratrace
// serve`. A framed stream is the binary event codec cut into
// length-prefixed frames so a receiver can make progress (and apply
// backpressure) at frame granularity instead of waiting for EOF, which a
// long-lived monitoring connection never reaches:
//
//	magic   "ETRS"            4 bytes
//	version uvarint           (1 or 2)
//	nlen    uvarint           stream-name length (may be 0)
//	name    nlen bytes        client-chosen stream name (sink naming)
//	mlen    uvarint           version >= 2 only: model-name length (may be 0)
//	model   mlen bytes        version >= 2 only: requested model name
//	frames  *                 repeated
//
// Version 2 adds the model-name field, letting a client pick which model
// of a multi-model server scores its stream; an absent (version 1) or
// empty model name means the server's default model. Writers emit version
// 1 unless a model is named, so v2-aware clients stay readable by v1
// servers whenever they don't use the new capability.
//
// each frame:
//
//	flen    uvarint           payload length; 0 marks clean end-of-stream
//	payload flen bytes        binary-codec events (see binary.go, no header)
//
// Timestamp delta-encoding continues across frame boundaries, so framing
// adds ~1 byte per frame over the plain binary codec. A stream that ends
// without the zero-length end frame was truncated (the peer died or the
// connection broke); FrameReader reports that as io.ErrUnexpectedEOF
// rather than a clean EOF, so the server can tell drained streams from
// dropped ones.

const (
	frameMagic      = "ETRS"
	frameVersion1   = 1
	frameVersion2   = 2
	maxFrameVersion = frameVersion2
	maxFrameSize    = 1 << 24 // sanity bound when decoding
	maxStreamName   = 256
	maxModelName    = 256
	// DefaultFrameBytes is the auto-flush threshold of FrameWriter: a frame
	// is emitted once its payload reaches this size (callers can still
	// Flush earlier for latency).
	DefaultFrameBytes = 32 << 10
)

// ErrBadFrameMagic is returned when a stream does not start with the framed
// stream magic.
var ErrBadFrameMagic = errors.New("traceio: bad magic, not an enduratrace framed stream")

// FrameWriter encodes events into length-prefixed frames on an io.Writer
// (typically a net.Conn). It is the client half of the serve protocol.
type FrameWriter struct {
	w       *bufio.Writer
	frame   bytes.Buffer
	last    time.Duration
	started bool
	closed  bool
	scratch [binary.MaxVarintLen64]byte
	// FrameBytes is the auto-flush threshold; zero means DefaultFrameBytes.
	FrameBytes int
}

// NewFrameWriter emits the stream header (with the client-chosen stream
// name, which the server uses to label per-stream sinks) and returns the
// writer. An empty name is allowed; the server then assigns one. The
// header is written as version 1, readable by every server.
func NewFrameWriter(w io.Writer, name string) (*FrameWriter, error) {
	return NewFrameWriterModel(w, name, "")
}

// NewFrameWriterModel is NewFrameWriter plus a requested model name: a
// non-empty model asks a multi-model server to score this stream with
// that model (unknown names are rejected at registration, closing the
// connection) and upgrades the header to version 2. An empty model keeps
// the version 1 header — byte-identical to NewFrameWriter — so clients
// that don't pick a model remain compatible with version 1 servers.
func NewFrameWriterModel(w io.Writer, name, model string) (*FrameWriter, error) {
	if len(name) > maxStreamName {
		return nil, fmt.Errorf("traceio: stream name %d bytes exceeds %d", len(name), maxStreamName)
	}
	if len(model) > maxModelName {
		return nil, fmt.Errorf("traceio: model name %d bytes exceeds %d", len(model), maxModelName)
	}
	version := uint64(frameVersion1)
	if model != "" {
		version = frameVersion2
	}
	fw := &FrameWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := fw.w.WriteString(frameMagic); err != nil {
		return nil, err
	}
	n := binary.PutUvarint(fw.scratch[:], version)
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(fw.scratch[:], uint64(len(name)))
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return nil, err
	}
	if _, err := fw.w.WriteString(name); err != nil {
		return nil, err
	}
	if version >= frameVersion2 {
		n = binary.PutUvarint(fw.scratch[:], uint64(len(model)))
		if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
			return nil, err
		}
		if _, err := fw.w.WriteString(model); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// Write implements trace.Writer: the event is appended to the current
// frame, which is emitted automatically once it reaches FrameBytes.
func (fw *FrameWriter) Write(ev trace.Event) error {
	if fw.closed {
		return errors.New("traceio: write on closed frame stream")
	}
	dts, err := deltaTS(ev, fw.last, fw.started)
	if err != nil {
		return err
	}
	fw.started = true
	fw.last = ev.TS

	var buf [4 * binary.MaxVarintLen64]byte
	fw.frame.Write(appendEventHeader(buf[:0], dts, ev))
	fw.frame.Write(ev.Payload)

	limit := fw.FrameBytes
	if limit <= 0 {
		limit = DefaultFrameBytes
	}
	if fw.frame.Len() >= limit {
		return fw.Flush()
	}
	return nil
}

// Flush emits the pending frame (if any) and flushes the underlying
// writer. Call it to bound the latency of a slow trickle of events.
func (fw *FrameWriter) Flush() error {
	if fw.frame.Len() > 0 {
		n := binary.PutUvarint(fw.scratch[:], uint64(fw.frame.Len()))
		if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
			return err
		}
		if _, err := fw.w.Write(fw.frame.Bytes()); err != nil {
			return err
		}
		fw.frame.Reset()
	}
	return fw.w.Flush()
}

// Close flushes pending events and writes the end-of-stream marker. The
// underlying writer (e.g. the socket) is not closed. Close is idempotent.
func (fw *FrameWriter) Close() error {
	if fw.closed {
		return nil
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	fw.closed = true
	n := binary.PutUvarint(fw.scratch[:], 0)
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return err
	}
	return fw.w.Flush()
}

// FrameReader decodes a framed stream; it implements trace.Reader and
// trace.BatchReader. Next returns io.EOF only on a clean end-of-stream
// marker; a connection that dies mid-stream yields io.ErrUnexpectedEOF.
//
// Readers are pooled: NewFrameReader draws one from a shared pool so a
// server accepting many connections reuses the 64 KB read buffer and the
// frame buffer instead of re-allocating them per connection. Call Release
// when done with a stream to return the buffers to the pool.
type FrameReader struct {
	r       *bufio.Reader
	frame   bytes.Reader
	buf     []byte
	name    string
	model   string
	version int
	last    time.Duration
	err     error
}

// frameReaderPool recycles FrameReaders — and with them the bufio read
// buffer and the grown frame buffer — across connections.
var frameReaderPool = sync.Pool{
	New: func() any {
		return &FrameReader{r: bufio.NewReaderSize(nil, 1<<16)}
	},
}

// NewFrameReader validates the header and returns the reader. Both header
// versions are accepted: version 1 streams simply carry no model name.
func NewFrameReader(r io.Reader) (*FrameReader, error) {
	fr := frameReaderPool.Get().(*FrameReader)
	fr.reset(r)
	if err := fr.readHeader(); err != nil {
		fr.Release()
		return nil, err
	}
	return fr, nil
}

func (fr *FrameReader) reset(r io.Reader) {
	fr.r.Reset(r)
	fr.frame.Reset(nil)
	fr.name, fr.model = "", ""
	fr.version = 0
	fr.last = 0
	fr.err = nil
}

// Release returns the reader and its buffers to the shared pool; the
// caller must not touch fr afterwards. Events previously returned stay
// valid — payloads never alias the pooled buffers. Releasing is optional
// (an abandoned reader is simply garbage collected), but servers should
// release on every connection-teardown path.
func (fr *FrameReader) Release() {
	fr.reset(nil)
	frameReaderPool.Put(fr)
}

func (fr *FrameReader) readHeader() error {
	head := fr.growBuf(len(frameMagic))
	if _, err := io.ReadFull(fr.r, head); err != nil {
		return fmt.Errorf("traceio: reading frame header: %w", err)
	}
	if string(head) != frameMagic {
		return ErrBadFrameMagic
	}
	v, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return fmt.Errorf("traceio: reading frame version: %w", unexpectedEOF(err))
	}
	if v < frameVersion1 || v > maxFrameVersion {
		return fmt.Errorf("traceio: unsupported framed stream version %d (supported: 1..%d)", v, maxFrameVersion)
	}
	fr.version = int(v)
	if fr.name, err = fr.headerString("stream", maxStreamName); err != nil {
		return err
	}
	if v >= frameVersion2 {
		if fr.model, err = fr.headerString("model", maxModelName); err != nil {
			return err
		}
	}
	return nil
}

// growBuf returns fr.buf resized to n bytes, growing its capacity only
// when needed so pooled readers stop allocating once warm.
func (fr *FrameReader) growBuf(n int) []byte {
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	return fr.buf
}

// headerString reads one length-prefixed header field through the reused
// frame buffer; only the retained string itself allocates.
func (fr *FrameReader) headerString(what string, max uint64) (string, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return "", fmt.Errorf("traceio: reading %s-name length: %w", what, unexpectedEOF(err))
	}
	if n > max {
		return "", fmt.Errorf("traceio: %s name %d bytes exceeds %d", what, n, max)
	}
	if n == 0 {
		return "", nil
	}
	b := fr.growBuf(int(n))
	if _, err := io.ReadFull(fr.r, b); err != nil {
		return "", fmt.Errorf("traceio: reading %s name: %w", what, unexpectedEOF(err))
	}
	return string(b), nil
}

// StreamName returns the client-chosen stream name from the header ("" if
// the client sent none).
func (fr *FrameReader) StreamName() string { return fr.name }

// ModelName returns the model the client asked to be scored with ("" for
// version 1 headers and version 2 headers naming none — both mean the
// server's default model).
func (fr *FrameReader) ModelName() string { return fr.model }

// Version returns the decoded header version (1 or 2).
func (fr *FrameReader) Version() int { return fr.version }

// Next implements trace.Reader.
func (fr *FrameReader) Next() (trace.Event, error) {
	if fr.err != nil {
		return trace.Event{}, fr.err
	}
	if fr.frame.Len() == 0 {
		if err := fr.loadFrame(); err != nil {
			return trace.Event{}, err
		}
	}
	return fr.decodeEvent(nil)
}

// ReadBatch implements trace.BatchReader: it decodes into dst every
// event already buffered — blocking only when nothing is available at
// all — so one syscall's worth of frames drains in one call. After the
// first event, a further frame is consumed only when it is already fully
// buffered, so a batch never stalls the caller waiting for a slow
// sender. Payloads are carved out of a fresh per-call arena (one
// allocation amortised across the batch, never reused), so the returned
// events are caller-owned exactly like Next's. When an error (or clean
// EOF) strikes after n > 0 events were decoded, ReadBatch returns
// (n, nil) and surfaces the latched error on the next call, so the event
// sequence a batch consumer sees is byte-identical to a Next loop's.
func (fr *FrameReader) ReadBatch(dst []trace.Event) (int, error) {
	if fr.err != nil {
		return 0, fr.err
	}
	var arena []byte
	n := 0
	for n < len(dst) {
		if fr.frame.Len() == 0 {
			if n > 0 && !fr.frameAvailable() {
				break
			}
			if err := fr.loadFrame(); err != nil {
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
		}
		ev, err := fr.decodeEvent(&arena)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// frameAvailable reports whether the next frame (or the end-of-stream
// marker) is already fully buffered, i.e. whether loadFrame cannot block.
// It peeks only at bytes already buffered, never triggering a read.
func (fr *FrameReader) frameAvailable() bool {
	avail := fr.r.Buffered()
	if avail == 0 {
		return false
	}
	if avail > binary.MaxVarintLen64 {
		avail = binary.MaxVarintLen64
	}
	head, _ := fr.r.Peek(avail)
	flen, n := binary.Uvarint(head)
	if n == 0 {
		return false // length prefix not fully buffered
	}
	if n < 0 || flen == 0 || flen > maxFrameSize {
		return true // EOS marker, or an error loadFrame should surface now
	}
	return fr.r.Buffered() >= n+int(flen)
}

// loadFrame reads the next frame into fr.frame, reusing the frame
// buffer. The clean end-of-stream marker latches and returns io.EOF;
// every other failure latches a descriptive error.
func (fr *FrameReader) loadFrame() error {
	flen, err := binary.ReadUvarint(fr.r)
	if err != nil {
		// EOF between frames without the end marker: truncated.
		fr.err = fmt.Errorf("traceio: stream truncated mid-frame: %w", unexpectedEOF(err))
		return fr.err
	}
	if flen == 0 {
		fr.err = io.EOF
		return io.EOF
	}
	if flen > maxFrameSize {
		fr.err = fmt.Errorf("traceio: frame length %d exceeds limit", flen)
		return fr.err
	}
	buf := fr.growBuf(int(flen))
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		fr.err = fmt.Errorf("traceio: reading frame payload: %w", unexpectedEOF(err))
		return fr.err
	}
	fr.frame.Reset(buf)
	return nil
}

// decodeEvent decodes one event from the current frame. A nil arena
// allocates the payload individually (the Next path); otherwise the
// payload is carved from *arena, which grows by replacement so earlier
// carvings stay valid.
func (fr *FrameReader) decodeEvent(arena *[]byte) (trace.Event, error) {
	dts, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("dts", err)
	}
	typ, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("type", err)
	}
	arg, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("arg", err)
	}
	plen, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("payload length", err)
	}
	if plen > maxPayloadSize {
		fr.err = fmt.Errorf("traceio: payload length %d exceeds limit", plen)
		return trace.Event{}, fr.err
	}
	var payload []byte
	if plen > 0 {
		if arena == nil {
			payload = make([]byte, plen)
		} else {
			a := *arena
			if cap(a)-len(a) < int(plen) {
				// Fresh backing array — previously carved payloads keep the
				// old one, so they are never clobbered or retained together.
				grown := 2*cap(a) + int(plen)
				if grown < 1024 {
					grown = 1024
				}
				a = make([]byte, 0, grown)
			}
			payload = a[len(a) : len(a)+int(plen)]
			*arena = a[:len(a)+int(plen)]
		}
		if _, err := io.ReadFull(&fr.frame, payload); err != nil {
			return trace.Event{}, fr.fail("payload", err)
		}
	}
	fr.last += time.Duration(dts)
	return trace.Event{TS: fr.last, Type: trace.EventType(typ), Arg: arg, Payload: payload}, nil
}

func (fr *FrameReader) fail(what string, err error) error {
	fr.err = fmt.Errorf("traceio: reading frame event %s: %w", what, unexpectedEOF(err))
	return fr.err
}
