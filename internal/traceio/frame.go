package traceio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"enduratrace/internal/trace"
)

// Framed stream format — the network transport used by `enduratrace
// serve`. A framed stream is the binary event codec cut into
// length-prefixed frames so a receiver can make progress (and apply
// backpressure) at frame granularity instead of waiting for EOF, which a
// long-lived monitoring connection never reaches:
//
//	magic   "ETRS"            4 bytes
//	version uvarint           (1 or 2)
//	nlen    uvarint           stream-name length (may be 0)
//	name    nlen bytes        client-chosen stream name (sink naming)
//	mlen    uvarint           version >= 2 only: model-name length (may be 0)
//	model   mlen bytes        version >= 2 only: requested model name
//	frames  *                 repeated
//
// Version 2 adds the model-name field, letting a client pick which model
// of a multi-model server scores its stream; an absent (version 1) or
// empty model name means the server's default model. Writers emit version
// 1 unless a model is named, so v2-aware clients stay readable by v1
// servers whenever they don't use the new capability.
//
// each frame:
//
//	flen    uvarint           payload length; 0 marks clean end-of-stream
//	payload flen bytes        binary-codec events (see binary.go, no header)
//
// Timestamp delta-encoding continues across frame boundaries, so framing
// adds ~1 byte per frame over the plain binary codec. A stream that ends
// without the zero-length end frame was truncated (the peer died or the
// connection broke); FrameReader reports that as io.ErrUnexpectedEOF
// rather than a clean EOF, so the server can tell drained streams from
// dropped ones.

const (
	frameMagic      = "ETRS"
	frameVersion1   = 1
	frameVersion2   = 2
	maxFrameVersion = frameVersion2
	maxFrameSize    = 1 << 24 // sanity bound when decoding
	maxStreamName   = 256
	maxModelName    = 256
	// DefaultFrameBytes is the auto-flush threshold of FrameWriter: a frame
	// is emitted once its payload reaches this size (callers can still
	// Flush earlier for latency).
	DefaultFrameBytes = 32 << 10
)

// ErrBadFrameMagic is returned when a stream does not start with the framed
// stream magic.
var ErrBadFrameMagic = errors.New("traceio: bad magic, not an enduratrace framed stream")

// FrameWriter encodes events into length-prefixed frames on an io.Writer
// (typically a net.Conn). It is the client half of the serve protocol.
type FrameWriter struct {
	w       *bufio.Writer
	frame   bytes.Buffer
	last    time.Duration
	started bool
	closed  bool
	scratch [binary.MaxVarintLen64]byte
	// FrameBytes is the auto-flush threshold; zero means DefaultFrameBytes.
	FrameBytes int
}

// NewFrameWriter emits the stream header (with the client-chosen stream
// name, which the server uses to label per-stream sinks) and returns the
// writer. An empty name is allowed; the server then assigns one. The
// header is written as version 1, readable by every server.
func NewFrameWriter(w io.Writer, name string) (*FrameWriter, error) {
	return NewFrameWriterModel(w, name, "")
}

// NewFrameWriterModel is NewFrameWriter plus a requested model name: a
// non-empty model asks a multi-model server to score this stream with
// that model (unknown names are rejected at registration, closing the
// connection) and upgrades the header to version 2. An empty model keeps
// the version 1 header — byte-identical to NewFrameWriter — so clients
// that don't pick a model remain compatible with version 1 servers.
func NewFrameWriterModel(w io.Writer, name, model string) (*FrameWriter, error) {
	if len(name) > maxStreamName {
		return nil, fmt.Errorf("traceio: stream name %d bytes exceeds %d", len(name), maxStreamName)
	}
	if len(model) > maxModelName {
		return nil, fmt.Errorf("traceio: model name %d bytes exceeds %d", len(model), maxModelName)
	}
	version := uint64(frameVersion1)
	if model != "" {
		version = frameVersion2
	}
	fw := &FrameWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := fw.w.WriteString(frameMagic); err != nil {
		return nil, err
	}
	n := binary.PutUvarint(fw.scratch[:], version)
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(fw.scratch[:], uint64(len(name)))
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return nil, err
	}
	if _, err := fw.w.WriteString(name); err != nil {
		return nil, err
	}
	if version >= frameVersion2 {
		n = binary.PutUvarint(fw.scratch[:], uint64(len(model)))
		if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
			return nil, err
		}
		if _, err := fw.w.WriteString(model); err != nil {
			return nil, err
		}
	}
	return fw, nil
}

// Write implements trace.Writer: the event is appended to the current
// frame, which is emitted automatically once it reaches FrameBytes.
func (fw *FrameWriter) Write(ev trace.Event) error {
	if fw.closed {
		return errors.New("traceio: write on closed frame stream")
	}
	dts, err := deltaTS(ev, fw.last, fw.started)
	if err != nil {
		return err
	}
	fw.started = true
	fw.last = ev.TS

	var buf [4 * binary.MaxVarintLen64]byte
	fw.frame.Write(appendEventHeader(buf[:0], dts, ev))
	fw.frame.Write(ev.Payload)

	limit := fw.FrameBytes
	if limit <= 0 {
		limit = DefaultFrameBytes
	}
	if fw.frame.Len() >= limit {
		return fw.Flush()
	}
	return nil
}

// Flush emits the pending frame (if any) and flushes the underlying
// writer. Call it to bound the latency of a slow trickle of events.
func (fw *FrameWriter) Flush() error {
	if fw.frame.Len() > 0 {
		n := binary.PutUvarint(fw.scratch[:], uint64(fw.frame.Len()))
		if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
			return err
		}
		if _, err := fw.w.Write(fw.frame.Bytes()); err != nil {
			return err
		}
		fw.frame.Reset()
	}
	return fw.w.Flush()
}

// Close flushes pending events and writes the end-of-stream marker. The
// underlying writer (e.g. the socket) is not closed. Close is idempotent.
func (fw *FrameWriter) Close() error {
	if fw.closed {
		return nil
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	fw.closed = true
	n := binary.PutUvarint(fw.scratch[:], 0)
	if _, err := fw.w.Write(fw.scratch[:n]); err != nil {
		return err
	}
	return fw.w.Flush()
}

// FrameReader decodes a framed stream; it implements trace.Reader. Next
// returns io.EOF only on a clean end-of-stream marker; a connection that
// dies mid-stream yields io.ErrUnexpectedEOF.
type FrameReader struct {
	r       *bufio.Reader
	frame   bytes.Reader
	buf     []byte
	name    string
	model   string
	version int
	last    time.Duration
	err     error
}

// NewFrameReader validates the header and returns the reader. Both header
// versions are accepted: version 1 streams simply carry no model name.
func NewFrameReader(r io.Reader) (*FrameReader, error) {
	fr := &FrameReader{r: bufio.NewReaderSize(r, 1<<16)}
	head := make([]byte, len(frameMagic))
	if _, err := io.ReadFull(fr.r, head); err != nil {
		return nil, fmt.Errorf("traceio: reading frame header: %w", err)
	}
	if string(head) != frameMagic {
		return nil, ErrBadFrameMagic
	}
	v, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading frame version: %w", unexpectedEOF(err))
	}
	if v < frameVersion1 || v > maxFrameVersion {
		return nil, fmt.Errorf("traceio: unsupported framed stream version %d (supported: 1..%d)", v, maxFrameVersion)
	}
	fr.version = int(v)
	if fr.name, err = fr.headerString("stream", maxStreamName); err != nil {
		return nil, err
	}
	if v >= frameVersion2 {
		if fr.model, err = fr.headerString("model", maxModelName); err != nil {
			return nil, err
		}
	}
	return fr, nil
}

// headerString reads one length-prefixed header field.
func (fr *FrameReader) headerString(what string, max uint64) (string, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return "", fmt.Errorf("traceio: reading %s-name length: %w", what, unexpectedEOF(err))
	}
	if n > max {
		return "", fmt.Errorf("traceio: %s name %d bytes exceeds %d", what, n, max)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(fr.r, b); err != nil {
		return "", fmt.Errorf("traceio: reading %s name: %w", what, unexpectedEOF(err))
	}
	return string(b), nil
}

// StreamName returns the client-chosen stream name from the header ("" if
// the client sent none).
func (fr *FrameReader) StreamName() string { return fr.name }

// ModelName returns the model the client asked to be scored with ("" for
// version 1 headers and version 2 headers naming none — both mean the
// server's default model).
func (fr *FrameReader) ModelName() string { return fr.model }

// Version returns the decoded header version (1 or 2).
func (fr *FrameReader) Version() int { return fr.version }

// Next implements trace.Reader.
func (fr *FrameReader) Next() (trace.Event, error) {
	if fr.err != nil {
		return trace.Event{}, fr.err
	}
	for fr.frame.Len() == 0 {
		flen, err := binary.ReadUvarint(fr.r)
		if err != nil {
			// EOF between frames without the end marker: truncated.
			fr.err = fmt.Errorf("traceio: stream truncated mid-frame: %w", unexpectedEOF(err))
			return trace.Event{}, fr.err
		}
		if flen == 0 {
			fr.err = io.EOF
			return trace.Event{}, io.EOF
		}
		if flen > maxFrameSize {
			fr.err = fmt.Errorf("traceio: frame length %d exceeds limit", flen)
			return trace.Event{}, fr.err
		}
		if cap(fr.buf) < int(flen) {
			fr.buf = make([]byte, flen)
		}
		fr.buf = fr.buf[:flen]
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			fr.err = fmt.Errorf("traceio: reading frame payload: %w", unexpectedEOF(err))
			return trace.Event{}, fr.err
		}
		fr.frame.Reset(fr.buf)
	}
	dts, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("dts", err)
	}
	typ, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("type", err)
	}
	arg, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("arg", err)
	}
	plen, err := binary.ReadUvarint(&fr.frame)
	if err != nil {
		return trace.Event{}, fr.fail("payload length", err)
	}
	if plen > maxPayloadSize {
		fr.err = fmt.Errorf("traceio: payload length %d exceeds limit", plen)
		return trace.Event{}, fr.err
	}
	var payload []byte
	if plen > 0 {
		payload = make([]byte, plen)
		if _, err := io.ReadFull(&fr.frame, payload); err != nil {
			return trace.Event{}, fr.fail("payload", err)
		}
	}
	fr.last += time.Duration(dts)
	return trace.Event{TS: fr.last, Type: trace.EventType(typ), Arg: arg, Payload: payload}, nil
}

func (fr *FrameReader) fail(what string, err error) error {
	fr.err = fmt.Errorf("traceio: reading frame event %s: %w", what, unexpectedEOF(err))
	return fr.err
}
