package traceio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

func randomEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, n)
	ts := time.Duration(0)
	for i := range evs {
		ts += time.Duration(rng.Intn(1_000_000))
		var payload []byte
		if rng.Intn(3) == 0 {
			payload = make([]byte, rng.Intn(64))
			rng.Read(payload)
		}
		evs[i] = trace.Event{
			TS:      ts,
			Type:    trace.EventType(rng.Intn(30)),
			Arg:     uint64(rng.Intn(1 << 20)),
			Payload: payload,
		}
	}
	return evs
}

func TestFrameRoundTrip(t *testing.T) {
	evs := randomEvents(500, 7)
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "cam-03")
	if err != nil {
		t.Fatal(err)
	}
	fw.FrameBytes = 256 // force many frames
	for i, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			// An explicit mid-stream flush must not corrupt anything.
			if err := fw.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.StreamName() != "cam-03" {
		t.Fatalf("stream name %q, want cam-03", fr.StreamName())
	}
	got, err := trace.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].TS != evs[i].TS || got[i].Type != evs[i].Type ||
			got[i].Arg != evs[i].Arg || !bytes.Equal(got[i].Payload, evs[i].Payload) {
			t.Fatalf("event %d mismatch: got %v want %v", i, got[i], evs[i])
		}
	}
	// After clean EOF, Next keeps returning io.EOF.
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v, want io.EOF", err)
	}
}

func TestFrameEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.StreamName() != "" {
		t.Fatalf("stream name %q, want empty", fr.StreamName())
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("Next on empty stream: %v, want io.EOF", err)
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	evs := randomEvents(50, 3)
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the frame but never Close: no end-of-stream marker.
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var lastErr error
	for {
		_, err := fr.Next()
		if err != nil {
			lastErr = err
			break
		}
		n++
	}
	if n != len(evs) {
		t.Fatalf("decoded %d events before truncation, want %d", n, len(evs))
	}
	if lastErr == io.EOF || !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream error %v, want io.ErrUnexpectedEOF (not clean EOF)", lastErr)
	}
}

// TestFrameHeaderVersionMatrix pins the v1/v2 compatibility contract:
// model-less writers emit version 1 bytes (readable by v1 servers),
// model-naming writers emit version 2, and a v2-aware reader decodes both
// with identical event payloads.
func TestFrameHeaderVersionMatrix(t *testing.T) {
	evs := randomEvents(40, 11)
	cases := []struct {
		name        string
		model       string
		wantVersion int
	}{
		{"v1-no-model", "", 1},
		{"v2-model", "model-b", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			fw, err := NewFrameWriterModel(&buf, "cam", tc.model)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range evs {
				if err := fw.Write(ev); err != nil {
					t.Fatal(err)
				}
			}
			if err := fw.Close(); err != nil {
				t.Fatal(err)
			}
			fr, err := NewFrameReader(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Version() != tc.wantVersion {
				t.Fatalf("header version %d, want %d", fr.Version(), tc.wantVersion)
			}
			if fr.StreamName() != "cam" || fr.ModelName() != tc.model {
				t.Fatalf("header (%q, %q), want (cam, %q)", fr.StreamName(), fr.ModelName(), tc.model)
			}
			got, err := trace.ReadAll(fr)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(evs) {
				t.Fatalf("decoded %d events, want %d", len(got), len(evs))
			}
		})
	}
}

// TestFrameWriterModelEmptyIsV1 asserts the byte-level compatibility
// promise: naming no model produces exactly the version 1 stream the old
// writer produced, so upgraded clients stay readable by old servers.
func TestFrameWriterModelEmptyIsV1(t *testing.T) {
	evs := randomEvents(20, 13)
	encode := func(mk func(w *bytes.Buffer) (*FrameWriter, error)) []byte {
		var buf bytes.Buffer
		fw, err := mk(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if err := fw.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	v1 := encode(func(w *bytes.Buffer) (*FrameWriter, error) { return NewFrameWriter(w, "s") })
	v2empty := encode(func(w *bytes.Buffer) (*FrameWriter, error) { return NewFrameWriterModel(w, "s", "") })
	if !bytes.Equal(v1, v2empty) {
		t.Fatal("NewFrameWriterModel with empty model is not byte-identical to NewFrameWriter")
	}
}

func TestFrameHeaderRejects(t *testing.T) {
	v2 := func(name, model string) []byte {
		var buf bytes.Buffer
		fw, err := NewFrameWriterModel(&buf, name, model)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	full := v2("s", "m")
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"magic-only", []byte(frameMagic)},
		{"bad-version", append([]byte(frameMagic), 99)},
		{"cut-name-length", full[:len(frameMagic)+1]},
		{"cut-mid-name", full[:len(frameMagic)+2]},
		{"cut-model-length", full[:len(frameMagic)+3]},
		{"cut-mid-model", full[:len(frameMagic)+4]},
		{"oversized-name", append(append([]byte(frameMagic), 1), 0xFF, 0xFF, 0x7F)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewFrameReader(bytes.NewReader(tc.in)); err == nil {
				t.Fatalf("header %x accepted, want error", tc.in)
			}
		})
	}
	// Writer-side limits.
	if _, err := NewFrameWriterModel(io.Discard, "s", strings.Repeat("m", maxModelName+1)); err == nil {
		t.Fatal("oversized model name accepted by writer")
	}
}

// FuzzFrameReader hammers the header + frame decoder with corrupt and
// truncated inputs: it must never panic, and any error-free prefix must
// decode into well-formed events.
func FuzzFrameReader(f *testing.F) {
	seed := func(name, model string, n int) []byte {
		var buf bytes.Buffer
		fw, err := NewFrameWriterModel(&buf, name, model)
		if err != nil {
			f.Fatal(err)
		}
		fw.FrameBytes = 64
		for _, ev := range randomEvents(n, int64(n)+1) {
			if err := fw.Write(ev); err != nil {
				f.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed("", "", 0))
	f.Add(seed("cam", "", 30))
	f.Add(seed("cam", "model-b", 30))
	full := seed("s", "m", 10)
	for _, cut := range []int{1, 3, 5, 7, 9, len(full) / 2, len(full) - 1} {
		if cut < len(full) {
			f.Add(full[:cut])
		}
	}
	f.Add([]byte("ETRSxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			ev, err := fr.Next()
			if err != nil {
				// Whatever ended the stream must be sticky.
				if _, err2 := fr.Next(); err2 == nil {
					t.Fatal("Next succeeded after a terminal error")
				}
				return
			}
			if ev.TS < 0 {
				t.Fatalf("decoded negative timestamp %v", ev.TS)
			}
		}
	})
}

func TestFrameBadMagic(t *testing.T) {
	if _, err := NewFrameReader(bytes.NewReader([]byte("ETRCxxxx"))); !errors.Is(err, ErrBadFrameMagic) {
		t.Fatalf("error %v, want ErrBadFrameMagic", err)
	}
}

func TestFrameOutOfOrderRejected(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 100}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 50}); !errors.Is(err, trace.ErrOutOfOrder) {
		t.Fatalf("error %v, want trace.ErrOutOfOrder", err)
	}
}

func TestFrameDeltaAcrossFrames(t *testing.T) {
	// Timestamp deltas must survive a frame boundary: write two events in
	// two explicitly flushed frames and check the second timestamp.
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 1000, Type: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 2500, Type: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].TS != 1000 || evs[1].TS != 2500 {
		t.Fatalf("decoded %v, want TS 1000 and 2500", evs)
	}
}
