package traceio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

func randomEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, n)
	ts := time.Duration(0)
	for i := range evs {
		ts += time.Duration(rng.Intn(1_000_000))
		var payload []byte
		if rng.Intn(3) == 0 {
			payload = make([]byte, rng.Intn(64))
			rng.Read(payload)
		}
		evs[i] = trace.Event{
			TS:      ts,
			Type:    trace.EventType(rng.Intn(30)),
			Arg:     uint64(rng.Intn(1 << 20)),
			Payload: payload,
		}
	}
	return evs
}

func TestFrameRoundTrip(t *testing.T) {
	evs := randomEvents(500, 7)
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "cam-03")
	if err != nil {
		t.Fatal(err)
	}
	fw.FrameBytes = 256 // force many frames
	for i, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			// An explicit mid-stream flush must not corrupt anything.
			if err := fw.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.StreamName() != "cam-03" {
		t.Fatalf("stream name %q, want cam-03", fr.StreamName())
	}
	got, err := trace.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].TS != evs[i].TS || got[i].Type != evs[i].Type ||
			got[i].Arg != evs[i].Arg || !bytes.Equal(got[i].Payload, evs[i].Payload) {
			t.Fatalf("event %d mismatch: got %v want %v", i, got[i], evs[i])
		}
	}
	// After clean EOF, Next keeps returning io.EOF.
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v, want io.EOF", err)
	}
}

func TestFrameEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fr.StreamName() != "" {
		t.Fatalf("stream name %q, want empty", fr.StreamName())
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("Next on empty stream: %v, want io.EOF", err)
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	evs := randomEvents(50, 3)
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the frame but never Close: no end-of-stream marker.
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var lastErr error
	for {
		_, err := fr.Next()
		if err != nil {
			lastErr = err
			break
		}
		n++
	}
	if n != len(evs) {
		t.Fatalf("decoded %d events before truncation, want %d", n, len(evs))
	}
	if lastErr == io.EOF || !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream error %v, want io.ErrUnexpectedEOF (not clean EOF)", lastErr)
	}
}

func TestFrameBadMagic(t *testing.T) {
	if _, err := NewFrameReader(bytes.NewReader([]byte("ETRCxxxx"))); !errors.Is(err, ErrBadFrameMagic) {
		t.Fatalf("error %v, want ErrBadFrameMagic", err)
	}
}

func TestFrameOutOfOrderRejected(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 100}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 50}); !errors.Is(err, trace.ErrOutOfOrder) {
		t.Fatalf("error %v, want trace.ErrOutOfOrder", err)
	}
}

func TestFrameDeltaAcrossFrames(t *testing.T) {
	// Timestamp deltas must survive a frame boundary: write two events in
	// two explicitly flushed frames and check the second timestamp.
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 1000, Type: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(trace.Event{TS: 2500, Type: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].TS != 1000 || evs[1].TS != 2500 {
		t.Fatalf("decoded %v, want TS 1000 and 2500", evs)
	}
}
