package traceio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

// encodeFramed encodes evs into a framed stream with small frames (many
// frame boundaries) and, unless torn, the clean end-of-stream marker.
func encodeFramed(t *testing.T, evs []trace.Event, model string, frameBytes int, torn bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := NewFrameWriterModel(&buf, "s", model)
	if err != nil {
		t.Fatal(err)
	}
	fw.FrameBytes = frameBytes
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if torn {
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	} else if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAllBatched drains fr through ReadBatch with the given batch size,
// returning the events and the terminal error.
func readAllBatched(fr *FrameReader, batch int) ([]trace.Event, error) {
	var out []trace.Event
	dst := make([]trace.Event, batch)
	for {
		n, err := fr.ReadBatch(dst)
		out = append(out, dst[:n]...)
		if err != nil {
			return out, err
		}
	}
}

// TestReadBatchMatchesNext: for clean and torn streams, v1 and v2
// headers, and assorted batch sizes, ReadBatch must deliver exactly the
// event sequence (and terminal error) of a Next loop.
func TestReadBatchMatchesNext(t *testing.T) {
	evs := randomEvents(500, 21)
	cases := []struct {
		name  string
		model string
		torn  bool
	}{
		{"v1-clean", "", false},
		{"v2-clean", "model-b", false},
		{"v1-torn", "", true},
	}
	for _, tc := range cases {
		data := encodeFramed(t, evs, tc.model, 256, tc.torn)

		frNext, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var want []trace.Event
		var wantErr error
		for {
			ev, err := frNext.Next()
			if err != nil {
				wantErr = err
				break
			}
			want = append(want, ev)
		}

		for _, batch := range []int{1, 7, 64, 4096} {
			frBatch, err := NewFrameReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			got, gotErr := readAllBatched(frBatch, batch)
			if len(got) != len(want) {
				t.Fatalf("%s batch=%d: %d events, want %d", tc.name, batch, len(got), len(want))
			}
			for i := range want {
				if got[i].TS != want[i].TS || got[i].Type != want[i].Type ||
					got[i].Arg != want[i].Arg || !bytes.Equal(got[i].Payload, want[i].Payload) {
					t.Fatalf("%s batch=%d: event %d mismatch: got %v want %v",
						tc.name, batch, i, got[i], want[i])
				}
			}
			if (gotErr == io.EOF) != (wantErr == io.EOF) || !errors.Is(gotErr, wantErr) && gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s batch=%d: terminal error %v, want %v", tc.name, batch, gotErr, wantErr)
			}
			// The error is latched: further calls keep returning it.
			if _, err := frBatch.ReadBatch(make([]trace.Event, 4)); !errors.Is(err, gotErr) && err.Error() != gotErr.Error() {
				t.Fatalf("%s batch=%d: post-terminal ReadBatch %v, want %v", tc.name, batch, err, gotErr)
			}
		}
	}
}

// TestReadBatchTornMidFrame: a stream cut in the middle of a frame must
// yield every event of the complete frames, then io.ErrUnexpectedEOF —
// through ReadBatch just like through Next.
func TestReadBatchTornMidFrame(t *testing.T) {
	evs := randomEvents(200, 22)
	data := encodeFramed(t, evs, "", 256, false)
	cut := data[:len(data)-37] // chop inside the last frames

	frNext, _ := NewFrameReader(bytes.NewReader(cut))
	nNext := 0
	var errNext error
	for {
		if _, err := frNext.Next(); err != nil {
			errNext = err
			break
		}
		nNext++
	}
	fr, err := NewFrameReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr := readAllBatched(fr, 16)
	if len(got) != nNext {
		t.Fatalf("batched decode of torn stream: %d events, Next loop got %d", len(got), nNext)
	}
	if !errors.Is(gotErr, io.ErrUnexpectedEOF) || !errors.Is(errNext, io.ErrUnexpectedEOF) {
		t.Fatalf("torn stream errors: batch %v, next %v, want io.ErrUnexpectedEOF", gotErr, errNext)
	}
}

// TestReadBatchDoesNotBlockOnPartialStream: once one event is decoded,
// ReadBatch must return rather than block waiting for frames a slow
// sender has not written yet.
func TestReadBatchDoesNotBlockOnPartialStream(t *testing.T) {
	evs := randomEvents(40, 23)
	pr, pw := io.Pipe()
	defer pr.Close()

	var first bytes.Buffer
	fw, err := NewFrameWriter(&first, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[:25] {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	go pw.Write(first.Bytes()) // header + one frame; stream stays open

	fr, err := NewFrameReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]trace.Event, 100)
	n, err := fr.ReadBatch(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("ReadBatch on the available frame returned %d events, want 25", n)
	}

	// The rest of the stream arrives; the next batch picks it up.
	go func() {
		// The delta clock continues across frames, so keep encoding through
		// fw, retargeted at a fresh buffer.
		var rest bytes.Buffer
		fw.w.Reset(&rest)
		for _, ev := range evs[25:] {
			fw.Write(ev)
		}
		fw.Close()
		pw.Write(rest.Bytes())
		pw.Close()
	}()
	got, gotErr := readAllBatched(fr, 100)
	if gotErr != io.EOF {
		t.Fatalf("tail decode error %v, want io.EOF", gotErr)
	}
	if len(got) != 15 {
		t.Fatalf("tail decode returned %d events, want 15", len(got))
	}
}

// TestFrameReaderPoolReuse: Release/NewFrameReader cycles must hand back
// correct, fully reset readers, and payloads returned before a Release
// must stay intact afterwards (they never alias pooled buffers).
func TestFrameReaderPoolReuse(t *testing.T) {
	evs := randomEvents(100, 24)
	data := encodeFramed(t, evs, "m1", 512, false)
	var keep []trace.Event
	for round := 0; round < 5; round++ {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if fr.StreamName() != "s" || fr.ModelName() != "m1" || fr.Version() != 2 {
			t.Fatalf("round %d: header %q/%q v%d, want s/m1 v2", round, fr.StreamName(), fr.ModelName(), fr.Version())
		}
		got, gotErr := readAllBatched(fr, 33)
		if gotErr != io.EOF || len(got) != len(evs) {
			t.Fatalf("round %d: %d events err %v", round, len(got), gotErr)
		}
		if round == 0 {
			keep = got
		}
		fr.Release()
	}
	// Payloads from round 0 survived four pooled reuses of the reader.
	for i, ev := range keep {
		if !bytes.Equal(ev.Payload, evs[i].Payload) {
			t.Fatalf("payload %d clobbered by pooled reuse", i)
		}
	}
}

// TestReadBatchZeroAllocSteadyState is the ingest-path allocation gate:
// batched decode of payload-free events must not allocate at all once
// the reader is warm.
func TestReadBatchZeroAllocSteadyState(t *testing.T) {
	const perBatch, runs = 256, 30
	evs := make([]trace.Event, perBatch*(runs+4))
	ts := time.Duration(0)
	for i := range evs {
		ts += time.Millisecond
		evs[i] = trace.Event{TS: ts, Type: trace.EventType(i % 25), Arg: uint64(i)}
	}
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]trace.Event, perBatch)
	if _, err := fr.ReadBatch(dst); err != nil { // warm the frame buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := fr.ReadBatch(dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state ReadBatch allocates %v/op, want 0", allocs)
	}
}
