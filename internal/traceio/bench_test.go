package traceio

import (
	"bytes"
	"io"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

// benchStream encodes n events (every fourth carrying a 32-byte payload,
// roughly the mediasim mix) into one framed stream.
func benchStream(b *testing.B, n int) []byte {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 32)
	ts := time.Duration(0)
	for i := 0; i < n; i++ {
		ts += 40 * time.Microsecond
		ev := trace.Event{TS: ts, Type: trace.EventType(i % 25), Arg: uint64(i)}
		if i%4 == 0 {
			ev.Payload = payload
		}
		if err := fw.Write(ev); err != nil {
			b.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkFrameDecodeNext measures the per-event ingest decode path:
// one op = decoding a 10k-event framed stream event by event.
func BenchmarkFrameDecodeNext(b *testing.B) {
	data := benchStream(b, 10_000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := fr.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
		fr.Release()
	}
}

// BenchmarkFrameDecodeBatch measures the batched ingest decode path over
// the same stream, draining 512 events per ReadBatch.
func BenchmarkFrameDecodeBatch(b *testing.B) {
	data := benchStream(b, 10_000)
	dst := make([]trace.Event, 512)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := fr.ReadBatch(dst); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
		fr.Release()
	}
}
