package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrUnknownModel is wrapped by ModelRegistry.Resolve when a stream names
// a model the registry does not hold; the serving layer turns it into a
// clean stream rejection instead of scoring with the wrong model.
var ErrUnknownModel = errors.New("core: unknown model")

// NamedModel is one registry entry: an immutable Learned plus the Config
// it was learned under, addressable by name. The serving layer pins the
// *NamedModel at stream registration, so a registry reload never changes
// the model under an in-flight Monitor.Run.
type NamedModel struct {
	Name    string
	Cfg     Config
	Learned *Learned
}

// modelSet is one immutable generation of the registry's contents; Reload
// builds a fresh one and swaps the pointer.
type modelSet struct {
	models      map[string]*NamedModel
	defaultName string
}

// ModelRegistry is a named set of immutable models with atomic hot
// reload: readers (stream registration, admin endpoints) always see one
// consistent generation, and Reload swaps in a freshly loaded generation
// only after every file in the directory parsed and validated — a broken
// reload leaves the serving set untouched.
type ModelRegistry struct {
	dir string // "" for static (in-process) registries; Reload then errors
	set atomic.Pointer[modelSet]

	// reloadMu serialises Reloads (SIGHUP racing POST /reload); readers
	// never take it.
	reloadMu sync.Mutex
	gen      atomic.Int64
}

// NewModelRegistry builds a static registry from pre-loaded models —
// the in-process path (selftest, tests, single -model serving). Every
// model is validated by constructing a throwaway Monitor, so stream
// registration cannot fail on model errors mid-serve. defaultName may be
// empty when exactly one model is given.
func NewModelRegistry(defaultName string, models ...*NamedModel) (*ModelRegistry, error) {
	set, err := buildModelSet(defaultName, models)
	if err != nil {
		return nil, err
	}
	r := &ModelRegistry{}
	r.set.Store(set)
	return r, nil
}

// LoadModelDir loads every *.json model file in dir (the model's name is
// the file's base name without the extension) and returns a reloadable
// registry. defaultName picks the model served to streams that name none;
// empty is allowed when the directory holds exactly one model.
func LoadModelDir(dir, defaultName string) (*ModelRegistry, error) {
	models, err := loadModelDirOnce(dir)
	if err != nil {
		return nil, err
	}
	set, err := buildModelSet(defaultName, models)
	if err != nil {
		return nil, fmt.Errorf("core: model dir %s: %w", dir, err)
	}
	r := &ModelRegistry{dir: dir}
	r.set.Store(set)
	return r, nil
}

// loadModelDirOnce reads one generation of models from dir.
// LoadModelDirAll loads every *.json model in dir without building a
// registry — no default is needed. Callers that score against every
// model (replay) use this; the serving path goes through LoadModelDir.
func LoadModelDirAll(dir string) ([]*NamedModel, error) {
	return loadModelDirOnce(dir)
}

func loadModelDirOnce(dir string) ([]*NamedModel, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("core: model dir %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: model dir %s holds no *.json model files", dir)
	}
	sort.Strings(paths)
	models := make([]*NamedModel, 0, len(paths))
	for _, p := range paths {
		cfg, learned, err := LoadModelFile(p)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		models = append(models, &NamedModel{Name: name, Cfg: cfg, Learned: learned})
	}
	return models, nil
}

// buildModelSet validates the models (unique non-empty names, monitor
// constructibility) and resolves the default.
func buildModelSet(defaultName string, models []*NamedModel) (*modelSet, error) {
	if len(models) == 0 {
		return nil, errors.New("core: model registry needs at least one model")
	}
	byName := make(map[string]*NamedModel, len(models))
	for _, m := range models {
		if m.Name == "" {
			return nil, errors.New("core: model registry entry with empty name")
		}
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("core: duplicate model name %q", m.Name)
		}
		if _, err := NewMonitor(m.Cfg, m.Learned); err != nil {
			return nil, fmt.Errorf("core: model %q: %w", m.Name, err)
		}
		byName[m.Name] = m
	}
	if defaultName == "" {
		if len(models) > 1 {
			return nil, fmt.Errorf("core: %d models but no default named (set one)", len(models))
		}
		defaultName = models[0].Name
	}
	if _, ok := byName[defaultName]; !ok {
		return nil, fmt.Errorf("core: default model %q not in registry (have %s)",
			defaultName, strings.Join(sortedNames(byName), ", "))
	}
	return &modelSet{models: byName, defaultName: defaultName}, nil
}

func sortedNames(m map[string]*NamedModel) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve returns the model registered under name, or the default model
// for an empty name (the version 1 frame-header path). Unknown names wrap
// ErrUnknownModel.
func (r *ModelRegistry) Resolve(name string) (*NamedModel, error) {
	set := r.set.Load()
	if name == "" {
		return set.models[set.defaultName], nil
	}
	m, ok := set.models[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownModel, name,
			strings.Join(sortedNames(set.models), ", "))
	}
	return m, nil
}

// Default returns the current default model.
func (r *ModelRegistry) Default() *NamedModel {
	set := r.set.Load()
	return set.models[set.defaultName]
}

// DefaultName returns the current default model's name.
func (r *ModelRegistry) DefaultName() string { return r.set.Load().defaultName }

// Names lists the registered model names, sorted.
func (r *ModelRegistry) Names() []string { return sortedNames(r.set.Load().models) }

// Len returns the number of registered models.
func (r *ModelRegistry) Len() int { return len(r.set.Load().models) }

// Generation returns how many successful Reloads the registry has seen.
func (r *ModelRegistry) Generation() int64 { return r.gen.Load() }

// Reloadable reports whether the registry was loaded from a directory
// and thus supports Reload (static registries always refuse).
func (r *ModelRegistry) Reloadable() bool { return r.dir != "" }

// ReloadReport summarises one successful Reload.
type ReloadReport struct {
	Generation int64    `json:"generation"`
	Models     []string `json:"models"`
	Default    string   `json:"default"`
	Added      []string `json:"added,omitempty"`
	Removed    []string `json:"removed,omitempty"`
}

// Reload re-reads the model directory and atomically swaps the registry
// to the fresh set. In-flight streams keep the *NamedModel they were
// registered with and finish on the old generation; streams registered
// after Reload returns resolve against the new one. Any load or
// validation error (including a vanished default model) aborts the swap
// and leaves the current set serving. Static registries (no directory)
// cannot reload.
func (r *ModelRegistry) Reload() (ReloadReport, error) {
	if r.dir == "" {
		return ReloadReport{}, errors.New("core: model registry was not loaded from a directory; nothing to reload")
	}
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	models, err := loadModelDirOnce(r.dir)
	if err != nil {
		return ReloadReport{}, err
	}
	old := r.set.Load()
	// The default name is sticky across reloads (including one that was
	// implicit from a single-model dir); if the reloaded directory no
	// longer holds it, buildModelSet refuses and the swap is aborted —
	// there is deliberately no fallback to some other surviving model.
	defaultName := old.defaultName
	next, err := buildModelSet(defaultName, models)
	if err != nil {
		return ReloadReport{}, fmt.Errorf("core: reloading model dir %s: %w", r.dir, err)
	}
	r.set.Store(next)
	gen := r.gen.Add(1)

	rep := ReloadReport{Generation: gen, Models: sortedNames(next.models), Default: next.defaultName}
	for name := range next.models {
		if _, ok := old.models[name]; !ok {
			rep.Added = append(rep.Added, name)
		}
	}
	for name := range old.models {
		if _, ok := next.models[name]; !ok {
			rep.Removed = append(rep.Removed, name)
		}
	}
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	return rep, nil
}

// SaveModelFile writes one model to path with SaveModel semantics — the
// write-side counterpart of LoadModelFile, used to populate model
// directories.
func SaveModelFile(path string, cfg Config, l *Learned) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: model %s: %w", path, err)
	}
	if err := SaveModel(f, cfg, l); err != nil {
		f.Close()
		return fmt.Errorf("core: model %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: model %s: %w", path, err)
	}
	return nil
}
