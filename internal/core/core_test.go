package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"enduratrace/internal/lof"
	"enduratrace/internal/pmf"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// synth emits one event per 200 µs over [start, end) drawing types from
// weights (cumulative sampling), deterministically per seed. The density
// gives 100 events per 20 ms window, enough to keep multinomial noise well
// under the gate threshold.
func synth(start, end time.Duration, weights []float64, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	var total float64
	for _, w := range weights {
		total += w
	}
	var evs []trace.Event
	for ts := start; ts < end; ts += 200 * time.Microsecond {
		x := rng.Float64() * total
		typ := 0
		for i, w := range weights {
			if x < w {
				typ = i
				break
			}
			x -= w
		}
		evs = append(evs, trace.Event{TS: ts, Type: trace.EventType(typ), Arg: 1})
	}
	return evs
}

func testConfig() Config {
	cfg := NewConfig(4)
	cfg.WindowDuration = 20 * time.Millisecond
	cfg.K = 5
	cfg.Alpha = 2
	cfg.GateThreshold = 0.3
	return cfg
}

var refWeights = []float64{4, 3, 2, 1}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumTypes = 1 },
		func(c *Config) { c.WindowCount = 10 }, // both window kinds set
		func(c *Config) { c.WindowDuration = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0.5 },
		func(c *Config) { c.GateThreshold = -1 },
		func(c *Config) { c.MergeLambda = 0 },
		func(c *Config) { c.Smoothing = -0.1 },
		func(c *Config) { c.GateDistance.F = nil },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestLearnTooFewWindows(t *testing.T) {
	cfg := testConfig()
	evs := synth(0, 60*time.Millisecond, refWeights, 1) // 3 windows < K+1
	_, err := Learn(cfg, trace.NewSliceReader(evs))
	if !errors.Is(err, lof.ErrTooFewPoints) {
		t.Fatalf("err = %v, want ErrTooFewPoints", err)
	}
}

func TestGateMergeVsTrip(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		t.Fatal(err)
	}

	mkWindow := func(weights []float64, seed int64) window.Window {
		evs := synth(0, 20*time.Millisecond, weights, seed)
		return window.Window{Start: 0, End: 20 * time.Millisecond, Events: evs}
	}

	// First window always trips: there is no past yet.
	d := mon.ProcessWindow(mkWindow(refWeights, 2))
	if !d.GateTripped || !math.IsInf(d.GateDist, 1) {
		t.Fatalf("first window: %+v, want seeded trip", d)
	}
	// A same-mix window stays under the gate and is merged, not scored.
	d = mon.ProcessWindow(mkWindow(refWeights, 3))
	if d.GateTripped {
		t.Fatalf("same-mix window tripped the gate: dist %g", d.GateDist)
	}
	if !math.IsNaN(d.LOF) || d.Anomalous {
		t.Fatalf("quiet gate still scored LOF: %+v", d)
	}
	// A completely different mix trips the gate and scores anomalous.
	d = mon.ProcessWindow(mkWindow([]float64{0, 0, 1, 20}, 4))
	if !d.GateTripped {
		t.Fatalf("shifted window did not trip the gate: dist %g", d.GateDist)
	}
	if math.IsNaN(d.LOF) || !d.Anomalous {
		t.Fatalf("shifted window not anomalous: %+v", d)
	}
	windows, trips, lofCalls, anoms := mon.Stats()
	if windows != 3 || trips != 2 || lofCalls != 2 || anoms != 1 {
		t.Fatalf("stats = %d/%d/%d/%d, want 3/2/2/1", windows, trips, lofCalls, anoms)
	}
}

func TestLearnRunEndToEnd(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if learned.RefWindows != 100 {
		t.Fatalf("RefWindows = %d, want 100", learned.RefWindows)
	}

	// Splice an anomalous segment into an otherwise clean run.
	anomStart, anomEnd := 1*time.Second, 1200*time.Millisecond
	var run []trace.Event
	run = append(run, synth(0, anomStart, refWeights, 2)...)
	run = append(run, synth(anomStart, anomEnd, []float64{0, 1, 10, 10}, 3)...)
	run = append(run, synth(anomEnd, 3*time.Second, refWeights, 4)...)

	sink := recorder.NewMemSink()
	var anomWindows []window.Window
	stats, err := Run(cfg, learned, trace.NewSliceReader(run), sink, func(d Decision) error {
		if d.Anomalous {
			anomWindows = append(anomWindows, d.Window)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 150 {
		t.Fatalf("windows = %d, want 150", stats.Windows)
	}
	if stats.Anomalies == 0 {
		t.Fatal("no anomalies detected in spliced segment")
	}
	if stats.Anomalies != stats.RecWindows || stats.RecWindows != len(sink.Windows) {
		t.Fatalf("anomalies %d, recorded %d, sink %d: want equal",
			stats.Anomalies, stats.RecWindows, len(sink.Windows))
	}
	// Every anomalous window must overlap the spliced segment (allow one
	// window of slop at each edge for regime-switch transients).
	slop := cfg.WindowDuration
	for _, w := range anomWindows {
		if w.End < anomStart-slop || w.Start > anomEnd+slop {
			t.Fatalf("anomalous window [%v,%v) outside spliced segment [%v,%v)",
				w.Start, w.End, anomStart, anomEnd)
		}
	}
	// Storage accounting: full size must match an independent measurement,
	// and recording only the anomaly must shrink the trace.
	full, err := recorder.FullTraceSize(trace.NewSliceReader(run))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullBytes != full {
		t.Fatalf("FullBytes = %d, independent measure %d", stats.FullBytes, full)
	}
	if rf, ok := stats.ReductionFactor(); !ok || rf <= 1 {
		t.Fatalf("reduction factor %g (ok=%v), want defined and > 1", rf, ok)
	}
	if stats.Start != 0 || stats.End != 3*time.Second {
		t.Fatalf("span [%v,%v), want [0,3s)", stats.Start, stats.End)
	}
}

func TestRunWithContextSink(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var run []trace.Event
	run = append(run, synth(0, time.Second, refWeights, 2)...)
	run = append(run, synth(time.Second, 1100*time.Millisecond, []float64{0, 1, 10, 10}, 3)...)
	run = append(run, synth(1100*time.Millisecond, 2*time.Second, refWeights, 4)...)

	mem := recorder.NewMemSink()
	ctx := recorder.NewContextSink(mem, 2, 2)
	stats, err := Run(cfg, learned, trace.NewSliceReader(run), ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Anomalies == 0 {
		t.Fatal("no anomalies")
	}
	if len(mem.Windows) <= stats.Anomalies {
		t.Fatalf("context sink recorded %d windows for %d anomalies, want more",
			len(mem.Windows), stats.Anomalies)
	}
	for i := 1; i < len(mem.Windows); i++ {
		if mem.Windows[i].Index <= mem.Windows[i-1].Index {
			t.Fatalf("recorded windows out of order or duplicated: %d then %d",
				mem.Windows[i-1].Index, mem.Windows[i].Index)
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.IncludeRate = true
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, learned); err != nil {
		t.Fatal(err)
	}
	cfg2, learned2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.NumTypes != cfg.NumTypes || cfg2.K != cfg.K || cfg2.Alpha != cfg.Alpha ||
		cfg2.WindowDuration != cfg.WindowDuration ||
		cfg2.GateDistance.Name != cfg.GateDistance.Name ||
		cfg2.LOFDistance.Name != cfg.LOFDistance.Name {
		t.Fatalf("loaded config differs: %+v vs %+v", cfg2, cfg)
	}
	if learned2.RefWindows != learned.RefWindows ||
		learned2.Featurizer != learned.Featurizer ||
		learned2.Model.Len() != learned.Model.Len() {
		t.Fatalf("loaded model differs")
	}
	// The reloaded model must score identically.
	q := learned.Featurizer.Features(window.Window{
		Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, []float64{1, 1, 1, 1}, 9),
	})
	a, b := learned.Model.Score(q), learned2.Model.Score(q)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("reloaded model scores %g, original %g", b, a)
	}
}

// TestModelSaveLoadRoundTripCondensed: a condensed, auto-gated model must
// fully round-trip — the reloaded model scores identically (the saved
// points are the condensed set, so the reload's condensation is a no-op
// that still re-enables the fast kernels), and the condensation report
// plus calibrated gate threshold survive.
func TestModelSaveLoadRoundTripCondensed(t *testing.T) {
	cfg := testConfig()
	cfg.IncludeRate = true
	cfg.CondenseTarget = 40
	cfg.GateAuto = true
	ref := synth(0, 4*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if learned.Model.Len() != 40 || learned.Model.Cond == nil {
		t.Fatalf("learned model not condensed: %d points, cond %+v",
			learned.Model.Len(), learned.Model.Cond)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, learned); err != nil {
		t.Fatal(err)
	}
	cfg2, learned2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.CondenseTarget != 40 || !cfg2.GateAuto {
		t.Fatalf("loaded config lost condensation/gate fields: %+v", cfg2)
	}
	if learned2.Model.Len() != 40 {
		t.Fatalf("reloaded model has %d points, want 40", learned2.Model.Len())
	}
	if learned2.Model.Cond == nil || *learned2.Model.Cond != *learned.Model.Cond {
		t.Fatalf("condense report lost in round-trip: %+v vs %+v",
			learned2.Model.Cond, learned.Model.Cond)
	}
	if learned2.AutoGateThreshold != learned.AutoGateThreshold {
		t.Fatalf("auto gate threshold %g != %g", learned2.AutoGateThreshold, learned.AutoGateThreshold)
	}
	q := learned.Featurizer.Features(window.Window{
		Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, []float64{1, 1, 1, 1}, 9),
	})
	if a, b := learned.Model.Score(q), learned2.Model.Score(q); a != b {
		t.Fatalf("reloaded condensed model scores %g, original %g", b, a)
	}
}

func TestValidateCatchesBadCondenseAndGateAuto(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.CondenseTarget = -1 },
		func(c *Config) { c.CondenseTarget = c.K }, // must exceed K
		func(c *Config) { c.GateAutoQuantile = 1.5 },
		func(c *Config) { c.GateAutoQuantile = -0.5 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad condense/gate config %d validated", i)
		}
	}
	cfg := testConfig()
	cfg.CondenseTarget = cfg.K + 1
	cfg.GateAuto = true
	cfg.GateAutoQuantile = 0.95
	if err := cfg.Validate(); err != nil {
		t.Fatalf("good condense/gate config rejected: %v", err)
	}
}

func TestSaveModelRejectsUnnamedDistance(t *testing.T) {
	cfg := testConfig()
	cfg.GateDistance.Name = ""
	ref := synth(0, time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, learned); err == nil {
		t.Fatal("SaveModel accepted an unnamed distance")
	}
}

func TestFeaturesPMFIsDistribution(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	w := window.Window{Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, refWeights, 5)}
	v := learned.Featurizer.Features(w)
	var p pmf.Vector = learned.Featurizer.PMFOnly(v)
	if err := p.Validate(); err != nil {
		t.Fatalf("feature pmf invalid: %v", err)
	}
}
