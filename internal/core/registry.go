package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// StreamState labels a registered stream's lifecycle phase.
type StreamState string

const (
	// StreamActive: the stream is receiving and scoring windows.
	StreamActive StreamState = "active"
	// StreamDraining: ingestion has stopped (clean end-of-stream or
	// shutdown) and the remaining queued events are being scored.
	StreamDraining StreamState = "draining"
)

// StreamStatus is one registered stream's public view, served by admin
// endpoints while the stream runs.
type StreamStatus struct {
	ID       string      `json:"id"`
	Model    string      `json:"model"`
	State    StreamState `json:"state"`
	Since    time.Time   `json:"since"`
	Counters Snapshot    `json:"counters"`
}

// StreamRegistry tracks the live streams served from a ModelRegistry and
// accumulates the counters of streams that have finished, so aggregate
// totals (served + serving) survive stream churn — overall and per model.
// It is the serving layer's bookkeeping hook into core: registration
// resolves the requested model name and hands out the per-stream Monitor
// pinned to that model generation, and closing a stream folds its final
// counters into the cumulative totals exactly once.
type StreamRegistry struct {
	models *ModelRegistry

	mu      sync.Mutex
	seq     int                      //enduratrace:guarded-by mu
	live    map[string]*StreamHandle //enduratrace:guarded-by mu
	closed  map[string]Snapshot      //enduratrace:guarded-by mu
	nDone   int                      //enduratrace:guarded-by mu
	nDoneBy map[string]int           //enduratrace:guarded-by mu
}

// NewStreamRegistry builds a stream registry serving models. Model
// validity (monitor constructibility) was checked when the ModelRegistry
// was built, so per-stream registration fails only on unknown model
// names.
func NewStreamRegistry(models *ModelRegistry) *StreamRegistry {
	return &StreamRegistry{
		models:  models,
		live:    make(map[string]*StreamHandle),
		closed:  make(map[string]Snapshot),
		nDoneBy: make(map[string]int),
	}
}

// Models returns the backing model registry.
func (r *StreamRegistry) Models() *ModelRegistry { return r.models }

// StreamHandle is one registered stream: its Monitor, the model it was
// pinned to at registration, plus registry bookkeeping. The Monitor is
// owned by the stream's goroutine; the handle's other methods are safe
// from any goroutine.
type StreamHandle struct {
	reg   *StreamRegistry
	id    string
	model *NamedModel
	mon   *Monitor
	since time.Time

	mu    sync.Mutex
	state StreamState
	done  bool
}

// Register resolves modelName (empty means the registry default), creates
// a Monitor pinned to that model, and registers it under name. An empty
// name gets a sequential "stream-NNNN" id; a taken name is suffixed with
// the sequence number instead of failing, so client-chosen names can
// collide harmlessly. Unknown model names fail with ErrUnknownModel — the
// stream is not registered.
func (r *StreamRegistry) Register(name, modelName string) (*StreamHandle, error) {
	m, err := r.models.Resolve(modelName)
	if err != nil {
		return nil, err
	}
	mon, err := NewMonitor(m.Cfg, m.Learned)
	if err != nil {
		return nil, fmt.Errorf("core: model %q: %w", m.Name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	base := name
	if base == "" {
		base = fmt.Sprintf("stream-%04d", r.seq)
	}
	// Suffix until unique: auto ids and client names share one namespace,
	// so both paths must dodge collisions (a client may have claimed
	// "stream-0002" before auto id 2 is handed out).
	id := base
	for seq := r.seq; ; seq++ {
		if _, taken := r.live[id]; !taken {
			break
		}
		id = fmt.Sprintf("%s-%04d", base, seq)
	}
	//lint:ignore monotime since is a wall-clock registration timestamp shown to operators
	h := &StreamHandle{reg: r, id: id, model: m, mon: mon, since: time.Now(), state: StreamActive}
	r.live[id] = h
	return h, nil
}

// ID returns the registry-assigned stream id.
func (h *StreamHandle) ID() string { return h.id }

// Model returns the model this stream was pinned to at registration; it
// does not change when the model registry reloads.
func (h *StreamHandle) Model() *NamedModel { return h.model }

// Monitor returns the stream's monitor (owned by the stream goroutine).
func (h *StreamHandle) Monitor() *Monitor { return h.mon }

// SetState transitions the stream's lifecycle label (shown by /streams).
func (h *StreamHandle) SetState(s StreamState) {
	h.mu.Lock()
	h.state = s
	h.mu.Unlock()
}

// Status returns the stream's public view with live counters.
func (h *StreamHandle) Status() StreamStatus {
	h.mu.Lock()
	state := h.state
	h.mu.Unlock()
	return StreamStatus{ID: h.id, Model: h.model.Name, State: state, Since: h.since, Counters: h.mon.Snapshot()}
}

// Close unregisters the stream and folds its final counters into the
// registry's cumulative per-model totals. Idempotent.
func (h *StreamHandle) Close() {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.mu.Unlock()

	h.reg.mu.Lock()
	delete(h.reg.live, h.id)
	h.reg.closed[h.model.Name] = h.reg.closed[h.model.Name].Add(h.mon.Snapshot())
	h.reg.nDone++
	h.reg.nDoneBy[h.model.Name]++
	h.reg.mu.Unlock()
}

// Discard unregisters a stream that was refused before it served anything
// (e.g. its recorder sink could not be built): the stream leaves no trace
// in the closed-stream counts — the serving layer books the refusal as a
// rejection instead, and a stream that shows up in both rejected and
// closed would double-count. Idempotent, and a no-op after Close.
func (h *StreamHandle) Discard() {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.mu.Unlock()

	h.reg.mu.Lock()
	delete(h.reg.live, h.id)
	h.reg.mu.Unlock()
}

// Streams lists the live streams' statuses, sorted by id.
func (r *StreamRegistry) Streams() []StreamStatus {
	r.mu.Lock()
	handles := make([]*StreamHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	out := make([]StreamStatus, len(handles))
	for i, h := range handles {
		out[i] = h.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Totals returns the aggregate counters over every stream ever registered
// (closed streams' final counters plus the live streams' current ones),
// along with the live and finished stream counts. Safe mid-serve.
func (r *StreamRegistry) Totals() (total Snapshot, liveStreams, closedStreams int) {
	r.mu.Lock()
	for _, s := range r.closed {
		total = total.Add(s)
	}
	closedStreams = r.nDone
	handles := make([]*StreamHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	for _, h := range handles {
		total = total.Add(h.mon.Snapshot())
	}
	return total, len(handles), closedStreams
}

// ModelTotals is one model's cumulative view: counters and stream counts
// over every stream ever pinned to it.
type ModelTotals struct {
	Snapshot
	StreamsLive   int
	StreamsClosed int
}

// TotalsByModel returns the cumulative counters broken down by the model
// streams were pinned to (closed finals plus live counters) — the
// per-model rows behind the /metrics model labels. Models currently in
// the registry appear even when they have served nothing yet; models
// dropped by a reload keep their historic rows.
func (r *StreamRegistry) TotalsByModel() map[string]ModelTotals {
	out := make(map[string]ModelTotals)
	for _, name := range r.models.Names() {
		out[name] = ModelTotals{}
	}
	r.mu.Lock()
	for name, s := range r.closed {
		t := out[name]
		t.Snapshot = t.Snapshot.Add(s)
		t.StreamsClosed = r.nDoneBy[name]
		out[name] = t
	}
	handles := make([]*StreamHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	for _, h := range handles {
		t := out[h.model.Name]
		t.Snapshot = t.Snapshot.Add(h.mon.Snapshot())
		t.StreamsLive++
		out[h.model.Name] = t
	}
	return out
}
