package core

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// StreamState labels a registered stream's lifecycle phase.
type StreamState string

const (
	// StreamActive: the stream is receiving and scoring windows.
	StreamActive StreamState = "active"
	// StreamDraining: ingestion has stopped (clean end-of-stream or
	// shutdown) and the remaining queued events are being scored.
	StreamDraining StreamState = "draining"
)

// StreamStatus is one registered stream's public view, served by admin
// endpoints while the stream runs.
type StreamStatus struct {
	ID       string      `json:"id"`
	State    StreamState `json:"state"`
	Since    time.Time   `json:"since"`
	Counters Snapshot    `json:"counters"`
}

// StreamRegistry tracks the live streams served from one shared Learned
// and accumulates the counters of streams that have finished, so
// aggregate totals (served + serving) survive stream churn. It is the
// serving layer's bookkeeping hook into core: registration hands out the
// per-stream Monitor, and closing a stream folds its final counters into
// the cumulative totals exactly once.
type StreamRegistry struct {
	cfg     Config
	learned *Learned

	mu     sync.Mutex
	seq    int
	live   map[string]*StreamHandle
	closed Snapshot // totals of finished streams
	nDone  int
}

// NewStreamRegistry builds a registry serving cfg over one shared learned
// model. Monitor construction is validated once up front so per-stream
// registration cannot fail on config errors mid-serve.
func NewStreamRegistry(cfg Config, learned *Learned) (*StreamRegistry, error) {
	// Validate eagerly with a throwaway monitor.
	if _, err := NewMonitor(cfg, learned); err != nil {
		return nil, err
	}
	return &StreamRegistry{
		cfg:     cfg,
		learned: learned,
		live:    make(map[string]*StreamHandle),
	}, nil
}

// Learned returns the shared immutable model.
func (r *StreamRegistry) Learned() *Learned { return r.learned }

// StreamHandle is one registered stream: its Monitor plus registry
// bookkeeping. The Monitor is owned by the stream's goroutine; the handle's
// other methods are safe from any goroutine.
type StreamHandle struct {
	reg   *StreamRegistry
	id    string
	mon   *Monitor
	since time.Time

	mu    sync.Mutex
	state StreamState
	done  bool
}

// Register creates a Monitor over the shared model and registers it under
// name. An empty name gets a sequential "stream-NNNN" id; a taken name is
// suffixed with the sequence number instead of failing, so client-chosen
// names can collide harmlessly.
func (r *StreamRegistry) Register(name string) (*StreamHandle, error) {
	mon, err := NewMonitor(r.cfg, r.learned)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	base := name
	if base == "" {
		base = fmt.Sprintf("stream-%04d", r.seq)
	}
	// Suffix until unique: auto ids and client names share one namespace,
	// so both paths must dodge collisions (a client may have claimed
	// "stream-0002" before auto id 2 is handed out).
	id := base
	for seq := r.seq; ; seq++ {
		if _, taken := r.live[id]; !taken {
			break
		}
		id = fmt.Sprintf("%s-%04d", base, seq)
	}
	h := &StreamHandle{reg: r, id: id, mon: mon, since: time.Now(), state: StreamActive}
	r.live[id] = h
	return h, nil
}

// ID returns the registry-assigned stream id.
func (h *StreamHandle) ID() string { return h.id }

// Monitor returns the stream's monitor (owned by the stream goroutine).
func (h *StreamHandle) Monitor() *Monitor { return h.mon }

// SetState transitions the stream's lifecycle label (shown by /streams).
func (h *StreamHandle) SetState(s StreamState) {
	h.mu.Lock()
	h.state = s
	h.mu.Unlock()
}

// Status returns the stream's public view with live counters.
func (h *StreamHandle) Status() StreamStatus {
	h.mu.Lock()
	state := h.state
	h.mu.Unlock()
	return StreamStatus{ID: h.id, State: state, Since: h.since, Counters: h.mon.Snapshot()}
}

// Close unregisters the stream and folds its final counters into the
// registry's cumulative totals. Idempotent.
func (h *StreamHandle) Close() {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.mu.Unlock()

	h.reg.mu.Lock()
	delete(h.reg.live, h.id)
	h.reg.closed = h.reg.closed.Add(h.mon.Snapshot())
	h.reg.nDone++
	h.reg.mu.Unlock()
}

// Streams lists the live streams' statuses, sorted by id.
func (r *StreamRegistry) Streams() []StreamStatus {
	r.mu.Lock()
	handles := make([]*StreamHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	out := make([]StreamStatus, len(handles))
	for i, h := range handles {
		out[i] = h.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Totals returns the aggregate counters over every stream ever registered
// (closed streams' final counters plus the live streams' current ones),
// along with the live and finished stream counts. Safe mid-serve.
func (r *StreamRegistry) Totals() (total Snapshot, liveStreams, closedStreams int) {
	r.mu.Lock()
	total = r.closed
	closedStreams = r.nDone
	handles := make([]*StreamHandle, 0, len(r.live))
	for _, h := range r.live {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	for _, h := range handles {
		total = total.Add(h.mon.Snapshot())
	}
	return total, len(handles), closedStreams
}
