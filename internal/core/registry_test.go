package core

import (
	"sync"
	"testing"
	"time"

	"enduratrace/internal/mediasim"
)

// registryFixture learns a small model suitable for registry tests.
func registryFixture(t *testing.T) (Config, *Learned) {
	t.Helper()
	cfg := NewConfig(mediasim.NumEventTypes)
	cfg.IncludeRate = true
	sc := mediasim.DefaultConfig()
	sc.Duration = 20 * time.Second
	sc.Seed = 11
	sim, err := mediasim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := Learn(cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, learned
}

// singleModelRegistry wraps one (cfg, learned) pair as a static
// one-model registry, the pre-multi-model serving shape.
func singleModelRegistry(t *testing.T, cfg Config, learned *Learned) *ModelRegistry {
	t.Helper()
	models, err := NewModelRegistry("", &NamedModel{Name: "default", Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	return models
}

func TestStreamRegistryLifecycle(t *testing.T) {
	cfg, learned := registryFixture(t)
	reg := NewStreamRegistry(singleModelRegistry(t, cfg, learned))

	a, err := reg.Register("cam", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register("cam", "") // name collision gets a suffix
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Register("", "") // empty name gets a sequential id
	if err != nil {
		t.Fatal(err)
	}
	if a.Model().Name != "default" {
		t.Fatalf("stream pinned to %q, want the default model", a.Model().Name)
	}
	if a.ID() != "cam" || b.ID() == "cam" || c.ID() == "" {
		t.Fatalf("ids: %q %q %q", a.ID(), b.ID(), c.ID())
	}
	if n := len(reg.Streams()); n != 3 {
		t.Fatalf("live streams %d, want 3", n)
	}

	// Drive one stream and check totals fold in on Close exactly once.
	sc := mediasim.DefaultConfig()
	sc.Duration = 10 * time.Second
	sc.Seed = 12
	sim, err := mediasim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a.Monitor().Run(sim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows == 0 {
		t.Fatal("monitored run produced no windows")
	}

	total, live, closed := reg.Totals()
	if live != 3 || closed != 0 {
		t.Fatalf("live=%d closed=%d before Close, want 3/0", live, closed)
	}
	if total.Windows != int64(stats.Windows) {
		t.Fatalf("live totals windows %d, want %d", total.Windows, stats.Windows)
	}

	a.SetState(StreamDraining)
	if st := a.Status(); st.State != StreamDraining {
		t.Fatalf("state %q, want draining", st.State)
	}

	a.Close()
	a.Close() // idempotent
	total, live, closed = reg.Totals()
	if live != 2 || closed != 1 {
		t.Fatalf("live=%d closed=%d after Close, want 2/1", live, closed)
	}
	if total.Windows != int64(stats.Windows) {
		t.Fatalf("totals windows %d after Close, want %d (folded exactly once)", total.Windows, stats.Windows)
	}
	b.Close()
	c.Close()
	if n := len(reg.Streams()); n != 0 {
		t.Fatalf("live streams %d after closing all, want 0", n)
	}
}

func TestStreamRegistryAutoIDCollision(t *testing.T) {
	cfg, learned := registryFixture(t)
	reg := NewStreamRegistry(singleModelRegistry(t, cfg, learned))
	// Claim the id the second auto-named registration would get; the
	// registry must dodge it rather than overwrite the live entry.
	squatter, err := reg.Register("stream-0002", "")
	if err != nil {
		t.Fatal(err)
	}
	auto, err := reg.Register("", "")
	if err != nil {
		t.Fatal(err)
	}
	if auto.ID() == squatter.ID() {
		t.Fatalf("auto id %q collided with a live client-chosen name", auto.ID())
	}
	if n := len(reg.Streams()); n != 2 {
		t.Fatalf("live streams %d, want 2 (one was overwritten)", n)
	}
	squatter.Close()
	auto.Close()
	if _, live, closed := reg.Totals(); live != 0 || closed != 2 {
		t.Fatalf("live=%d closed=%d, want 0/2", live, closed)
	}
}

func TestSnapshotWhileRunning(t *testing.T) {
	cfg, learned := registryFixture(t)
	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		t.Fatal(err)
	}
	sc := mediasim.DefaultConfig()
	sc.Duration = 15 * time.Second
	sc.Seed = 13
	sim, err := mediasim.New(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent snapshots while the monitor runs: -race validates the
	// atomics, and snapshots must be monotonic in window count.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := mon.Snapshot()
			if s.Windows < last {
				t.Error("snapshot window count went backwards")
				return
			}
			last = s.Windows
		}
	}()
	stats, err := mon.Run(sim, nil, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if s := mon.Snapshot(); s.Windows != int64(stats.Windows) {
		t.Fatalf("final snapshot windows %d != RunStats windows %d", s.Windows, stats.Windows)
	}
}
