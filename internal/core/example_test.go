package core_test

import (
	"fmt"
	"math"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/window"
)

// ExampleLearn learns a model of correct behaviour from a clean reference
// trace — here a simulated pipeline run, in production the first minutes
// of a validated execution (trace.LimitReader over any trace.Reader).
func ExampleLearn() {
	cfg := core.NewConfig(mediasim.NumEventTypes)
	cfg.IncludeRate = true

	sc := mediasim.DefaultConfig()
	sc.Duration = 30 * time.Second
	sc.Seed = 7
	sim, err := mediasim.New(sc)
	if err != nil {
		panic(err)
	}
	learned, err := core.Learn(cfg, sim)
	if err != nil {
		panic(err)
	}
	// 30 s of 40 ms windows: 750 reference points, one per window.
	fmt.Println("reference windows:", learned.RefWindows)
	fmt.Println("model points:", learned.Model.Len())
	fmt.Println("feature dim:", learned.Model.Dim())
	// Output:
	// reference windows: 750
	// model points: 750
	// feature dim: 26
}

// ExampleMonitor_ProcessWindow drives the §II online step window by
// window. Any number of Monitors may share one immutable Learned — one
// per live stream (see MultiMonitor and internal/serve).
func ExampleMonitor_ProcessWindow() {
	cfg := core.NewConfig(mediasim.NumEventTypes)
	cfg.IncludeRate = true
	cfg.Alpha = 2.5

	ref := mediasim.DefaultConfig()
	ref.Duration = 30 * time.Second
	ref.Seed = 7
	sim, err := mediasim.New(ref)
	if err != nil {
		panic(err)
	}
	learned, err := core.Learn(cfg, sim)
	if err != nil {
		panic(err)
	}
	mon, err := core.NewMonitor(cfg, learned)
	if err != nil {
		panic(err)
	}

	// Monitor a fresh run of the same workload (a different seed: an
	// independent draw of correct behaviour).
	live := mediasim.DefaultConfig()
	live.Duration = 10 * time.Second
	live.Seed = 8
	sim2, err := mediasim.New(live)
	if err != nil {
		panic(err)
	}
	first := true
	err = window.Stream(sim2, cfg.NewWindower(), func(w window.Window) error {
		d := mon.ProcessWindow(w)
		if first {
			// The first window always trips the gate (there is no past
			// pmf yet) and therefore always gets a LOF score.
			fmt.Println("first window gate tripped:", d.GateTripped)
			fmt.Println("first window scored:", !math.IsNaN(d.LOF))
			first = false
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	windows, trips, _, _ := mon.Stats()
	fmt.Println("windows:", windows)
	fmt.Println("every trip needed one LOF call:", trips <= windows)
	// Output:
	// first window gate tripped: true
	// first window scored: true
	// windows: 250
	// every trip needed one LOF call: true
}
