package core

import (
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// benchMonitor builds a monitor over a synthetic reference trace plus one
// quiet and one gate-tripping window for the two ProcessWindow paths.
func benchMonitor(b *testing.B, condense int) (*Monitor, window.Window, window.Window) {
	cfg := testConfig()
	cfg.CondenseTarget = condense
	ref := synth(0, 8*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		b.Fatal(err)
	}
	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		b.Fatal(err)
	}
	quiet := window.Window{Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, refWeights, 2)}
	shifted := window.Window{Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, []float64{0, 0, 1, 20}, 3)}
	mon.ProcessWindow(quiet) // seed past pmf, warm scratch
	return mon, quiet, shifted
}

// BenchmarkProcessWindowQuiet measures the steady-state cost of a window
// that stays under the gate (featurize + gate distance + merge) — the
// path taken by the overwhelming majority of windows.
func BenchmarkProcessWindowQuiet(b *testing.B) {
	mon, quiet, _ := benchMonitor(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.ProcessWindow(quiet)
	}
}

// BenchmarkProcessWindowTrip measures a gate-tripping window (featurize +
// gate + LOF scoring) on the exact, uncondensed model.
func BenchmarkProcessWindowTrip(b *testing.B) {
	mon, _, shifted := benchMonitor(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.ProcessWindow(shifted)
	}
}

// BenchmarkProcessWindowTripCondensed is the same tripped path over a
// condensed reference set with the fast KL kernels.
func BenchmarkProcessWindowTripCondensed(b *testing.B) {
	mon, _, shifted := benchMonitor(b, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.ProcessWindow(shifted)
	}
}
