package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"enduratrace/internal/distance"
	"enduratrace/internal/lof"
	"enduratrace/internal/pmf"
)

// modelFile is the on-disk form of a learned model: the full monitor
// configuration (distances by catalogue name) plus the reference feature
// points. Loading re-fits the LOF model from the points, which is cheap
// compared to shipping the index and keeps the format independent of index
// internals.
type modelFile struct {
	Version       int     `json:"version"`
	NumTypes      int     `json:"num_types"`
	WindowNS      int64   `json:"window_ns"`
	WindowCount   int     `json:"window_count"`
	K             int     `json:"k"`
	Alpha         float64 `json:"alpha"`
	GateThreshold float64 `json:"gate_threshold"`
	GateDistance  string  `json:"gate_distance"`
	LOFDistance   string  `json:"lof_distance"`
	MergeLambda   float64 `json:"merge_lambda"`
	Smoothing     float64 `json:"smoothing"`
	IncludeRate   bool    `json:"include_rate"`
	UseVPTree     bool    `json:"use_vptree"`
	Seed          int64   `json:"seed"`
	RateScale     float64 `json:"rate_scale"`
	RefWindows    int     `json:"ref_windows"`
	MeanCount     float64 `json:"mean_count"`

	// Condensation (all zero-valued for uncondensed models, keeping old
	// files loadable): the saved points are the already-condensed set, so
	// re-fitting on load is a condensation no-op; the target is kept so
	// the reload re-enables the fast KL-family kernels.
	CondenseTarget int                 `json:"condense_target,omitempty"`
	Condense       *lof.CondenseReport `json:"condense,omitempty"`

	// FastKernels records the Config.FastKernels opt-in so a reloaded
	// model scores through the same (fast, approximate) kernels it was
	// deployed with. Absent in older files, which load bit-exact.
	FastKernels bool `json:"fast_kernels,omitempty"`

	// Auto gate calibration: the threshold derived from the reference
	// trace's gate-distance quantiles (see Config.GateAuto).
	GateAuto          bool    `json:"gate_auto,omitempty"`
	GateAutoQuantile  float64 `json:"gate_auto_quantile,omitempty"`
	AutoGateThreshold float64 `json:"auto_gate_threshold,omitempty"`

	Points [][]float64 `json:"points"`
}

const modelFileVersion = 1

// SaveModel serialises a learned model together with the configuration it
// was learned under, so `enduratrace monitor` can reconstruct both. The
// configured distances must come from the distance catalogue (have names).
func SaveModel(w io.Writer, cfg Config, l *Learned) error {
	if l == nil || l.Model == nil {
		return fmt.Errorf("core: saving nil model")
	}
	if cfg.GateDistance.Name == "" || cfg.LOFDistance.Name == "" {
		return fmt.Errorf("core: cannot save a model with unnamed distances")
	}
	gateThreshold := cfg.GateThreshold
	if cfg.GateAuto && l.AutoGateThreshold > 0 {
		// Auto-gated models write the calibrated value into the plain
		// gate_threshold field too, so a consumer that predates (or
		// ignores) the gate_auto fields still monitors with the right
		// gate instead of the stale fixed default.
		gateThreshold = l.AutoGateThreshold
	}
	mf := modelFile{
		Version:           modelFileVersion,
		NumTypes:          cfg.NumTypes,
		WindowNS:          int64(cfg.WindowDuration),
		WindowCount:       cfg.WindowCount,
		K:                 cfg.K,
		Alpha:             cfg.Alpha,
		GateThreshold:     gateThreshold,
		GateDistance:      cfg.GateDistance.Name,
		LOFDistance:       cfg.LOFDistance.Name,
		MergeLambda:       cfg.MergeLambda,
		Smoothing:         cfg.Smoothing,
		IncludeRate:       cfg.IncludeRate,
		UseVPTree:         cfg.UseVPTree,
		Seed:              cfg.Seed,
		RateScale:         l.Featurizer.RateScale,
		RefWindows:        l.RefWindows,
		MeanCount:         l.MeanCount,
		CondenseTarget:    cfg.CondenseTarget,
		Condense:          l.Model.Cond,
		FastKernels:       cfg.FastKernels,
		GateAuto:          cfg.GateAuto,
		GateAutoQuantile:  cfg.GateAutoQuantile,
		AutoGateThreshold: l.AutoGateThreshold,
		Points:            l.Model.PointRows(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// LoadModel reads a model saved by SaveModel, re-fits the LOF index and
// returns the configuration alongside the learned model. LoadModelFile is
// the path-aware variant whose errors name the offending file.
func LoadModel(r io.Reader) (Config, *Learned, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return Config{}, nil, fmt.Errorf("core: decoding model file: %w", err)
	}
	if mf.Version != modelFileVersion {
		return Config{}, nil, fmt.Errorf("core: unsupported model file version %d (this build supports version %d)",
			mf.Version, modelFileVersion)
	}
	if len(mf.Points) == 0 {
		return Config{}, nil, fmt.Errorf("core: model file has no reference points")
	}
	gate, err := distance.ByName(mf.GateDistance)
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: model gate distance: %w", err)
	}
	lofDist, err := distance.ByName(mf.LOFDistance)
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: model LOF distance: %w", err)
	}
	cfg := Config{
		NumTypes:         mf.NumTypes,
		WindowDuration:   time.Duration(mf.WindowNS),
		WindowCount:      mf.WindowCount,
		K:                mf.K,
		Alpha:            mf.Alpha,
		GateThreshold:    mf.GateThreshold,
		GateDistance:     gate,
		LOFDistance:      lofDist,
		MergeLambda:      mf.MergeLambda,
		Smoothing:        mf.Smoothing,
		IncludeRate:      mf.IncludeRate,
		UseVPTree:        mf.UseVPTree,
		Seed:             mf.Seed,
		CondenseTarget:   mf.CondenseTarget,
		GateAuto:         mf.GateAuto,
		GateAutoQuantile: mf.GateAutoQuantile,
		FastKernels:      mf.FastKernels,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, nil, fmt.Errorf("core: model file config: %w", err)
	}
	// The saved points are the post-condensation set, so re-fitting with
	// the same target is a no-op selection that still re-enables the fast
	// kernels; kdist/lrd are recomputed exactly as the original fit did.
	model, err := lof.Fit(mf.Points, mf.K, lofDist, lof.FitOptions{
		UseVPTree:      mf.UseVPTree,
		Seed:           mf.Seed,
		CondenseTarget: mf.CondenseTarget,
		FastKernels:    mf.FastKernels,
	})
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: refitting model: %w", err)
	}
	if mf.Condense != nil {
		// Keep the learn-time accuracy report: the reload cannot recompute
		// it (the dropped originals are gone) and Fit's no-op condensation
		// leaves Cond nil.
		model.Cond = mf.Condense
	}
	learned := &Learned{
		Model: model,
		Featurizer: pmf.Featurizer{
			Dim:         mf.NumTypes,
			Smoothing:   mf.Smoothing,
			IncludeRate: mf.IncludeRate,
			RateScale:   mf.RateScale,
		},
		RefWindows:        mf.RefWindows,
		MeanCount:         mf.MeanCount,
		AutoGateThreshold: mf.AutoGateThreshold,
	}
	return cfg, learned, nil
}

// LoadModelFile opens and loads one model file, wrapping every failure —
// open, decode, version, refit — with the path so multi-model directory
// loads report which file broke.
func LoadModelFile(path string) (Config, *Learned, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: model %s: %w", path, err)
	}
	defer f.Close()
	cfg, learned, err := LoadModel(f)
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: model %s: %w", path, err)
	}
	return cfg, learned, nil
}
