package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"enduratrace/internal/distance"
	"enduratrace/internal/lof"
	"enduratrace/internal/pmf"
)

// modelFile is the on-disk form of a learned model: the full monitor
// configuration (distances by catalogue name) plus the reference feature
// points. Loading re-fits the LOF model from the points, which is cheap
// compared to shipping the index and keeps the format independent of index
// internals.
type modelFile struct {
	Version       int         `json:"version"`
	NumTypes      int         `json:"num_types"`
	WindowNS      int64       `json:"window_ns"`
	WindowCount   int         `json:"window_count"`
	K             int         `json:"k"`
	Alpha         float64     `json:"alpha"`
	GateThreshold float64     `json:"gate_threshold"`
	GateDistance  string      `json:"gate_distance"`
	LOFDistance   string      `json:"lof_distance"`
	MergeLambda   float64     `json:"merge_lambda"`
	Smoothing     float64     `json:"smoothing"`
	IncludeRate   bool        `json:"include_rate"`
	UseVPTree     bool        `json:"use_vptree"`
	Seed          int64       `json:"seed"`
	RateScale     float64     `json:"rate_scale"`
	RefWindows    int         `json:"ref_windows"`
	MeanCount     float64     `json:"mean_count"`
	Points        [][]float64 `json:"points"`
}

const modelFileVersion = 1

// SaveModel serialises a learned model together with the configuration it
// was learned under, so `enduratrace monitor` can reconstruct both. The
// configured distances must come from the distance catalogue (have names).
func SaveModel(w io.Writer, cfg Config, l *Learned) error {
	if l == nil || l.Model == nil {
		return fmt.Errorf("core: saving nil model")
	}
	if cfg.GateDistance.Name == "" || cfg.LOFDistance.Name == "" {
		return fmt.Errorf("core: cannot save a model with unnamed distances")
	}
	mf := modelFile{
		Version:       modelFileVersion,
		NumTypes:      cfg.NumTypes,
		WindowNS:      int64(cfg.WindowDuration),
		WindowCount:   cfg.WindowCount,
		K:             cfg.K,
		Alpha:         cfg.Alpha,
		GateThreshold: cfg.GateThreshold,
		GateDistance:  cfg.GateDistance.Name,
		LOFDistance:   cfg.LOFDistance.Name,
		MergeLambda:   cfg.MergeLambda,
		Smoothing:     cfg.Smoothing,
		IncludeRate:   cfg.IncludeRate,
		UseVPTree:     cfg.UseVPTree,
		Seed:          cfg.Seed,
		RateScale:     l.Featurizer.RateScale,
		RefWindows:    l.RefWindows,
		MeanCount:     l.MeanCount,
		Points:        l.Model.Points,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// LoadModel reads a model saved by SaveModel, re-fits the LOF index and
// returns the configuration alongside the learned model.
func LoadModel(r io.Reader) (Config, *Learned, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return Config{}, nil, fmt.Errorf("core: decoding model file: %w", err)
	}
	if mf.Version != modelFileVersion {
		return Config{}, nil, fmt.Errorf("core: unsupported model file version %d", mf.Version)
	}
	gate, err := distance.ByName(mf.GateDistance)
	if err != nil {
		return Config{}, nil, err
	}
	lofDist, err := distance.ByName(mf.LOFDistance)
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		NumTypes:       mf.NumTypes,
		WindowDuration: time.Duration(mf.WindowNS),
		WindowCount:    mf.WindowCount,
		K:              mf.K,
		Alpha:          mf.Alpha,
		GateThreshold:  mf.GateThreshold,
		GateDistance:   gate,
		LOFDistance:    lofDist,
		MergeLambda:    mf.MergeLambda,
		Smoothing:      mf.Smoothing,
		IncludeRate:    mf.IncludeRate,
		UseVPTree:      mf.UseVPTree,
		Seed:           mf.Seed,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, nil, fmt.Errorf("core: model file config: %w", err)
	}
	model, err := lof.Fit(mf.Points, mf.K, lofDist, lof.FitOptions{
		UseVPTree: mf.UseVPTree,
		Seed:      mf.Seed,
	})
	if err != nil {
		return Config{}, nil, fmt.Errorf("core: refitting model: %w", err)
	}
	learned := &Learned{
		Model: model,
		Featurizer: pmf.Featurizer{
			Dim:         mf.NumTypes,
			Smoothing:   mf.Smoothing,
			IncludeRate: mf.IncludeRate,
			RateScale:   mf.RateScale,
		},
		RefWindows: mf.RefWindows,
		MeanCount:  mf.MeanCount,
	}
	return cfg, learned, nil
}
