// Package core implements the paper's primary contribution (§II): an online
// monitor that watches a multimedia application's trace stream and records
// only the windows whose behaviour departs from a learned model of correct
// execution.
//
// The monitor processes one window at a time:
//
//  1. the window is summarised as a pmf over event types (package pmf);
//  2. a cheap Kullback–Leibler gate compares the window pmf Npmf with the
//     running past pmf Ppmf; if they are similar, Npmf is merged into Ppmf
//     (tracking slow drift) and no further work happens;
//  3. if the gate trips, the window is scored with LOF against the model
//     learned from a reference trace; LOF >= alpha flags an anomaly and the
//     window is recorded.
package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"enduratrace/internal/distance"
	"enduratrace/internal/lof"
	"enduratrace/internal/obs"
	"enduratrace/internal/pmf"
	"enduratrace/internal/recorder"
	"enduratrace/internal/stats"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// Config carries every tunable of the approach. NewConfig supplies the
// paper's experimental values.
type Config struct {
	// NumTypes is the pmf dimensionality (one component per event type).
	NumTypes int
	// WindowDuration slices the stream into fixed time windows (40 ms in
	// §III). Set WindowCount instead for hardware-buffer-style count
	// windows; exactly one of the two must be non-zero.
	WindowDuration time.Duration
	// WindowCount, when non-zero, uses windows of N consecutive events.
	WindowCount int
	// K is the LOF neighbourhood size (20 in §III).
	K int
	// Alpha is the LOF anomaly threshold; LOF >= Alpha records the window
	// (1.2 in the headline result).
	Alpha float64
	// GateThreshold is the KL distance above which the gate trips and a
	// LOF computation is performed.
	GateThreshold float64
	// GateDistance compares Npmf with Ppmf; the paper uses
	// Kullback–Leibler. Defaults to the "symkl" catalogue entry.
	GateDistance distance.Distance
	// LOFDistance is the dissimilarity for the LOF model. Defaults to the
	// same KL family ("symkl").
	LOFDistance distance.Distance
	// MergeLambda is the weight of the new window when merging Npmf into
	// Ppmf on a quiet gate, in (0, 1].
	MergeLambda float64
	// Smoothing is the additive smoothing epsilon applied when normalising
	// window counts to pmfs; it keeps KL finite.
	Smoothing float64
	// IncludeRate appends a saturating event-rate feature to the LOF
	// vectors so that pure rate collapses remain visible (extension;
	// the gate always works on the pmf prefix).
	IncludeRate bool
	// UseVPTree selects the VP-tree index at fit time (requires a metric
	// LOFDistance).
	UseVPTree bool
	// Seed controls VP-tree construction and condensation sampling.
	Seed int64
	// CondenseTarget, when positive, condenses the learned reference set
	// down to at most that many points by farthest-point sampling (see
	// lof.FitOptions.CondenseTarget), shrinking the per-trip LOF cost from
	// O(ref windows) to O(target). Zero (the default) keeps every
	// reference window and bit-exact scoring.
	CondenseTarget int
	// GateAuto derives GateThreshold from the reference trace instead of
	// the fixed value: Learn replays the gate over the reference windows
	// and takes the GateAutoQuantile quantile of the observed distances,
	// so the threshold sits at the clean trace's noise ceiling whatever
	// the gate distance's scale (a fixed 0.1 is near-dead for jsd, whose
	// clean-trace distances are an order of magnitude smaller than
	// symkl's).
	GateAuto bool
	// GateAutoQuantile is the reference gate-distance quantile used by
	// GateAuto; zero means the 0.90 default, which keeps the gate
	// re-tripping through the interior of a shifted regime (a ceiling
	// quantile like 0.99 only catches regime edges).
	GateAutoQuantile float64
	// FastKernels opts the LOF index into the precomputed-log KL-family
	// row kernels (see lof.FitOptions.FastKernels): several times faster
	// per score, approximate within ~1e-9 relative of the exact kernels.
	// High-rate serving wants this on; offline eval keeps the bit-exact
	// default. No-op for non-KL-family LOF distances and under UseVPTree.
	FastKernels bool
}

// NewConfig returns the configuration used in the paper's experiment
// (§III): 40 ms windows, K = 20, alpha = 1.2, with the remaining knobs at
// values the paper leaves implicit.
func NewConfig(numTypes int) Config {
	return Config{
		NumTypes:       numTypes,
		WindowDuration: 40 * time.Millisecond,
		K:              20,
		Alpha:          1.2,
		GateThreshold:  0.05,
		GateDistance:   distance.Must("symkl"),
		LOFDistance:    distance.Must("symkl"),
		MergeLambda:    0.1,
		Smoothing:      0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumTypes <= 1 {
		return fmt.Errorf("core: NumTypes must be > 1, got %d", c.NumTypes)
	}
	if (c.WindowDuration > 0) == (c.WindowCount > 0) {
		return errors.New("core: exactly one of WindowDuration and WindowCount must be set")
	}
	if c.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("core: Alpha must be >= 1, got %g", c.Alpha)
	}
	if c.GateThreshold < 0 {
		return fmt.Errorf("core: GateThreshold must be >= 0, got %g", c.GateThreshold)
	}
	if c.MergeLambda <= 0 || c.MergeLambda > 1 {
		return fmt.Errorf("core: MergeLambda %g outside (0,1]", c.MergeLambda)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("core: Smoothing must be >= 0, got %g", c.Smoothing)
	}
	if c.GateDistance.F == nil || c.LOFDistance.F == nil {
		return errors.New("core: nil distance function")
	}
	if c.CondenseTarget < 0 {
		return fmt.Errorf("core: CondenseTarget must be >= 0, got %d", c.CondenseTarget)
	}
	if c.CondenseTarget > 0 && c.CondenseTarget <= c.K {
		return fmt.Errorf("core: CondenseTarget %d must exceed K %d", c.CondenseTarget, c.K)
	}
	if q := c.GateAutoQuantile; q != 0 && (q <= 0 || q >= 1) {
		return fmt.Errorf("core: GateAutoQuantile %g outside (0,1)", q)
	}
	return nil
}

// gateAutoQuantile returns the effective auto-calibration quantile.
func (c Config) gateAutoQuantile() float64 {
	if c.GateAutoQuantile > 0 {
		return c.GateAutoQuantile
	}
	return 0.90
}

// NewWindower builds a fresh windower matching the config.
func (c Config) NewWindower() window.Windower {
	if c.WindowCount > 0 {
		return window.NewByCount(c.WindowCount)
	}
	return window.NewByTime(c.WindowDuration)
}

// Decision is the monitor's verdict on one window.
type Decision struct {
	Window   window.Window
	Features pmf.Vector
	// GateDist is the KL distance between the window pmf and the past pmf.
	GateDist float64
	// GateTripped reports whether a LOF computation was performed.
	GateTripped bool
	// LOF is the local outlier factor; NaN when the gate did not trip.
	LOF float64
	// Anomalous reports LOF >= Alpha; such windows are recorded.
	Anomalous bool
}

// Monitor is the per-stream half of the online anomaly detector: it holds
// the mutable stream state (the running past pmf, counters, and the
// reusable featurization/scoring buffers that make steady-state window
// processing allocation-free) over an immutable shared Learned. It is not
// safe for concurrent use; run one Monitor per trace stream — any number
// of Monitors may share one Learned (see MultiMonitor).
type Monitor struct {
	cfg           Config
	feat          pmf.Featurizer
	model         *lof.Model
	scorer        *lof.Scorer
	gateThreshold float64

	ppmf    pmf.Vector // the running "past" pmf
	counts  pmf.Counts // per-window count scratch
	featBuf pmf.Vector // per-window feature scratch

	seeded bool
	noAcct bool
	// scoreTimer, when set, receives the duration of every ProcessWindow
	// performed by Run — the serving layer's per-stage latency hook. Nil
	// (the default) skips the clock reads entirely.
	scoreTimer func(time.Duration)
	// Counters are atomics so admin surfaces (serve's /streams, /stats)
	// can Snapshot a monitor mid-Run without a lock on the hot path; only
	// the owning goroutine writes them.
	windows  atomic.Int64
	trips    atomic.Int64
	anoms    atomic.Int64
	lofCalls atomic.Int64
}

// NewMonitor builds a monitor around a learned model. The model must have
// been produced by Learn with the same Config (dimension mismatches are
// rejected). The Learned is shared, never mutated; all per-stream state
// lives in the returned Monitor.
func NewMonitor(cfg Config, learned *Learned) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if learned == nil || learned.Model == nil {
		return nil, errors.New("core: nil learned model")
	}
	feat := learned.Featurizer
	if feat.FeatureDim() != learned.Model.Dim() {
		return nil, fmt.Errorf("core: featurizer dim %d != model dim %d",
			feat.FeatureDim(), learned.Model.Dim())
	}
	threshold := cfg.GateThreshold
	if cfg.GateAuto {
		if learned.AutoGateThreshold <= 0 {
			return nil, errors.New("core: GateAuto set but the model carries no calibrated threshold (learned without GateAuto?)")
		}
		threshold = learned.AutoGateThreshold
	}
	return &Monitor{
		cfg:           cfg,
		feat:          feat,
		model:         learned.Model,
		scorer:        learned.Model.NewScorer(),
		gateThreshold: threshold,
		ppmf:          make(pmf.Vector, feat.Dim),
		counts:        make(pmf.Counts, feat.Dim),
		featBuf:       make(pmf.Vector, feat.FeatureDim()),
	}, nil
}

// GateThreshold returns the effective gate threshold (the calibrated value
// under GateAuto, the configured one otherwise).
func (m *Monitor) GateThreshold() float64 { return m.gateThreshold }

// SetScoreTimer registers f to be called by Run with the wall duration of
// each ProcessWindow (the window-scoring stage: featurize + gate +
// conditional LOF). f runs on the scoring goroutine, synchronously before
// the window's sink/decision callbacks, so a decision callback reading
// state written by f sees the value for its own window. It must not
// allocate if the caller wants to keep the scoring path allocation-free.
func (m *Monitor) SetScoreTimer(f func(time.Duration)) { m.scoreTimer = f }

// DisableByteAccounting makes Run skip the per-event encoded-size
// accounting, leaving RunStats.FullBytes zero. The serving layer accounts
// received bytes itself at ingest time (where dropped events are still
// visible), so the monitor repeating the arithmetic per event would be
// pure hot-path overhead.
func (m *Monitor) DisableByteAccounting() { m.noAcct = true }

// ProcessWindow runs the §II online step on one window and returns the
// decision. Recording is the caller's job (see Run), keeping the monitor
// storage-agnostic.
//
// Decision.Features aliases the monitor's reusable featurization buffer:
// it is valid until the next ProcessWindow call; callers that retain it
// must clone it.
//
//enduratrace:zeroalloc
func (m *Monitor) ProcessWindow(w window.Window) Decision {
	d := m.gateWindow(w)
	if !d.GateTripped {
		return d
	}
	m.lofCalls.Add(1)
	d.LOF = m.scorer.Score(d.Features)
	d.Anomalous = d.LOF >= m.cfg.Alpha
	if d.Anomalous {
		m.anoms.Add(1)
	}
	return d
}

// gateWindow is ProcessWindow minus the LOF tail: featurize, run the
// gate, and update the past pmf. On a trip the decision comes back with
// LOF NaN and Anomalous unset — the caller owns the scoring step
// (ProcessWindow runs it inline; the batched Run amortizes one
// ScoreBatch across all tripped windows of an event batch). The split is
// semantics-preserving because the past-pmf update depends only on the
// gate outcome, never on the LOF value.
func (m *Monitor) gateWindow(w window.Window) Decision {
	m.windows.Add(1)
	features := m.feat.FeaturesInto(m.featBuf, m.counts, w)
	npmf := m.feat.PMFOnly(features)

	d := Decision{Window: w, Features: features, LOF: math.NaN()}

	if !m.seeded {
		// First window: seed the past pmf and be conservative — run LOF,
		// since there is no past to compare against.
		copy(m.ppmf, npmf)
		m.seeded = true
		d.GateDist = math.Inf(1)
		d.GateTripped = true
	} else {
		d.GateDist = m.cfg.GateDistance.F(npmf, m.ppmf)
		d.GateTripped = d.GateDist > m.gateThreshold
	}

	if !d.GateTripped {
		// Similar to the past: merge Npmf into Ppmf so slow drifts stay
		// inside the gate (§II).
		m.ppmf.Merge(npmf, m.cfg.MergeLambda)
		return d
	}

	m.trips.Add(1)
	// Regime switch: the past pmf restarts at the new behaviour so the gate
	// re-arms instead of tripping on every subsequent window of a changed
	// but steady regime.
	copy(m.ppmf, npmf)
	return d
}

// ScoreWindow computes the LOF of one window in isolation: featurize and
// score, nothing else. Unlike ProcessWindow it does not consult or update
// the running past pmf, does not touch the gate, and bumps no counters —
// it is the pure scoring function used by forensic replay to re-judge a
// recorded window against this monitor's model. Like ProcessWindow it
// reuses the monitor's scratch buffers, so it is not safe for concurrent
// use with any other method on the same Monitor.
func (m *Monitor) ScoreWindow(w window.Window) float64 {
	features := m.feat.FeaturesInto(m.featBuf, m.counts, w)
	return m.scorer.Score(features)
}

// Alpha returns the configured LOF anomaly threshold.
func (m *Monitor) Alpha() float64 { return m.cfg.Alpha }

// Stats reports monitor counters.
func (m *Monitor) Stats() (windows, gateTrips, lofCalls, anomalies int) {
	s := m.Snapshot()
	return int(s.Windows), int(s.GateTrips), int(s.LOFCalls), int(s.Anomalies)
}

// Snapshot is a point-in-time view of a monitor's counters. Unlike
// RunStats it can be taken while the monitor is mid-Run: the counters are
// atomics, so a concurrent observer (the serve admin endpoints) reads a
// consistent-enough live view without locking the hot path.
type Snapshot struct {
	Windows   int64 `json:"windows"`
	GateTrips int64 `json:"gate_trips"`
	LOFCalls  int64 `json:"lof_calls"`
	Anomalies int64 `json:"anomalies"`
}

// Add returns the element-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		Windows:   s.Windows + o.Windows,
		GateTrips: s.GateTrips + o.GateTrips,
		LOFCalls:  s.LOFCalls + o.LOFCalls,
		Anomalies: s.Anomalies + o.Anomalies,
	}
}

// Snapshot returns the monitor's live counters. Safe to call from any
// goroutine at any time, including while the monitor is processing.
func (m *Monitor) Snapshot() Snapshot {
	return Snapshot{
		Windows:   m.windows.Load(),
		GateTrips: m.trips.Load(),
		LOFCalls:  m.lofCalls.Load(),
		Anomalies: m.anoms.Load(),
	}
}

// Learned bundles a fitted LOF model with the featurizer that produced its
// points; both are needed to score new windows consistently. A Learned is
// immutable after Learn returns and safe to share across any number of
// concurrent Monitors.
type Learned struct {
	Model      *lof.Model
	Featurizer pmf.Featurizer
	// RefWindows is the number of reference windows the model was fitted
	// on (before condensation).
	RefWindows int
	// MeanCount is the mean event count per reference window (the rate
	// feature's scale).
	MeanCount float64
	// AutoGateThreshold is the gate threshold calibrated from the
	// reference trace's gate-distance quantiles; zero when the model was
	// learned without Config.GateAuto.
	AutoGateThreshold float64
}

// Learn performs the paper's learning step (§II): the reference trace is
// divided into windows, each window becomes a pmf point, and the point set
// is fitted as a LOF model of correct behaviour.
//
// r should be a reference execution with no QoS errors — e.g.
// trace.LimitReader over the first minutes of a run, or an unperturbed
// simulation from internal/mediasim.
func Learn(cfg Config, r trace.Reader) (*Learned, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ws, err := window.Collect(r, cfg.NewWindower())
	if err != nil {
		return nil, fmt.Errorf("core: windowing reference trace: %w", err)
	}
	if len(ws) <= cfg.K {
		return nil, fmt.Errorf("%w: %d reference windows, K=%d",
			lof.ErrTooFewPoints, len(ws), cfg.K)
	}
	feat := pmf.Featurizer{
		Dim:         cfg.NumTypes,
		Smoothing:   cfg.Smoothing,
		IncludeRate: cfg.IncludeRate,
		RateScale:   pmf.MeanCount(ws),
	}
	points := make([][]float64, len(ws))
	for i, w := range ws {
		points[i] = feat.Features(w)
	}
	model, err := lof.Fit(points, cfg.K, cfg.LOFDistance, lof.FitOptions{
		UseVPTree:      cfg.UseVPTree,
		Seed:           cfg.Seed,
		CondenseTarget: cfg.CondenseTarget,
		FastKernels:    cfg.FastKernels,
	})
	if err != nil {
		return nil, err
	}
	learned := &Learned{
		Model:      model,
		Featurizer: feat,
		RefWindows: len(ws),
		MeanCount:  feat.RateScale,
	}
	if cfg.GateAuto {
		thr := calibrateGate(cfg, feat, points)
		if thr <= 0 {
			// A zero threshold would be indistinguishable from "never
			// calibrated" downstream (NewMonitor's sentinel); fail here,
			// at learn time, with the actual cause.
			return nil, fmt.Errorf("core: auto gate calibration produced a zero threshold (the reference trace's gate distances are all zero at q=%.3g); use a fixed GateThreshold",
				cfg.gateAutoQuantile())
		}
		learned.AutoGateThreshold = thr
	}
	return learned, nil
}

// calibrateGate replays the monitor's gate over the (clean) reference
// windows — seed the past pmf with the first window, then for each
// subsequent window measure the gate distance and merge — and returns the
// configured quantile of the observed distances. That quantile is the
// clean trace's gate-noise ceiling: on live data, distances above it are
// genuinely unusual for this gate distance's scale, so the threshold
// adapts to symkl and jsd alike instead of assuming one fixed magnitude.
func calibrateGate(cfg Config, feat pmf.Featurizer, points [][]float64) float64 {
	ppmf := make(pmf.Vector, feat.Dim)
	copy(ppmf, feat.PMFOnly(points[0]))
	dists := make([]float64, 0, len(points)-1)
	for _, p := range points[1:] {
		npmf := feat.PMFOnly(p)
		dists = append(dists, cfg.GateDistance.F(npmf, ppmf))
		ppmf.Merge(npmf, cfg.MergeLambda)
	}
	return stats.Quantile(dists, cfg.gateAutoQuantile())
}

// RunStats summarises a monitoring run.
type RunStats struct {
	Windows    int
	GateTrips  int
	Anomalies  int
	FullBytes  int64 // exact encoded size of the complete trace
	RecBytes   int64 // bytes actually recorded
	RecWindows int
	Start, End time.Duration // trace time span covered
}

// ReductionFactor returns FullBytes / RecBytes — the paper's headline
// metric — and whether it is defined. When nothing was recorded the ratio
// has no value and ok is false (the eval/monitor JSON convention: null,
// never a float sentinel).
func (s RunStats) ReductionFactor() (rf float64, ok bool) {
	if s.RecBytes == 0 {
		return 0, false
	}
	return float64(s.FullBytes) / float64(s.RecBytes), true
}

// Run streams a trace through the monitor, forwards anomalous windows to
// sink, and invokes onDecision (if non-nil) for every window — the
// evaluation harness uses the callback to label decisions against ground
// truth. A *recorder.ContextSink passed as sink gets its Observe method
// called on every window so pre/post context works.
func Run(cfg Config, learned *Learned, r trace.Reader, sink recorder.Sink,
	onDecision func(Decision) error) (RunStats, error) {

	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		return RunStats{}, err
	}
	return mon.Run(r, sink, onDecision)
}

// Run streams a trace through this monitor stream; see the package-level
// Run for the sink/callback semantics. Each Monitor owns its windower and
// byte accounting, so concurrent Monitors over one shared Learned can Run
// independent streams in parallel.
//
// When r implements trace.BatchReader (the framed network reader and the
// serve event queue do), Run switches to a batched pipeline: events drain
// in batches, and all windows completed by one event batch are gated
// first and then LOF-scored in a single lof.Scorer.ScoreBatch matrix
// sweep. Every decision, counter, and callback is identical to the
// per-event path and arrives in the same order — only the kernel loop
// order changes.
func (m *Monitor) Run(r trace.Reader, sink recorder.Sink,
	onDecision func(Decision) error) (RunStats, error) {

	if br, ok := r.(trace.BatchReader); ok {
		return m.runBatched(br, sink, onDecision)
	}

	var stats RunStats
	var acct *traceio.SizeAccountant
	if !m.noAcct {
		acct = traceio.NewSizeAccountant()
	}
	ctxSink, _ := sink.(*recorder.ContextSink)

	wdr := m.cfg.NewWindower()
	process := func(w window.Window) error {
		stats.Windows++
		if stats.Windows == 1 {
			stats.Start = w.Start
		}
		stats.End = w.End
		var d Decision
		if m.scoreTimer != nil {
			t0 := obs.Now()
			d = m.ProcessWindow(w)
			m.scoreTimer(time.Duration(obs.Now() - t0))
		} else {
			d = m.ProcessWindow(w)
		}
		if d.GateTripped {
			stats.GateTrips++
		}
		if ctxSink != nil {
			if err := ctxSink.Observe(w); err != nil {
				return err
			}
		}
		if d.Anomalous {
			stats.Anomalies++
			if sink != nil {
				if err := sink.Record(w); err != nil {
					return err
				}
			}
		}
		if onDecision != nil {
			return onDecision(d)
		}
		return nil
	}

	byTime, _ := wdr.(*window.ByTime)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		if acct != nil {
			if aerr := acct.Write(ev); aerr != nil {
				return stats, aerr
			}
		}
		if w, ok := wdr.Add(ev); ok {
			if perr := process(w); perr != nil {
				return stats, perr
			}
		}
		if byTime != nil {
			for {
				w, ok := byTime.Drain()
				if !ok {
					break
				}
				if perr := process(w); perr != nil {
					return stats, perr
				}
			}
		}
	}
	if w, ok := wdr.Flush(); ok {
		if perr := process(w); perr != nil {
			return stats, perr
		}
	}

	if acct != nil {
		stats.FullBytes = acct.Bytes()
	}
	if sink != nil {
		stats.RecBytes = sink.BytesWritten()
		stats.RecWindows = sink.WindowsRecorded()
	}
	return stats, nil
}

// batchEvents is the ingest granularity of the batched Run path: events
// drain from the BatchReader up to this many at a time, and the windows
// they complete share one ScoreBatch pass.
const batchEvents = 512

// runBatched is the trace.BatchReader fast path of Run. Each event batch
// is processed in three phases — gate every completed window (stashing a
// per-window feature copy), LOF-score all tripped windows in one
// ScoreBatch sweep, then emit decisions in window order — so decisions,
// stats, and callback order match the per-event path exactly.
func (m *Monitor) runBatched(r trace.BatchReader, sink recorder.Sink,
	onDecision func(Decision) error) (RunStats, error) {

	var stats RunStats
	var acct *traceio.SizeAccountant
	if !m.noAcct {
		acct = traceio.NewSizeAccountant()
	}
	ctxSink, _ := sink.(*recorder.ContextSink)

	wdr := m.cfg.NewWindower()
	byTime, _ := wdr.(*window.ByTime)

	fdim := m.feat.FeatureDim()
	evBuf := make([]trace.Event, batchEvents)
	var (
		wins      []window.Window // windows completed by the current batch
		decs      []Decision
		gateNs    []int64   // per-window stage duration (scoreTimer only)
		featArena []float64 // backing store for the per-window feature copies
		queries   [][]float64
		qIdx      []int // decs index of each query
		scores    []float64
	)

	processBatch := func() error {
		// Phase 1 — gate every window. Features are copied out of the
		// monitor's single featurization buffer into a per-batch arena so
		// each decision keeps its own (contractually, Decision.Features is
		// valid until the next window is processed; distinct slices per
		// window within the batch are strictly safer).
		decs = decs[:0]
		queries = queries[:0]
		qIdx = qIdx[:0]
		gateNs = gateNs[:0]
		if need := len(wins) * fdim; cap(featArena) < need {
			featArena = make([]float64, need)
		}
		for i, w := range wins {
			var t0 int64
			if m.scoreTimer != nil {
				t0 = obs.Now()
			}
			d := m.gateWindow(w)
			feat := featArena[i*fdim : (i+1)*fdim]
			copy(feat, d.Features)
			d.Features = feat
			if m.scoreTimer != nil {
				gateNs = append(gateNs, obs.Now()-t0)
			}
			if d.GateTripped {
				qIdx = append(qIdx, len(decs))
				queries = append(queries, feat)
			}
			decs = append(decs, d)
		}

		// Phase 2 — one batched LOF sweep across all tripped windows. The
		// sweep's wall time is split evenly across them for the scoreTimer,
		// preserving its call-before-the-window's-callbacks contract.
		if len(queries) > 0 {
			var t0 int64
			if m.scoreTimer != nil {
				t0 = obs.Now()
			}
			if cap(scores) < len(queries) {
				scores = make([]float64, len(queries))
			}
			scores = scores[:len(queries)]
			m.scorer.ScoreBatch(queries, scores)
			m.lofCalls.Add(int64(len(queries)))
			var share int64
			if m.scoreTimer != nil {
				share = (obs.Now() - t0) / int64(len(queries))
			}
			for qi, di := range qIdx {
				d := &decs[di]
				d.LOF = scores[qi]
				d.Anomalous = d.LOF >= m.cfg.Alpha
				if d.Anomalous {
					m.anoms.Add(1)
				}
				if m.scoreTimer != nil {
					gateNs[di] += share
				}
			}
		}

		// Phase 3 — emit in window order, with the same bookkeeping and
		// abort points as the per-event path.
		for i := range decs {
			d := decs[i]
			w := wins[i]
			stats.Windows++
			if stats.Windows == 1 {
				stats.Start = w.Start
			}
			stats.End = w.End
			if d.GateTripped {
				stats.GateTrips++
			}
			if m.scoreTimer != nil {
				m.scoreTimer(time.Duration(gateNs[i]))
			}
			if ctxSink != nil {
				if err := ctxSink.Observe(w); err != nil {
					return err
				}
			}
			if d.Anomalous {
				stats.Anomalies++
				if sink != nil {
					if err := sink.Record(w); err != nil {
						return err
					}
				}
			}
			if onDecision != nil {
				if err := onDecision(d); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for {
		n, err := r.ReadBatch(evBuf)
		if n > 0 {
			wins = wins[:0]
			for _, ev := range evBuf[:n] {
				if acct != nil {
					if aerr := acct.Write(ev); aerr != nil {
						return stats, aerr
					}
				}
				if w, ok := wdr.Add(ev); ok {
					wins = append(wins, w)
				}
				if byTime != nil {
					for {
						w, ok := byTime.Drain()
						if !ok {
							break
						}
						wins = append(wins, w)
					}
				}
			}
			if len(wins) > 0 {
				if perr := processBatch(); perr != nil {
					return stats, perr
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
	}
	if w, ok := wdr.Flush(); ok {
		wins = append(wins[:0], w)
		if perr := processBatch(); perr != nil {
			return stats, perr
		}
	}

	if acct != nil {
		stats.FullBytes = acct.Bytes()
	}
	if sink != nil {
		stats.RecBytes = sink.BytesWritten()
		stats.RecWindows = sink.WindowsRecorded()
	}
	return stats, nil
}
