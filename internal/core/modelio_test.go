package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

// savedModelJSON learns a small valid model and returns its JSON document
// as a generic map, ready for per-test mutation.
func savedModelJSON(t *testing.T) map[string]any {
	t.Helper()
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, learned); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestLoadModelErrorPaths drives every LoadModel failure mode through a
// mutated-but-otherwise-valid model document and checks the error text
// carries enough to act on (the unsupported version names the supported
// one, distance errors name the distance, and so on).
func TestLoadModelErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(doc map[string]any) // nil: raw input used instead
		raw     string
		wantSub []string
	}{
		{
			name:    "corrupt-json",
			raw:     `{"version": 1, "points": [[0.1,`,
			wantSub: []string{"decoding model file"},
		},
		{
			name:    "not-json-at-all",
			raw:     "ETRC\x01binary trace, not a model",
			wantSub: []string{"decoding model file"},
		},
		{
			name:    "future-version",
			mutate:  func(doc map[string]any) { doc["version"] = 99 },
			wantSub: []string{"unsupported model file version 99", "supports version 1"},
		},
		{
			name:    "zero-version",
			mutate:  func(doc map[string]any) { doc["version"] = 0 },
			wantSub: []string{"unsupported model file version 0", "supports version 1"},
		},
		{
			name:    "unknown-gate-distance",
			mutate:  func(doc map[string]any) { doc["gate_distance"] = "warp" },
			wantSub: []string{"gate distance", "warp"},
		},
		{
			name:    "unknown-lof-distance",
			mutate:  func(doc map[string]any) { doc["lof_distance"] = "warp" },
			wantSub: []string{"LOF distance", "warp"},
		},
		{
			name:    "empty-points",
			mutate:  func(doc map[string]any) { doc["points"] = [][]float64{} },
			wantSub: []string{"no reference points"},
		},
		{
			name:    "missing-points",
			mutate:  func(doc map[string]any) { delete(doc, "points") },
			wantSub: []string{"no reference points"},
		},
		{
			name: "too-few-points-for-k",
			mutate: func(doc map[string]any) {
				doc["points"] = [][]float64{{0.25, 0.25, 0.25, 0.25}, {0.4, 0.3, 0.2, 0.1}}
			},
			wantSub: []string{"refitting model"},
		},
		{
			name:    "invalid-config",
			mutate:  func(doc map[string]any) { doc["k"] = -1 },
			wantSub: []string{"model file config"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var input []byte
			if tc.mutate != nil {
				doc := savedModelJSON(t)
				tc.mutate(doc)
				var err error
				if input, err = json.Marshal(doc); err != nil {
					t.Fatal(err)
				}
			} else {
				input = []byte(tc.raw)
			}
			_, _, err := LoadModel(bytes.NewReader(input))
			if err == nil {
				t.Fatal("LoadModel accepted a broken model file")
			}
			for _, sub := range tc.wantSub {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q does not mention %q", err, sub)
				}
			}
		})
	}
}

// TestLoadModelFileNamesPath: the path-aware loader must prefix every
// failure — and succeed on the happy path — with the file involved.
func TestLoadModelFileNamesPath(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "nope.json")
	if _, _, err := LoadModelFile(missing); err == nil || !strings.Contains(err.Error(), "nope.json") {
		t.Fatalf("missing-file error %v does not name the path", err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadModelFile(bad)
	if err == nil || !strings.Contains(err.Error(), "bad.json") ||
		!strings.Contains(err.Error(), "unsupported model file version 42") {
		t.Fatalf("bad-version error %v does not name path and version", err)
	}

	good := filepath.Join(dir, "good.json")
	doc := savedModelJSON(t)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, learned, err := LoadModelFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if learned.Model.Len() == 0 || cfg.NumTypes != testConfig().NumTypes {
		t.Fatalf("loaded model malformed: %d points, %d types", learned.Model.Len(), cfg.NumTypes)
	}
}
