package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// nonBatchReader hides SliceReader's ReadBatch so Run takes the
// per-event path — the reference behaviour the batched path must match.
type nonBatchReader struct{ r *trace.SliceReader }

func (n nonBatchReader) Next() (trace.Event, error) { return n.r.Next() }

// decisionLog captures the fields of every decision, with features
// cloned (the originals alias reusable buffers).
type decisionLog struct {
	gateDist float64
	tripped  bool
	lof      float64
	anom     bool
	start    time.Duration
	features []float64
}

func logDecisions(dst *[]decisionLog) func(Decision) error {
	return func(d Decision) error {
		*dst = append(*dst, decisionLog{
			gateDist: d.GateDist,
			tripped:  d.GateTripped,
			lof:      d.LOF,
			anom:     d.Anomalous,
			start:    d.Window.Start,
			features: append([]float64(nil), d.Features...),
		})
		return nil
	}
}

// perturbedRun splices an anomalous segment into a clean trace so the
// batched path exercises quiet gates, trips, and anomalies alike.
func perturbedRun() []trace.Event {
	var run []trace.Event
	run = append(run, synth(0, time.Second, refWeights, 2)...)
	run = append(run, synth(time.Second, 1200*time.Millisecond, []float64{0, 1, 10, 10}, 3)...)
	run = append(run, synth(1200*time.Millisecond, 3*time.Second, refWeights, 4)...)
	return run
}

// TestRunBatchedMatchesPerEvent: running the same trace through the
// per-event and the batched (trace.BatchReader) paths must produce
// bit-identical decisions in the same order, identical RunStats, and
// identical sink contents.
func TestRunBatchedMatchesPerEvent(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	run := perturbedRun()

	var wantLog []decisionLog
	wantSink := recorder.NewMemSink()
	wantStats, err := Run(cfg, learned, nonBatchReader{trace.NewSliceReader(run)},
		wantSink, logDecisions(&wantLog))
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Anomalies == 0 || wantStats.GateTrips <= wantStats.Anomalies {
		t.Fatalf("reference run too tame to be a useful oracle: %+v", wantStats)
	}

	var gotLog []decisionLog
	gotSink := recorder.NewMemSink()
	gotStats, err := Run(cfg, learned, trace.NewSliceReader(run),
		gotSink, logDecisions(&gotLog))
	if err != nil {
		t.Fatal(err)
	}

	if gotStats != wantStats {
		t.Fatalf("batched RunStats %+v != per-event %+v", gotStats, wantStats)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("batched path emitted %d decisions, per-event %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		w, g := wantLog[i], gotLog[i]
		sameLOF := g.lof == w.lof || (math.IsNaN(g.lof) && math.IsNaN(w.lof))
		if g.start != w.start || g.gateDist != w.gateDist || g.tripped != w.tripped ||
			!sameLOF || g.anom != w.anom {
			t.Fatalf("decision %d differs: batched %+v vs per-event %+v", i, g, w)
		}
		for j := range w.features {
			if g.features[j] != w.features[j] {
				t.Fatalf("decision %d feature %d differs: %v vs %v", i, j, g.features[j], w.features[j])
			}
		}
	}
	if len(gotSink.Windows) != len(wantSink.Windows) {
		t.Fatalf("batched sink recorded %d windows, per-event %d",
			len(gotSink.Windows), len(wantSink.Windows))
	}
	for i := range wantSink.Windows {
		if gotSink.Windows[i].Index != wantSink.Windows[i].Index {
			t.Fatalf("sink window %d: index %d vs %d", i,
				gotSink.Windows[i].Index, wantSink.Windows[i].Index)
		}
	}
}

// TestRunBatchedFastKernelsMatchesPerEvent repeats the equivalence check
// on a FastKernels model — the serve-path configuration — so the batched
// fast kernels are pinned against the single-query fast kernels.
func TestRunBatchedFastKernelsMatchesPerEvent(t *testing.T) {
	cfg := testConfig()
	cfg.FastKernels = true
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	run := perturbedRun()

	var wantLog, gotLog []decisionLog
	wantStats, err := Run(cfg, learned, nonBatchReader{trace.NewSliceReader(run)}, nil, logDecisions(&wantLog))
	if err != nil {
		t.Fatal(err)
	}
	gotStats, err := Run(cfg, learned, trace.NewSliceReader(run), nil, logDecisions(&gotLog))
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("batched RunStats %+v != per-event %+v", gotStats, wantStats)
	}
	for i := range wantLog {
		w, g := wantLog[i], gotLog[i]
		sameLOF := g.lof == w.lof || (math.IsNaN(g.lof) && math.IsNaN(w.lof))
		if g.gateDist != w.gateDist || g.tripped != w.tripped || !sameLOF || g.anom != w.anom {
			t.Fatalf("decision %d differs: batched %+v vs per-event %+v", i, g, w)
		}
	}
}

// TestRunBatchedCallbackAbort: a failing decision callback must abort
// the batched run with the same partial RunStats as the per-event path.
func TestRunBatchedCallbackAbort(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	run := perturbedRun()
	boom := errors.New("boom")
	abortAfter := func(n int) func(Decision) error {
		seen := 0
		return func(Decision) error {
			seen++
			if seen >= n {
				return boom
			}
			return nil
		}
	}
	const stopAt = 7
	wantStats, wantErr := Run(cfg, learned, nonBatchReader{trace.NewSliceReader(run)}, nil, abortAfter(stopAt))
	gotStats, gotErr := Run(cfg, learned, trace.NewSliceReader(run), nil, abortAfter(stopAt))
	if !errors.Is(wantErr, boom) || !errors.Is(gotErr, boom) {
		t.Fatalf("abort errors: per-event %v, batched %v, want boom", wantErr, gotErr)
	}
	if gotStats != wantStats {
		t.Fatalf("aborted RunStats differ: batched %+v vs per-event %+v", gotStats, wantStats)
	}
}

// TestModelSaveLoadRoundTripFastKernels: the FastKernels opt-in must
// survive save/load, and the reloaded model must score exactly like the
// original (both route through the same fast kernels).
func TestModelSaveLoadRoundTripFastKernels(t *testing.T) {
	cfg := testConfig()
	cfg.FastKernels = true
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, cfg, learned); err != nil {
		t.Fatal(err)
	}
	cfg2, learned2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg2.FastKernels {
		t.Fatal("FastKernels flag lost across save/load")
	}
	q := learned.Featurizer.Features(window.Window{
		Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, refWeights, 9),
	})
	if a, b := learned.Model.Score(q), learned2.Model.Score(q); a != b {
		t.Fatalf("reloaded FastKernels model scores %v, original %v", b, a)
	}
}
