package core

import (
	"fmt"
	"sync"

	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
)

// MultiMonitor serves N independent trace streams from one shared learned
// model. The Learned (LOF matrix, per-point densities, featurizer) is
// immutable and read concurrently; every per-stream mutable quantity —
// past pmf, scoring scratch, counters, windower — lives in that stream's
// Monitor, so the streams are race-free by construction and never
// contend on locks.
type MultiMonitor struct {
	learned *Learned
	streams []*Monitor
}

// NewMultiMonitor builds n monitors over one shared Learned, all with the
// same configuration.
func NewMultiMonitor(cfg Config, learned *Learned, n int) (*MultiMonitor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: MultiMonitor needs at least one stream, got %d", n)
	}
	mm := &MultiMonitor{learned: learned, streams: make([]*Monitor, n)}
	for i := range mm.streams {
		mon, err := NewMonitor(cfg, learned)
		if err != nil {
			return nil, err
		}
		mm.streams[i] = mon
	}
	return mm, nil
}

// Streams returns the number of streams.
func (mm *MultiMonitor) Streams() int { return len(mm.streams) }

// Stream returns stream i's monitor. The monitor is owned by one
// goroutine at a time; distinct streams may be driven concurrently.
func (mm *MultiMonitor) Stream(i int) *Monitor { return mm.streams[i] }

// Learned returns the shared immutable model.
func (mm *MultiMonitor) Learned() *Learned { return mm.learned }

// Stats sums the per-stream counters. The counters are atomics, so this
// is safe to call while streams are mid-Run; the sum is then a live
// (not mutually consistent) view.
func (mm *MultiMonitor) Stats() (windows, gateTrips, lofCalls, anomalies int) {
	for _, m := range mm.streams {
		w, t, l, a := m.Stats()
		windows += w
		gateTrips += t
		lofCalls += l
		anomalies += a
	}
	return
}

// StreamResult is one stream's outcome from RunAll.
type StreamResult struct {
	Stream int
	Stats  RunStats
	Err    error
}

// RunAll drives every stream concurrently: stream i reads readers[i] and
// records into sinks[i] (sinks may be nil, or individual entries may be
// nil, for stat-only monitoring). len(readers) must equal Streams().
// RunAll blocks until every stream finishes and returns the per-stream
// results in stream order; it is the shared-model fan-out the north star
// asks for — one Learned serving N live traces.
func (mm *MultiMonitor) RunAll(readers []trace.Reader, sinks []recorder.Sink) ([]StreamResult, error) {
	if len(readers) != len(mm.streams) {
		return nil, fmt.Errorf("core: %d readers for %d streams", len(readers), len(mm.streams))
	}
	if sinks != nil && len(sinks) != len(mm.streams) {
		return nil, fmt.Errorf("core: %d sinks for %d streams", len(sinks), len(mm.streams))
	}
	results := make([]StreamResult, len(mm.streams))
	var wg sync.WaitGroup
	for i := range mm.streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sink recorder.Sink
			if sinks != nil {
				sink = sinks[i]
			}
			stats, err := mm.streams[i].Run(readers[i], sink, nil)
			results[i] = StreamResult{Stream: i, Stats: stats, Err: err}
		}(i)
	}
	wg.Wait()
	return results, nil
}
