package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/mediasim"
)

// learnTwo learns two distinguishable models (different reference seeds
// and K) for multi-model tests.
func learnTwo(t *testing.T) (a, b *NamedModel) {
	t.Helper()
	mk := func(name string, seed int64, k int) *NamedModel {
		cfg := NewConfig(mediasim.NumEventTypes)
		cfg.IncludeRate = true
		cfg.K = k
		sc := mediasim.DefaultConfig()
		sc.Duration = 15 * time.Second
		sc.Seed = seed
		sim, err := mediasim.New(sc)
		if err != nil {
			t.Fatal(err)
		}
		learned, err := Learn(cfg, sim)
		if err != nil {
			t.Fatal(err)
		}
		return &NamedModel{Name: name, Cfg: cfg, Learned: learned}
	}
	return mk("a", 21, 20), mk("b", 22, 10)
}

func TestModelRegistryResolve(t *testing.T) {
	a, b := learnTwo(t)
	reg, err := NewModelRegistry("a", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names %v, want [a b]", got)
	}
	if m, err := reg.Resolve(""); err != nil || m.Name != "a" {
		t.Fatalf("empty name resolved to (%v, %v), want the default a", m, err)
	}
	if m, err := reg.Resolve("b"); err != nil || m.Name != "b" {
		t.Fatalf("b resolved to (%v, %v)", m, err)
	}
	_, err = reg.Resolve("nope")
	if !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model error %v, want ErrUnknownModel", err)
	}
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "a, b") {
		t.Fatalf("unknown-model error %q should name the miss and the available models", err)
	}
	if _, err := reg.Reload(); err == nil {
		t.Fatal("static registry accepted a Reload")
	}
}

func TestModelRegistryValidation(t *testing.T) {
	a, b := learnTwo(t)
	if _, err := NewModelRegistry("a"); err == nil {
		t.Fatal("empty registry accepted")
	}
	if _, err := NewModelRegistry("", a, b); err == nil {
		t.Fatal("two models with no default accepted")
	}
	if _, err := NewModelRegistry("c", a, b); err == nil {
		t.Fatal("absent default model accepted")
	}
	dup := &NamedModel{Name: "a", Cfg: b.Cfg, Learned: b.Learned}
	if _, err := NewModelRegistry("a", a, dup); err == nil {
		t.Fatal("duplicate model name accepted")
	}
	bad := &NamedModel{Name: "bad", Cfg: a.Cfg, Learned: a.Learned}
	bad.Cfg.K = 0 // invalid config: monitor construction must fail at registry build
	if _, err := NewModelRegistry("a", a, bad); err == nil {
		t.Fatal("unconstructible model accepted")
	}
}

// writeModelDir saves the models into dir as <name>.json files.
func writeModelDir(t *testing.T, dir string, models ...*NamedModel) {
	t.Helper()
	for _, m := range models {
		if err := SaveModelFile(filepath.Join(dir, m.Name+".json"), m.Cfg, m.Learned); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadModelDirAndReload(t *testing.T) {
	a, b := learnTwo(t)
	dir := t.TempDir()
	writeModelDir(t, dir, a, b)

	reg, err := LoadModelDir(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names %v, want [a b]", got)
	}
	if reg.DefaultName() != "a" || reg.Generation() != 0 {
		t.Fatalf("default %q gen %d, want a/0", reg.DefaultName(), reg.Generation())
	}
	mb, err := reg.Resolve("b")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Cfg.K != 10 {
		t.Fatalf("model b loaded with K=%d, want 10", mb.Cfg.K)
	}

	// A registration pins the pre-reload pointer.
	streams := NewStreamRegistry(reg)
	h, err := streams.Register("cam", "b")
	if err != nil {
		t.Fatal(err)
	}
	pinned := h.Model()

	// Reload after dropping model b: the swap must succeed, in-flight
	// handles keep their pinned *NamedModel, and new registrations naming
	// b are now rejected.
	if err := os.Remove(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	rep, err := reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 1 || len(rep.Removed) != 1 || rep.Removed[0] != "b" || len(rep.Added) != 0 {
		t.Fatalf("reload report %+v, want generation 1 removing b", rep)
	}
	if h.Model() != pinned || pinned.Name != "b" {
		t.Fatal("reload changed the model under a registered stream")
	}
	if _, err := streams.Register("late", "b"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("post-reload registration of dropped model: %v, want ErrUnknownModel", err)
	}

	// Reload with a new model file: added.
	writeModelDir(t, dir, b)
	rep, err = reg.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 2 || len(rep.Added) != 1 || rep.Added[0] != "b" {
		t.Fatalf("reload report %+v, want generation 2 adding b", rep)
	}

	// A broken reload (corrupt file) must leave the serving set intact.
	if err := os.WriteFile(filepath.Join(dir, "b.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); err == nil {
		t.Fatal("reload over a corrupt model file succeeded")
	}
	if got := reg.Names(); len(got) != 2 {
		t.Fatalf("failed reload changed the serving set to %v", got)
	}
	if reg.Generation() != 2 {
		t.Fatalf("failed reload bumped the generation to %d", reg.Generation())
	}
	if _, err := reg.Resolve("b"); err != nil {
		t.Fatalf("model b gone after failed reload: %v", err)
	}

	// Reload that drops the default model must also refuse the swap.
	if err := os.Remove(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "a.json")); err != nil {
		t.Fatal(err)
	}
	writeModelDir(t, dir, b)
	if _, err := reg.Reload(); err == nil {
		t.Fatal("reload that dropped the default model succeeded")
	}
	if reg.DefaultName() != "a" {
		t.Fatalf("default changed to %q after refused reload", reg.DefaultName())
	}

	h.Close()
}

func TestLoadModelDirDefaultRules(t *testing.T) {
	a, b := learnTwo(t)
	one := t.TempDir()
	writeModelDir(t, one, a)
	reg, err := LoadModelDir(one, "")
	if err != nil {
		t.Fatal(err)
	}
	if reg.DefaultName() != "a" {
		t.Fatalf("single-model dir default %q, want a", reg.DefaultName())
	}

	two := t.TempDir()
	writeModelDir(t, two, a, b)
	if _, err := LoadModelDir(two, ""); err == nil {
		t.Fatal("multi-model dir with no default accepted")
	}
	if _, err := LoadModelDir(two, "c"); err == nil {
		t.Fatal("absent default accepted")
	}
	if _, err := LoadModelDir(t.TempDir(), ""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestTotalsByModel(t *testing.T) {
	a, b := learnTwo(t)
	models, err := NewModelRegistry("a", a, b)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewStreamRegistry(models)
	ha, err := reg.Register("s1", "")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := reg.Register("s2", "b")
	if err != nil {
		t.Fatal(err)
	}
	run := func(h *StreamHandle, seed int64) RunStats {
		sc := mediasim.DefaultConfig()
		sc.Duration = 8 * time.Second
		sc.Seed = seed
		sim, err := mediasim.New(sc)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := h.Monitor().Run(sim, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	sa, sb := run(ha, 31), run(hb, 32)

	by := reg.TotalsByModel()
	if by["a"].Windows != int64(sa.Windows) || by["b"].Windows != int64(sb.Windows) {
		t.Fatalf("per-model windows a=%d b=%d, want %d/%d",
			by["a"].Windows, by["b"].Windows, sa.Windows, sb.Windows)
	}
	if by["a"].StreamsLive != 1 || by["a"].StreamsClosed != 0 {
		t.Fatalf("model a streams %+v, want 1 live 0 closed", by["a"])
	}

	ha.Close()
	by = reg.TotalsByModel()
	if by["a"].StreamsLive != 0 || by["a"].StreamsClosed != 1 {
		t.Fatalf("model a streams after close %+v, want 0 live 1 closed", by["a"])
	}
	if by["a"].Windows != int64(sa.Windows) {
		t.Fatalf("model a windows %d after close, want %d (folded exactly once)", by["a"].Windows, sa.Windows)
	}
	hb.Close()

	total, live, closed := reg.Totals()
	if live != 0 || closed != 2 || total.Windows != int64(sa.Windows+sb.Windows) {
		t.Fatalf("totals %d windows live=%d closed=%d, want %d/0/2",
			total.Windows, live, closed, sa.Windows+sb.Windows)
	}
}
