package core

import (
	"math"
	"testing"
	"time"

	"enduratrace/internal/obs"
	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// TestMultiMonitorMatchesSingle drives N concurrent streams over one
// shared Learned (run under -race in CI) and checks that every stream's
// decisions are identical to a fresh single-stream monitor's: per-stream
// state is isolated, the shared model is never written.
func TestMultiMonitorMatchesSingle(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}

	const streams = 8
	// Each stream gets its own trace: clean prefix, stream-specific
	// anomalous splice, clean suffix.
	runs := make([][]trace.Event, streams)
	for i := range runs {
		seed := int64(100 + i)
		var run []trace.Event
		run = append(run, synth(0, time.Second, refWeights, seed)...)
		run = append(run, synth(time.Second, 1200*time.Millisecond, []float64{0, 1, 10, 10}, seed+1)...)
		run = append(run, synth(1200*time.Millisecond, 2*time.Second, refWeights, seed+2)...)
		runs[i] = run
	}

	// Reference outcome: a fresh monitor per stream, run serially.
	want := make([]RunStats, streams)
	for i, run := range runs {
		stats, err := Run(cfg, learned, trace.NewSliceReader(run), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = stats
	}

	mm, err := NewMultiMonitor(cfg, learned, streams)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Streams() != streams || mm.Learned() != learned {
		t.Fatalf("MultiMonitor shape wrong: %d streams", mm.Streams())
	}
	readers := make([]trace.Reader, streams)
	for i, run := range runs {
		readers[i] = trace.NewSliceReader(run)
	}
	results, err := mm.RunAll(readers, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("stream %d: %v", i, res.Err)
		}
		if res.Stats != want[i] {
			t.Fatalf("stream %d diverged from single-stream run:\n got %+v\nwant %+v", i, res.Stats, want[i])
		}
		if res.Stats.Anomalies == 0 {
			t.Fatalf("stream %d detected nothing", i)
		}
	}
	windows, trips, _, anoms := mm.Stats()
	var wantW, wantT, wantA int
	for _, s := range want {
		wantW += s.Windows
		wantT += s.GateTrips
		wantA += s.Anomalies
	}
	if windows != wantW || trips != wantT || anoms != wantA {
		t.Fatalf("aggregate stats %d/%d/%d, want %d/%d/%d", windows, trips, anoms, wantW, wantT, wantA)
	}
}

func TestMultiMonitorRejectsBadShapes(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiMonitor(cfg, learned, 0); err == nil {
		t.Fatal("NewMultiMonitor accepted 0 streams")
	}
	mm, err := NewMultiMonitor(cfg, learned, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.RunAll(make([]trace.Reader, 1), nil); err == nil {
		t.Fatal("RunAll accepted a reader/stream mismatch")
	}
}

// TestProcessWindowZeroAlloc is the allocation-regression gate for the
// monitor's steady state: after the first window, neither the quiet-gate
// path nor the gate-tripped LOF path may allocate.
func TestProcessWindowZeroAlloc(t *testing.T) {
	cfg := testConfig()
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		t.Fatal(err)
	}
	quiet := window.Window{Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, refWeights, 2)}
	shifted := window.Window{Start: 0, End: 20 * time.Millisecond,
		Events: synth(0, 20*time.Millisecond, []float64{0, 0, 1, 20}, 3)}

	mon.ProcessWindow(quiet) // seed the past pmf, warm the scratch
	mon.ProcessWindow(shifted)

	if d := mon.ProcessWindow(quiet); d.GateTripped {
		// The shifted window reset the past pmf; one quiet window re-arms.
		mon.ProcessWindow(quiet)
	}
	if allocs := testing.AllocsPerRun(100, func() { mon.ProcessWindow(quiet) }); allocs != 0 {
		t.Errorf("quiet-gate ProcessWindow allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { mon.ProcessWindow(shifted) }); allocs != 0 {
		t.Errorf("tripped-gate ProcessWindow allocates %v/op, want 0", allocs)
	}

	// The instrumented path Run takes when a score timer is set — clock
	// read, ProcessWindow, clock read, histogram observe — must stay
	// zero-alloc too: latency recording may not cost the hot path its
	// allocation-free steady state.
	var hist obs.Histogram
	mon.SetScoreTimer(func(d time.Duration) { hist.Observe(d) })
	timed := func(w window.Window) {
		t0 := time.Now()
		mon.ProcessWindow(w)
		mon.scoreTimer(time.Since(t0))
	}
	if allocs := testing.AllocsPerRun(100, func() { timed(quiet) }); allocs != 0 {
		t.Errorf("timed quiet-gate ProcessWindow allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { timed(shifted) }); allocs != 0 {
		t.Errorf("timed tripped-gate ProcessWindow allocates %v/op, want 0", allocs)
	}
	if hist.Snapshot().Count() == 0 {
		t.Error("score timer never observed a duration")
	}
}

// TestGateAutoCalibration: learning with GateAuto must derive a positive
// threshold near the clean trace's gate-distance ceiling, and the
// monitor must honour it — a clean continuation barely trips the gate.
func TestGateAutoCalibration(t *testing.T) {
	cfg := testConfig()
	cfg.GateAuto = true
	ref := synth(0, 2*time.Second, refWeights, 1)
	learned, err := Learn(cfg, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if learned.AutoGateThreshold <= 0 {
		t.Fatalf("AutoGateThreshold = %g, want > 0", learned.AutoGateThreshold)
	}
	mon, err := NewMonitor(cfg, learned)
	if err != nil {
		t.Fatal(err)
	}
	if mon.GateThreshold() != learned.AutoGateThreshold {
		t.Fatalf("monitor threshold %g != calibrated %g", mon.GateThreshold(), learned.AutoGateThreshold)
	}
	// A shifted regime must trip the calibrated gate.
	shifted := synth(0, time.Second, []float64{0, 0, 1, 20}, 10)
	stats, err := Run(cfg, learned, trace.NewSliceReader(shifted), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GateTrips == 0 {
		t.Fatal("shifted run never tripped the auto gate")
	}
	// Gate economy: at a ceiling quantile, a clean continuation must stay
	// mostly under the calibrated gate. (The 0.90 default deliberately
	// trades clean-gate economy for staying engaged inside shifted
	// regimes, so the economy bound is asserted at q = 0.99.)
	cfgHi := cfg
	cfgHi.GateAutoQuantile = 0.99
	learnedHi, err := Learn(cfgHi, trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if learnedHi.AutoGateThreshold < learned.AutoGateThreshold {
		t.Fatalf("q99 threshold %g below q90 threshold %g",
			learnedHi.AutoGateThreshold, learned.AutoGateThreshold)
	}
	clean := synth(0, 2*time.Second, refWeights, 9)
	stats, err = Run(cfgHi, learnedHi, trace.NewSliceReader(clean), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(stats.GateTrips) / float64(stats.Windows); frac > 0.1 {
		t.Fatalf("clean run tripped the q99 auto gate on %.0f%% of windows", 100*frac)
	}

	// A monitor asked for GateAuto against a model learned without it
	// must refuse rather than silently use the fixed threshold.
	learnedFixed, err := Learn(testConfig(), trace.NewSliceReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(cfg, learnedFixed); err == nil {
		t.Fatal("NewMonitor accepted GateAuto with an uncalibrated model")
	}
}

// TestGateAutoQuantileMonotone: a higher calibration quantile cannot give
// a lower threshold.
func TestGateAutoQuantileMonotone(t *testing.T) {
	ref := synth(0, 2*time.Second, refWeights, 1)
	thr := func(q float64) float64 {
		cfg := testConfig()
		cfg.GateAuto = true
		cfg.GateAutoQuantile = q
		learned, err := Learn(cfg, trace.NewSliceReader(ref))
		if err != nil {
			t.Fatal(err)
		}
		return learned.AutoGateThreshold
	}
	lo, hi := thr(0.5), thr(0.99)
	if math.IsNaN(lo) || lo <= 0 || hi < lo {
		t.Fatalf("thresholds q50=%g q99=%g, want 0 < q50 <= q99", lo, hi)
	}
}
