package recorder

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// mkWindows builds n windows of 10 events each with compressible payloads.
func mkWindows(n int) []window.Window {
	rng := rand.New(rand.NewSource(1))
	var out []window.Window
	ts := time.Duration(0)
	for i := 0; i < n; i++ {
		w := window.Window{Index: i, Start: ts}
		for j := 0; j < 10; j++ {
			ts += time.Millisecond
			w.Events = append(w.Events, trace.Event{
				TS:      ts,
				Type:    trace.EventType(rng.Intn(4)),
				Arg:     uint64(j),
				Payload: bytes.Repeat([]byte{byte(i)}, 32),
			})
		}
		w.End = ts
		out = append(out, w)
	}
	return out
}

func TestNullAndMemSinksAgreeOnBytes(t *testing.T) {
	ws := mkWindows(5)
	null := NewNullSink()
	mem := NewMemSink()
	for _, w := range ws {
		if err := null.Record(w); err != nil {
			t.Fatal(err)
		}
		if err := mem.Record(w); err != nil {
			t.Fatal(err)
		}
	}
	if null.BytesWritten() != mem.BytesWritten() {
		t.Fatalf("null %d bytes, mem %d bytes", null.BytesWritten(), mem.BytesWritten())
	}
	if null.WindowsRecorded() != 5 || mem.WindowsRecorded() != 5 {
		t.Fatalf("window counts %d/%d, want 5/5", null.WindowsRecorded(), mem.WindowsRecorded())
	}
	if len(mem.Windows) != 5 {
		t.Fatalf("mem retained %d windows", len(mem.Windows))
	}
}

func TestStreamSinkRoundTrip(t *testing.T) {
	ws := mkWindows(4)
	var buf bytes.Buffer
	s, err := NewStreamSink(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Event
	for _, w := range ws {
		if err := s.Record(w); err != nil {
			t.Fatal(err)
		}
		want = append(want, w.Events...)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d != buffer %d", s.BytesWritten(), buf.Len())
	}
	br, err := traceio.NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TS != want[i].TS || got[i].Type != want[i].Type {
			t.Fatalf("event %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
	if err := s.Record(ws[0]); err == nil {
		t.Fatal("Record after Close succeeded")
	}
}

func TestStreamSinkCompressionShrinks(t *testing.T) {
	ws := mkWindows(20)
	var plain, packed bytes.Buffer
	sp, _ := NewStreamSink(&plain, -1)
	sc, _ := NewStreamSink(&packed, 6)
	for _, w := range ws {
		sp.Record(w)
		sc.Record(w)
	}
	sp.Close()
	sc.Close()
	if sc.BytesWritten() >= sp.BytesWritten() {
		t.Fatalf("compressed %d >= plain %d", sc.BytesWritten(), sp.BytesWritten())
	}
}

func TestContextSinkPrePost(t *testing.T) {
	ws := mkWindows(10)
	mem := NewMemSink()
	ctx := NewContextSink(mem, 2, 2)
	flagged := map[int]bool{5: true}
	for _, w := range ws {
		if err := ctx.Observe(w); err != nil {
			t.Fatal(err)
		}
		if flagged[w.Index] {
			if err := ctx.Record(w); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := []int{3, 4, 5, 6, 7}
	if len(mem.Windows) != len(want) {
		t.Fatalf("recorded %d windows, want %v", len(mem.Windows), want)
	}
	for i, w := range mem.Windows {
		if w.Index != want[i] {
			t.Fatalf("recorded indexes %v, want %v", indexes(mem.Windows), want)
		}
	}
}

func TestContextSinkNoDuplicatesOnAdjacentAnomalies(t *testing.T) {
	ws := mkWindows(10)
	mem := NewMemSink()
	ctx := NewContextSink(mem, 2, 2)
	flagged := map[int]bool{4: true, 5: true}
	for _, w := range ws {
		if err := ctx.Observe(w); err != nil {
			t.Fatal(err)
		}
		if flagged[w.Index] {
			if err := ctx.Record(w); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := []int{2, 3, 4, 5, 6, 7}
	got := indexes(mem.Windows)
	if len(got) != len(want) {
		t.Fatalf("recorded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recorded %v, want %v", got, want)
		}
	}
}

func indexes(ws []window.Window) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = w.Index
	}
	return out
}

func TestFullTraceSizeMatchesAccountant(t *testing.T) {
	ws := mkWindows(6)
	var evs []trace.Event
	for _, w := range ws {
		evs = append(evs, w.Events...)
	}
	got, err := FullTraceSize(trace.NewSliceReader(evs))
	if err != nil {
		t.Fatal(err)
	}
	acct := traceio.NewSizeAccountant()
	for _, ev := range evs {
		acct.Write(ev)
	}
	if got != acct.Bytes() {
		t.Fatalf("FullTraceSize %d != accountant %d", got, acct.Bytes())
	}
}
