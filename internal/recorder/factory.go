package recorder

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// SinkFactory builds one Sink per named stream. The serving layer calls it
// once per accepted trace stream with the registry-assigned stream id, so
// each stream's anomalous windows land in their own sink (file, buffer,
// counter...) instead of interleaving.
type SinkFactory func(streamID string) (Sink, error)

// NullFactory hands every stream its own size-accounting discard sink —
// stat-only serving.
func NullFactory() SinkFactory {
	return func(string) (Sink, error) { return NewNullSink(), nil }
}

// FileSink is a StreamSink bound to a file it owns: Close flushes the
// codec (and compressor) and then closes the file, so a flushed FileSink
// is durable on disk.
type FileSink struct {
	*StreamSink
	f    *os.File
	path string
}

// NewFileSink creates path (truncating) and returns a sink recording to it
// with the binary trace codec; compressLevel as in NewStreamSink.
func NewFileSink(path string, compressLevel int) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	ss, err := NewStreamSink(f, compressLevel)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{StreamSink: ss, f: f, path: path}, nil
}

// Path returns the file the sink records to.
func (s *FileSink) Path() string { return s.path }

// Close implements Sink: flushes the stream sink, fsyncs, then closes the
// file. Without the Sync the flushed bytes only reach the page cache and
// "durable on disk" would be a lie a power cut exposes.
func (s *FileSink) Close() error {
	serr := s.StreamSink.Close()
	yerr := s.f.Sync()
	ferr := s.f.Close()
	if serr != nil {
		return serr
	}
	if yerr != nil {
		return yerr
	}
	return ferr
}

// Sync flushes the codec and compressor and forces everything written so
// far to stable storage, leaving the sink open for further records.
func (s *FileSink) Sync() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if s.flate != nil {
		if err := s.flate.Flush(); err != nil {
			return err
		}
	}
	return s.f.Sync()
}

// SanitizeStreamID maps an arbitrary stream id onto a safe filename
// component: path separators and control characters become '_', and an id
// that sanitises to nothing becomes "stream".
func SanitizeStreamID(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	out := strings.Trim(b.String(), ".")
	if out == "" {
		return "stream"
	}
	return out
}

// NewDirFactory returns a factory recording each stream to
// <dir>/<sanitized-id>.etrc (".etrc.fz" when compressed). The directory is
// created if missing; a second stream sanitising to the same filename gets
// a numeric suffix rather than clobbering the first.
func NewDirFactory(dir string, compressLevel int) (SinkFactory, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ext := ".etrc"
	if compressLevel >= 0 {
		ext = ".etrc.fz"
	}
	var mu sync.Mutex // streams are accepted concurrently
	used := make(map[string]int)
	return func(streamID string) (Sink, error) {
		base := SanitizeStreamID(streamID)
		mu.Lock()
		n := used[base]
		used[base] = n + 1
		mu.Unlock()
		name := base + ext
		if n > 0 {
			name = fmt.Sprintf("%s.%d%s", base, n, ext)
		}
		return NewFileSink(filepath.Join(dir, name), compressLevel)
	}, nil
}
