package recorder

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
)

// TestStreamSinkCloseFinishesFlateStream: Close must write the
// compressor's final block — a sink that flushes the codec but leaks the
// flate writer unclosed produces a stream that decompresses to
// io.ErrUnexpectedEOF, which is exactly the bug this pins.
func TestStreamSinkCloseFinishesFlateStream(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewStreamSink(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fr := flate.NewReader(bytes.NewReader(buf.Bytes()))
	raw, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("compressed stream not finished by Close: %v", err)
	}
	br, err := traceio.NewBinaryReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 50 {
		t.Fatalf("decoded %d events, want 50", len(evs))
	}
}

var errBoom = errors.New("boom")

// failWriter errors on every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errBoom }

// TestStreamSinkCloseErrorPath: a failing underlying writer must surface
// exactly once, through Close; Close stays idempotent and the sink rejects
// records afterwards.
func TestStreamSinkCloseErrorPath(t *testing.T) {
	s, err := NewStreamSink(failWriter{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 3)); err != nil {
		t.Fatal(err) // buffered, the writer is not touched yet
	}
	if err := s.Close(); !errors.Is(err, errBoom) {
		t.Fatalf("Close error %v, want the writer's", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close returned %v, want nil", err)
	}
	if err := s.Record(testWindow(time.Second, 3)); err == nil {
		t.Fatal("record on closed sink succeeded")
	}
}

// TestStreamSinkCompressedCloseErrorPath: with compression in the stack,
// a failing underlying writer must still tear the whole sink down through
// Close — the writer's error reported (once), no panic, Close idempotent.
// (The flate writer remembers its first error; Close reaching it at all is
// the fix — the old early return skipped it entirely.)
func TestStreamSinkCompressedCloseErrorPath(t *testing.T) {
	s, err := NewStreamSink(failWriter{}, 0) // stored-block flate
	if err != nil {
		t.Fatal(err)
	}
	// Enough payload bytes to overflow the compressor's block buffer so
	// the error surfaces during Record or at the latest during Close.
	win := testWindow(0, 10)
	for i := range win.Events {
		win.Events[i].Payload = bytes.Repeat([]byte{byte(i)}, 16<<10)
	}
	recErr := s.Record(win)
	cerr := s.Close()
	if recErr == nil && cerr == nil {
		t.Fatal("failing writer surfaced no error through Record or Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close returned %v, want nil", err)
	}
}

// TestFileSinkSyncMidStream: Sync must make everything recorded so far
// durable and readable while the sink stays open for more records.
func TestFileSinkSyncMidStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.etrc")
	s, err := NewFileSink(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// The synced prefix is a complete, decodable trace right now — no
	// Close needed (this is what a crash after Sync leaves behind).
	evs := readTrace(t, path)
	if len(evs) != 20 {
		t.Fatalf("after Sync the file decodes %d events, want 20", len(evs))
	}
	if err := s.Record(testWindow(time.Second, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if evs = readTrace(t, path); len(evs) != 25 {
		t.Fatalf("after Close the file decodes %d events, want 25", len(evs))
	}
}

func readTrace(t *testing.T, path string) []trace.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br, err := traceio.NewBinaryReader(f)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestFileSinkSyncCompressed: with compression, Sync emits a flate flush
// point so the on-disk prefix is decompressible mid-stream.
func TestFileSinkSyncCompressed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.etrc.fz")
	s, err := NewFileSink(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// flate.Flush guarantees the prefix inflates; the stream is not yet
	// terminated, so ReadAll reporting unexpected EOF after yielding the
	// bytes is acceptable — the events must all be there.
	infl, err := io.ReadAll(flate.NewReader(bytes.NewReader(raw)))
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("synced compressed prefix unreadable: %v", err)
	}
	br, err := traceio.NewBinaryReader(bytes.NewReader(infl))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 30 {
		t.Fatalf("synced prefix decodes %d events, want 30", len(evs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
