package recorder

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

func testWindow(start time.Duration, n int) window.Window {
	w := window.Window{Start: start, End: start + 40*time.Millisecond}
	for i := 0; i < n; i++ {
		w.Events = append(w.Events, trace.Event{
			TS:   start + time.Duration(i)*time.Millisecond,
			Type: trace.EventType(i % 5),
			Arg:  uint64(i),
		})
	}
	return w
}

func TestSanitizeStreamID(t *testing.T) {
	cases := map[string]string{
		"cam-03":        "cam-03",
		"a/b\\c":        "a_b_c",
		"..":            "",
		"":              "",
		"weird name\n!": "weird_name__",
		"ok.trace":      "ok.trace",
	}
	for in, want := range cases {
		if want == "" {
			want = "stream"
		}
		if got := SanitizeStreamID(in); got != want {
			t.Errorf("SanitizeStreamID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDirFactoryPerStreamFiles(t *testing.T) {
	dir := t.TempDir()
	factory, err := NewDirFactory(filepath.Join(dir, "rec"), -1)
	if err != nil {
		t.Fatal(err)
	}

	// Two distinct streams plus one filename collision.
	ids := []string{"cam-a", "cam-b", "cam-a"}
	var sinks []Sink
	for _, id := range ids {
		s, err := factory(id)
		if err != nil {
			t.Fatal(err)
		}
		sinks = append(sinks, s)
	}
	for i, s := range sinks {
		if err := s.Record(testWindow(time.Duration(i)*time.Second, 10+i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	entries, err := os.ReadDir(filepath.Join(dir, "rec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recorded %d files, want 3 (one per stream)", len(entries))
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{"cam-a.etrc", "cam-b.etrc"} {
		if !names[want] {
			t.Fatalf("missing %s among %v", want, names)
		}
	}

	// Each file must be a decodable binary trace with the recorded events.
	f, err := os.Open(filepath.Join(dir, "rec", "cam-b.etrc"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br, err := traceio.NewBinaryReader(f)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 11 {
		t.Fatalf("cam-b recorded %d events, want 11", len(evs))
	}
}

func TestFileSinkFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.etrc.fz")
	s, err := NewFileSink(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 200)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != s.BytesWritten() {
		t.Fatalf("on-disk size %d != reported %d (sink not flushed?)", fi.Size(), s.BytesWritten())
	}
	if s.WindowsRecorded() != 1 {
		t.Fatalf("windows recorded %d, want 1", s.WindowsRecorded())
	}
}

func TestNullFactory(t *testing.T) {
	s, err := NullFactory()("whatever")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Record(testWindow(0, 5)); err != nil {
		t.Fatal(err)
	}
	if s.WindowsRecorded() != 1 || s.BytesWritten() <= 0 {
		t.Fatalf("null sink accounting: %d windows, %d bytes", s.WindowsRecorded(), s.BytesWritten())
	}
}
