// Package recorder implements the storage side of the monitor: when a trace
// window is flagged as suspicious it is recorded to a device (§II); the
// headline metric of the paper is how few bytes end up here (418 MB vs
// 5.9 GB, §III). Sinks account sizes with the exact binary trace encoding.
package recorder

import (
	"compress/flate"
	"fmt"
	"io"

	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// Sink consumes recorded (suspicious) trace windows.
type Sink interface {
	// Record stores one window. Windows arrive in stream order.
	Record(w window.Window) error
	// Close flushes and releases resources.
	Close() error
	// BytesWritten reports the size of everything recorded so far, in
	// encoded trace bytes (after compression for compressing sinks).
	BytesWritten() int64
	// WindowsRecorded reports how many windows were recorded.
	WindowsRecorded() int
}

// NullSink discards window contents but accounts their encoded size, which
// makes it the cheapest way to measure reduction factors.
type NullSink struct {
	acct    *traceio.SizeAccountant
	windows int
}

// NewNullSink returns a size-accounting discard sink.
func NewNullSink() *NullSink {
	return &NullSink{acct: traceio.NewSizeAccountant()}
}

// Record implements Sink.
func (s *NullSink) Record(w window.Window) error {
	for _, ev := range w.Events {
		if err := s.acct.Write(ev); err != nil {
			return err
		}
	}
	s.windows++
	return nil
}

// Close implements Sink.
func (s *NullSink) Close() error { return nil }

// BytesWritten implements Sink.
func (s *NullSink) BytesWritten() int64 { return s.acct.Bytes() }

// WindowsRecorded implements Sink.
func (s *NullSink) WindowsRecorded() int { return s.windows }

// MemSink retains every recorded window in memory; intended for tests.
type MemSink struct {
	Windows []window.Window
	acct    *traceio.SizeAccountant
}

// NewMemSink returns an in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{acct: traceio.NewSizeAccountant()}
}

// Record implements Sink.
func (s *MemSink) Record(w window.Window) error {
	s.Windows = append(s.Windows, w)
	for _, ev := range w.Events {
		if err := s.acct.Write(ev); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink.
func (s *MemSink) Close() error { return nil }

// BytesWritten implements Sink.
func (s *MemSink) BytesWritten() int64 { return s.acct.Bytes() }

// WindowsRecorded implements Sink.
func (s *MemSink) WindowsRecorded() int { return len(s.Windows) }

// countingWriter counts bytes flowing to an io.Writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// StreamSink writes recorded windows to an io.Writer using the binary trace
// codec, optionally behind DEFLATE compression. With compression the
// reported size is the compressed byte count — what would actually hit the
// storage device.
type StreamSink struct {
	cw      *countingWriter
	flate   *flate.Writer
	bw      *traceio.BinaryWriter
	windows int
	closed  bool
}

// NewStreamSink creates a sink writing to w. compressLevel < 0 disables
// compression; otherwise it is a flate level (1..9, or 0 for no
// compression but flate framing).
func NewStreamSink(w io.Writer, compressLevel int) (*StreamSink, error) {
	s := &StreamSink{cw: &countingWriter{w: w}}
	var sink io.Writer = s.cw
	if compressLevel >= 0 {
		fw, err := flate.NewWriter(s.cw, compressLevel)
		if err != nil {
			return nil, fmt.Errorf("recorder: creating flate writer: %w", err)
		}
		s.flate = fw
		sink = fw
	}
	bw, err := traceio.NewBinaryWriter(sink)
	if err != nil {
		return nil, err
	}
	s.bw = bw
	return s, nil
}

// Record implements Sink.
func (s *StreamSink) Record(w window.Window) error {
	if s.closed {
		return fmt.Errorf("recorder: record on closed sink")
	}
	for _, ev := range w.Events {
		if err := s.bw.Write(ev); err != nil {
			return err
		}
	}
	s.windows++
	return nil
}

// Close implements Sink. The flate writer is closed even when the codec
// flush fails: a failed Flush must not leak the compressor (and its final
// block) — the first error is reported either way.
func (s *StreamSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	ferr := s.bw.Flush()
	if s.flate != nil {
		if cerr := s.flate.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// BytesWritten implements Sink. For exact numbers call after Close (flate
// holds buffered data until then).
func (s *StreamSink) BytesWritten() int64 { return s.cw.n }

// WindowsRecorded implements Sink.
func (s *StreamSink) WindowsRecorded() int { return s.windows }

// ContextSink decorates a Sink with pre- and post-anomaly context: the last
// Pre windows before each recorded window and the Post windows after it are
// recorded too. Debugging a QoS failure usually needs the lead-up, not just
// the anomalous window itself; this is an extension beyond the paper,
// disabled (Pre = Post = 0) in the paper-faithful experiments.
type ContextSink struct {
	Pre, Post int
	dst       Sink

	ring      []window.Window // last Pre windows not yet recorded
	postLeft  int
	lastIndex int // index of the last window recorded, to avoid duplicates
}

// NewContextSink wraps dst with pre/post context counts.
func NewContextSink(dst Sink, pre, post int) *ContextSink {
	if pre < 0 || post < 0 {
		panic(fmt.Sprintf("recorder: negative context pre=%d post=%d", pre, post))
	}
	return &ContextSink{Pre: pre, Post: post, dst: dst, lastIndex: -1}
}

// Observe must be called for every window of the stream (recorded or not);
// it maintains the pre-context ring and emits post-context windows.
func (s *ContextSink) Observe(w window.Window) error {
	if s.postLeft > 0 && w.Index > s.lastIndex {
		s.postLeft--
		return s.record(w)
	}
	if s.Pre > 0 {
		// Keep one extra slot: Observe(w) precedes Record(w) for the
		// anomalous window itself (core.Run's protocol), so w may sit in
		// the ring without counting against the Pre context windows.
		s.ring = append(s.ring, w)
		if len(s.ring) > s.Pre+1 {
			s.ring = s.ring[1:]
		}
	}
	return nil
}

// Record implements Sink: flushes pre-context, records w, arms post-context.
func (s *ContextSink) Record(w window.Window) error {
	pre := s.ring[:0:0]
	for _, rw := range s.ring {
		if rw.Index > s.lastIndex && rw.Index < w.Index {
			pre = append(pre, rw)
		}
	}
	if len(pre) > s.Pre {
		pre = pre[len(pre)-s.Pre:]
	}
	for _, rw := range pre {
		if err := s.record(rw); err != nil {
			return err
		}
	}
	s.ring = s.ring[:0]
	if err := s.record(w); err != nil {
		return err
	}
	s.postLeft = s.Post
	return nil
}

func (s *ContextSink) record(w window.Window) error {
	if w.Index <= s.lastIndex {
		return nil
	}
	s.lastIndex = w.Index
	return s.dst.Record(w)
}

// Close implements Sink.
func (s *ContextSink) Close() error { return s.dst.Close() }

// BytesWritten implements Sink.
func (s *ContextSink) BytesWritten() int64 { return s.dst.BytesWritten() }

// WindowsRecorded implements Sink.
func (s *ContextSink) WindowsRecorded() int { return s.dst.WindowsRecorded() }

// FullTraceSize streams r through a size accountant and reports the exact
// encoded size of recording everything — the paper's baseline denominator.
func FullTraceSize(r trace.Reader) (int64, error) {
	acct := traceio.NewSizeAccountant()
	if _, err := trace.Copy(acct, r); err != nil {
		return 0, err
	}
	return acct.Bytes(), nil
}
