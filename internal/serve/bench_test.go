package serve

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"enduratrace/internal/mediasim"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
)

// benchEvents caches one pre-simulated 5 s trace for the wire benchmark.
var (
	benchOnce sync.Once
	benchEvs  []trace.Event
	benchErr  error
)

func benchTrace(b *testing.B) []trace.Event {
	b.Helper()
	benchOnce.Do(func() {
		sc := mediasim.DefaultConfig()
		sc.Duration = 5 * time.Second
		sc.Seed = 99
		sim, err := mediasim.New(sc)
		if err != nil {
			benchErr = err
			return
		}
		benchEvs, benchErr = trace.ReadAll(sim)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEvs
}

// BenchmarkServeLoopback measures the full serving path end-to-end over a
// real TCP loopback socket: frame encode → socket → frame decode → queue →
// window → gate → LOF → null sink. One iteration pushes one 5 s simulated
// trace segment (timestamps shifted so the stream stays monotonic) and the
// timer includes the server catching up, so events/s is true end-to-end
// ingest+scoring throughput.
func BenchmarkServeLoopback(b *testing.B) {
	cfg, learned := fixture(b)
	evs := benchTrace(b)

	srv, err := New(Options{Cfg: cfg, Learned: learned, QueueLen: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", ""); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriter(conn, "bench")
	if err != nil {
		b.Fatal(err)
	}

	span := evs[len(evs)-1].TS + time.Millisecond
	var epoch time.Duration
	sent := 0

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			ev.TS += epoch
			if err := fw.Write(ev); err != nil {
				b.Fatal(err)
			}
		}
		epoch += span
		sent += len(evs)
	}
	if err := fw.Close(); err != nil {
		b.Fatal(err)
	}
	// Wait for the server to finish scoring everything sent.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if _, live, closed := srv.reg.Totals(); live == 0 && closed == 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("server did not drain within 2m")
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(sent)/elapsed, "events/s")
		b.ReportMetric(float64(srv.Stats().Windows)/elapsed, "windows/s")
	}
	cancel()
	if err := <-serveErr; err != nil {
		b.Fatal(err)
	}
}
