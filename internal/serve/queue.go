package serve

import (
	"fmt"
	"io"
	"sync"

	"enduratrace/internal/trace"
)

// Backpressure selects what an ingester does when a stream's bounded
// event queue is full.
type Backpressure int

const (
	// Block stalls the ingest goroutine until the scorer catches up; the
	// stall propagates to the client through TCP flow control, so a slow
	// model slows the sender instead of losing data.
	Block Backpressure = iota
	// DropOldest discards the oldest queued event to admit the new one,
	// bounding client-visible latency at the cost of holes in the scored
	// stream; the drop count is reported per stream.
	DropOldest
)

// String implements fmt.Stringer with the flag spelling.
func (b Backpressure) String() string {
	switch b {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("Backpressure(%d)", int(b))
	}
}

// ParseBackpressure parses the -backpressure flag value.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown backpressure policy %q (want block or drop-oldest)", s)
	}
}

// eventQueue is the bounded handoff between a stream's ingest goroutine
// (socket → decode) and its scoring goroutine (window → gate → LOF →
// record). It implements trace.Reader on the consumer side; Next returns
// io.EOF once the queue is closed and drained, so a core.Monitor.Run over
// the queue terminates cleanly whatever ended ingestion.
//
// All four counters move under the queue mutex and are read together via
// Counters(), so any observer sees a consistent snapshot obeying
//
//	ingested == scored + dropped + depth
//
// at all times — in particular, drops observed mid-drain always equal the
// drops in the final per-stream totals. (An earlier revision bumped the
// scored counter outside the lock, so a concurrent /stats read could
// catch an event that had left the buffer but was not yet counted
// anywhere; TestEventQueueCountersConsistentUnderRace pins the fix.)
type eventQueue struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []trace.Event // ring buffer
	head     int
	n        int
	closed   bool
	policy   Backpressure

	dropped  int64
	ingested int64
	scored   int64
}

func newEventQueue(capacity int, policy Backpressure) *eventQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &eventQueue{buf: make([]trace.Event, capacity), policy: policy}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Push enqueues ev according to the backpressure policy. It returns false
// once the queue is closed (shutdown), telling the ingester to stop.
func (q *eventQueue) Push(ev trace.Event) bool {
	q.mu.Lock()
	if q.policy == Block {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) { // DropOldest: make room
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped++
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	// Count before unlocking: the consumer may pop (and bump scored) the
	// instant the lock drops, and scored must never exceed ingested.
	q.ingested++
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// Close stops ingestion; queued events remain consumable (the drain).
// Idempotent.
func (q *eventQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Next implements trace.Reader for the scoring side.
func (q *eventQueue) Next() (trace.Event, error) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return trace.Event{}, io.EOF
	}
	ev := q.buf[q.head]
	q.buf[q.head] = trace.Event{} // drop payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	// Count inside the lock: the event must never be invisible to a
	// concurrent Counters() — gone from the buffer yet not scored.
	q.scored++
	q.mu.Unlock()
	q.notFull.Signal()
	return ev, nil
}

// QueueCounters is one consistent observation of a queue's books.
type QueueCounters struct {
	Ingested int64
	Scored   int64
	Dropped  int64
	Depth    int
}

// Counters returns the queue's books as one atomic observation: at every
// instant Ingested == Scored + Dropped + Depth.
func (q *eventQueue) Counters() QueueCounters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueCounters{Ingested: q.ingested, Scored: q.scored, Dropped: q.dropped, Depth: q.n}
}

// Depth reports the current queue occupancy.
func (q *eventQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
