package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"enduratrace/internal/trace"
)

// Backpressure selects what an ingester does when a stream's bounded
// event queue is full.
type Backpressure int

const (
	// Block stalls the ingest goroutine until the scorer catches up; the
	// stall propagates to the client through TCP flow control, so a slow
	// model slows the sender instead of losing data.
	Block Backpressure = iota
	// DropOldest discards the oldest queued event to admit the new one,
	// bounding client-visible latency at the cost of holes in the scored
	// stream; the drop count is reported per stream.
	DropOldest
)

// String implements fmt.Stringer with the flag spelling.
func (b Backpressure) String() string {
	switch b {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("Backpressure(%d)", int(b))
	}
}

// ParseBackpressure parses the -backpressure flag value.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown backpressure policy %q (want block or drop-oldest)", s)
	}
}

// eventQueue is the bounded handoff between a stream's ingest goroutine
// (socket → decode) and its scoring goroutine (window → gate → LOF →
// record). It implements trace.Reader on the consumer side; Next returns
// io.EOF once the queue is closed and drained, so a core.Monitor.Run over
// the queue terminates cleanly whatever ended ingestion.
type eventQueue struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []trace.Event // ring buffer
	head     int
	n        int
	closed   bool
	policy   Backpressure

	dropped  atomic.Int64
	ingested atomic.Int64
	scored   atomic.Int64
}

func newEventQueue(capacity int, policy Backpressure) *eventQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &eventQueue{buf: make([]trace.Event, capacity), policy: policy}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Push enqueues ev according to the backpressure policy. It returns false
// once the queue is closed (shutdown), telling the ingester to stop.
func (q *eventQueue) Push(ev trace.Event) bool {
	q.mu.Lock()
	if q.policy == Block {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) { // DropOldest: make room
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped.Add(1)
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	// Count before unlocking: the consumer may pop (and bump scored) the
	// instant the lock drops, and scored must never exceed ingested.
	q.ingested.Add(1)
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// Close stops ingestion; queued events remain consumable (the drain).
// Idempotent.
func (q *eventQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Next implements trace.Reader for the scoring side.
func (q *eventQueue) Next() (trace.Event, error) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return trace.Event{}, io.EOF
	}
	ev := q.buf[q.head]
	q.buf[q.head] = trace.Event{} // drop payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.mu.Unlock()
	q.notFull.Signal()
	q.scored.Add(1)
	return ev, nil
}

// Depth reports the current queue occupancy.
func (q *eventQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
