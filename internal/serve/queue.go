package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"enduratrace/internal/obs"
	"enduratrace/internal/trace"
)

// Backpressure selects what an ingester does when a stream's bounded
// event queue is full.
type Backpressure int

const (
	// Block stalls the ingest goroutine until the scorer catches up; the
	// stall propagates to the client through TCP flow control, so a slow
	// model slows the sender instead of losing data.
	Block Backpressure = iota
	// DropOldest discards the oldest queued event to admit the new one,
	// bounding client-visible latency at the cost of holes in the scored
	// stream; the drop count is reported per stream.
	DropOldest
)

// String implements fmt.Stringer with the flag spelling.
func (b Backpressure) String() string {
	switch b {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("Backpressure(%d)", int(b))
	}
}

// ParseBackpressure parses the -backpressure flag value.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown backpressure policy %q (want block or drop-oldest)", s)
	}
}

// eventQueue is the bounded handoff between a stream's ingest goroutine
// (socket → decode) and its scoring goroutine (window → gate → LOF →
// record). It implements trace.BatchReader on the consumer side (so
// core.Monitor.Run drains it in whole-batch passes); Next and ReadBatch
// return io.EOF once the queue is closed and drained, so a run over the
// queue terminates cleanly whatever ended ingestion.
//
// All four counters move under the queue mutex and are read together via
// Counters(), so any observer sees a consistent snapshot obeying
//
//	ingested == scored + dropped + depth
//
// at all times — in particular, drops observed mid-drain always equal the
// drops in the final per-stream totals. (An earlier revision bumped the
// scored counter outside the lock, so a concurrent /stats read could
// catch an event that had left the buffer but was not yet counted
// anywhere; TestEventQueueCountersConsistentUnderRace pins the fix.)
type eventQueue struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []trace.Event // ring buffer
	head     int
	n        int
	closed   bool
	policy   Backpressure

	dropped  int64 //enduratrace:guarded-by mu
	ingested int64 //enduratrace:guarded-by mu
	scored   int64 //enduratrace:guarded-by mu

	// Instrumentation (instrument() turns it on; nil/zero otherwise).
	// meta rides the ring in parallel with buf: per-event enqueue
	// timestamp, decode duration, stream ordinal and flight-sample flag.
	meta []evMeta
	pipe *obs.Pipeline // per-model stage histograms (QueueWait observed at pop)

	// lastPushNs/lastPopNs feed the stall watchdog: the monotonic time
	// (obs.Now) of the most recent enqueue and dequeue. Atomics so the
	// admin endpoints can read them against a live queue.
	lastPushNs atomic.Int64
	lastPopNs  atomic.Int64

	// Consumer-side state, owned by the scoring goroutine (the only
	// caller of Next, ReadBatch, takeArrivals and takeFlight): the enqueue
	// times of events popped since the last window decision (drained into
	// the E2E histogram by the decision callback), the most recent
	// flight-sampled event awaiting its window's decision, and the scratch
	// metadata slice ReadBatch copies into under the lock so the
	// per-event observation work can happen after unlock.
	pending     []int64
	flightSlot  poppedMeta
	hasFlight   bool
	flightSkips int
	popMetas    []evMeta
}

// evMeta is the per-event instrumentation carried through the ring.
type evMeta struct {
	enqNs    int64 // obs.Now at enqueue (arrival: decode complete)
	decodeNs int64 // time spent obtaining the event off the socket
	seq      uint64
	flight   bool
}

// poppedMeta is an evMeta plus what the pop itself measured.
type poppedMeta struct {
	evMeta
	waitNs int64 // time spent queued
}

// pendingCap bounds the consumer-side arrival buffer: a pathological
// window holding more events than this loses the excess from the E2E
// histogram (the stage histograms still see every event). 64k events per
// window is ~25× the default pipeline's worst case.
const pendingCap = 65536

// instrument attaches the per-model stage histograms and allocates the
// metadata ring. Must be called before the first Push.
func (q *eventQueue) instrument(pipe *obs.Pipeline) {
	q.pipe = pipe
	q.meta = make([]evMeta, len(q.buf))
	q.pending = make([]int64, 0, 256)
	now := obs.Now()
	q.lastPushNs.Store(now)
	q.lastPopNs.Store(now)
}

func newEventQueue(capacity int, policy Backpressure) *eventQueue {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &eventQueue{buf: make([]trace.Event, capacity), policy: policy}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Push enqueues ev according to the backpressure policy. It returns false
// once the queue is closed (shutdown), telling the ingester to stop.
func (q *eventQueue) Push(ev trace.Event) bool {
	return q.PushTimed(ev, obs.Now(), 0, 0, false)
}

// PushTimed is Push carrying the event's instrumentation: its arrival
// timestamp (obs.Now at decode completion), the decode duration, the
// stream ordinal and whether the flight recorder sampled it. On an
// uninstrumented queue the extras are simply dropped.
//
//enduratrace:zeroalloc
func (q *eventQueue) PushTimed(ev trace.Event, enqNs, decodeNs int64, seq uint64, flight bool) bool {
	q.mu.Lock()
	if q.policy == Block {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) { // DropOldest: make room
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.dropped++
	}
	i := (q.head + q.n) % len(q.buf)
	q.buf[i] = ev
	if q.meta != nil {
		q.meta[i] = evMeta{enqNs: enqNs, decodeNs: decodeNs, seq: seq, flight: flight}
		q.lastPushNs.Store(enqNs)
	}
	q.n++
	// Count before unlocking: the consumer may pop (and bump scored) the
	// instant the lock drops, and scored must never exceed ingested.
	q.ingested++
	q.mu.Unlock()
	q.notEmpty.Signal()
	return true
}

// PushBatch enqueues evs under one mutex acquisition instead of one per
// event, filling the metadata ring in the same critical section: event i
// carries sequence firstSeq+i, the shared arrival timestamp enqNs (the
// whole batch became visible at the same ReadBatch return) and the
// per-event decode share decodeNsPerEv. Under Block the batch is admitted
// in capacity-sized chunks, waking the consumer between chunks, so a
// batch larger than the queue cannot deadlock; under DropOldest each
// admitted event evicts the oldest exactly as Push would. Returns false
// once the queue is closed — events admitted before the close stay
// counted and consumable.
//
//enduratrace:zeroalloc
func (q *eventQueue) PushBatch(evs []trace.Event, enqNs, decodeNsPerEv int64, firstSeq uint64, flightEvery uint64) bool {
	for len(evs) > 0 {
		q.mu.Lock()
		if q.policy == Block {
			for q.n == len(q.buf) && !q.closed {
				q.notFull.Wait()
			}
		}
		if q.closed {
			q.mu.Unlock()
			return false
		}
		k := len(evs)
		if q.policy == Block {
			if free := len(q.buf) - q.n; k > free {
				k = free
			}
		}
		for i := 0; i < k; i++ {
			if q.n == len(q.buf) { // DropOldest: make room
				q.head = (q.head + 1) % len(q.buf)
				q.n--
				q.dropped++
			}
			j := (q.head + q.n) % len(q.buf)
			q.buf[j] = evs[i]
			if q.meta != nil {
				seq := firstSeq + uint64(i)
				q.meta[j] = evMeta{
					enqNs:    enqNs,
					decodeNs: decodeNsPerEv,
					seq:      seq,
					flight:   flightEvery > 0 && seq%flightEvery == 0,
				}
			}
			q.n++
			q.ingested++
		}
		if q.meta != nil {
			q.lastPushNs.Store(enqNs)
		}
		q.mu.Unlock()
		q.notEmpty.Signal()
		evs = evs[k:]
		firstSeq += uint64(k)
	}
	return true
}

// Close stops ingestion; queued events remain consumable (the drain).
// Idempotent.
func (q *eventQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Next implements trace.Reader for the scoring side.
//
//enduratrace:zeroalloc
func (q *eventQueue) Next() (trace.Event, error) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return trace.Event{}, io.EOF
	}
	ev := q.buf[q.head]
	q.buf[q.head] = trace.Event{} // drop payload reference
	var m evMeta
	if q.meta != nil {
		m = q.meta[q.head]
	}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	// Count inside the lock: the event must never be invisible to a
	// concurrent Counters() — gone from the buffer yet not scored.
	q.scored++
	q.mu.Unlock()
	q.notFull.Signal()
	if q.meta != nil {
		now := obs.Now()
		wait := now - m.enqNs
		q.pipe.QueueWait.ObserveNs(wait)
		q.lastPopNs.Store(now)
		// Arrival times accumulate until the next window decision drains
		// them into the E2E histogram; the cap bounds a pathological
		// window (the stage histograms above still saw the event).
		if len(q.pending) < pendingCap {
			q.pending = append(q.pending, m.enqNs)
		}
		if m.flight {
			if q.hasFlight {
				q.flightSkips++ // previous sample never saw its decision
			}
			q.flightSlot = poppedMeta{evMeta: m, waitNs: wait}
			q.hasFlight = true
		}
	}
	return ev, nil
}

// ReadBatch implements trace.BatchReader for the scoring side: it pops
// every immediately available event (up to len(dst)) under one mutex
// acquisition, blocking only when the queue is empty and open. Counter
// discipline matches Next — scored moves inside the lock — while the
// per-event observation work (QueueWait, pending arrivals, flight slot)
// happens after unlock on metadata copied out under the lock.
//
//enduratrace:zeroalloc
func (q *eventQueue) ReadBatch(dst []trace.Event) (int, error) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return 0, io.EOF
	}
	k := len(dst)
	if k > q.n {
		k = q.n
	}
	var metas []evMeta
	if q.meta != nil {
		if cap(q.popMetas) < k {
			//lint:ignore zeroalloc amortized scratch growth: reused across calls, steady-state zero
			q.popMetas = make([]evMeta, k)
		}
		metas = q.popMetas[:k]
	}
	for i := 0; i < k; i++ {
		dst[i] = q.buf[q.head]
		q.buf[q.head] = trace.Event{} // drop payload reference
		if metas != nil {
			metas[i] = q.meta[q.head]
		}
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= k
	q.scored += int64(k)
	q.mu.Unlock()
	q.notFull.Signal()
	if metas != nil {
		now := obs.Now()
		q.lastPopNs.Store(now)
		for i := range metas {
			m := metas[i]
			wait := now - m.enqNs
			q.pipe.QueueWait.ObserveNs(wait)
			if len(q.pending) < pendingCap {
				q.pending = append(q.pending, m.enqNs)
			}
			if m.flight {
				if q.hasFlight {
					q.flightSkips++ // previous sample never saw its decision
				}
				q.flightSlot = poppedMeta{evMeta: m, waitNs: wait}
				q.hasFlight = true
			}
		}
	}
	return k, nil
}

// takeArrivals hands the scoring goroutine the enqueue times of every
// event popped since the previous call, for E2E observation at a window
// decision. The returned slice is only valid until the next Next call;
// observe it immediately.
func (q *eventQueue) takeArrivals() []int64 {
	a := q.pending
	q.pending = q.pending[:0]
	return a
}

// takeFlight returns the most recent flight-sampled pop since the
// previous call, if any, plus how many earlier samples were overwritten
// before their window's decision (skipped). Consumer-side only, like
// takeArrivals.
func (q *eventQueue) takeFlight() (m poppedMeta, skipped int, ok bool) {
	skipped = q.flightSkips
	q.flightSkips = 0
	if !q.hasFlight {
		return poppedMeta{}, skipped, false
	}
	q.hasFlight = false
	return q.flightSlot, skipped, true
}

// LastTimes reports the obs.Now timestamps of the most recent enqueue and
// dequeue, for the stall watchdog. Zero values mean the queue is not
// instrumented.
func (q *eventQueue) LastTimes() (pushNs, popNs int64) {
	return q.lastPushNs.Load(), q.lastPopNs.Load()
}

// QueueCounters is one consistent observation of a queue's books.
type QueueCounters struct {
	Ingested int64
	Scored   int64
	Dropped  int64
	Depth    int
}

// Counters returns the queue's books as one atomic observation: at every
// instant Ingested == Scored + Dropped + Depth.
func (q *eventQueue) Counters() QueueCounters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueCounters{Ingested: q.ingested, Scored: q.scored, Dropped: q.dropped, Depth: q.n}
}

// Depth reports the current queue occupancy.
func (q *eventQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
