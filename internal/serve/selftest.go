package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/perturb"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// SelftestOptions configures the loopback load generator.
type SelftestOptions struct {
	// Cfg and Learned as in Options.
	Cfg     core.Config
	Learned *core.Learned
	// Clients is the number of concurrent loopback streams (default 4).
	Clients int
	// Duration is each client's simulated horizon (default 30s of trace
	// time; the wall time is however fast the wire and the model go).
	Duration time.Duration
	// SeedBase seeds client i with SeedBase+i (default 100).
	SeedBase int64
	// Factor, when > 1, perturbs each client's pipeline periodically so
	// the streams actually contain anomalies to record.
	Factor float64
	// QueueLen, Backpressure, Sinks, Log as in Options.
	QueueLen     int
	Backpressure Backpressure
	Sinks        recorder.SinkFactory
	Log          io.Writer
}

// ClientReport is one loopback client's send-side accounting.
type ClientReport struct {
	Stream  string `json:"stream"`
	Events  int64  `json:"events"`
	Windows int64  `json:"windows"`
}

// SelftestReport is the end-to-end result: send-side counts, the admin
// /stats view fetched over real HTTP, and the per-stream finals.
type SelftestReport struct {
	Clients     int            `json:"clients"`
	WallS       float64        `json:"wall_s"`
	EventsSent  int64          `json:"events_sent"`
	WindowsSent int64          `json:"windows_sent"`
	EventsPerS  float64        `json:"events_per_s"`
	WindowsPerS float64        `json:"windows_per_s"`
	Stats       StatsReport    `json:"stats"`
	PerClient   []ClientReport `json:"per_client"`
	Results     []StreamResult `json:"results"`
}

// Selftest starts a server on loopback, fans opts.Clients simulated
// mediasim traces through real TCP sockets, waits for every stream to
// drain, fetches /stats over the admin HTTP endpoint, shuts the server
// down and cross-checks the books: the server must have scored exactly
// the windows the clients sent, every stream must have closed cleanly,
// and every sink must have flushed. Any mismatch is an error — this is
// the end-to-end proof that the serving path loses nothing.
func Selftest(ctx context.Context, opts SelftestOptions) (*SelftestReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 30 * time.Second
	}
	if opts.SeedBase == 0 {
		opts.SeedBase = 100
	}

	srv, err := New(Options{
		Cfg:          opts.Cfg,
		Learned:      opts.Learned,
		QueueLen:     opts.QueueLen,
		Backpressure: opts.Backpressure,
		Sinks:        opts.Sinks,
		Log:          opts.Log,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(serveCtx) }()

	start := time.Now()
	reports := make([]ClientReport, opts.Clients)
	errs := make([]error, opts.Clients)
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("selftest-%02d", i)
			rep, err := runClient(srv.TraceAddr().String(), name, opts, opts.SeedBase+int64(i))
			reports[i], errs[i] = rep, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: selftest client %d: %w", i, err)
		}
	}

	adminURL := "http://" + srv.AdminAddr().String()
	if err := awaitClosedStreams(ctx, adminURL, opts.Clients); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	var stats StatsReport
	if err := getJSON(adminURL+"/stats", &stats); err != nil {
		return nil, fmt.Errorf("serve: selftest /stats: %w", err)
	}
	var health healthReport
	if err := getJSON(adminURL+"/healthz", &health); err != nil {
		return nil, fmt.Errorf("serve: selftest /healthz: %w", err)
	}
	if health.Status != "ok" {
		return nil, fmt.Errorf("serve: selftest health %q", health.Status)
	}

	cancel()
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("serve: selftest server: %w", err)
	}

	rep := &SelftestReport{
		Clients:   opts.Clients,
		WallS:     wall.Seconds(),
		Stats:     stats,
		PerClient: reports,
		Results:   srv.Results(),
	}
	for _, c := range reports {
		rep.EventsSent += c.Events
		rep.WindowsSent += c.Windows
	}
	if wall > 0 {
		rep.EventsPerS = float64(rep.EventsSent) / wall.Seconds()
		rep.WindowsPerS = float64(rep.WindowsSent) / wall.Seconds()
	}

	// The cross-check: nothing sent may be missing from the books. Under
	// DropOldest, configured-and-counted drops legitimately lower the
	// scored window count — the books must still balance to "not more
	// than sent, and short only when drops are on record".
	if opts.Backpressure == DropOldest && stats.DroppedEvents > 0 {
		if stats.Windows > rep.WindowsSent {
			return rep, fmt.Errorf("serve: selftest scored %d windows > %d sent",
				stats.Windows, rep.WindowsSent)
		}
	} else if stats.Windows != rep.WindowsSent {
		return rep, fmt.Errorf("serve: selftest scored %d windows, clients sent %d",
			stats.Windows, rep.WindowsSent)
	}
	if stats.StreamsClosed != opts.Clients || stats.StreamsLive != 0 {
		return rep, fmt.Errorf("serve: selftest streams closed=%d live=%d, want %d/0",
			stats.StreamsClosed, stats.StreamsLive, opts.Clients)
	}
	byStream := make(map[string]ClientReport, len(reports))
	for _, c := range reports {
		byStream[c.Stream] = c
	}
	for _, res := range rep.Results {
		c, ok := byStream[res.ID]
		if !ok {
			return rep, fmt.Errorf("serve: selftest unexpected stream %q", res.ID)
		}
		if !res.Clean {
			return rep, fmt.Errorf("serve: selftest stream %q did not close cleanly: %s", res.ID, res.Err)
		}
		if res.DroppedEvents > 0 && opts.Backpressure == DropOldest {
			if int64(res.Windows) > c.Windows {
				return rep, fmt.Errorf("serve: selftest stream %q scored %d windows > %d sent",
					res.ID, res.Windows, c.Windows)
			}
		} else if int64(res.Windows) != c.Windows {
			return rep, fmt.Errorf("serve: selftest stream %q scored %d windows, client sent %d",
				res.ID, res.Windows, c.Windows)
		}
	}
	return rep, nil
}

// runClient streams one simulated pipeline run to the server, counting
// events and (via a local windower identical to the server's) the windows
// the server must end up scoring.
func runClient(addr, name string, opts SelftestOptions, seed int64) (ClientReport, error) {
	rep := ClientReport{Stream: name}
	sc := mediasim.DefaultConfig()
	sc.Duration = opts.Duration
	sc.Seed = seed
	if opts.Factor > 1 {
		load, err := perturb.Periodic(opts.Factor, opts.Duration/4, opts.Duration/2,
			opts.Duration/10, opts.Duration)
		if err != nil {
			return rep, err
		}
		sc.Load = load
	}
	sim, err := mediasim.New(sc)
	if err != nil {
		return rep, err
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriter(conn, name)
	if err != nil {
		return rep, err
	}

	// Tee: every event goes to the socket and to a local windower with the
	// exact server-side windowing semantics (window.Stream mirrors
	// Monitor.Run's Add/Drain/Flush loop), so the expected window count is
	// computed, not guessed.
	wdr := opts.Cfg.NewWindower()
	tee := &teeReader{r: sim, w: fw, events: &rep.Events}
	err = window.Stream(tee, wdr, func(window.Window) error {
		rep.Windows++
		return nil
	})
	if err != nil {
		return rep, err
	}
	if err := fw.Close(); err != nil {
		return rep, err
	}
	return rep, nil
}

// teeReader forwards every event it yields to a trace writer (the wire).
type teeReader struct {
	r      interface{ Next() (trace.Event, error) }
	w      *traceio.FrameWriter
	events *int64
}

func (t *teeReader) Next() (trace.Event, error) {
	ev, err := t.r.Next()
	if err != nil {
		return ev, err
	}
	if err := t.w.Write(ev); err != nil {
		return ev, err
	}
	*t.events++
	return ev, nil
}

// awaitClosedStreams polls /stats until every client stream has drained
// and closed, or the context/timeout gives up.
func awaitClosedStreams(ctx context.Context, adminURL string, want int) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var stats StatsReport
		if err := getJSON(adminURL+"/stats", &stats); err == nil {
			if stats.StreamsClosed >= want && stats.StreamsLive == 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: selftest streams did not drain within 60s")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
