package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"enduratrace/internal/alert"
	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/obs"
	"enduratrace/internal/perturb"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// SelftestOptions configures the loopback load generator.
type SelftestOptions struct {
	// Cfg and Learned as in Options (the single-model path).
	Cfg     core.Config
	Learned *core.Learned
	// Models, when non-nil, serves from this registry instead of
	// Cfg/Learned — the multi-model selftest. ClientModels assigns client
	// i the model name ClientModels[i%len(ClientModels)]: an empty string
	// makes that client send a version 1 frame header (no model field, the
	// pre-registry wire format) and be served by the default model; a
	// non-empty name is sent in a version 2 header. Each client's expected
	// window count is computed with its resolved model's windowing config.
	Models       *core.ModelRegistry
	ClientModels []string
	// ReloadMidRun POSTs /reload to the admin endpoint once the server has
	// scored at least one window with clients still streaming, proving a
	// hot swap under load loses and double-counts nothing (the final books
	// are still checked exactly). Requires a reloadable Models registry
	// (core.LoadModelDir).
	ReloadMidRun bool
	// Clients is the number of concurrent loopback streams (default 4).
	Clients int
	// Duration is each client's simulated horizon (default 30s of trace
	// time; the wall time is however fast the wire and the model go).
	Duration time.Duration
	// SeedBase seeds client i with SeedBase+i (default 100).
	SeedBase int64
	// Factor, when > 1, perturbs each client's pipeline periodically so
	// the streams actually contain anomalies to record.
	Factor float64
	// RejectClients adds this many deliberately doomed clients, each naming
	// a model the registry does not hold. They must all be refused at
	// registration, and the selftest asserts the refusals land in
	// StatsReport.StreamsRejected — the books-balance check for the
	// rejection path.
	RejectClients int
	// Anomalies attaches an anomaly store to the server (see
	// Options.Anomalies). The selftest then asserts that every gate trip
	// was persisted (AnomalyIncidents == GateTrips) with zero store errors.
	// The caller owns and closes the store.
	Anomalies *anomalystore.Store
	// Alerts attaches an alerting pipeline (see Options.Alerts). The
	// selftest then drains the dispatch queue once every stream has
	// closed and asserts the delivery books balance (alert.Books.Balanced)
	// — and, with Anomalies also set, that every transition was persisted
	// (AlertTransitions == fired + resolved) with zero store errors. The
	// caller owns and closes the pipeline.
	Alerts *alert.Pipeline
	// QueueLen, Backpressure, Sinks, Logger as in Options.
	QueueLen     int
	Backpressure Backpressure
	Sinks        recorder.SinkFactory
	Logger       *slog.Logger
}

// ClientReport is one loopback client's send-side accounting.
type ClientReport struct {
	Stream string `json:"stream"`
	// Model is the resolved model name the client's stream was served by
	// (the registry default for v1-framed clients); HeaderV is the frame
	// header version the client sent (1 or 2).
	Model   string `json:"model"`
	HeaderV int    `json:"header_v"`
	Events  int64  `json:"events"`
	Windows int64  `json:"windows"`
}

// SelftestReport is the end-to-end result: send-side counts, the admin
// /stats view fetched over real HTTP, and the per-stream finals. In
// multi-model mode the per-model window counts scraped off /metrics and
// the mid-run reload report are included.
type SelftestReport struct {
	Clients        int                `json:"clients"`
	WallS          float64            `json:"wall_s"`
	EventsSent     int64              `json:"events_sent"`
	WindowsSent    int64              `json:"windows_sent"`
	EventsPerS     float64            `json:"events_per_s"`
	WindowsPerS    float64            `json:"windows_per_s"`
	Stats          StatsReport        `json:"stats"`
	PerClient      []ClientReport     `json:"per_client"`
	Results        []StreamResult     `json:"results"`
	MetricsSamples int                `json:"metrics_samples"`
	ModelWindows   map[string]int64   `json:"model_windows,omitempty"`
	Reload         *core.ReloadReport `json:"reload,omitempty"`
	// Event→decision latency over every event scored, from the server's
	// e2e pipeline histograms (all models merged). EventsObserved is that
	// histogram's total count — with Block backpressure it must equal
	// EventsSent, the proof that latency accounting loses no event.
	EventsObserved uint64  `json:"events_observed"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	LatencyP999Ms  float64 `json:"latency_p999_ms"`
	// Alerts is the alerting pipeline's final ledger, set when
	// SelftestOptions.Alerts attached one (asserted balanced).
	Alerts *alert.Books `json:"alerts,omitempty"`
}

// Selftest starts a server on loopback, fans opts.Clients simulated
// mediasim traces through real TCP sockets, waits for every stream to
// drain, fetches /stats over the admin HTTP endpoint, shuts the server
// down and cross-checks the books: the server must have scored exactly
// the windows the clients sent, every stream must have closed cleanly,
// and every sink must have flushed. Any mismatch is an error — this is
// the end-to-end proof that the serving path loses nothing.
func Selftest(ctx context.Context, opts SelftestOptions) (*SelftestReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 30 * time.Second
	}
	if opts.SeedBase == 0 {
		opts.SeedBase = 100
	}

	srv, err := New(Options{
		Models:       opts.Models,
		Cfg:          opts.Cfg,
		Learned:      opts.Learned,
		QueueLen:     opts.QueueLen,
		Backpressure: opts.Backpressure,
		Sinks:        opts.Sinks,
		Anomalies:    opts.Anomalies,
		Alerts:       opts.Alerts,
		Logger:       opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(serveCtx) }()
	adminURL := "http://" + srv.AdminAddr().String()

	// Resolve each client's model up front: the client needs the model's
	// windowing config to predict the exact window count the server must
	// score, and the resolved name to assert the per-model /metrics rows.
	clientModel := make([]string, opts.Clients) // requested (may be "")
	clientResolved := make([]string, opts.Clients)
	clientCfg := make([]core.Config, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		if len(opts.ClientModels) > 0 {
			clientModel[i] = opts.ClientModels[i%len(opts.ClientModels)]
		}
		nm, err := srv.Models().Resolve(clientModel[i])
		if err != nil {
			return nil, fmt.Errorf("serve: selftest client %d: %w", i, err)
		}
		clientResolved[i], clientCfg[i] = nm.Name, nm.Cfg
	}

	// The reload-under-load choreography: every client sends the first
	// half of its trace, flushes, and parks on the gate; with the whole
	// fleet provably mid-stream the prober POSTs /reload, then opens the
	// gate and the clients send their second halves — so the swap happens
	// with every stream live and in flight. The final books checks below
	// then prove it dropped and double-counted nothing.
	var gate chan struct{}
	var reload *core.ReloadReport
	reloadErr := make(chan error, 1)
	if opts.ReloadMidRun {
		gate = make(chan struct{})
		go func() {
			defer close(gate)
			deadline := obs.Now() + (60 * time.Second).Nanoseconds()
			for {
				var stats StatsReport
				if err := getJSON(adminURL+"/stats", &stats); err == nil &&
					stats.Windows > 0 && stats.StreamsLive == opts.Clients {
					break
				}
				if obs.Now() > deadline {
					reloadErr <- fmt.Errorf("serve: selftest reload: server never under load")
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			var rep core.ReloadReport
			if err := postJSON(adminURL+"/reload", &rep); err != nil {
				reloadErr <- fmt.Errorf("serve: selftest POST /reload: %w", err)
				return
			}
			reload = &rep
			reloadErr <- nil
		}()
	} else {
		reloadErr <- nil
	}

	// The doomed clients run first: each names a model that cannot exist,
	// must be refused at registration, and must observe the refusal as the
	// server closing the connection. Their count is asserted against
	// StatsReport.StreamsRejected after the run — a rejection the books
	// don't show is exactly the accounting bug the reject path had.
	for i := 0; i < opts.RejectClients; i++ {
		if err := runRejectClient(srv.TraceAddr().String(), fmt.Sprintf("selftest-reject-%02d", i)); err != nil {
			return nil, fmt.Errorf("serve: selftest reject client %d: %w", i, err)
		}
	}

	start := obs.Now()
	reports := make([]ClientReport, opts.Clients)
	errs := make([]error, opts.Clients)
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("selftest-%02d", i)
			rep, err := runClient(srv.TraceAddr().String(), name, clientCfg[i], clientModel[i], opts, opts.SeedBase+int64(i), gate)
			rep.Model = clientResolved[i]
			reports[i], errs[i] = rep, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: selftest client %d: %w", i, err)
		}
	}
	if err := <-reloadErr; err != nil {
		return nil, err
	}

	if err := awaitClosedStreams(ctx, adminURL, opts.Clients); err != nil {
		return nil, err
	}
	wall := time.Duration(obs.Now() - start)

	var stats StatsReport
	if err := getJSON(adminURL+"/stats", &stats); err != nil {
		return nil, fmt.Errorf("serve: selftest /stats: %w", err)
	}
	var health healthReport
	if err := getJSON(adminURL+"/healthz", &health); err != nil {
		return nil, fmt.Errorf("serve: selftest /healthz: %w", err)
	}
	if health.Status != "ok" {
		return nil, fmt.Errorf("serve: selftest health %q", health.Status)
	}
	// Scrape /metrics over real HTTP with every stream folded into the
	// per-model totals: the body must parse as Prometheus text, and the
	// per-model window rows are cross-checked against the send-side books
	// below.
	metricsBody, err := getBody(adminURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("serve: selftest /metrics: %w", err)
	}
	nSamples, err := ValidatePrometheusText(metricsBody)
	if err != nil {
		return nil, fmt.Errorf("serve: selftest /metrics is not valid Prometheus text: %w", err)
	}
	modelWindows, err := scrapeModelWindows(metricsBody)
	if err != nil {
		return nil, fmt.Errorf("serve: selftest /metrics: %w", err)
	}
	// Merge every model's e2e histogram for the latency report. All
	// streams have drained and closed, so the snapshot is final.
	var e2e obs.Snapshot
	for _, p := range srv.pipelines() {
		e2e.Merge(p.E2E.Snapshot())
	}

	cancel()
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("serve: selftest server: %w", err)
	}

	rep := &SelftestReport{
		Clients:        opts.Clients,
		WallS:          wall.Seconds(),
		Stats:          stats,
		PerClient:      reports,
		Results:        srv.Results(),
		MetricsSamples: nSamples,
		ModelWindows:   modelWindows,
		Reload:         reload,
	}
	for _, c := range reports {
		rep.EventsSent += c.Events
		rep.WindowsSent += c.Windows
	}
	if wall > 0 {
		rep.EventsPerS = float64(rep.EventsSent) / wall.Seconds()
		rep.WindowsPerS = float64(rep.WindowsSent) / wall.Seconds()
	}
	rep.EventsObserved = e2e.Count()
	rep.LatencyP50Ms = e2e.Quantile(0.50) * 1e3
	rep.LatencyP99Ms = e2e.Quantile(0.99) * 1e3
	rep.LatencyP999Ms = e2e.Quantile(0.999) * 1e3

	// Latency books: the e2e histogram observes each event once, at the
	// decision on its window — its count must equal the events sent (short
	// only by counted drops under DropOldest).
	if opts.Backpressure == DropOldest && stats.DroppedEvents > 0 {
		if rep.EventsObserved > uint64(rep.EventsSent) {
			return rep, fmt.Errorf("serve: selftest e2e histogram observed %d events > %d sent",
				rep.EventsObserved, rep.EventsSent)
		}
	} else if rep.EventsObserved != uint64(rep.EventsSent) {
		return rep, fmt.Errorf("serve: selftest e2e histogram observed %d events, clients sent %d",
			rep.EventsObserved, rep.EventsSent)
	}

	// The cross-check: nothing sent may be missing from the books. Under
	// DropOldest, configured-and-counted drops legitimately lower the
	// scored window count — the books must still balance to "not more
	// than sent, and short only when drops are on record".
	if opts.Backpressure == DropOldest && stats.DroppedEvents > 0 {
		if stats.Windows > rep.WindowsSent {
			return rep, fmt.Errorf("serve: selftest scored %d windows > %d sent",
				stats.Windows, rep.WindowsSent)
		}
	} else if stats.Windows != rep.WindowsSent {
		return rep, fmt.Errorf("serve: selftest scored %d windows, clients sent %d",
			stats.Windows, rep.WindowsSent)
	}
	if stats.StreamsClosed != opts.Clients || stats.StreamsLive != 0 {
		return rep, fmt.Errorf("serve: selftest streams closed=%d live=%d, want %d/0",
			stats.StreamsClosed, stats.StreamsLive, opts.Clients)
	}
	byStream := make(map[string]ClientReport, len(reports))
	for _, c := range reports {
		byStream[c.Stream] = c
	}
	for _, res := range rep.Results {
		c, ok := byStream[res.ID]
		if !ok {
			return rep, fmt.Errorf("serve: selftest unexpected stream %q", res.ID)
		}
		if res.Model != c.Model {
			return rep, fmt.Errorf("serve: selftest stream %q served by model %q, client resolved %q",
				res.ID, res.Model, c.Model)
		}
		if !res.Clean {
			return rep, fmt.Errorf("serve: selftest stream %q did not close cleanly: %s", res.ID, res.Err)
		}
		if res.DroppedEvents > 0 && opts.Backpressure == DropOldest {
			if int64(res.Windows) > c.Windows {
				return rep, fmt.Errorf("serve: selftest stream %q scored %d windows > %d sent",
					res.ID, res.Windows, c.Windows)
			}
		} else if int64(res.Windows) != c.Windows {
			return rep, fmt.Errorf("serve: selftest stream %q scored %d windows, client sent %d",
				res.ID, res.Windows, c.Windows)
		}
	}

	// Per-model books off the /metrics labels: each model's cumulative
	// window row must equal the windows sent by the clients resolved to
	// it (same drop-oldest caveat as the aggregate check above).
	wantByModel := make(map[string]int64)
	for _, c := range reports {
		wantByModel[c.Model] += c.Windows
	}
	for model, want := range wantByModel {
		got, ok := modelWindows[model]
		if !ok {
			return rep, fmt.Errorf("serve: selftest /metrics has no windows_total row for model %q", model)
		}
		if opts.Backpressure == DropOldest && stats.DroppedEvents > 0 {
			if got > want {
				return rep, fmt.Errorf("serve: selftest model %q scored %d windows > %d sent", model, got, want)
			}
		} else if got != want {
			return rep, fmt.Errorf("serve: selftest model %q scored %d windows, clients sent %d", model, got, want)
		}
	}
	if opts.ReloadMidRun && (reload == nil || reload.Generation < 1) {
		return rep, fmt.Errorf("serve: selftest reload-under-load did not record a successful reload")
	}

	// Rejection books: every doomed client must be on record, as an
	// unknown-model refusal, and nothing else may have been refused.
	if stats.StreamsRejected != int64(opts.RejectClients) ||
		stats.RejectedUnknownModel != int64(opts.RejectClients) {
		return rep, fmt.Errorf("serve: selftest rejected %d streams (%d unknown-model), want %d",
			stats.StreamsRejected, stats.RejectedUnknownModel, opts.RejectClients)
	}

	// Alert books: with a pipeline attached, every stream has closed (so
	// the state machines are quiet), the dispatch queue must drain, and
	// the delivery ledger must balance — fired + resolved == deduped +
	// rate-limited + queue-dropped + enqueued, with every enqueued
	// notification in exactly one per-sink bucket.
	if opts.Alerts != nil {
		if !opts.Alerts.Drain(10 * time.Second) {
			return rep, fmt.Errorf("serve: selftest alert queue did not drain")
		}
		b := opts.Alerts.Books()
		rep.Alerts = &b
		if err := b.Balanced(); err != nil {
			return rep, fmt.Errorf("serve: selftest %w", err)
		}
		if stats.AlertsFiring != 0 {
			return rep, fmt.Errorf("serve: selftest %d streams still firing after close", stats.AlertsFiring)
		}
		if opts.Anomalies != nil {
			if stats.AlertStoreErrors != 0 {
				return rep, fmt.Errorf("serve: selftest alert store reported %d append errors",
					stats.AlertStoreErrors)
			}
			if want := b.Fired + b.Resolved; stats.AlertTransitions != want {
				return rep, fmt.Errorf("serve: selftest persisted %d alert transitions, pipeline emitted %d",
					stats.AlertTransitions, want)
			}
		}
	}

	// Anomaly store books: with a store attached, every gate trip must
	// have been persisted as an incident and no append may have failed.
	// Alert transitions (window-free records) ride the same store.
	if opts.Anomalies != nil {
		if stats.AnomalyStoreErrors != 0 {
			return rep, fmt.Errorf("serve: selftest anomaly store reported %d append errors",
				stats.AnomalyStoreErrors)
		}
		if stats.AnomalyIncidents != stats.GateTrips {
			return rep, fmt.Errorf("serve: selftest persisted %d incidents, server tripped %d gates",
				stats.AnomalyIncidents, stats.GateTrips)
		}
		if st := opts.Anomalies.Stats(); st.Appended != stats.AnomalyIncidents+stats.AlertTransitions {
			return rep, fmt.Errorf("serve: selftest store holds %d appended records, server counted %d incidents + %d alert transitions",
				st.Appended, stats.AnomalyIncidents, stats.AlertTransitions)
		}
	}
	return rep, nil
}

// runRejectClient dials the server, names a model no registry holds, and
// waits for the server to refuse the stream by closing the connection (the
// read unblocks with EOF). The rejection counter is bumped before the
// server closes the socket, so the caller may assert it immediately.
func runRejectClient(addr, name string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriterModel(conn, name, "selftest-no-such-model")
	if err != nil {
		return err
	}
	if err := fw.Flush(); err != nil { // push the header to the server
		return err
	}
	//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("server did not close the rejected stream (read err %v)", err)
	}
	return nil
}

// runClient streams one simulated pipeline run to the server, counting
// events and (via a local windower identical to the server's) the windows
// the server must end up scoring. model selects the frame-header version:
// "" sends a v1 header (served by the default model), a name sends v2.
// A non-nil gate makes the client flush and park at its trace midpoint
// until the gate closes — the reload-under-load choreography.
func runClient(addr, name string, cfg core.Config, model string, opts SelftestOptions, seed int64, gate <-chan struct{}) (ClientReport, error) {
	rep := ClientReport{Stream: name, HeaderV: 1}
	if model != "" {
		rep.HeaderV = 2
	}
	sc := mediasim.DefaultConfig()
	sc.Duration = opts.Duration
	sc.Seed = seed
	if opts.Factor > 1 {
		load, err := perturb.Periodic(opts.Factor, opts.Duration/4, opts.Duration/2,
			opts.Duration/10, opts.Duration)
		if err != nil {
			return rep, err
		}
		sc.Load = load
	}
	sim, err := mediasim.New(sc)
	if err != nil {
		return rep, err
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriterModel(conn, name, model)
	if err != nil {
		return rep, err
	}

	// Tee: every event goes to the socket and to a local windower with the
	// exact server-side windowing semantics (window.Stream mirrors
	// Monitor.Run's Add/Drain/Flush loop), so the expected window count is
	// computed, not guessed.
	wdr := cfg.NewWindower()
	tee := &teeReader{r: sim, w: fw, events: &rep.Events, gate: gate, pauseAt: opts.Duration / 2}
	err = window.Stream(tee, wdr, func(window.Window) error {
		rep.Windows++
		return nil
	})
	if err != nil {
		return rep, err
	}
	if err := fw.Close(); err != nil {
		return rep, err
	}
	return rep, nil
}

// teeReader forwards every event it yields to a trace writer (the wire).
// With a gate set, the first event at or past pauseAt flushes the wire
// and blocks until the gate closes, leaving the stream live and half-sent.
type teeReader struct {
	r       interface{ Next() (trace.Event, error) }
	w       *traceio.FrameWriter
	events  *int64
	gate    <-chan struct{}
	pauseAt time.Duration
	paused  bool
}

func (t *teeReader) Next() (trace.Event, error) {
	ev, err := t.r.Next()
	if err != nil {
		return ev, err
	}
	if t.gate != nil && !t.paused && ev.TS >= t.pauseAt {
		t.paused = true
		if err := t.w.Flush(); err != nil {
			return ev, err
		}
		<-t.gate
	}
	if err := t.w.Write(ev); err != nil {
		return ev, err
	}
	*t.events++
	return ev, nil
}

// awaitClosedStreams polls /stats until every client stream has drained
// and closed, or the context/timeout gives up.
func awaitClosedStreams(ctx context.Context, adminURL string, want int) error {
	deadline := obs.Now() + (60 * time.Second).Nanoseconds()
	for {
		var stats StatsReport
		if err := getJSON(adminURL+"/stats", &stats); err == nil {
			if stats.StreamsClosed >= want && stats.StreamsLive == 0 {
				return nil
			}
		}
		if obs.Now() > deadline {
			return fmt.Errorf("serve: selftest streams did not drain within 60s")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// postJSON POSTs an empty body and decodes the JSON response.
func postJSON(url string, v any) error {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// getBody fetches a URL's body.
func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// scrapeModelWindows extracts the enduratrace_windows_total{model="X"}
// samples from a /metrics body.
func scrapeModelWindows(body []byte) (map[string]int64, error) {
	out := make(map[string]int64)
	const prefix = `enduratrace_windows_total{model="`
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		end := strings.Index(rest, `"`)
		if end < 0 {
			return nil, fmt.Errorf("malformed metric line %q", line)
		}
		model := rest[:end]
		fields := strings.Fields(rest[end+2:])
		if len(fields) == 0 {
			return nil, fmt.Errorf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metric value in %q: %w", line, err)
		}
		out[model] = int64(v)
	}
	return out, nil
}
