package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"enduratrace/internal/alert"
	"enduratrace/internal/obs"
)

// Prometheus text exposition (version 0.0.4), hand-rolled: the format is
// a dozen lines of escaping rules, which is cheaper than a client library
// dependency and keeps the daemon's admin surface self-contained. The
// /stats JSON endpoint is unchanged; /metrics is the scrape-friendly view
// with per-model and per-stream labels.

// metricsWriter accumulates one scrape. Families are emitted in the order
// first announced; samples within a family in the order added (callers
// sort their label sets for deterministic scrapes).
type metricsWriter struct {
	w   *bufio.Writer
	err error
}

func newMetricsWriter(w io.Writer) *metricsWriter {
	return &metricsWriter{w: bufio.NewWriter(w)}
}

// family emits the HELP/TYPE header for one metric family.
func (m *metricsWriter) family(name, typ, help string) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels are (key, value) pairs.
func (m *metricsWriter) sample(name string, value float64, labels ...string) {
	if m.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabelValue(labels[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	sb.WriteByte('\n')
	_, m.err = m.w.WriteString(sb.String())
}

// histogram emits one Prometheus histogram: cumulative _bucket samples
// over the obs bucket bounds (ending at le="+Inf"), then _sum and _count.
// The snapshot is taken once, so within one scrape the +Inf bucket always
// equals _count whatever concurrent Observes do.
func (m *metricsWriter) histogram(name string, snap obs.Snapshot, labels ...string) {
	bounds := obs.Bounds()
	var cum uint64
	for i, b := range bounds {
		cum += snap.Counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		m.sample(name+"_bucket", float64(cum), append(append([]string{}, labels...), "le", le)...)
	}
	cum += snap.Counts[len(bounds)] // overflow bin
	m.sample(name+"_bucket", float64(cum), append(append([]string{}, labels...), "le", "+Inf")...)
	m.sample(name+"_sum", snap.SumSeconds(), labels...)
	m.sample(name+"_count", float64(cum), labels...)
}

func (m *metricsWriter) flush() error {
	if m.err != nil {
		return m.err
	}
	return m.w.Flush()
}

// escapeLabelValue applies the exposition-format label escapes (backslash,
// double quote, newline).
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// WriteMetrics writes the server's Prometheus scrape: serving state plus
// the monitoring counters — events, windows, gate trips, anomalies,
// drops, queue depth — cumulatively per model and individually per live
// stream, every sample labelled with the model that scored it.
func (s *Server) WriteMetrics(w io.Writer) error {
	m := newMetricsWriter(w)

	m.family("enduratrace_uptime_seconds", "gauge", "Seconds since the serving daemon started.")
	m.sample("enduratrace_uptime_seconds", time.Since(s.start).Seconds())

	m.family("enduratrace_model_reloads_total", "counter", "Successful model registry hot reloads.")
	m.sample("enduratrace_model_reloads_total", float64(s.models.Generation()))

	m.family("enduratrace_streams_rejected_total", "counter", "Streams refused at registration, by reason.")
	m.sample("enduratrace_streams_rejected_total", float64(s.rejUnknown.Load()), "reason", "unknown_model")
	m.sample("enduratrace_streams_rejected_total", float64(s.rejRegister.Load()), "reason", "register")
	m.sample("enduratrace_streams_rejected_total", float64(s.rejSink.Load()), "reason", "sink")

	if store := s.opts.Anomalies; store != nil {
		st := store.Stats()
		m.family("enduratrace_anomaly_incidents_total", "counter", "Gate trips persisted to the anomaly store since startup.")
		m.sample("enduratrace_anomaly_incidents_total", float64(s.anomIncidents.Load()))
		m.family("enduratrace_anomaly_store_errors_total", "counter", "Anomaly store appends that failed (streams continue).")
		m.sample("enduratrace_anomaly_store_errors_total", float64(s.anomStoreErrs.Load()))
		m.family("enduratrace_anomaly_store_segments", "gauge", "Segment files in the anomaly store (sealed + active).")
		m.sample("enduratrace_anomaly_store_segments", float64(st.Segments))
		m.family("enduratrace_anomaly_store_bytes", "gauge", "Total size of the anomaly store's segment files.")
		m.sample("enduratrace_anomaly_store_bytes", float64(st.Bytes))
	}

	// Alerting ledger: every state-machine transition lands in exactly one
	// pre-queue bucket (deduped / rate-limited / queue-dropped / enqueued),
	// every processed notification in one per-sink bucket — the same books
	// Books.Balanced verifies, scraped.
	if ap := s.opts.Alerts; ap != nil {
		b := ap.Books()
		perAlertModel := []struct {
			name, help string
			value      func(mb alert.ModelBooks) int64
		}{
			{"enduratrace_alerts_fired_total", "Alert incidents fired (pending crossed min-trips), per model.",
				func(mb alert.ModelBooks) int64 { return mb.Fired }},
			{"enduratrace_alerts_resolved_total", "Alert incidents resolved (clear held past clear-after), per model.",
				func(mb alert.ModelBooks) int64 { return mb.Resolved }},
			{"enduratrace_alerts_deduped_total", "Alert notifications suppressed by the content dedup window, per model.",
				func(mb alert.ModelBooks) int64 { return mb.Deduped }},
		}
		for _, fam := range perAlertModel {
			m.family(fam.name, "counter", fam.help)
			for _, mb := range b.Models {
				m.sample(fam.name, float64(fam.value(mb)), "model", mb.Model)
			}
		}
		perSink := []struct {
			name, help string
			value      func(sb alert.SinkBooks) int64
		}{
			{"enduratrace_alerts_delivered_total", "Alert notifications delivered, per sink.",
				func(sb alert.SinkBooks) int64 { return sb.Delivered }},
			{"enduratrace_alerts_rate_limited_total", "Alert notifications refused by a per-sink token bucket.",
				func(sb alert.SinkBooks) int64 { return sb.RateLimited }},
			{"enduratrace_alerts_delivery_errors_total", "Alert deliveries that failed after the sink's own retries.",
				func(sb alert.SinkBooks) int64 { return sb.Errors }},
		}
		for _, fam := range perSink {
			m.family(fam.name, "counter", fam.help)
			for _, sb := range b.Sinks {
				m.sample(fam.name, float64(fam.value(sb)), "sink", sb.Name)
			}
		}
		m.family("enduratrace_alerts_rate_limited_global_total", "counter",
			"Alert notifications refused by the global token bucket, before the queue.")
		m.sample("enduratrace_alerts_rate_limited_global_total", float64(b.RateLimitedGlobal))
		m.family("enduratrace_alerts_queue_dropped_total", "counter",
			"Alert notifications dropped by a full dispatch queue (scoring never waits).")
		m.sample("enduratrace_alerts_queue_dropped_total", float64(b.QueueDropped))
		m.family("enduratrace_alerts_enqueued_total", "counter",
			"Alert notifications handed to the dispatcher.")
		m.sample("enduratrace_alerts_enqueued_total", float64(b.Enqueued))
		m.family("enduratrace_alerts_queue_depth", "gauge",
			"Alert notifications queued or in delivery.")
		m.sample("enduratrace_alerts_queue_depth", float64(ap.QueueDepth()))
		m.family("enduratrace_alerts_firing", "gauge",
			"Streams with an open (firing) alert incident.")
		m.sample("enduratrace_alerts_firing", float64(ap.FiringStreams()))
		m.family("enduratrace_alert_transitions_persisted_total", "counter",
			"Alert transitions persisted to the anomaly store.")
		m.sample("enduratrace_alert_transitions_persisted_total", float64(s.alertPersisted.Load()))
		m.family("enduratrace_alert_store_errors_total", "counter",
			"Alert-transition store appends that failed (alerting continues).")
		m.sample("enduratrace_alert_store_errors_total", float64(s.alertPersistErrs.Load()))
	}

	// Registry contents: point counts, flagging the default model.
	names := s.models.Names()
	defaultName := s.models.DefaultName()
	m.family("enduratrace_model_points", "gauge", "Reference points in each registered model (1-labelled default).")
	for _, name := range names {
		nm, err := s.models.Resolve(name)
		if err != nil {
			continue // dropped by a concurrent reload
		}
		isDefault := "0"
		if name == defaultName {
			isDefault = "1"
		}
		m.sample("enduratrace_model_points", float64(nm.Learned.Model.Len()),
			"model", name, "default", isDefault)
	}

	// Cumulative per-model monitoring counters (closed finals + live).
	byModel := s.reg.TotalsByModel()
	modelNames := make([]string, 0, len(byModel))
	for name := range byModel {
		modelNames = append(modelNames, name)
	}
	// Byte/drop totals live server-side; fold closed + live per model.
	ioBy := make(map[string]ioTotals, len(byModel))
	type liveRow struct {
		id    string
		model string
		qc    QueueCounters
	}
	var live []liveRow
	s.mu.Lock()
	for name, t := range s.closedBy {
		ioBy[name] = t
	}
	for id, st := range s.streams {
		name := st.h.Model().Name
		qc := st.q.Counters()
		ioBy[name] = ioBy[name].add(ioTotals{
			fullBytes:  st.fullBytes.Load(),
			recBytes:   st.sink.bytes.Load(),
			recWindows: st.sink.windows.Load(),
			dropped:    qc.Dropped,
		})
		live = append(live, liveRow{id: id, model: name, qc: qc})
	}
	s.mu.Unlock()
	for name := range ioBy {
		if _, ok := byModel[name]; !ok {
			modelNames = append(modelNames, name)
		}
	}
	sort.Strings(modelNames)
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })

	perModel := []struct {
		name, typ, help string
		value           func(name string) float64
	}{
		{"enduratrace_windows_total", "counter", "Windows scored, cumulative over closed and live streams.",
			func(n string) float64 { return float64(byModel[n].Windows) }},
		{"enduratrace_gate_trips_total", "counter", "Gate trips (LOF computations), cumulative.",
			func(n string) float64 { return float64(byModel[n].GateTrips) }},
		{"enduratrace_lof_calls_total", "counter", "LOF scorings performed, cumulative.",
			func(n string) float64 { return float64(byModel[n].LOFCalls) }},
		{"enduratrace_anomalies_total", "counter", "Windows flagged anomalous (outliers), cumulative.",
			func(n string) float64 { return float64(byModel[n].Anomalies) }},
		{"enduratrace_events_dropped_total", "counter", "Events shed by drop-oldest backpressure, cumulative.",
			func(n string) float64 { return float64(ioBy[n].dropped) }},
		{"enduratrace_ingest_bytes_total", "counter", "Encoded bytes of every event received, cumulative.",
			func(n string) float64 { return float64(ioBy[n].fullBytes) }},
		{"enduratrace_recorded_windows_total", "counter", "Windows recorded to sinks, cumulative.",
			func(n string) float64 { return float64(ioBy[n].recWindows) }},
		{"enduratrace_recorded_bytes_total", "counter", "Bytes recorded to sinks, cumulative.",
			func(n string) float64 { return float64(ioBy[n].recBytes) }},
		{"enduratrace_streams_live", "gauge", "Streams currently being served.",
			func(n string) float64 { return float64(byModel[n].StreamsLive) }},
		{"enduratrace_streams_closed_total", "counter", "Streams served to completion.",
			func(n string) float64 { return float64(byModel[n].StreamsClosed) }},
	}
	for _, fam := range perModel {
		m.family(fam.name, fam.typ, fam.help)
		for _, name := range modelNames {
			m.sample(fam.name, fam.value(name), "model", name)
		}
	}

	// Per-stream live counters. Registry snapshot keyed by id for the
	// monitor-side numbers; queue/byte counters from the rows above.
	statuses := s.reg.Streams()
	counters := make(map[string]struct {
		windows, trips, anoms float64
	}, len(statuses))
	for _, st := range statuses {
		counters[st.ID] = struct{ windows, trips, anoms float64 }{
			float64(st.Counters.Windows), float64(st.Counters.GateTrips), float64(st.Counters.Anomalies),
		}
	}
	perStream := []struct {
		name, typ, help string
		value           func(r liveRow) (float64, bool)
	}{
		{"enduratrace_stream_windows_total", "counter", "Windows scored on this live stream.",
			func(r liveRow) (float64, bool) { c, ok := counters[r.id]; return c.windows, ok }},
		{"enduratrace_stream_gate_trips_total", "counter", "Gate trips on this live stream.",
			func(r liveRow) (float64, bool) { c, ok := counters[r.id]; return c.trips, ok }},
		{"enduratrace_stream_anomalies_total", "counter", "Anomalous windows on this live stream.",
			func(r liveRow) (float64, bool) { c, ok := counters[r.id]; return c.anoms, ok }},
		{"enduratrace_stream_events_ingested_total", "counter", "Events decoded off this stream's socket.",
			func(r liveRow) (float64, bool) { return float64(r.qc.Ingested), true }},
		{"enduratrace_stream_events_scored_total", "counter", "Events consumed by this stream's monitor.",
			func(r liveRow) (float64, bool) { return float64(r.qc.Scored), true }},
		{"enduratrace_stream_events_dropped_total", "counter", "Events shed from this stream's queue.",
			func(r liveRow) (float64, bool) { return float64(r.qc.Dropped), true }},
		{"enduratrace_stream_queue_depth", "gauge", "Events queued between ingest and scoring.",
			func(r liveRow) (float64, bool) { return float64(r.qc.Depth), true }},
	}
	for _, fam := range perStream {
		m.family(fam.name, fam.typ, fam.help)
		for _, r := range live {
			v, ok := fam.value(r)
			if !ok {
				continue // stream closed between the two snapshots
			}
			m.sample(fam.name, v, "stream", r.id, "model", r.model)
		}
	}

	// Stall watchdog: live streams holding queued events whose scorer has
	// made no progress for Options.StallAfter.
	stalled := 0
	for _, v := range s.Streams() {
		if v.Stalled {
			stalled++
		}
	}
	m.family("enduratrace_streams_stalled", "gauge",
		"Live streams with queued events and no scoring progress for the stall threshold.")
	m.sample("enduratrace_streams_stalled", float64(stalled))

	// Pipeline latency histograms, per model: where each event's time goes
	// on its way from the socket to a decision. decode includes socket
	// wait (the frame read blocks on the network); e2e spans arrival
	// (decode complete) to the decision on the event's window.
	pipes := s.pipelines()
	pipeNames := make([]string, 0, len(pipes))
	for name := range pipes {
		pipeNames = append(pipeNames, name)
	}
	sort.Strings(pipeNames)
	stageFams := []struct {
		name, help string
		snap       func(p obs.PipelineSnapshot) obs.Snapshot
	}{
		{"enduratrace_pipeline_decode_seconds", "Per-event frame read + decode time, including socket wait.",
			func(p obs.PipelineSnapshot) obs.Snapshot { return p.Decode }},
		{"enduratrace_pipeline_queue_wait_seconds", "Per-event time in the bounded queue between ingest and scoring.",
			func(p obs.PipelineSnapshot) obs.Snapshot { return p.QueueWait }},
		{"enduratrace_pipeline_score_seconds", "Per-window ProcessWindow (featurize + gate + LOF) time.",
			func(p obs.PipelineSnapshot) obs.Snapshot { return p.Score }},
		{"enduratrace_pipeline_e2e_seconds", "Per-event end-to-end latency from arrival to its window's decision.",
			func(p obs.PipelineSnapshot) obs.Snapshot { return p.E2E }},
	}
	snaps := make(map[string]obs.PipelineSnapshot, len(pipes))
	for _, name := range pipeNames {
		snaps[name] = pipes[name].Snapshot()
	}
	for _, fam := range stageFams {
		m.family(fam.name, "histogram", fam.help)
		for _, name := range pipeNames {
			m.histogram(fam.name, fam.snap(snaps[name]), "model", name)
		}
	}

	// Go runtime health, for correlating latency shifts with GC or
	// goroutine growth.
	rt := obs.ReadRuntime()
	m.family("enduratrace_goroutines", "gauge", "Live goroutines in the daemon process.")
	m.sample("enduratrace_goroutines", float64(rt.Goroutines))
	m.family("enduratrace_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	m.sample("enduratrace_heap_alloc_bytes", float64(rt.HeapAllocBytes))
	m.family("enduratrace_heap_sys_bytes", "gauge", "Bytes of heap obtained from the OS (runtime.MemStats.HeapSys).")
	m.sample("enduratrace_heap_sys_bytes", float64(rt.HeapSysBytes))
	m.family("enduratrace_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	m.sample("enduratrace_gc_pause_seconds_total", float64(rt.GCPauseTotalNs)/1e9)
	m.family("enduratrace_gc_cycles_total", "counter", "Completed GC cycles.")
	m.sample("enduratrace_gc_cycles_total", float64(rt.GCCycles))

	return m.flush()
}

// ValidatePrometheusText parses a text-format exposition and checks it is
// well-formed: every line must be a comment or a `name{labels} value`
// sample with balanced quotes and a numeric value. Families declared
// `# TYPE <name> histogram` are additionally held to the histogram
// invariants, per label set: bucket counts non-decreasing in le, an
// le="+Inf" bucket present and equal to the family's _count sample, and a
// _sum sample present. It returns the number of samples. Used by the
// selftest (and CI's metricslint) to assert /metrics stays scrapeable.
func ValidatePrometheusText(body []byte) (samples int, err error) {
	// One histogram series (a family + one label set minus le).
	type histo struct {
		buckets map[float64]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	histFamilies := make(map[string]bool) // declared `# TYPE x histogram`
	series := make(map[string]*histo)
	get := func(key string) *histo {
		h := series[key]
		if h == nil {
			h = &histo{buckets: make(map[float64]float64)}
			series[key] = h
		}
		return h
	}
	// seriesKey joins a histogram family name with its identifying labels
	// (everything but le), order-normalised.
	seriesKey := func(fam string, labels [][2]string) string {
		kv := make([]string, 0, len(labels))
		for _, l := range labels {
			kv = append(kv, l[0]+"="+l[1])
		}
		sort.Strings(kv)
		return fam + "{" + strings.Join(kv, ",") + "}"
	}

	for i, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" && f[3] == "histogram" {
				histFamilies[f[2]] = true
			}
			continue
		}
		rest := line
		// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
		n := 0
		for n < len(rest) {
			c := rest[n]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(n > 0 && c >= '0' && c <= '9')
			if !ok {
				break
			}
			n++
		}
		if n == 0 {
			return samples, fmt.Errorf("line %d: no metric name in %q", i+1, line)
		}
		name := rest[:n]
		rest = rest[n:]
		var labelStr string
		if strings.HasPrefix(rest, "{") {
			end := -1
			inQuote := false
			for j := 1; j < len(rest); j++ {
				switch {
				case inQuote && rest[j] == '\\':
					j++ // skip escaped char
				case rest[j] == '"':
					inQuote = !inQuote
				case !inQuote && rest[j] == '}':
					end = j
				}
				if end >= 0 {
					break
				}
			}
			if end < 0 {
				return samples, fmt.Errorf("line %d: unterminated label set in %q", i+1, line)
			}
			labelStr = rest[1:end]
			rest = rest[end+1:]
		}
		rest = strings.TrimSpace(rest)
		// Value (possibly followed by a timestamp).
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return samples, fmt.Errorf("line %d: want value [timestamp], got %q", i+1, rest)
		}
		value, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", i+1, fields[0])
		}
		samples++

		// Histogram bookkeeping: route _bucket/_sum/_count samples of
		// declared histogram families into their series.
		fam, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, sfx) && histFamilies[strings.TrimSuffix(name, sfx)] {
				fam, suffix = strings.TrimSuffix(name, sfx), sfx
				break
			}
		}
		if suffix == "" {
			continue
		}
		labels, err := parseLabelPairs(labelStr)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v in %q", i+1, err, line)
		}
		switch suffix {
		case "_bucket":
			var le float64
			hasLE := false
			ident := labels[:0:0]
			for _, l := range labels {
				if l[0] == "le" {
					le, err = strconv.ParseFloat(l[1], 64)
					if err != nil {
						return samples, fmt.Errorf("line %d: bad le %q", i+1, l[1])
					}
					hasLE = true
					continue
				}
				ident = append(ident, l)
			}
			if !hasLE {
				return samples, fmt.Errorf("line %d: histogram bucket without le label in %q", i+1, line)
			}
			h := get(seriesKey(fam, ident))
			if _, dup := h.buckets[le]; dup {
				return samples, fmt.Errorf("line %d: duplicate bucket le=%g for %s", i+1, le, fam)
			}
			h.buckets[le] = value
		case "_sum":
			v := value
			get(seriesKey(fam, labels)).sum = &v
		case "_count":
			v := value
			get(seriesKey(fam, labels)).count = &v
		}
	}

	// Per-series histogram invariants.
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := series[key]
		if len(h.buckets) == 0 {
			return samples, fmt.Errorf("histogram %s has _sum/_count but no buckets", key)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := math.Inf(-1)
		prevCount := 0.0
		for _, le := range les {
			c := h.buckets[le]
			if c < prevCount {
				return samples, fmt.Errorf("histogram %s: bucket le=%g count %g below le=%g count %g (not cumulative)",
					key, le, c, prev, prevCount)
			}
			prev, prevCount = le, c
		}
		inf, ok := h.buckets[math.Inf(1)]
		if !ok {
			return samples, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if h.count == nil {
			return samples, fmt.Errorf("histogram %s has no _count sample", key)
		}
		//lint:ignore floateq histogram _count and the +Inf bucket are integer counters; the invariant is exact
		if *h.count != inf {
			return samples, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", key, *h.count, inf)
		}
		if h.sum == nil {
			return samples, fmt.Errorf("histogram %s has no _sum sample", key)
		}
	}
	return samples, nil
}

// parseLabelPairs parses the inside of a `{...}` label set into (key,
// value) pairs, handling the exposition-format escapes.
func parseLabelPairs(s string) ([][2]string, error) {
	var out [][2]string
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := s[i : i+j]
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		i++
		var sb strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", key)
		}
		out = append(out, [2]string{key, sb.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("junk after label %s", key)
			}
			i++
		}
	}
	return out, nil
}
