package serve

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
)

// twoModelDir learns two distinguishable models ("a" is the shared test
// fixture, "b" a smaller-K variant from a different reference seed),
// writes them into a temp dir and loads them as a reloadable registry
// with "a" as the default.
func twoModelDir(t *testing.T) (dir string, reg *core.ModelRegistry) {
	t.Helper()
	cfgA, learnedA := fixture(t)
	cfgB := cfgA
	cfgB.K = 10
	sc := mediasim.DefaultConfig()
	sc.Duration = 20 * time.Second
	sc.Seed = 77
	sim, err := mediasim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	learnedB, err := core.Learn(cfgB, sim)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if err := core.SaveModelFile(filepath.Join(dir, "a.json"), cfgA, learnedA); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveModelFile(filepath.Join(dir, "b.json"), cfgB, learnedB); err != nil {
		t.Fatal(err)
	}
	reg, err = core.LoadModelDir(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	return dir, reg
}

// TestMultiModelSelftestReloadUnderLoad is the PR's acceptance scenario:
// two models in the registry, v1-framed clients served by the default,
// v2 clients naming model b scored by model b (asserted via the
// per-model /metrics rows inside Selftest), and a POST /reload fired
// while every stream is parked mid-flight — with the final books still
// balancing to the event.
func TestMultiModelSelftestReloadUnderLoad(t *testing.T) {
	_, reg := twoModelDir(t)
	rep, err := Selftest(context.Background(), SelftestOptions{
		Models:       reg,
		ClientModels: []string{"", "b", "a", "b"},
		ReloadMidRun: true,
		Clients:      4,
		Duration:     6 * time.Second,
		Factor:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reload == nil || rep.Reload.Generation != 1 {
		t.Fatalf("reload report %+v, want generation 1", rep.Reload)
	}
	if reg.Generation() != 1 {
		t.Fatalf("registry generation %d after selftest, want 1", reg.Generation())
	}
	// Client 0 sent a v1 header and must have been served by the default.
	byStream := map[string]ClientReport{}
	var wantB int64
	for _, c := range rep.PerClient {
		byStream[c.Stream] = c
		if c.Model == "b" {
			wantB += c.Windows
		}
	}
	c0 := byStream["selftest-00"]
	if c0.HeaderV != 1 || c0.Model != "a" {
		t.Fatalf("v1 client got header v%d model %q, want v1 on default model a", c0.HeaderV, c0.Model)
	}
	c1 := byStream["selftest-01"]
	if c1.HeaderV != 2 || c1.Model != "b" {
		t.Fatalf("model-b client got header v%d model %q", c1.HeaderV, c1.Model)
	}
	// The per-model metrics row for b must carry exactly the b-clients'
	// windows (Selftest already asserted this; re-assert the headline).
	if rep.ModelWindows["b"] != wantB {
		t.Fatalf("metrics model b windows %d, want %d", rep.ModelWindows["b"], wantB)
	}
	if rep.ModelWindows["a"]+rep.ModelWindows["b"] != rep.WindowsSent {
		t.Fatalf("per-model windows %d+%d != %d sent",
			rep.ModelWindows["a"], rep.ModelWindows["b"], rep.WindowsSent)
	}
	// Every stream result carries the model it was scored by.
	seenB := 0
	for _, res := range rep.Results {
		if res.Model == "b" {
			seenB++
		}
	}
	if seenB != 2 {
		t.Fatalf("%d streams served by model b, want 2", seenB)
	}
	if rep.MetricsSamples == 0 {
		t.Fatal("metrics scrape yielded no samples")
	}
}

// TestUnknownModelRejectedCleanly: a v2 client naming a model the
// registry does not hold must be rejected at registration — no stream
// registered, the rejection counted, and the client's connection closed
// (its writes fail) instead of silently swallowing events forever.
func TestUnknownModelRejectedCleanly(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriterModel(conn, "lost", "ghost")
	if err != nil {
		t.Fatal(err)
	}
	fw.FrameBytes = 256
	if err := fw.Flush(); err != nil { // push the header to the server
		t.Fatal(err)
	}

	// Wait for the server to observe and reject the registration (TCP
	// buffering means the client cannot see the refusal before it
	// happens), then keep writing: the closed connection must surface as
	// a write error within the deadline rather than swallowing events
	// forever.
	deadline := time.Now().Add(10 * time.Second)
	for srv.rejUnknown.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never rejected the unknown-model stream")
		}
		time.Sleep(time.Millisecond)
	}
	ts := time.Duration(0)
	for {
		if time.Now().After(deadline) {
			t.Fatal("client still writing after 10s against a rejected stream")
		}
		ts += time.Millisecond
		if err := fw.Write(trace.Event{TS: ts, Type: 1}); err != nil {
			break // the clean end: rejection reached the client
		}
		if err := fw.Flush(); err != nil {
			break
		}
	}

	// No stream must have been registered, and the rejection counted.
	stats := srv.Stats()
	if stats.StreamsLive != 0 || stats.StreamsClosed != 0 {
		t.Fatalf("rejected stream registered: %+v", stats)
	}
	if stats.StreamsRejected != 1 || stats.RejectedUnknownModel != 1 {
		t.Fatalf("rejection miscounted: %+v", stats)
	}
	body, err := getBody("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `enduratrace_streams_rejected_total{reason="unknown_model"} 1`) {
		t.Fatalf("metrics missing the rejection count:\n%s", body)
	}

	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}

// TestReloadEndpointOnStaticRegistry: POST /reload against a server built
// from a single in-memory model (no directory) must refuse cleanly, not
// crash or pretend to succeed.
func TestReloadEndpointOnStaticRegistry(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(); err == nil {
		t.Fatal("static registry reloaded")
	}
	if srv.Models().Generation() != 0 {
		t.Fatal("failed reload bumped the generation")
	}
}

// TestRegisterUnknownModelError pins the sentinel: the serving layer
// depends on errors.Is(err, core.ErrUnknownModel) to count rejections.
func TestRegisterUnknownModelError(t *testing.T) {
	_, reg := twoModelDir(t)
	streams := core.NewStreamRegistry(reg)
	if _, err := streams.Register("s", "ghost"); !errors.Is(err, core.ErrUnknownModel) {
		t.Fatalf("error %v, want ErrUnknownModel", err)
	}
}
