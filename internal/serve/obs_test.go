package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/obs"
	"enduratrace/internal/trace"
)

// TestLoggerTimestamps pins the slog migration's headline fix: both log
// formats must stamp every line with wall-clock time. (The pre-slog
// logger was built with flag 0 — no timestamps — so serve logs could not
// be correlated with client logs or packet captures.)
func TestLoggerTimestamps(t *testing.T) {
	cfg, learned := fixture(t)
	year := time.Now().UTC().Format("2006")

	for _, format := range []string{"text", "json"} {
		var buf bytes.Buffer
		logger, err := NewLogger(&buf, format)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Options{Cfg: cfg, Learned: learned, Logger: logger})
		if err != nil {
			t.Fatal(err)
		}
		// A non-directory registry cannot reload; the failure is logged.
		if _, err := srv.Reload(); err == nil {
			t.Fatal("Reload on a non-directory registry succeeded")
		}
		line := strings.TrimSpace(buf.String())
		if line == "" {
			t.Fatalf("%s: reload failure logged nothing", format)
		}
		if !strings.Contains(line, "reload failed") {
			t.Fatalf("%s: log line %q does not mention the failure", format, line)
		}
		switch format {
		case "text":
			if !strings.Contains(line, "time="+year) {
				t.Fatalf("text log line has no timestamp: %q", line)
			}
		case "json":
			var rec struct {
				Time time.Time `json:"time"`
				Msg  string    `json:"msg"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("json log line does not parse: %q: %v", line, err)
			}
			if rec.Time.IsZero() {
				t.Fatalf("json log line has no timestamp: %q", line)
			}
		}
	}

	if _, err := NewLogger(&bytes.Buffer{}, "yaml"); err == nil {
		t.Fatal("NewLogger accepted an unknown format")
	}
}

// TestQueuePathZeroAlloc is the allocation gate for the instrumented
// queue: PushTimed, Next (with queue-wait observation and arrival
// tracking) and the decision-side drain must not allocate in steady
// state — latency accounting may not cost the event path its
// allocation-free property.
func TestQueuePathZeroAlloc(t *testing.T) {
	q := newEventQueue(64, Block)
	var pipe obs.Pipeline
	q.instrument(&pipe)
	ev := trace.Event{TS: time.Millisecond, Type: 1, Arg: 64}

	var seq uint64
	step := func() {
		seq++
		q.PushTimed(ev, obs.Now(), 500, seq, false)
		if _, err := q.Next(); err != nil {
			t.Fatal(err)
		}
		now := obs.Now()
		for _, enq := range q.takeArrivals() {
			pipe.E2E.ObserveNs(now - enq)
		}
	}
	step() // warm the cond/rings
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("instrumented push/pop/drain allocates %v/op, want 0", allocs)
	}
	if got := pipe.QueueWait.Snapshot().Count(); got == 0 {
		t.Error("queue-wait histogram observed nothing")
	}
	if got := pipe.E2E.Snapshot().Count(); got == 0 {
		t.Error("e2e histogram observed nothing")
	}
}

// TestWriteMetricsHistograms: the scrape must expose the four pipeline
// stage families as valid Prometheus histograms (the validator enforces
// bucket monotonicity and the +Inf == _count invariant), plus the runtime
// gauges and the stall gauge.
func TestWriteMetricsHistograms(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	pipe := srv.pipelineFor("default")
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		pipe.Decode.Observe(d)
		pipe.QueueWait.Observe(d / 2)
		pipe.Score.Observe(d / 4)
		pipe.E2E.Observe(d * 2)
	}
	pipe.E2E.Observe(100 * time.Second) // lands in the overflow bin

	var buf bytes.Buffer
	if err := srv.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if _, err := ValidatePrometheusText(buf.Bytes()); err != nil {
		t.Fatalf("scrape does not validate: %v", err)
	}
	for _, want := range []string{
		`# TYPE enduratrace_pipeline_decode_seconds histogram`,
		`# TYPE enduratrace_pipeline_queue_wait_seconds histogram`,
		`# TYPE enduratrace_pipeline_score_seconds histogram`,
		`# TYPE enduratrace_pipeline_e2e_seconds histogram`,
		`enduratrace_pipeline_e2e_seconds_bucket{model="default",le="+Inf"} 1001`,
		`enduratrace_pipeline_e2e_seconds_count{model="default"} 1001`,
		`enduratrace_streams_stalled 0`,
		`# TYPE enduratrace_goroutines gauge`,
		`# TYPE enduratrace_heap_alloc_bytes gauge`,
		`# TYPE enduratrace_gc_pause_seconds_total counter`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
}

// TestValidatePrometheusTextHistogramInvariants: the validator must
// reject expositions whose histogram families break the format's
// invariants, not just malformed lines.
func TestValidatePrometheusTextHistogramInvariants(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"non-cumulative buckets", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`, "not cumulative"},
		{"missing +Inf", `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`, "+Inf"},
		{"count mismatch", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 7
`, "_count"},
		{"missing sum", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_count 5
`, "_sum"},
		{"duplicate bucket", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`, "duplicate"},
	}
	for _, c := range cases {
		if _, err := ValidatePrometheusText([]byte(c.body)); err == nil ||
			!strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
	// A well-formed histogram with two label sets must pass.
	good := `# TYPE h histogram
h_bucket{model="a",le="1"} 2
h_bucket{model="a",le="+Inf"} 3
h_sum{model="a"} 1.5
h_count{model="a"} 3
h_bucket{le="+Inf",model="b"} 0
h_sum{model="b"} 0
h_count{model="b"} 0
`
	if n, err := ValidatePrometheusText([]byte(good)); err != nil || n != 7 {
		t.Fatalf("good histogram: n=%d err=%v", n, err)
	}
}

// TestDebugFlightEndpoint: the admin mux must serve the flight recorder's
// books and records, and 404 with an explanation when sampling is
// disabled. Also covers the pprof gate: the profile endpoints exist only
// with EnablePprof.
func TestDebugFlightEndpoint(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{Cfg: cfg, Learned: learned, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.flight.Add(obs.Record{Stream: "s1", Model: "default", Seq: 256, E2ENs: 12345})

	ts := httptest.NewServer(srv.adminMux())
	defer ts.Close()

	var rep flightReport
	if err := getJSON(ts.URL+"/debug/flight", &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Every != DefaultFlightEvery || rep.Stats.Capacity != DefaultFlightCap {
		t.Fatalf("flight stats %+v, want every=%d cap=%d", rep.Stats, DefaultFlightEvery, DefaultFlightCap)
	}
	if len(rep.Records) != 1 || rep.Records[0].Stream != "s1" || rep.Records[0].E2ENs != 12345 {
		t.Fatalf("flight records %+v", rep.Records)
	}
	if body, err := getBody(ts.URL + "/debug/pprof/cmdline"); err != nil || len(body) == 0 {
		t.Fatalf("pprof cmdline: %v (%d bytes)", err, len(body))
	}

	// Disabled sampling: no recorder, endpoint explains itself; pprof off
	// by default.
	srvOff, err := New(Options{Cfg: cfg, Learned: learned, FlightEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if srvOff.Flight() != nil {
		t.Fatal("negative FlightEvery still built a recorder")
	}
	tsOff := httptest.NewServer(srvOff.adminMux())
	defer tsOff.Close()
	if _, err := getBody(tsOff.URL + "/debug/flight"); err == nil {
		t.Fatal("GET /debug/flight succeeded with sampling disabled")
	}
	if _, err := getBody(tsOff.URL + "/debug/pprof/cmdline"); err == nil {
		t.Fatal("pprof served without EnablePprof")
	}
}
