package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/recorder"
	"enduratrace/internal/traceio"
)

// TestSinkFactoryFailureCounted: a stream refused because its recorder
// sink cannot be built must land in the rejection books — before the
// accounting split, only unknown-model refusals were counted and sink
// failures vanished from /stats entirely.
func TestSinkFactoryFailureCounted(t *testing.T) {
	cfg, learned := fixture(t)
	sinkErr := errors.New("disk full")
	srv, err := New(Options{
		Cfg:     cfg,
		Learned: learned,
		Sinks:   func(string) (recorder.Sink, error) { return nil, sinkErr },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	// The client must name a model that resolves (v1 header → default) so
	// registration succeeds and the refusal comes from the sink factory;
	// the observable behaviour is the same — the server closes the stream.
	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriter(conn, "sinkless")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("server did not close the sink-refused stream (read err %v)", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for srv.rejSink.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sink-factory failure never counted")
		}
		time.Sleep(time.Millisecond)
	}
	stats := srv.Stats()
	if stats.StreamsLive != 0 || stats.StreamsClosed != 0 {
		t.Fatalf("sink-refused stream registered: %+v", stats)
	}
	if stats.StreamsRejected == 0 {
		t.Fatalf("sink failure missing from StreamsRejected: %+v", stats)
	}
	if got := stats.StreamsRejected - stats.RejectedUnknownModel; got < 1 {
		t.Fatalf("sink failure folded into unknown-model count: %+v", stats)
	}
	body, err := getBody("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `enduratrace_streams_rejected_total{reason="sink"} 1`) {
		t.Fatalf("metrics missing the sink rejection:\n%s", body)
	}

	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}

// TestSelftestAnomalyStoreReplayRoundTrip is the PR's acceptance loop in
// miniature: selftest traffic with an attached anomaly store (segments
// small enough to force rotation), then a Replay of the captured store
// under the very model that scored it live. Every recorded verdict must
// reproduce exactly — same windows, same model, same floats — so the
// replay reports zero lost and zero new detections, and the incident
// count matches the server's gate-trip count.
func TestSelftestAnomalyStoreReplayRoundTrip(t *testing.T) {
	cfg, learned := fixture(t)
	dir := t.TempDir()
	store, err := anomalystore.Open(dir, anomalystore.Options{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Selftest(context.Background(), SelftestOptions{
		Cfg:           cfg,
		Learned:       learned,
		Clients:       4,
		Duration:      8 * time.Second,
		Factor:        3,
		Anomalies:     store,
		RejectClients: 1, // the rejection books ride along
	})
	if err != nil {
		t.Fatal(err)
	}
	// Selftest already asserted AnomalyIncidents == GateTrips and zero
	// store errors; the replay below needs actual material.
	if rep.Stats.GateTrips == 0 {
		t.Fatal("selftest tripped no gates; increase Factor or Duration")
	}
	st := store.Stats()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Segments < 2 {
		t.Fatalf("store kept %d incidents in %d segment(s); rotation never exercised", st.Appended, st.Segments)
	}

	models := []*core.NamedModel{{Name: "default", Cfg: cfg, Learned: learned}}
	rr, err := anomalystore.Replay(dir, models, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rr.Incidents) != rep.Stats.AnomalyIncidents {
		t.Fatalf("replay saw %d incidents, server persisted %d", rr.Incidents, rep.Stats.AnomalyIncidents)
	}
	if rr.TruncatedSegments != 0 {
		t.Fatalf("cleanly closed store reports %d truncated segments", rr.TruncatedSegments)
	}
	mr := rr.Models[0]
	if mr.Incidents != rr.Incidents {
		t.Fatalf("model replayed %d of %d incidents", mr.Incidents, rr.Incidents)
	}
	if mr.Lost != 0 || mr.NewDetections != 0 {
		t.Fatalf("same-model replay drifted: %d lost, %d new of %d", mr.Lost, mr.NewDetections, mr.Incidents)
	}
	wantDetected := 0
	for _, v := range mr.Verdicts {
		if v.Score != v.RecordedScore {
			t.Fatalf("incident %d: replay score %v != recorded %v (same model, same window)",
				v.Seq, v.Score, v.RecordedScore)
		}
		if v.RecordedAnomalous {
			wantDetected++
		}
	}
	if mr.StillDetected != wantDetected || mr.StillClear != mr.Incidents-wantDetected {
		t.Fatalf("verdict tally %d detected + %d clear, want %d + %d",
			mr.StillDetected, mr.StillClear, wantDetected, mr.Incidents-wantDetected)
	}

	// The what-if knob: an impossibly high alpha must lose every recorded
	// anomaly, an alpha of ~0 must flag everything.
	high, err := anomalystore.Replay(dir, models, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if high.Models[0].StillDetected != 0 || high.Models[0].Lost != wantDetected {
		t.Fatalf("alpha=1e9 replay: %+v, want all %d recorded anomalies lost",
			high.Models[0], wantDetected)
	}
}

// TestAnomaliesEndpoint drives GET /anomalies against a live server with a
// store attached: the listing reflects the books, a seq fetch returns the
// incident with its context windows, and a bogus seq is a clean 404.
func TestAnomaliesEndpoint(t *testing.T) {
	cfg, learned := fixture(t)
	dir := t.TempDir()
	store, err := anomalystore.Open(dir, anomalystore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rep, err := Selftest(context.Background(), SelftestOptions{
		Cfg:       cfg,
		Learned:   learned,
		Clients:   2,
		Duration:  6 * time.Second,
		Factor:    3,
		Anomalies: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.AnomalyIncidents == 0 {
		t.Fatal("no incidents persisted; nothing to serve")
	}

	// The selftest server is gone; stand up a fresh one sharing the store
	// to exercise the endpoint (recovery path included: the store was not
	// closed, the segments are unsealed).
	srv, err := New(Options{Cfg: cfg, Learned: learned, Anomalies: store})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()
	base := "http://" + srv.AdminAddr().String()

	var listing struct {
		Store     anomalystore.StoreStats     `json:"store"`
		Incidents int64                       `json:"incidents"`
		Recent    []anomalystore.IncidentMeta `json:"recent"`
	}
	if err := getJSON(base+"/anomalies", &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Store.Incidents != rep.Stats.AnomalyIncidents {
		t.Fatalf("endpoint lists %d incidents, selftest persisted %d",
			listing.Store.Incidents, rep.Stats.AnomalyIncidents)
	}
	if len(listing.Recent) == 0 {
		t.Fatal("recent ring empty after selftest appends")
	}

	seq := listing.Recent[len(listing.Recent)-1].Seq
	var detail struct {
		anomalystore.IncidentMeta
		ContextWindows []struct {
			Index  int     `json:"index"`
			StartS float64 `json:"start_s"`
			EndS   float64 `json:"end_s"`
			Events int     `json:"events"`
		} `json:"context_windows"`
	}
	if err := getJSON(fmt.Sprintf("%s/anomalies?seq=%d", base, seq), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Seq != seq || len(detail.ContextWindows) == 0 {
		t.Fatalf("incident detail for seq %d: %+v", seq, detail)
	}

	if err := getJSON(base+"/anomalies?seq=99999999", new(map[string]any)); err == nil {
		t.Fatal("bogus seq served an incident")
	}

	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}
