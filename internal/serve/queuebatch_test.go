package serve

import (
	"io"
	"sync"
	"testing"
	"time"

	"enduratrace/internal/obs"
	"enduratrace/internal/trace"
)

// evEq compares the scalar fields (the tests carry no payloads).
func evEq(a, b trace.Event) bool {
	return a.TS == b.TS && a.Type == b.Type && a.Arg == b.Arg
}

// TestPushBatchMatchesPushTimed: a batch push must leave the queue in the
// same observable state as the equivalent sequence of per-event pushes —
// same events in the same order, same sequence numbers, same flight
// samples, balanced books.
func TestPushBatchMatchesPushTimed(t *testing.T) {
	const n = 100
	const flightEvery = 8
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{TS: time.Duration(i + 1), Type: trace.EventType(i % 5), Arg: uint64(i)}
	}

	drain := func(q *eventQueue) (out []trace.Event, flights []uint64) {
		for {
			ev, err := q.Next()
			if err == io.EOF {
				return out, flights
			}
			out = append(out, ev)
			if fm, _, ok := q.takeFlight(); ok {
				flights = append(flights, fm.seq)
			}
		}
	}

	qa := newEventQueue(n, Block)
	qa.instrument(&obs.Pipeline{})
	for i, ev := range evs {
		seq := uint64(i + 1)
		qa.PushTimed(ev, obs.Now(), 10, seq, seq%flightEvery == 0)
	}
	qa.Close()
	wantEvs, wantFlights := drain(qa)

	qb := newEventQueue(n, Block)
	qb.instrument(&obs.Pipeline{})
	if !qb.PushBatch(evs, obs.Now(), 10, 1, flightEvery) {
		t.Fatal("PushBatch returned false on an open queue")
	}
	qb.Close()
	gotEvs, gotFlights := drain(qb)

	if len(gotEvs) != len(wantEvs) {
		t.Fatalf("batched queue drained %d events, per-event %d", len(gotEvs), len(wantEvs))
	}
	for i := range wantEvs {
		if !evEq(gotEvs[i], wantEvs[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, gotEvs[i], wantEvs[i])
		}
	}
	if len(gotFlights) != len(wantFlights) {
		t.Fatalf("flight samples: batched %v, per-event %v", gotFlights, wantFlights)
	}
	for i := range wantFlights {
		if gotFlights[i] != wantFlights[i] {
			t.Fatalf("flight sample %d: seq %d vs %d", i, gotFlights[i], wantFlights[i])
		}
	}
	ca, cb := qa.Counters(), qb.Counters()
	if ca != cb {
		t.Fatalf("books differ: per-event %+v, batched %+v", ca, cb)
	}
}

// TestPushBatchDropOldestBooks: a batch wider than a DropOldest queue must
// evict exactly the surplus, keep the newest events in order, and balance.
func TestPushBatchDropOldestBooks(t *testing.T) {
	const capacity, n = 8, 20
	q := newEventQueue(capacity, DropOldest)
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{TS: time.Duration(i + 1)}
	}
	q.PushBatch(evs, 0, 0, 1, 0)
	c := q.Counters()
	if c.Ingested != n || c.Dropped != n-capacity || c.Depth != capacity {
		t.Fatalf("books after wide batch: %+v (want ingested %d, dropped %d, depth %d)",
			c, n, n-capacity, capacity)
	}
	q.Close()
	for i := 0; i < capacity; i++ {
		ev, err := q.Next()
		if err != nil {
			t.Fatal(err)
		}
		if want := evs[n-capacity+i]; !evEq(ev, want) {
			t.Fatalf("survivor %d is %+v, want %+v", i, ev, want)
		}
	}
	if _, err := q.Next(); err != io.EOF {
		t.Fatalf("drained queue returned %v, want EOF", err)
	}
}

// TestPushBatchBlockLargerThanCapacity: under Block a batch wider than the
// queue is admitted in chunks against a concurrent ReadBatch consumer —
// nothing dropped, nothing reordered, no deadlock.
func TestPushBatchBlockLargerThanCapacity(t *testing.T) {
	const capacity, n = 8, 1000
	q := newEventQueue(capacity, Block)
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{TS: time.Duration(i + 1), Arg: uint64(i)}
	}
	got := make(chan []trace.Event)
	go func() {
		var out []trace.Event
		dst := make([]trace.Event, 16)
		for {
			k, err := q.ReadBatch(dst)
			out = append(out, dst[:k]...)
			if err == io.EOF {
				got <- out
				return
			}
		}
	}()
	if !q.PushBatch(evs, 0, 0, 1, 0) {
		t.Fatal("PushBatch returned false on an open queue")
	}
	q.Close()
	out := <-got
	if len(out) != n {
		t.Fatalf("consumer saw %d events, want %d", len(out), n)
	}
	for i := range out {
		if !evEq(out[i], evs[i]) {
			t.Fatalf("event %d is %+v, want %+v", i, out[i], evs[i])
		}
	}
	c := q.Counters()
	if c.Dropped != 0 || c.Scored != n || c.Ingested != n {
		t.Fatalf("block batch books: %+v", c)
	}
}

// TestPushBatchReadBatchCountersConsistentUnderRace is the batched twin of
// the drop-accounting audit: a producer pushing batches into a tiny
// DropOldest queue, a consumer draining it batch-wise, and observers
// snapshotting the books concurrently. Every observation must satisfy
// ingested == scored + dropped + depth, and the final totals must balance.
func TestPushBatchReadBatchCountersConsistentUnderRace(t *testing.T) {
	const batches, perBatch = 500, 64
	q := newEventQueue(16, DropOldest)
	q.instrument(&obs.Pipeline{})

	var wg sync.WaitGroup
	stopObs := make(chan struct{})
	for o := 0; o < 4; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
				}
				c := q.Counters()
				if c.Ingested != c.Scored+c.Dropped+int64(c.Depth) {
					t.Errorf("inconsistent books: %+v", c)
					return
				}
			}
		}()
	}

	var consumed int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		dst := make([]trace.Event, 32)
		for {
			k, err := q.ReadBatch(dst)
			consumed += int64(k)
			q.takeArrivals()
			q.takeFlight()
			if err == io.EOF {
				return
			}
		}
	}()

	evs := make([]trace.Event, perBatch)
	var seq uint64
	for b := 0; b < batches; b++ {
		for i := range evs {
			evs[i] = trace.Event{TS: time.Duration(int(seq) + i + 1)}
		}
		if !q.PushBatch(evs, obs.Now(), 1, seq+1, 4) {
			t.Error("queue closed under the producer")
			break
		}
		seq += perBatch
	}
	q.Close()
	<-consumerDone
	close(stopObs)
	wg.Wait()

	final := q.Counters()
	if final.Ingested != batches*perBatch {
		t.Fatalf("ingested %d, want %d", final.Ingested, batches*perBatch)
	}
	if final.Depth != 0 {
		t.Fatalf("depth %d after drain, want 0", final.Depth)
	}
	if final.Scored != consumed {
		t.Fatalf("scored counter %d != %d events the consumer saw", final.Scored, consumed)
	}
	if final.Scored+final.Dropped != final.Ingested {
		t.Fatalf("final books do not balance: %+v", final)
	}
}

// TestQueueBatchZeroAllocSteadyState: once warm, a PushBatch/ReadBatch
// round trip on an instrumented queue allocates nothing — the metadata
// ring, the pop scratch and the pending arrivals all reuse their buffers.
func TestQueueBatchZeroAllocSteadyState(t *testing.T) {
	const batch = 128
	q := newEventQueue(1024, Block)
	q.instrument(&obs.Pipeline{})
	evs := make([]trace.Event, batch)
	for i := range evs {
		evs[i] = trace.Event{TS: time.Duration(i + 1)}
	}
	dst := make([]trace.Event, batch)
	var seq uint64
	round := func() {
		q.PushBatch(evs, obs.Now(), 1, seq+1, 16)
		seq += batch
		for popped := 0; popped < batch; {
			k, err := q.ReadBatch(dst)
			if err != nil {
				t.Fatal(err)
			}
			popped += k
		}
		q.takeArrivals()
		q.takeFlight()
	}
	round() // warm the pop scratch and pending buffers
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("steady-state batch round trip allocates %.1f times, want 0", avg)
	}
}
