package serve

import (
	"time"

	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/window"
)

// DefaultAnomalyContext is the number of pre-trip context windows an
// incident carries when Options.AnomalyContext is zero.
const DefaultAnomalyContext = 2

// tripRecorder is one stream's hook into the anomaly store: it rides the
// monitor's per-window decision callback, keeps a small ring of the most
// recent quiet windows, and on every gate trip persists an incident — the
// context ring plus the tripped window — with the full scoring verdict.
// Store failures are counted and logged but never propagated: losing the
// forensic copy must not kill the live stream.
type tripRecorder struct {
	srv      *Server
	store    *anomalystore.Store
	stream   string
	model    string
	modelGen int64
	alpha    float64
	pre      int
	ring     []window.Window
	logged   bool
}

// newTripRecorder builds the hook for one registered stream. Window
// retention is safe: the windower hands out freshly copied event slices.
func (s *Server) newTripRecorder(h *core.StreamHandle) *tripRecorder {
	pre := s.opts.AnomalyContext
	if pre == 0 {
		pre = DefaultAnomalyContext
	}
	if pre < 0 {
		pre = 0
	}
	return &tripRecorder{
		srv:      s,
		store:    s.opts.Anomalies,
		stream:   h.ID(),
		model:    h.Model().Name,
		modelGen: s.models.Generation(),
		alpha:    h.Model().Cfg.Alpha,
		pre:      pre,
	}
}

// onDecision is the core.Monitor.Run callback. It runs on the stream's
// scoring goroutine; the store itself serialises concurrent appends.
func (t *tripRecorder) onDecision(d core.Decision) error {
	if !d.GateTripped {
		if t.pre > 0 {
			t.ring = append(t.ring, d.Window)
			if len(t.ring) > t.pre {
				// Shift in place; the ring is tiny (AnomalyContext windows).
				copy(t.ring, t.ring[1:])
				t.ring = t.ring[:t.pre]
			}
		}
		return nil
	}

	windows := make([]window.Window, 0, len(t.ring)+1)
	windows = append(windows, t.ring...)
	windows = append(windows, d.Window)
	t.ring = t.ring[:0]

	_, err := t.store.Append(anomalystore.Incident{
		Stream:   t.stream,
		Model:    t.model,
		ModelGen: t.modelGen,
		//lint:ignore monotime incidents persist a wall-clock timestamp for operators and replay
		Wall:        time.Now(),
		Score:       d.LOF,
		GateDist:    d.GateDist,
		Alpha:       t.alpha,
		Anomalous:   d.Anomalous,
		WindowIndex: d.Window.Index,
		Start:       d.Window.Start,
		End:         d.Window.End,
		Windows:     windows,
	})
	if err != nil {
		t.srv.anomStoreErrs.Add(1)
		if !t.logged {
			t.logged = true // one line per stream, not one per trip
			t.srv.log.Error("anomaly store append failed (stream continues)",
				"stream", t.stream, "err", err)
		}
		return nil
	}
	t.srv.anomIncidents.Add(1)
	return nil
}
