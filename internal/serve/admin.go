package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"enduratrace/internal/anomalystore"
	"enduratrace/internal/obs"
)

// flightReport is the GET /debug/flight body.
type flightReport struct {
	Stats   obs.FlightStats `json:"stats"`
	Records []obs.Record    `json:"records"`
}

// healthReport is the /healthz body.
type healthReport struct {
	Status       string                 `json:"status"`
	UptimeS      anomalystore.JSONFloat `json:"uptime_s"`
	StreamsLive  int                    `json:"streams_live"`
	ModelPoints  int                    `json:"model_points"`
	Models       []string               `json:"models"`
	DefaultModel string                 `json:"default_model"`
}

// adminMux builds the admin endpoints:
//
//	GET  /healthz       liveness + model registry identity
//	GET  /streams       live streams with queue/sink counters + stall flags
//	GET  /stats         aggregate totals in the `monitor -json` report shape
//	GET  /metrics       Prometheus text exposition, labelled by model/stream
//	GET  /anomalies     anomaly store stats + recent incidents (?n, ?seq)
//	GET  /alerts        alert pipeline books, stream states, recent notifications
//	GET  /debug/flight  sampled per-event pipeline timings (flight recorder)
//	GET  /debug/pprof/  net/http/pprof (only with Options.EnablePprof)
//	POST /reload        hot-reload the model registry from its directory
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, live, _ := s.reg.Totals()
		writeJSON(w, http.StatusOK, healthReport{
			Status:       "ok",
			UptimeS:      anomalystore.JSONFloat(time.Since(s.start).Seconds()),
			StreamsLive:  live,
			ModelPoints:  s.models.Default().Learned.Model.Len(),
			Models:       s.models.Names(),
			DefaultModel: s.models.DefaultName(),
		})
	})
	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Streams())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /anomalies", func(w http.ResponseWriter, r *http.Request) {
		s.handleAnomalies(w, r)
	})
	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, r *http.Request) {
		if s.opts.Alerts == nil {
			writeJSON(w, http.StatusNotFound, struct {
				Error string `json:"error"`
			}{"no alert pipeline attached (start the daemon with -alert-log, -alert-webhook or -alert-exec)"})
			return
		}
		writeJSON(w, http.StatusOK, s.opts.Alerts.Snapshot())
	})
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if s.flight == nil {
			writeJSON(w, http.StatusNotFound, struct {
				Error string `json:"error"`
			}{"flight recorder disabled (negative -flight-every)"})
			return
		}
		writeJSON(w, http.StatusOK, flightReport{
			Stats:   s.flight.Stats(),
			Records: s.flight.Records(),
		})
	})
	if s.opts.EnablePprof {
		// The handlers are mounted explicitly (net/http/pprof's init only
		// touches http.DefaultServeMux, which this server does not use).
		// Profile captures run for their ?seconds= argument — longer than
		// the admin server's WriteTimeout — so the deadline is pushed out
		// for the capture, like the /reload handler does for model loads.
		profiled := func(h http.HandlerFunc) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) {
				rc := http.NewResponseController(w)
				//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
				rc.SetWriteDeadline(time.Now().Add(10 * time.Minute))
				h(w, r)
			}
		}
		mux.HandleFunc("GET /debug/pprof/", profiled(pprof.Index))
		mux.HandleFunc("GET /debug/pprof/cmdline", profiled(pprof.Cmdline))
		mux.HandleFunc("GET /debug/pprof/profile", profiled(pprof.Profile))
		mux.HandleFunc("GET /debug/pprof/symbol", profiled(pprof.Symbol))
		mux.HandleFunc("GET /debug/pprof/trace", profiled(pprof.Trace))
	}
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			s.log.Error("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		// Reload re-reads and refits every model inline, which can outlast
		// the admin server's WriteTimeout (set at header-read time) on big
		// registries — the swap would succeed but the response write would
		// hit the stale deadline and report failure. Push the deadline out
		// past the load.
		rc := http.NewResponseController(w)
		//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
		rc.SetWriteDeadline(time.Now().Add(10 * time.Minute))
		rep, err := s.Reload()
		//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
		rc.SetWriteDeadline(time.Now().Add(10 * time.Second))
		if err != nil {
			writeJSON(w, http.StatusConflict, struct {
				Error string `json:"error"`
			}{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	return mux
}

// anomaliesReport is the default GET /anomalies body: store books plus the
// most recent incident metas (newest last).
type anomaliesReport struct {
	Store     anomalystore.StoreStats     `json:"store"`
	Incidents int64                       `json:"incidents"`
	Errors    int64                       `json:"append_errors"`
	Recent    []anomalystore.IncidentMeta `json:"recent"`
}

// incidentDetail is the GET /anomalies?seq=N body: the incident's metadata
// plus a row per carried window (events stay on disk; replay reads them).
type incidentDetail struct {
	anomalystore.IncidentMeta
	ContextWindows []incidentWindow `json:"context_windows"`
}

type incidentWindow struct {
	Index  int                    `json:"index"`
	StartS anomalystore.JSONFloat `json:"start_s"`
	EndS   anomalystore.JSONFloat `json:"end_s"`
	Events int                    `json:"events"`
}

// handleAnomalies serves the anomaly store's admin view. Without a store
// attached (-anomaly-store unset) the endpoint 404s with an explanation.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	store := s.opts.Anomalies
	if store == nil {
		writeJSON(w, http.StatusNotFound, struct {
			Error string `json:"error"`
		}{"no anomaly store attached (start the daemon with -anomaly-store)"})
		return
	}
	if seqStr := r.URL.Query().Get("seq"); seqStr != "" {
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, struct {
				Error string `json:"error"`
			}{"bad seq: " + err.Error()})
			return
		}
		inc, err := store.Get(seq)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, anomalystore.ErrNotFound) {
				status = http.StatusNotFound
			}
			writeJSON(w, status, struct {
				Error string `json:"error"`
			}{err.Error()})
			return
		}
		detail := incidentDetail{IncidentMeta: inc.Meta()}
		for _, win := range inc.Windows {
			detail.ContextWindows = append(detail.ContextWindows, incidentWindow{
				Index:  win.Index,
				StartS: anomalystore.JSONFloat(win.Start.Seconds()),
				EndS:   anomalystore.JSONFloat(win.End.Seconds()),
				Events: len(win.Events),
			})
		}
		writeJSON(w, http.StatusOK, detail)
		return
	}
	n := 50
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		v, err := strconv.Atoi(nStr)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, struct {
				Error string `json:"error"`
			}{"bad n: must be a non-negative integer"})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, anomaliesReport{
		Store:     store.Stats(),
		Incidents: s.anomIncidents.Load(),
		Errors:    s.anomStoreErrs.Load(),
		Recent:    store.Recent(n),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// adminShutdownTimeout bounds how long a stalled admin client can delay
// daemon shutdown before its connection is cut.
const adminShutdownTimeout = 3 * time.Second

// newAdminServer builds the admin http.Server with every I/O timeout set:
// the admin port faces operators and scrapers, but a stalled or malicious
// client must never pin a handler goroutine (or shutdown) forever, so
// reads, writes and idle keep-alives all have deadlines.
func (s *Server) newAdminServer() *http.Server {
	return &http.Server{
		Handler:           s.adminMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// serveAdmin runs the admin HTTP server until the listener closes (during
// Server shutdown, after the streams have drained — so /stats stays
// queryable through the drain).
func (s *Server) serveAdmin(srv *http.Server) {
	srv.Serve(s.adminLn) // returns when adminLn closes
}

// shutdownAdmin gracefully stops the admin server, waiting at most
// adminShutdownTimeout for in-flight responses before force-closing.
func (s *Server) shutdownAdmin(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), adminShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
}
