package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// healthReport is the /healthz body.
type healthReport struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	StreamsLive int     `json:"streams_live"`
	ModelPoints int     `json:"model_points"`
}

// adminMux builds the admin endpoints:
//
//	GET /healthz  liveness + model identity
//	GET /streams  live streams with queue/sink counters
//	GET /stats    aggregate totals in the `monitor -json` report shape
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_, live, _ := s.reg.Totals()
		writeJSON(w, healthReport{
			Status:      "ok",
			UptimeS:     time.Since(s.start).Seconds(),
			StreamsLive: live,
			ModelPoints: s.opts.Learned.Model.Len(),
		})
	})
	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Streams())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// serveAdmin runs the admin HTTP server until the listener closes (during
// Server shutdown, after the streams have drained — so /stats stays
// queryable through the drain).
func (s *Server) serveAdmin() {
	srv := &http.Server{Handler: s.adminMux(), ReadHeaderTimeout: 5 * time.Second}
	srv.Serve(s.adminLn) // returns when adminLn closes
}
