package serve

import (
	"enduratrace/internal/alert"
	"enduratrace/internal/anomalystore"
)

// persistAlertTransition is the alert pipeline's OnTransition hook: every
// firing/resolved transition becomes a window-free incident record in the
// anomaly store, so `enduratrace replay` and GET /anomalies show alert
// history interleaved with the gate trips that caused it. Installed by New
// when both Options.Alerts and Options.Anomalies are set; runs on the
// stream's scoring goroutine, before dedup and rate limiting (a transition
// the operator was never paged for is still on the forensic record).
// Store failures are counted and logged once, never propagated — same
// policy as the gate-trip tripRecorder.
func (s *Server) persistAlertTransition(n alert.Notification) {
	_, err := s.opts.Anomalies.Append(anomalystore.Incident{
		Stream:      n.Stream,
		Model:       n.Model,
		ModelGen:    s.models.Generation(),
		Wall:        n.Wall,
		Score:       n.LOF,
		GateDist:    n.GateDist,
		Anomalous:   n.Kind == alert.KindFiring,
		Alert:       n.Kind.String(),
		WindowIndex: n.WindowIndex,
	})
	if err != nil {
		s.alertPersistErrs.Add(1)
		if s.alertErrLogged.CompareAndSwap(false, true) {
			s.log.Error("alert transition append failed (alerting continues)",
				"stream", n.Stream, "err", err)
		}
		return
	}
	s.alertPersisted.Add(1)
}
