package serve

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the daemon's structured logger writing to w in the
// given format: "text" (logfmt-style, human-oriented) or "json" (one
// object per line, machine-oriented). Both include wall-clock timestamps
// on every line — the serve log is the first thing read next to a packet
// capture or a client-side log, and lines without timestamps cannot be
// correlated with anything (the pre-slog logger dropped them, which is
// exactly the regression TestLoggerTimestamps pins).
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("serve: unknown log format %q (want text or json)", format)
	}
}
