// Package serve is the network-facing serving layer: a long-lived daemon
// that loads one learned model and monitors any number of live trace
// streams pushed to it over TCP.
//
// The shape follows PR 3's split of the monitor into an immutable shared
// core.Learned and mutable per-stream core.Monitors: each accepted
// connection is one stream, with two goroutines —
//
//	socket ─→ traceio.FrameReader ─→ bounded eventQueue ─→ Monitor.Run ─→ Sink
//	         (ingest goroutine)      (backpressure here)   (scoring goroutine)
//
// The queue is the explicit backpressure point: Block propagates a slow
// model back to the sender through TCP flow control, DropOldest bounds
// latency and counts the holes. Graceful shutdown stops ingestion, drains
// every queue, flushes every recorder sink, and reports per-stream
// RunStats; an HTTP admin listener serves /healthz, /streams and /stats
// (the `monitor -json` report shape) throughout.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"enduratrace/internal/alert"
	"enduratrace/internal/anomalystore"
	"enduratrace/internal/core"
	"enduratrace/internal/obs"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// Options configures a Server.
type Options struct {
	// Models is the registry of named models streams resolve against: a
	// stream's frame header may name the model it wants (header v2), an
	// empty or absent name gets the registry default, and unknown names
	// are rejected at registration. Registries loaded with
	// core.LoadModelDir support hot reload (Server.Reload, POST /reload).
	// When nil, a single-model registry named "default" is built from Cfg
	// and Learned.
	Models *core.ModelRegistry
	// Cfg and Learned are the single-model fallback used when Models is
	// nil (typically from core.LoadModel).
	Cfg     core.Config
	Learned *core.Learned
	// QueueLen bounds each stream's event queue (default 1024).
	QueueLen int
	// Backpressure selects the full-queue policy (default Block).
	Backpressure Backpressure
	// Sinks builds one recorder sink per stream (default NullFactory:
	// stat-only serving with exact byte accounting).
	Sinks recorder.SinkFactory
	// DrainTimeout bounds how long shutdown waits for streams to drain
	// before force-closing connections (default 10s).
	DrainTimeout time.Duration
	// Anomalies, when non-nil, persists every gate trip into the anomaly
	// store: the tripped window plus AnomalyContext preceding windows,
	// the LOF score, and the scoring model's identity. The server does not
	// own the store; the caller closes it after Serve returns.
	Anomalies *anomalystore.Store
	// AnomalyContext is how many pre-trip windows each incident carries
	// (0 means DefaultAnomalyContext; negative disables context).
	AnomalyContext int
	// Logger receives serving diagnostics (default: discard). Build one
	// with NewLogger to get the -log-format text/json behaviour.
	Logger *slog.Logger
	// FlightEvery samples every Nth event per stream into the flight
	// recorder (0 means DefaultFlightEvery; negative disables sampling).
	FlightEvery int
	// FlightCap bounds the flight recorder ring (default DefaultFlightCap).
	FlightCap int
	// StallAfter is how long a stream may hold queued events without the
	// scorer making progress before /streams flags it stalled and the
	// enduratrace_streams_stalled gauge counts it (default
	// DefaultStallAfter; negative disables the watchdog).
	StallAfter time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the admin
	// listener. Off by default: profiles expose internals and CPU
	// captures cost real cycles, so the handlers exist only when asked
	// for (the -pprof flag).
	EnablePprof bool
	// Alerts, when non-nil, feeds every scoring decision through the
	// alerting pipeline: each stream gets a hysteresis state machine
	// (alert.Options.MinTrips / ClearAfter) whose firing/resolved
	// transitions are deduped, rate limited and delivered to the
	// configured sinks. With Anomalies also set, New installs the
	// pipeline's transition hook so every transition is persisted to the
	// store as a window-free incident. The server does not own the
	// pipeline; the caller closes it after Serve returns (so queued
	// notifications drain after the last stream ends).
	Alerts *alert.Pipeline
}

// Defaults for the observability knobs.
const (
	DefaultFlightEvery = 256
	DefaultFlightCap   = 512
	DefaultStallAfter  = 30 * time.Second
)

// ingestBatch is how many decoded events the ingest goroutine moves per
// FrameReader.ReadBatch / eventQueue.PushBatch round trip: large enough
// to amortise the queue mutex and decode bookkeeping to noise, small
// enough that a batch is a fraction of the default queue capacity.
const ingestBatch = 512

// StreamResult is one stream's final accounting, reported after it closes.
type StreamResult struct {
	ID              string  `json:"id"`
	Model           string  `json:"model"`
	Windows         int     `json:"windows"`
	GateTrips       int     `json:"gate_trips"`
	Anomalies       int     `json:"anomalies"`
	RecordedWindows int     `json:"recorded_windows"`
	RecordedBytes   int64   `json:"recorded_bytes"`
	FullBytes       int64   `json:"full_bytes"`
	DroppedEvents   int64   `json:"dropped_events"`
	SpanS           float64 `json:"span_s"`
	// Clean is true when the client terminated the stream with the
	// end-of-stream marker; false for truncated connections and streams
	// cut by server shutdown.
	Clean bool   `json:"clean"`
	Err   string `json:"err,omitempty"`
}

// StatsReport is the aggregate view served by /stats and returned by
// Report — the `monitor -json` shape plus serving counters. Totals cover
// every stream ever served (closed streams' finals plus live streams'
// current counters).
type StatsReport struct {
	Windows         int64    `json:"windows"`
	GateTrips       int64    `json:"gate_trips"`
	LOFCalls        int64    `json:"lof_calls"`
	Anomalies       int64    `json:"anomalies"`
	RecordedWindows int64    `json:"recorded_windows"`
	FullBytes       int64    `json:"full_bytes"`
	RecordedBytes   int64    `json:"recorded_bytes"`
	ReductionFactor *float64 `json:"reduction_factor"`
	StreamsLive     int      `json:"streams_live"`
	StreamsClosed   int      `json:"streams_closed"`
	// StreamsRejected counts every stream refused at registration, whatever
	// the reason; RejectedUnknownModel is the unknown-model-name subset.
	// The remainder is sink-creation and other registration failures — all
	// of them must show up here, or refused streams vanish from the books.
	StreamsRejected      int64 `json:"streams_rejected"`
	RejectedUnknownModel int64 `json:"rejected_unknown_model"`
	DroppedEvents        int64 `json:"dropped_events"`
	// AnomalyIncidents counts gate trips persisted to the anomaly store;
	// AnomalyStoreErrors counts appends that failed (the stream continues).
	// Both stay zero when no store is attached.
	AnomalyIncidents   int64 `json:"anomaly_incidents"`
	AnomalyStoreErrors int64 `json:"anomaly_store_errors"`
	// AlertTransitions counts alert firing/resolved transitions persisted
	// to the anomaly store (every transition, before dedup and rate
	// limiting); AlertStoreErrors counts those appends that failed.
	// AlertsFiring is the number of streams with an open incident right
	// now. All zero without an alert pipeline.
	AlertTransitions int64                  `json:"alert_transitions"`
	AlertStoreErrors int64                  `json:"alert_store_errors"`
	AlertsFiring     int                    `json:"alerts_firing"`
	ModelPoints      int                    `json:"model_points"`
	UptimeS          anomalystore.JSONFloat `json:"uptime_s"`
}

// StreamView is one live stream's row in /streams.
type StreamView struct {
	core.StreamStatus
	QueueDepth      int   `json:"queue_depth"`
	EventsIngested  int64 `json:"events_ingested"`
	EventsScored    int64 `json:"events_scored"`
	DroppedEvents   int64 `json:"dropped_events"`
	FullBytes       int64 `json:"full_bytes"`
	RecordedBytes   int64 `json:"recorded_bytes"`
	RecordedWindows int64 `json:"recorded_windows"`
	// LastIngestAgeS and LastProgressAgeS are the stall watchdog's inputs:
	// seconds since the ingester last enqueued an event and since the
	// scorer last dequeued one. Stalled flags a stream holding queued
	// events whose scorer has made no progress for Options.StallAfter —
	// the signature of a wedged model or a sink blocked on I/O (an empty
	// queue is never stalled, it is just idle).
	LastIngestAgeS   anomalystore.JSONFloat `json:"last_ingest_age_s"`
	LastProgressAgeS anomalystore.JSONFloat `json:"last_progress_age_s"`
	Stalled          bool                   `json:"stalled"`
}

// stream is the server-side state of one live connection.
type stream struct {
	h         *core.StreamHandle
	q         *eventQueue
	sink      *liveSink
	conn      net.Conn
	fullBytes atomic.Int64
}

// ioTotals accumulates the byte-level counters of closed streams (the
// monitor counters live in the core.StreamRegistry).
type ioTotals struct {
	fullBytes  int64
	recBytes   int64
	recWindows int64
	dropped    int64
}

func (t ioTotals) add(o ioTotals) ioTotals {
	return ioTotals{
		fullBytes:  t.fullBytes + o.fullBytes,
		recBytes:   t.recBytes + o.recBytes,
		recWindows: t.recWindows + o.recWindows,
		dropped:    t.dropped + o.dropped,
	}
}

// Server is the serving daemon. Build with New, bind with Listen, then
// Serve until the context is cancelled; Results/Report read the final
// accounting afterwards.
type Server struct {
	opts   Options
	models *core.ModelRegistry
	reg    *core.StreamRegistry
	log    *slog.Logger
	start  time.Time

	// flight is the sampled event flight recorder (nil when disabled).
	flight *obs.Flight
	// obsBy holds one Pipeline of stage histograms per model name,
	// created on first use and never removed: latency history survives
	// stream churn and model reloads, like the counter totals do.
	obsMu sync.Mutex
	obsBy map[string]*obs.Pipeline

	traceLn net.Listener
	adminLn net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	streams  map[string]*stream
	results  []StreamResult
	closed   ioTotals
	closedBy map[string]ioTotals // per-model byte totals of closed streams
	shutdown bool

	// Streams refused at registration, by reason. Every refusal path must
	// bump exactly one of these — a rejection that increments nothing is
	// invisible to /stats and /metrics, which is the accounting bug this
	// split fixes (only unknown-model used to be counted).
	rejUnknown  atomic.Int64 // model name not in the registry
	rejRegister atomic.Int64 // other registry Register failures
	rejSink     atomic.Int64 // sink factory refused the stream

	anomIncidents atomic.Int64 // gate trips persisted to the anomaly store
	anomStoreErrs atomic.Int64 // anomaly store appends that failed

	alertPersisted   atomic.Int64 // alert transitions persisted to the anomaly store
	alertPersistErrs atomic.Int64 // alert-transition appends that failed
	alertErrLogged   atomic.Bool  // one log line for persist failures, not one per transition

	wg sync.WaitGroup
}

// New validates the options and builds a server (not yet listening).
func New(opts Options) (*Server, error) {
	models := opts.Models
	if models == nil {
		var err error
		models, err = core.NewModelRegistry("",
			&core.NamedModel{Name: "default", Cfg: opts.Cfg, Learned: opts.Learned})
		if err != nil {
			return nil, err
		}
	}
	if opts.Sinks == nil {
		opts.Sinks = recorder.NullFactory()
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 1024
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 10 * time.Second
	}
	if opts.FlightEvery == 0 {
		opts.FlightEvery = DefaultFlightEvery
	}
	if opts.FlightCap <= 0 {
		opts.FlightCap = DefaultFlightCap
	}
	if opts.StallAfter == 0 {
		opts.StallAfter = DefaultStallAfter
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	var flight *obs.Flight
	if opts.FlightEvery > 0 {
		flight = obs.NewFlight(opts.FlightEvery, opts.FlightCap)
	}
	srv := &Server{
		opts:   opts,
		models: models,
		reg:    core.NewStreamRegistry(models),
		log:    logger,
		//lint:ignore monotime uptime is reported against the wall-clock start for operators
		start:    time.Now(),
		flight:   flight,
		obsBy:    make(map[string]*obs.Pipeline),
		conns:    make(map[net.Conn]struct{}),
		streams:  make(map[string]*stream),
		closedBy: make(map[string]ioTotals),
	}
	if opts.Alerts != nil && opts.Anomalies != nil {
		// Persist every alert transition into the anomaly store alongside
		// the gate-trip incidents; installed before any stream registers.
		opts.Alerts.SetTransitionHook(srv.persistAlertTransition)
	}
	return srv, nil
}

// pipelineFor returns the stage-histogram bundle for a model name,
// creating it on first use.
func (s *Server) pipelineFor(model string) *obs.Pipeline {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	p := s.obsBy[model]
	if p == nil {
		p = &obs.Pipeline{}
		s.obsBy[model] = p
	}
	return p
}

// pipelines snapshots the per-model pipeline map for the metrics writer.
func (s *Server) pipelines() map[string]*obs.Pipeline {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	out := make(map[string]*obs.Pipeline, len(s.obsBy))
	for k, v := range s.obsBy {
		out[k] = v
	}
	return out
}

// Flight returns the event flight recorder (nil when disabled).
func (s *Server) Flight() *obs.Flight { return s.flight }

// Models returns the server's model registry.
func (s *Server) Models() *core.ModelRegistry { return s.models }

// Reload hot-swaps the model registry from its directory (see
// core.ModelRegistry.Reload): in-flight streams finish on the model they
// were registered with, streams accepted afterwards resolve against the
// new set. Exposed over the admin endpoint as POST /reload and typically
// also wired to SIGHUP by the caller.
func (s *Server) Reload() (core.ReloadReport, error) {
	rep, err := s.models.Reload()
	if err != nil {
		s.log.Error("reload failed", "err", err)
		return rep, err
	}
	s.log.Info("models reloaded", "generation", rep.Generation,
		"models", strings.Join(rep.Models, " "), "default", rep.Default,
		"added", rep.Added, "removed", rep.Removed)
	return rep, nil
}

// Listen binds the trace ingestion listener and, when adminAddr is
// non-empty, the HTTP admin listener. Use port 0 for ephemeral ports and
// TraceAddr/AdminAddr to discover them.
func (s *Server) Listen(traceAddr, adminAddr string) error {
	ln, err := net.Listen("tcp", traceAddr)
	if err != nil {
		return fmt.Errorf("serve: trace listener: %w", err)
	}
	s.traceLn = ln
	if adminAddr != "" {
		aln, err := net.Listen("tcp", adminAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: admin listener: %w", err)
		}
		s.adminLn = aln
	}
	return nil
}

// TraceAddr returns the bound trace listener address.
func (s *Server) TraceAddr() net.Addr { return s.traceLn.Addr() }

// AdminAddr returns the bound admin listener address (nil when admin is
// disabled).
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

// Serve accepts and monitors streams until ctx is cancelled, then shuts
// down gracefully: stop accepting, stop ingesting, drain every stream's
// queue, flush and close every sink. It returns once every stream has
// finished (or DrainTimeout forced the stragglers).
func (s *Server) Serve(ctx context.Context) error {
	if s.traceLn == nil {
		return errors.New("serve: Serve before Listen")
	}
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- s.acceptLoop() }()
	var adminSrv *http.Server
	if s.adminLn != nil {
		adminSrv = s.newAdminServer()
		go s.serveAdmin(adminSrv)
	}

	var err error
	select {
	case <-ctx.Done():
	case err = <-acceptErr:
	}
	s.beginShutdown()
	if err == nil {
		// Wait for the accept loop to observe the closed listener.
		if aerr := <-acceptErr; aerr != nil {
			err = aerr
		}
	}
	s.drain()
	if adminSrv != nil {
		s.shutdownAdmin(adminSrv)
	}
	return err
}

func (s *Server) acceptLoop() error {
	for {
		conn, err := s.traceLn.Accept()
		if err != nil {
			if s.isShuttingDown() {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) isShuttingDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// beginShutdown stops accepting and unblocks every ingest read; the
// already-decoded and queued events still get scored (the drain).
func (s *Server) beginShutdown() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.shutdown = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.traceLn.Close()
	for _, c := range conns {
		// Expire reads instead of closing: the ingest goroutine wakes with
		// a deadline error and closes its queue, and the scorer drains.
		//lint:ignore monotime net deadlines are wall-clock time.Time by API contract
		c.SetReadDeadline(time.Now())
	}
}

// drain waits for every stream handler; after DrainTimeout the remaining
// connections are force-closed (their scorers still finish their queues).
func (s *Server) drain() {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(s.opts.DrainTimeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
}

// handleConn runs one stream: decode frames off the socket into the
// bounded queue while the monitor scores the other end of it.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	fr, err := traceio.NewFrameReader(conn)
	if err != nil {
		s.log.Warn("connection rejected", "remote", conn.RemoteAddr().String(), "err", err)
		return
	}
	h, err := s.reg.Register(fr.StreamName(), fr.ModelName())
	if err != nil {
		// A registration failure is a clean, immediate rejection: no stream
		// is registered and the deferred conn.Close surfaces the refusal to
		// the client as an ended stream (a write error on its next flush)
		// rather than letting it pump events into a void.
		if errors.Is(err, core.ErrUnknownModel) {
			s.rejUnknown.Add(1)
		} else {
			s.rejRegister.Add(1)
		}
		s.log.Warn("stream registration failed", "remote", conn.RemoteAddr().String(), "err", err)
		fr.Release()
		return
	}
	sink, err := s.opts.Sinks(h.ID())
	if err != nil {
		s.rejSink.Add(1)
		s.log.Warn("sink creation failed", "stream", h.ID(), "err", err)
		// Discard, not Close: the stream never served, and a refusal that
		// also bumped the closed-stream count would be double-booked.
		h.Discard()
		fr.Release()
		return
	}
	ls := &liveSink{inner: sink}
	st := &stream{
		h:    h,
		q:    newEventQueue(s.opts.QueueLen, s.opts.Backpressure),
		sink: ls,
		conn: conn,
	}
	pipe := s.pipelineFor(h.Model().Name)
	st.q.instrument(pipe)
	st.fullBytes.Store(int64(traceio.HeaderSize()))
	s.mu.Lock()
	s.streams[h.ID()] = st
	s.mu.Unlock()
	s.log.Info("stream opened", "stream", h.ID(),
		"remote", conn.RemoteAddr().String(), "model", h.Model().Name)

	var flightEvery uint64
	if s.flight != nil {
		flightEvery = s.flight.EveryN()
	}
	ingestErr := make(chan error, 1)
	go func() {
		var prev time.Duration
		first := true
		var err error
		var seq uint64
		evBuf := make([]trace.Event, ingestBatch)
		for {
			// The decode stage is timed around fr.ReadBatch, which blocks on
			// the socket only until the first event of a batch is available:
			// the histogram honestly includes network wait (an idle stream
			// shows large decode latencies), amortised evenly across the
			// batch. Byte accounting stays per-event and exact.
			t0 := obs.Now()
			var n int
			n, err = fr.ReadBatch(evBuf)
			if n > 0 {
				now := obs.Now()
				share := (now - t0) / int64(n)
				var batchBytes int64
				for i := 0; i < n; i++ {
					pipe.Decode.ObserveNs(share)
					batchBytes += int64(traceio.EncodedSize(evBuf[i], prev, first))
					prev, first = evBuf[i].TS, false
				}
				st.fullBytes.Add(batchBytes)
				if !st.q.PushBatch(evBuf[:n], now, share, seq+1, flightEvery) {
					err = nil // queue closed by shutdown
					break
				}
				seq += uint64(n)
			}
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			err = nil
		}
		h.SetState(core.StreamDraining)
		st.q.Close()
		ingestErr <- err
	}()

	// The ingest loop already accounts received bytes (including events a
	// DropOldest queue sheds before scoring); don't pay for it twice.
	h.Monitor().DisableByteAccounting()
	// The score timer fires synchronously before the decision callback on
	// the scoring goroutine, so lastScoreNs is always the duration of the
	// window the callback is looking at.
	var lastScoreNs int64
	h.Monitor().SetScoreTimer(func(d time.Duration) {
		pipe.Score.Observe(d)
		lastScoreNs = int64(d)
	})
	var inner func(core.Decision) error
	if s.opts.Anomalies != nil {
		inner = s.newTripRecorder(h).onDecision
	}
	// The alert state machine rides the same decision callback, on the
	// scoring goroutine; its no-alert fast path keeps the quiet-stream
	// cost at zero allocations.
	var as *alert.Stream
	if s.opts.Alerts != nil {
		as = s.opts.Alerts.Register(h.ID(), h.Model().Name)
	}
	onDecision := func(d core.Decision) error {
		now := obs.Now()
		// Every event popped since the previous decision belongs to this
		// window: its end-to-end latency is arrival → this decision. This
		// is what makes the e2e histogram's _count equal the number of
		// events scored (the selftest asserts exactly that).
		for _, enq := range st.q.takeArrivals() {
			pipe.E2E.ObserveNs(now - enq)
		}
		if s.flight != nil {
			fm, skipped, ok := st.q.takeFlight()
			for i := 0; i < skipped; i++ {
				s.flight.NoteSkipped()
			}
			if ok {
				e2e := now - fm.enqNs
				rec := obs.Record{
					Stream: h.ID(),
					Model:  h.Model().Name,
					Seq:    fm.seq,
					//lint:ignore monotime flight records carry a wall-clock arrival time for operators
					Wall:        time.Now().Add(-time.Duration(e2e)),
					DecodeNs:    fm.decodeNs,
					QueueNs:     fm.waitNs,
					ScoreNs:     lastScoreNs,
					E2ENs:       e2e,
					Window:      d.Window.Index,
					GateTripped: d.GateTripped,
					Anomalous:   d.Anomalous,
				}
				if !math.IsInf(d.GateDist, 0) && !math.IsNaN(d.GateDist) {
					g := d.GateDist
					rec.GateDist = &g
				}
				if d.GateTripped && !math.IsInf(d.LOF, 0) && !math.IsNaN(d.LOF) {
					l := d.LOF
					rec.LOF = &l
				}
				s.flight.Add(rec)
			}
		}
		if as != nil {
			as.Observe(alert.Observation{
				GateTripped: d.GateTripped,
				Anomalous:   d.Anomalous,
				GateDist:    d.GateDist,
				LOF:         d.LOF,
				WindowIndex: d.Window.Index,
			})
		}
		if inner != nil {
			return inner(d)
		}
		return nil
	}
	stats, runErr := h.Monitor().Run(st.q, ls, onDecision)
	if as != nil {
		// Run has returned, so this is still the (former) scoring
		// goroutine: the stream going away resolves any open incident.
		as.Close()
	}
	// Close the queue before joining the ingester: if Run exited early (a
	// sink error), the ingest goroutine may be parked in a Block-policy
	// Push with nobody left to consume — Close (idempotent) unparks it.
	st.q.Close()
	ierr := <-ingestErr
	// The ingest goroutine has exited: the reader (and its pooled buffers)
	// can go back for the next connection.
	fr.Release()
	closeErr := ls.Close()

	clean := ierr == nil && runErr == nil && closeErr == nil
	var errMsg string
	for _, e := range []error{runErr, closeErr, ierr} {
		if e == nil {
			continue
		}
		if errors.Is(e, os.ErrDeadlineExceeded) && s.isShuttingDown() {
			// Shutdown cut the stream: not clean, but not a failure.
			clean = false
			continue
		}
		errMsg = e.Error()
		clean = false
		break
	}

	res := StreamResult{
		ID:              h.ID(),
		Model:           h.Model().Name,
		Windows:         stats.Windows,
		GateTrips:       stats.GateTrips,
		Anomalies:       stats.Anomalies,
		RecordedWindows: ls.inner.WindowsRecorded(),
		RecordedBytes:   ls.inner.BytesWritten(),
		FullBytes:       st.fullBytes.Load(),
		DroppedEvents:   st.q.Counters().Dropped,
		SpanS:           (stats.End - stats.Start).Seconds(),
		Clean:           clean,
		Err:             errMsg,
	}
	final := ioTotals{
		fullBytes:  res.FullBytes,
		recBytes:   res.RecordedBytes,
		recWindows: int64(res.RecordedWindows),
		dropped:    res.DroppedEvents,
	}
	s.mu.Lock()
	delete(s.streams, h.ID())
	s.results = append(s.results, res)
	s.closed = s.closed.add(final)
	s.closedBy[res.Model] = s.closedBy[res.Model].add(final)
	s.mu.Unlock()
	h.Close()
	s.log.Info("stream closed", "stream", h.ID(), "model", res.Model,
		"windows", res.Windows, "anomalies", res.Anomalies,
		"recorded_bytes", res.RecordedBytes, "clean", clean)
}

// Stats assembles the live aggregate report (served by /stats). Safe to
// call at any time, including mid-serve. The shape predates multi-model
// serving and is kept byte-compatible: ModelPoints reports the current
// default model (per-model breakdowns live on /metrics).
func (s *Server) Stats() StatsReport {
	total, live, closed := s.reg.Totals()
	rejUnknown := s.rejUnknown.Load()
	rep := StatsReport{
		Windows:              total.Windows,
		GateTrips:            total.GateTrips,
		LOFCalls:             total.LOFCalls,
		Anomalies:            total.Anomalies,
		StreamsLive:          live,
		StreamsClosed:        closed,
		StreamsRejected:      rejUnknown + s.rejRegister.Load() + s.rejSink.Load(),
		RejectedUnknownModel: rejUnknown,
		AnomalyIncidents:     s.anomIncidents.Load(),
		AnomalyStoreErrors:   s.anomStoreErrs.Load(),
		AlertTransitions:     s.alertPersisted.Load(),
		AlertStoreErrors:     s.alertPersistErrs.Load(),
		ModelPoints:          s.models.Default().Learned.Model.Len(),
		UptimeS:              anomalystore.JSONFloat(time.Since(s.start).Seconds()),
	}
	if s.opts.Alerts != nil {
		rep.AlertsFiring = s.opts.Alerts.FiringStreams()
	}
	s.mu.Lock()
	rep.FullBytes = s.closed.fullBytes
	rep.RecordedBytes = s.closed.recBytes
	rep.RecordedWindows = s.closed.recWindows
	rep.DroppedEvents = s.closed.dropped
	for _, st := range s.streams {
		rep.FullBytes += st.fullBytes.Load()
		rep.RecordedBytes += st.sink.bytes.Load()
		rep.RecordedWindows += st.sink.windows.Load()
		rep.DroppedEvents += st.q.Counters().Dropped
	}
	s.mu.Unlock()
	if rep.RecordedBytes > 0 {
		rf := float64(rep.FullBytes) / float64(rep.RecordedBytes)
		rep.ReductionFactor = &rf
	}
	return rep
}

// Streams lists the live streams with queue and sink counters (served by
// /streams).
func (s *Server) Streams() []StreamView {
	statuses := s.reg.Streams()
	out := make([]StreamView, 0, len(statuses))
	s.mu.Lock()
	defer s.mu.Unlock()
	now := obs.Now()
	for _, status := range statuses {
		st, ok := s.streams[status.ID]
		if !ok {
			continue // closed between the registry and server snapshots
		}
		qc := st.q.Counters()
		pushNs, popNs := st.q.LastTimes()
		v := StreamView{
			StreamStatus:     status,
			QueueDepth:       qc.Depth,
			EventsIngested:   qc.Ingested,
			EventsScored:     qc.Scored,
			DroppedEvents:    qc.Dropped,
			FullBytes:        st.fullBytes.Load(),
			RecordedBytes:    st.sink.bytes.Load(),
			RecordedWindows:  st.sink.windows.Load(),
			LastIngestAgeS:   anomalystore.JSONFloat(float64(now-pushNs) / 1e9),
			LastProgressAgeS: anomalystore.JSONFloat(float64(now-popNs) / 1e9),
		}
		if s.opts.StallAfter > 0 && qc.Depth > 0 &&
			now-popNs > int64(s.opts.StallAfter) {
			v.Stalled = true
		}
		out = append(out, v)
	}
	return out
}

// Results returns the per-stream final accounting, in close order. Call
// after Serve returns (streams still live are not included).
func (s *Server) Results() []StreamResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamResult, len(s.results))
	copy(out, s.results)
	return out
}

// liveSink decorates a recorder.Sink with atomically readable byte and
// window counters so admin endpoints can observe a stream's recording
// while its scoring goroutine owns the sink.
type liveSink struct {
	inner   recorder.Sink
	bytes   atomic.Int64
	windows atomic.Int64
}

func (s *liveSink) Record(w window.Window) error {
	err := s.inner.Record(w)
	s.bytes.Store(s.inner.BytesWritten())
	s.windows.Store(int64(s.inner.WindowsRecorded()))
	return err
}

func (s *liveSink) Close() error {
	err := s.inner.Close()
	// Exact only now for compressing sinks, which buffer until Close.
	s.bytes.Store(s.inner.BytesWritten())
	s.windows.Store(int64(s.inner.WindowsRecorded()))
	return err
}

func (s *liveSink) BytesWritten() int64  { return s.inner.BytesWritten() }
func (s *liveSink) WindowsRecorded() int { return s.inner.WindowsRecorded() }
