package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enduratrace/internal/alert"
	"enduratrace/internal/anomalystore"
)

// testAlertSink captures every delivered notification in-process.
type testAlertSink struct {
	mu    sync.Mutex
	notes []alert.Notification
	n     atomic.Int64
}

func (s *testAlertSink) Name() string { return "capture" }
func (s *testAlertSink) Deliver(_ context.Context, n alert.Notification) error {
	s.mu.Lock()
	s.notes = append(s.notes, n)
	s.mu.Unlock()
	s.n.Add(1)
	return nil
}
func (s *testAlertSink) Close() error { return nil }

// TestSelftestAlertPipelineEndToEnd wires the alerting pipeline into real
// selftest traffic with an anomaly store attached: perturbed streams must
// fire incidents, every transition must balance in the books (Selftest
// asserts alert.Books.Balanced), reach the capture sink, and land in the
// anomaly store as window-free records the gate-trip incidents ride
// alongside.
func TestSelftestAlertPipelineEndToEnd(t *testing.T) {
	cfg, learned := fixture(t)
	// Recent ring sized above anything the run can append, so counting
	// record kinds through it sees every record.
	store, err := anomalystore.Open(t.TempDir(), anomalystore.Options{Recent: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sink := &testAlertSink{}
	alerts := alert.NewPipeline(alert.Options{
		MinTrips:   1, // every anomalous window opens an incident
		ClearAfter: time.Millisecond,
		DedupTTL:   -1, // exact books: every transition must be delivered
		QueueLen:   4096,
		Sinks:      []alert.Sink{sink},
	})
	rep, err := Selftest(context.Background(), SelftestOptions{
		Cfg:       cfg,
		Learned:   learned,
		Clients:   4,
		Duration:  8 * time.Second,
		Factor:    3,
		Anomalies: store,
		Alerts:    alerts,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Alerts
	if b == nil {
		t.Fatal("selftest report carries no alert books")
	}
	if b.Fired == 0 {
		t.Fatal("perturbed selftest fired no alerts; increase Factor or Duration")
	}
	if b.Fired != b.Resolved {
		t.Fatalf("closed streams left incidents open: fired %d, resolved %d", b.Fired, b.Resolved)
	}
	// Dedup and rate limiting are off, the queue is deep: every transition
	// must have reached the sink.
	if got := sink.n.Load(); got != b.Fired+b.Resolved {
		t.Fatalf("sink saw %d notifications, pipeline emitted %d", got, b.Fired+b.Resolved)
	}
	if rep.Stats.AlertTransitions != b.Fired+b.Resolved {
		t.Fatalf("persisted %d transitions, emitted %d", rep.Stats.AlertTransitions, b.Fired+b.Resolved)
	}

	// The store holds both record kinds; alert records are window-free and
	// carry the firing/resolved marker in their metadata.
	var alertRecs, tripRecs int64
	for _, meta := range store.Recent(int(rep.Stats.AnomalyIncidents + rep.Stats.AlertTransitions)) {
		if meta.Alert != "" {
			alertRecs++
		} else {
			tripRecs++
		}
	}
	if alertRecs != rep.Stats.AlertTransitions {
		t.Fatalf("store metas show %d alert records, server persisted %d", alertRecs, rep.Stats.AlertTransitions)
	}
	if tripRecs != rep.Stats.AnomalyIncidents {
		t.Fatalf("store metas show %d gate-trip records, server persisted %d", tripRecs, rep.Stats.AnomalyIncidents)
	}

	if err := alerts.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAlertsEndpointAndMetrics drives the admin surface of a live server
// with a pipeline attached: GET /alerts serves the snapshot, /metrics
// carries the enduratrace_alerts_* families, and a server without a
// pipeline 404s /alerts with an explanation.
func TestAlertsEndpointAndMetrics(t *testing.T) {
	cfg, learned := fixture(t)
	alerts := alert.NewPipeline(alert.Options{
		Sinks: []alert.Sink{&testAlertSink{}},
	})
	defer alerts.Close()
	srv, err := New(Options{Cfg: cfg, Learned: learned, Alerts: alerts})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()
	base := "http://" + srv.AdminAddr().String()

	// Drive some transitions straight through the pipeline so the
	// endpoint has material (streams registered out-of-band behave the
	// same as served ones).
	s := alerts.Register("manual-0", "default")
	s.Observe(alert.Observation{Anomalous: true, GateDist: 1.5, LOF: 3})
	s.Observe(alert.Observation{Anomalous: true, GateDist: 1.5, LOF: 3})
	s.Observe(alert.Observation{Anomalous: true, GateDist: 1.5, LOF: 3})
	if s.State() != alert.StateFiring {
		t.Fatalf("stream state %v after MinTrips observations", s.State())
	}

	var snap alert.Snapshot
	if err := getJSON(base+"/alerts", &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Books.Fired != 1 {
		t.Fatalf("endpoint books show %d fired, want 1", snap.Books.Fired)
	}
	if len(snap.Streams) != 1 || snap.Streams[0].State != "firing" {
		t.Fatalf("endpoint streams %+v, want one firing", snap.Streams)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Kind != alert.KindFiring {
		t.Fatalf("endpoint recent %+v, want one firing notification", snap.Recent)
	}

	stats := srv.Stats()
	if stats.AlertsFiring != 1 {
		t.Fatalf("/stats alerts_firing %d, want 1", stats.AlertsFiring)
	}

	body, err := getBody(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheusText(body); err != nil {
		t.Fatalf("metrics with alert families not valid Prometheus text: %v", err)
	}
	for _, want := range []string{
		`enduratrace_alerts_fired_total{model="default"} 1`,
		`enduratrace_alerts_delivered_total{sink="capture"}`,
		`enduratrace_alerts_rate_limited_global_total 0`,
		`enduratrace_alerts_queue_dropped_total 0`,
		`enduratrace_alerts_firing 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	s.Close()

	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}

	// No pipeline: /alerts is a clean 404 with an explanation.
	bare, err := New(Options{Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	serveErr2 := make(chan error, 1)
	go func() { serveErr2 <- bare.Serve(ctx2) }()
	if err := getJSON("http://"+bare.AdminAddr().String()+"/alerts", new(map[string]any)); err == nil {
		t.Fatal("pipeline-less server served /alerts")
	}
	cancel2()
	if err := <-serveErr2; err != nil {
		t.Fatal(err)
	}
}
