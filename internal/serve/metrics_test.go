package serve

import (
	"strings"
	"testing"
)

func TestValidatePrometheusText(t *testing.T) {
	good := strings.Join([]string{
		"# HELP enduratrace_windows_total Windows scored.",
		"# TYPE enduratrace_windows_total counter",
		`enduratrace_windows_total{model="a"} 12`,
		`enduratrace_windows_total{model="b"} 0`,
		`enduratrace_stream_queue_depth{stream="cam \"3\"",model="a"} 4`,
		"enduratrace_uptime_seconds 1.25",
		"enduratrace_uptime_seconds 1.25 1690000000",
		"",
	}, "\n")
	n, err := ValidatePrometheusText([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("%d samples, want 5", n)
	}

	bad := []string{
		"{no_name} 1",
		"enduratrace_x{unterminated=\"a 1",
		"enduratrace_x one",
		"enduratrace_x 1 2 3",
		"enduratrace_x",
	}
	for _, line := range bad {
		if _, err := ValidatePrometheusText([]byte(line + "\n")); err == nil {
			t.Errorf("ValidatePrometheusText accepted %q", line)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`q"uote`:     `q\"uote`,
		"back\\lash": `back\\lash`,
		"new\nline":  `new\nline`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}
