package serve

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/mediasim"
	"enduratrace/internal/perturb"
	"enduratrace/internal/recorder"
	"enduratrace/internal/trace"
	"enduratrace/internal/traceio"
	"enduratrace/internal/window"
)

// learnFixture fits a small model from a short clean simulation; shared by
// every serve test via sync.Once (learning dominates test wall time).
var (
	fixtureOnce    sync.Once
	fixtureCfg     core.Config
	fixtureLearned *core.Learned
	fixtureErr     error
)

func fixture(t testing.TB) (core.Config, *core.Learned) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := core.NewConfig(mediasim.NumEventTypes)
		cfg.IncludeRate = true
		cfg.Alpha = 2.5
		cfg.GateThreshold = 0.1
		// Serve the fixture the way production serving is meant to run:
		// through the precomputed-log KL-family kernels.
		cfg.FastKernels = true
		sc := mediasim.DefaultConfig()
		sc.Duration = 30 * time.Second
		sc.Seed = 42
		sim, err := mediasim.New(sc)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureCfg = cfg
		fixtureLearned, fixtureErr = core.Learn(cfg, sim)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureCfg, fixtureLearned
}

// countEvents streams a deterministic simulation and returns its events.
func simEvents(t *testing.T, seed int64, d time.Duration, factor float64) []trace.Event {
	t.Helper()
	sc := mediasim.DefaultConfig()
	sc.Duration = d
	sc.Seed = seed
	if factor > 1 {
		load, err := perturb.Periodic(factor, d/4, d/2, d/10, d)
		if err != nil {
			t.Fatal(err)
		}
		sc.Load = load
	}
	sim, err := mediasim.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ReadAll(sim)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// expectWindows counts the windows the server-side windower will emit for
// evs, including the final flush.
func expectWindows(t *testing.T, cfg core.Config, evs []trace.Event) int64 {
	t.Helper()
	var n int64
	err := window.Stream(trace.NewSliceReader(evs), cfg.NewWindower(), func(window.Window) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSelftestEndToEnd is the acceptance check: 8 clients over real
// loopback sockets against one shared Learned, graceful shutdown flushes
// every sink, and the /stats JSON totals equal the per-client window
// counts. Selftest itself errors on any mismatch; the test re-asserts the
// headline equalities explicitly.
func TestSelftestEndToEnd(t *testing.T) {
	cfg, learned := fixture(t)
	rep, err := Selftest(context.Background(), SelftestOptions{
		Cfg:      cfg,
		Learned:  learned,
		Clients:  8,
		Duration: 8 * time.Second,
		Factor:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clients != 8 || len(rep.PerClient) != 8 || len(rep.Results) != 8 {
		t.Fatalf("clients=%d per-client=%d results=%d, want 8 each",
			rep.Clients, len(rep.PerClient), len(rep.Results))
	}
	var sent int64
	for _, c := range rep.PerClient {
		if c.Windows == 0 || c.Events == 0 {
			t.Fatalf("client %s sent nothing: %+v", c.Stream, c)
		}
		sent += c.Windows
	}
	if rep.Stats.Windows != sent {
		t.Fatalf("/stats windows %d != %d windows sent", rep.Stats.Windows, sent)
	}
	if rep.Stats.StreamsClosed != 8 || rep.Stats.StreamsLive != 0 {
		t.Fatalf("streams closed=%d live=%d, want 8/0", rep.Stats.StreamsClosed, rep.Stats.StreamsLive)
	}
	if rep.Stats.Anomalies == 0 {
		t.Fatal("perturbed selftest streams produced no anomalies")
	}
	for _, res := range rep.Results {
		if !res.Clean {
			t.Fatalf("stream %s not clean: %s", res.ID, res.Err)
		}
		if res.DroppedEvents != 0 {
			t.Fatalf("stream %s dropped %d events under Block backpressure", res.ID, res.DroppedEvents)
		}
	}
}

// closeTrackingSink wraps a sink and records whether Close was called.
type closeTrackingSink struct {
	recorder.Sink
	closed *sync.Map
	id     string
}

func (s *closeTrackingSink) Close() error {
	s.closed.Store(s.id, true)
	return s.Sink.Close()
}

// TestGracefulShutdownFlushesSinks connects N clients, sends their whole
// streams WITHOUT the end-of-stream marker (so the connections stay open,
// mid-stream), waits until the server has scored everything sent, then
// cancels the serve context — the SIGINT path. Every sink must be flushed
// and closed, and the /stats totals must equal what the clients sent.
func TestGracefulShutdownFlushesSinks(t *testing.T) {
	cfg, learned := fixture(t)
	const clients = 4

	var closed sync.Map
	dir := t.TempDir()
	dirFactory, err := recorder.NewDirFactory(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(id string) (recorder.Sink, error) {
		inner, err := dirFactory(id)
		if err != nil {
			return nil, err
		}
		closed.Store(id, false)
		return &closeTrackingSink{Sink: inner, closed: &closed, id: id}, nil
	}

	srv, err := New(Options{Cfg: cfg, Learned: learned, Sinks: factory})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	// Each client sends a perturbed stream and flushes, but never sends
	// the end marker: from the server's view the streams are mid-flight.
	var wantWindows, wantEvents int64
	var conns []net.Conn
	for i := 0; i < clients; i++ {
		evs := simEvents(t, int64(200+i), 6*time.Second, 3)
		wantWindows += expectWindows(t, cfg, evs)
		wantEvents += int64(len(evs))
		conn, err := net.Dial("tcp", srv.TraceAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		fw, err := traceio.NewFrameWriter(conn, fmt.Sprintf("cut-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if err := fw.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Wait until the server has ingested AND scored every event the
	// clients sent — compared against the known send-side count, so a
	// momentary queue quiescence while the kernel socket buffers still
	// hold unread events cannot end the poll early.
	adminURL := "http://" + srv.AdminAddr().String()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var views []StreamView
		if err := getJSON(adminURL+"/streams", &views); err == nil && len(views) == clients {
			var scored, ingested int64
			for _, v := range views {
				scored += v.EventsScored
				ingested += v.EventsIngested
			}
			if ingested == wantEvents && scored == wantEvents {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not catch up with sent events within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGINT-equivalent: cancel the serve context mid-stream.
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}

	results := srv.Results()
	if len(results) != clients {
		t.Fatalf("%d stream results, want %d", len(results), clients)
	}
	var gotWindows int64
	var recBytes int64
	for _, res := range results {
		gotWindows += int64(res.Windows)
		recBytes += res.RecordedBytes
		if res.Err != "" {
			t.Fatalf("stream %s reported error %q on shutdown", res.ID, res.Err)
		}
		if res.Clean {
			t.Fatalf("stream %s reported clean close but was cut by shutdown", res.ID)
		}
	}
	if gotWindows != wantWindows {
		t.Fatalf("server scored %d windows across streams, clients sent %d", gotWindows, wantWindows)
	}
	stats := srv.Stats()
	if stats.Windows != wantWindows {
		t.Fatalf("/stats windows %d, want %d", stats.Windows, wantWindows)
	}
	if stats.StreamsClosed != clients || stats.StreamsLive != 0 {
		t.Fatalf("streams closed=%d live=%d, want %d/0", stats.StreamsClosed, stats.StreamsLive, clients)
	}

	// Every sink must have been closed, and the on-disk bytes must match
	// the reported recorded bytes (flushed, not buffered).
	nSinks := 0
	closed.Range(func(_, v any) bool {
		nSinks++
		if !v.(bool) {
			t.Error("a sink was not closed on shutdown")
		}
		return true
	})
	if nSinks != clients {
		t.Fatalf("%d sinks created, want %d", nSinks, clients)
	}
	var onDisk int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	if onDisk != recBytes {
		t.Fatalf("on-disk recorded bytes %d != reported %d (sinks not flushed)", onDisk, recBytes)
	}
	if stats.RecordedBytes != recBytes {
		t.Fatalf("/stats recorded bytes %d != per-stream sum %d", stats.RecordedBytes, recBytes)
	}
}

// TestDropOldestBackpressure force-feeds a tiny queue with a paused scorer
// by holding many events hostage... simpler: QueueLen 16 with DropOldest
// and a fast sender on a slow (condensed-free) model still drops under
// load; assert the drop counter surfaces and the books stay consistent
// (scored + dropped == ingested).
func TestDropOldestBackpressure(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{
		Cfg:          cfg,
		Learned:      learned,
		QueueLen:     16,
		Backpressure: DropOldest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	evs := simEvents(t, 77, 20*time.Second, 1)
	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriter(conn, "firehose")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Wait for the stream to drain and close.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, live, closed := srv.reg.Totals(); live == 0 && closed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream did not close within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	results := srv.Results()
	if len(results) != 1 {
		t.Fatalf("%d results, want 1", len(results))
	}
	res := results[0]
	if !res.Clean {
		t.Fatalf("stream not clean: %s", res.Err)
	}
	// Under DropOldest nothing may be unaccounted: every ingested event was
	// either scored (became part of a window) or counted as dropped.
	want := expectWindows(t, cfg, evs)
	if res.DroppedEvents == 0 {
		// A fast machine may keep up; that is fine, but then nothing may
		// be missing at all.
		if int64(res.Windows) != want {
			t.Fatalf("no drops but %d windows != %d sent", res.Windows, want)
		}
	} else if int64(res.Windows) > want {
		t.Fatalf("scored %d windows > %d sent", res.Windows, want)
	}
	t.Logf("drop-oldest: %d events dropped, %d/%d windows", res.DroppedEvents, res.Windows, want)
}

// failingSink errors on the first Record, simulating a full disk.
type failingSink struct{ recorder.Sink }

func (s *failingSink) Record(window.Window) error {
	return fmt.Errorf("disk full")
}

// TestSinkErrorDoesNotDeadlock: when the scorer dies on a sink error, the
// ingest goroutine must not stay parked forever in a Block-policy Push —
// the stream must close (with the error on record) and shutdown must
// still complete. Regression test for the queue-close-after-Run fix.
func TestSinkErrorDoesNotDeadlock(t *testing.T) {
	cfg, learned := fixture(t)
	cfg.Alpha = 1.0 // record (and thus fail) on the first scored window
	srv, err := New(Options{
		Cfg:     cfg,
		Learned: learned,
		// A tiny queue so the ingester is certainly blocked in Push when
		// the scorer exits.
		QueueLen:     8,
		Backpressure: Block,
		DrainTimeout: 2 * time.Second,
		Sinks: func(string) (recorder.Sink, error) {
			return &failingSink{Sink: recorder.NewNullSink()}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	evs := simEvents(t, 55, 10*time.Second, 1)
	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw, err := traceio.NewFrameWriter(conn, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	fw.FrameBytes = 1024 // many small frames so the server sees data early
	for _, ev := range evs {
		if err := fw.Write(ev); err != nil {
			break // server may close the connection once the stream dies
		}
	}
	fw.Close() // best effort; the conn may already be gone

	deadline := time.Now().Add(15 * time.Second)
	for len(srv.Results()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream did not close after sink error (ingest deadlock?)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res := srv.Results()[0]
	if res.Clean || !strings.Contains(res.Err, "disk full") {
		t.Fatalf("result %+v, want unclean close with the sink error", res)
	}
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel (shutdown deadlock)")
	}
}

// TestRejectsGarbageConnection: a connection that is not a framed trace
// stream is rejected without registering a stream.
func TestRejectsGarbageConnection(t *testing.T) {
	cfg, learned := fixture(t)
	srv, err := New(Options{Cfg: cfg, Learned: learned})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx) }()

	conn, err := net.Dial("tcp", srv.TraceAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(strings.Repeat("not a trace ", 10))); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	stats := srv.Stats()
	if stats.StreamsLive != 0 || stats.StreamsClosed != 0 {
		t.Fatalf("garbage connection registered a stream: %+v", stats)
	}
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}

// TestDirFactoryNamesFollowStreams: the per-stream sink files carry the
// client-chosen stream names.
func TestDirFactoryNamesFollowStreams(t *testing.T) {
	cfg, learned := fixture(t)
	dir := filepath.Join(t.TempDir(), "rec")
	factory, err := recorder.NewDirFactory(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Selftest(context.Background(), SelftestOptions{
		Cfg:      cfg,
		Learned:  learned,
		Clients:  2,
		Duration: 6 * time.Second,
		Factor:   3,
		Sinks:    factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.RecordedWindows == 0 {
		t.Fatal("perturbed selftest recorded nothing")
	}
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("selftest-%02d.etrc", i))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("per-stream sink file missing: %v", err)
		}
	}
}
