package serve

import (
	"io"
	"sync"
	"testing"
	"time"

	"enduratrace/internal/trace"
)

// TestEventQueueCountersConsistentUnderRace is the drop-accounting audit
// regression test (run under -race in CI): with a producer hammering a
// tiny DropOldest queue, a consumer draining it, and observers snapshotting
// the books concurrently, every observation must satisfy
//
//	ingested == scored + dropped + depth
//
// and the final totals must balance exactly. The original code bumped the
// scored counter after releasing the queue mutex, so observers could catch
// events that had left the buffer without being counted anywhere —
// transiently over-reporting drops relative to the scored totals.
func TestEventQueueCountersConsistentUnderRace(t *testing.T) {
	const nEvents = 50_000
	q := newEventQueue(16, DropOldest)

	var wg sync.WaitGroup
	stopObs := make(chan struct{})
	for o := 0; o < 4; o++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
				}
				c := q.Counters()
				if c.Ingested != c.Scored+c.Dropped+int64(c.Depth) {
					t.Errorf("inconsistent books: ingested %d != scored %d + dropped %d + depth %d",
						c.Ingested, c.Scored, c.Dropped, c.Depth)
					return
				}
			}
		}()
	}

	var consumed int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for {
			_, err := q.Next()
			if err == io.EOF {
				return
			}
			consumed++
		}
	}()

	for i := 0; i < nEvents; i++ {
		if !q.Push(trace.Event{TS: time.Duration(i), Type: 1}) {
			t.Error("queue closed under the producer")
			break
		}
	}
	q.Close()
	<-consumerDone
	close(stopObs)
	wg.Wait()

	final := q.Counters()
	if final.Ingested != nEvents {
		t.Fatalf("ingested %d, want %d", final.Ingested, nEvents)
	}
	if final.Depth != 0 {
		t.Fatalf("depth %d after drain, want 0", final.Depth)
	}
	if final.Scored != consumed {
		t.Fatalf("scored counter %d != %d events the consumer saw", final.Scored, consumed)
	}
	if final.Scored+final.Dropped != nEvents {
		t.Fatalf("final books do not balance: scored %d + dropped %d != %d ingested",
			final.Scored, final.Dropped, nEvents)
	}
	t.Logf("final books: %d scored + %d dropped == %d ingested", final.Scored, final.Dropped, nEvents)
}

// TestEventQueueBlockPolicyNeverDrops: under Block the same harness must
// end with zero drops and every event scored.
func TestEventQueueBlockPolicyNeverDrops(t *testing.T) {
	const nEvents = 20_000
	q := newEventQueue(8, Block)
	done := make(chan int64)
	go func() {
		var n int64
		for {
			if _, err := q.Next(); err == io.EOF {
				done <- n
				return
			}
			n++
		}
	}()
	for i := 0; i < nEvents; i++ {
		if !q.Push(trace.Event{TS: time.Duration(i)}) {
			t.Fatal("queue closed under the producer")
		}
	}
	q.Close()
	got := <-done
	c := q.Counters()
	if got != nEvents || c.Scored != nEvents || c.Dropped != 0 {
		t.Fatalf("block policy books: consumer %d, scored %d, dropped %d (want %d/%d/0)",
			got, c.Scored, c.Dropped, nEvents, nEvents)
	}
}
