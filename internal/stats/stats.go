// Package stats supplies the small statistical helpers the harness needs:
// streaming moments (Welford), quantiles, histograms, exponential averages
// and autocorrelation (the basis for detecting periodic perturbation
// schedules from detection timestamps).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", r.n, r.Mean(), r.Std(), r.min, r.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// EWMA is an exponentially-weighted moving average. The zero value is
// unseeded; the first Add seeds it.
type EWMA struct {
	Lambda float64 // weight of the newest sample, in (0,1]
	value  float64
	seeded bool
}

// Add folds x into the average and returns the updated value.
func (e *EWMA) Add(x float64) float64 {
	if e.Lambda <= 0 || e.Lambda > 1 {
		panic(fmt.Sprintf("stats: EWMA lambda %g outside (0,1]", e.Lambda))
	}
	if !e.seeded {
		e.value = x
		e.seeded = true
		return x
	}
	e.value = (1-e.Lambda)*e.value + e.Lambda*x
	return e.value
}

// Value returns the current average (0 before the first Add).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether any sample has been added.
func (e *EWMA) Seeded() bool { return e.seeded }

// Histogram is a fixed-bin histogram over [Lo, Hi); samples outside the
// range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram parameters lo=%g hi=%g n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Bins)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Bins[i]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Autocorr returns the normalised autocorrelation of xs at the given lags:
// r[k] = Σ (x_t - m)(x_{t+k} - m) / Σ (x_t - m)², for each k in lags.
// A constant series has autocorrelation 0 at every positive lag.
func Autocorr(xs []float64, lags []int) []float64 {
	out := make([]float64, len(lags))
	n := len(xs)
	if n == 0 {
		return out
	}
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for i, k := range lags {
		if k < 0 || k >= n {
			out[i] = 0
			continue
		}
		var num float64
		for t := 0; t+k < n; t++ {
			num += (xs[t] - m) * (xs[t+k] - m)
		}
		out[i] = num / denom
	}
	return out
}

// ArgmaxAutocorr scans lags in [minLag, maxLag] and returns the lag with the
// highest autocorrelation together with that correlation value. It returns
// lag 0 and correlation 0 when the range is empty or the series is constant.
func ArgmaxAutocorr(xs []float64, minLag, maxLag int) (int, float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if minLag > maxLag {
		return 0, 0
	}
	constant := true
	for _, x := range xs {
		if x != xs[0] {
			constant = false
			break
		}
	}
	if constant {
		return 0, 0
	}
	lags := make([]int, 0, maxLag-minLag+1)
	for k := minLag; k <= maxLag; k++ {
		lags = append(lags, k)
	}
	rs := Autocorr(xs, lags)
	best, bestV := 0, math.Inf(-1)
	for i, r := range rs {
		if r > bestV {
			best, bestV = lags[i], r
		}
	}
	if math.IsInf(bestV, -1) {
		return 0, 0
	}
	return best, bestV
}
