// Package stats supplies the small statistical helpers the harness needs:
// streaming moments (Welford), quantiles, Student-t confidence intervals
// (the sweep subsystem's multi-seed error bars), histograms, exponential
// averages and autocorrelation (the basis for detecting periodic
// perturbation schedules from detection timestamps).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", r.n, r.Mean(), r.Std(), r.min, r.max)
}

// ConfidenceInterval returns the half-width of the two-sided confidence
// interval for the mean at the given confidence level (e.g. 0.95), using
// the Student-t critical value for n-1 degrees of freedom. It returns 0
// with fewer than two samples, where the interval is undefined.
func (r *Running) ConfidenceInterval(conf float64) float64 {
	if r.n < 2 {
		return 0
	}
	return TCritical(r.n-1, conf) * r.Std() / math.Sqrt(float64(r.n))
}

// InvNorm returns the standard normal quantile Φ⁻¹(p) for p in (0,1) using
// Acklam's rational approximation (relative error below 1.2e-9).
func InvNorm(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: InvNorm p=%g outside (0,1)", p))
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// TCritical returns the two-sided Student-t critical value t* such that
// P(|T_df| <= t*) = conf. Degrees of freedom 1 and 2 use the closed-form
// quantiles (Cauchy and the df=2 formula); larger df use the
// Cornish–Fisher-style expansion of the t quantile around the normal
// quantile (Abramowitz & Stegun 26.7.5), accurate to ~0.3% at df=3 and
// rapidly better with increasing df.
func TCritical(df int, conf float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: TCritical df=%d must be positive", df))
	}
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stats: TCritical conf=%g outside (0,1)", conf))
	}
	p := 0.5 + conf/2 // upper quantile point of the two-sided interval
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		u := 2*p - 1
		return u * math.Sqrt(2/(1-u*u))
	}
	z := InvNorm(p)
	z2 := z * z
	d := float64(df)
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/d + g2/(d*d) + g3/(d*d*d) + g4/(d*d*d*d)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// EWMA is an exponentially-weighted moving average. The zero value is
// unseeded; the first Add seeds it.
type EWMA struct {
	Lambda float64 // weight of the newest sample, in (0,1]
	value  float64
	seeded bool
}

// Add folds x into the average and returns the updated value.
func (e *EWMA) Add(x float64) float64 {
	if e.Lambda <= 0 || e.Lambda > 1 {
		panic(fmt.Sprintf("stats: EWMA lambda %g outside (0,1]", e.Lambda))
	}
	if !e.seeded {
		e.value = x
		e.seeded = true
		return x
	}
	e.value = (1-e.Lambda)*e.value + e.Lambda*x
	return e.value
}

// Value returns the current average (0 before the first Add).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether any sample has been added.
func (e *EWMA) Seeded() bool { return e.seeded }

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are not silently folded into the edge bins (which would hide
// exactly the tail one is usually looking for): they land in the explicit
// Under and Over counters, Total covers the in-range bins only, and
// Count includes everything.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	// Under counts samples below Lo; Over counts samples at or above Hi.
	Under, Over int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram parameters lo=%g hi=%g n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one sample. Out-of-range samples go to Under/Over.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	n := len(h.Bins)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i >= n || i < 0 { // i < 0 only via float rounding at the Lo edge
		h.Over++
		return
	}
	h.Bins[i]++
}

// Total returns the number of in-range samples (the sum of Bins).
func (h *Histogram) Total() int {
	t := 0
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Count returns every recorded sample, including Under and Over — the
// number Add was called, so out-of-range tails can never be invisible.
func (h *Histogram) Count() int {
	return h.Total() + h.Under + h.Over
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Autocorr returns the normalised autocorrelation of xs at the given lags:
// r[k] = Σ (x_t - m)(x_{t+k} - m) / Σ (x_t - m)², for each k in lags.
// A constant series has autocorrelation 0 at every positive lag.
func Autocorr(xs []float64, lags []int) []float64 {
	out := make([]float64, len(lags))
	n := len(xs)
	if n == 0 {
		return out
	}
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for i, k := range lags {
		if k < 0 || k >= n {
			out[i] = 0
			continue
		}
		var num float64
		for t := 0; t+k < n; t++ {
			num += (xs[t] - m) * (xs[t+k] - m)
		}
		out[i] = num / denom
	}
	return out
}

// ArgmaxAutocorr scans lags in [minLag, maxLag] and returns the lag with the
// highest autocorrelation together with that correlation value. It returns
// lag 0 and correlation 0 when the range is empty or the series is constant.
func ArgmaxAutocorr(xs []float64, minLag, maxLag int) (int, float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if minLag > maxLag {
		return 0, 0
	}
	constant := true
	for _, x := range xs {
		//lint:ignore floateq constant-series detection means literally identical values, not near-equal ones
		if x != xs[0] {
			constant = false
			break
		}
	}
	if constant {
		return 0, 0
	}
	lags := make([]int, 0, maxLag-minLag+1)
	for k := minLag; k <= maxLag; k++ {
		lags = append(lags, k)
	}
	rs := Autocorr(xs, lags)
	best, bestV := 0, math.Inf(-1)
	for i, r := range rs {
		if r > bestV {
			best, bestV = lags[i], r
		}
	}
	if math.IsInf(bestV, -1) {
		return 0, 0
	}
	return best, bestV
}
