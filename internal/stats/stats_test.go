package stats

import (
	"math"
	"testing"
)

func TestRunningMatchesDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-12 {
		t.Fatalf("mean %g != %g", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Std()-Std(xs)) > 1e-12 {
		t.Fatalf("std %g != %g", r.Std(), Std(xs))
	}
	if r.Min() != 1 || r.Max() != 9 {
		t.Fatalf("min/max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(7)
	if r.Mean() != 7 || r.Var() != 0 || r.Min() != 7 || r.Max() != 7 {
		t.Fatalf("single sample: %s", r.String())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	if got := Quantile([]float64{5}, 0.9); got != 5 {
		t.Fatalf("singleton quantile = %g", got)
	}
}

func TestMeanStdEdgeCases(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
	if Std([]float64{1}) != 0 {
		t.Fatal("Std of one sample != 0")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Lambda: 0.5}
	if e.Seeded() {
		t.Fatal("zero EWMA seeded")
	}
	if v := e.Add(10); v != 10 {
		t.Fatalf("seed value %g", v)
	}
	if v := e.Add(0); v != 5 {
		t.Fatalf("after update %g, want 5", v)
	}
	if e.Value() != 5 {
		t.Fatalf("Value %g", e.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 3, 9.9, 42, 10} {
		h.Add(x)
	}
	if h.Total() != 3 { // only 0, 3, 9.9 are in [0, 10)
		t.Fatalf("total %d, want 3", h.Total())
	}
	if h.Count() != 6 { // every Add, including under/overflow
		t.Fatalf("count %d, want 6", h.Count())
	}
	if h.Under != 1 { // -1 is below Lo, not clamped into the first bin
		t.Fatalf("under %d, want 1", h.Under)
	}
	if h.Over != 2 { // 42 and the boundary value 10 are >= Hi
		t.Fatalf("over %d, want 2", h.Over)
	}
	if h.Bins[0] != 1 {
		t.Fatalf("first bin %d, want 1", h.Bins[0])
	}
	if h.Bins[4] != 1 {
		t.Fatalf("last bin %d, want 1", h.Bins[4])
	}
	if c := h.BinCenter(0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("BinCenter(0) = %g, want 1", c)
	}
}

func TestAutocorrFindsPlantedPeriod(t *testing.T) {
	// A clean period-5 signal plus a linear trend-free baseline.
	var xs []float64
	for i := 0; i < 200; i++ {
		v := 0.0
		if i%5 == 0 {
			v = 1
		}
		xs = append(xs, v)
	}
	lag, r := ArgmaxAutocorr(xs, 2, 20)
	if lag != 5 {
		t.Fatalf("detected lag %d (r=%g), want 5", lag, r)
	}
	if r < 0.9 {
		t.Fatalf("correlation %g too weak", r)
	}
}

func TestAutocorrDegenerate(t *testing.T) {
	constant := []float64{3, 3, 3, 3}
	rs := Autocorr(constant, []int{1, 2})
	if rs[0] != 0 || rs[1] != 0 {
		t.Fatalf("constant series autocorr %v", rs)
	}
	if lag, r := ArgmaxAutocorr(constant, 1, 2); lag != 0 || r != 0 {
		t.Fatalf("constant argmax = %d, %g", lag, r)
	}
	if lag, _ := ArgmaxAutocorr([]float64{1}, 1, 5); lag != 0 {
		t.Fatalf("short series argmax = %d", lag)
	}
}

func TestInvNormKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.001, -3.090232},
	}
	for _, c := range cases {
		if got := InvNorm(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("InvNorm(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestTCriticalKnownValues(t *testing.T) {
	// Standard two-sided 95% and 99% t-table values.
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.706},
		{2, 0.95, 4.303},
		{3, 0.95, 3.182},
		{4, 0.95, 2.776},
		{9, 0.95, 2.262},
		{10, 0.95, 2.228},
		{29, 0.95, 2.045},
		{100, 0.95, 1.984},
		{4, 0.99, 4.604},
		{10, 0.99, 3.169},
		{1000, 0.95, 1.962},
	}
	for _, c := range cases {
		got := TCritical(c.df, c.conf)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("TCritical(%d, %g) = %g, want %g", c.df, c.conf, got, c.want)
		}
	}
	// Large df must converge to the normal quantile from above.
	if z := InvNorm(0.975); TCritical(10000, 0.95) < z {
		t.Errorf("TCritical(10000) = %g below z = %g", TCritical(10000, 0.95), z)
	}
}

func TestConfidenceInterval(t *testing.T) {
	// n=5 samples with known mean/std: CI95 half-width = t(4) * s / sqrt(5).
	xs := []float64{2, 4, 4, 4, 6}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	want := 2.776 * Std(xs) / math.Sqrt(5)
	if got := r.ConfidenceInterval(0.95); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("CI95 = %g, want %g", got, want)
	}
	var one Running
	one.Add(3)
	if one.ConfidenceInterval(0.95) != 0 {
		t.Fatal("CI of a single sample must be 0")
	}
}
