package distance

import (
	"math/rand"
	"testing"
)

// Benchmarks for the gate distance kernels: the gate runs once per 40 ms
// window, so per-call cost at the monitor's pmf dimensionality is the
// number that matters. One iteration = one gate comparison.

var benchSink float64

func benchmarkKernel(b *testing.B, name string) {
	const dim = 26 // mediasim pmf (25 event types) + rate feature
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		p := make([]float64, dim)
		var sum float64
		for i := range p {
			p[i] = rng.Float64() + 1e-3
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	p, q := mk(), mk()
	d := Must(name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += d.F(p, q)
	}
}

func BenchmarkKernelKL(b *testing.B)        { benchmarkKernel(b, "kl") }
func BenchmarkKernelSymKL(b *testing.B)     { benchmarkKernel(b, "symkl") }
func BenchmarkKernelJSD(b *testing.B)       { benchmarkKernel(b, "jsd") }
func BenchmarkKernelJSDist(b *testing.B)    { benchmarkKernel(b, "jsdist") }
func BenchmarkKernelHellinger(b *testing.B) { benchmarkKernel(b, "hellinger") }
func BenchmarkKernelL1(b *testing.B)        { benchmarkKernel(b, "l1") }
func BenchmarkKernelL2(b *testing.B)        { benchmarkKernel(b, "l2") }
func BenchmarkKernelChi2(b *testing.B)      { benchmarkKernel(b, "chi2") }
