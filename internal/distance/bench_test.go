package distance

import (
	"math/rand"
	"testing"
)

// Benchmarks for the gate distance kernels: the gate runs once per 40 ms
// window, so per-call cost at the monitor's pmf dimensionality is the
// number that matters. One iteration = one gate comparison.

var benchSink float64

func benchmarkKernel(b *testing.B, name string) {
	const dim = 26 // mediasim pmf (25 event types) + rate feature
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		p := make([]float64, dim)
		var sum float64
		for i := range p {
			p[i] = rng.Float64() + 1e-3
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		return p
	}
	p, q := mk(), mk()
	d := Must(name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += d.F(p, q)
	}
}

// benchmarkRows measures one query against a 1000-row flat matrix —
// the LOF brute pass — through the exact row kernel and, for the KL
// family, the precomputed-log fast kernel.
func benchmarkRows(b *testing.B, name string, fast bool) {
	const dim, n = 26, 1000
	rng := rand.New(rand.NewSource(1))
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.Float64() + 1e-3
	}
	for r := 0; r < n; r++ {
		row := flat[r*dim : (r+1)*dim]
		var sum float64
		for _, x := range row {
			sum += x
		}
		for i := range row {
			row[i] /= sum
		}
	}
	q := make([]float64, dim)
	copy(q, flat[:dim])
	out := make([]float64, n)
	d := Must(name)
	if fast {
		if !FastRowsFor(name) {
			b.Fatalf("no fast kernel for %s", name)
		}
		table := NewLogRows(flat, dim)
		qlogs := make([]float64, dim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			QueryLogs(q, qlogs)
			if name == "symkl" {
				table.SymKLRows(q, qlogs, out)
			} else {
				table.KLRows(q, qlogs, out)
			}
			benchSink += out[0]
		}
		return
	}
	kernel := RowsOf(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(q, flat, dim, out)
		benchSink += out[0]
	}
}

// benchmarkRowsBatch measures nq queries against the same 1000-row
// matrix in one batched sweep — the ScoreBatch inner loop. Per-op cost
// divided by nq is the per-query number to compare against the
// single-query kernels above.
func benchmarkRowsBatch(b *testing.B, name string, nq int, fast bool) {
	const dim, n = 26, 1000
	rng := rand.New(rand.NewSource(1))
	flat := randRows(rng, n, dim, 0)
	qs := randRows(rng, nq, dim, 0)
	out := make([]float64, nq*n)
	if fast {
		if !FastRowsFor(name) {
			b.Fatalf("no fast kernel for %s", name)
		}
		table := NewLogRows(flat, dim)
		qlogs := make([]float64, nq*dim)
		qents := make([]float64, nq)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			switch name {
			case "symkl":
				QueryLogs(qs, qlogs)
				table.SymKLRowsBatch(qs, qlogs, nq, out)
			case "kl":
				QueryLogs(qs, qlogs)
				table.KLRowsBatch(qs, qlogs, nq, out)
			case "jsd":
				for k := 0; k < nq; k++ {
					qents[k] = QueryNegEntropy(qs[k*dim : (k+1)*dim])
				}
				table.JSDRowsBatch(qs, qents, nq, out)
			}
			benchSink += out[0]
		}
		return
	}
	batch := RowsBatchOf(Must(name))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch(qs, flat, dim, nq, out)
		benchSink += out[0]
	}
}

func BenchmarkRowsSymKL1000(b *testing.B)     { benchmarkRows(b, "symkl", false) }
func BenchmarkRowsSymKLFast1000(b *testing.B) { benchmarkRows(b, "symkl", true) }
func BenchmarkRowsKLFast1000(b *testing.B)    { benchmarkRows(b, "kl", true) }
func BenchmarkRowsL21000(b *testing.B)        { benchmarkRows(b, "l2", false) }
func BenchmarkRowsJSD1000(b *testing.B)       { benchmarkRows(b, "jsd", false) }
func BenchmarkRowsJSDFast1000(b *testing.B) {
	// Via the same harness shape as the other fast kernels.
	const dim, n = 26, 1000
	rng := rand.New(rand.NewSource(1))
	flat := randRows(rng, n, dim, 0)
	q := make([]float64, dim)
	copy(q, flat[:dim])
	out := make([]float64, n)
	table := NewLogRows(flat, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.JSDRows(q, QueryNegEntropy(q), out)
		benchSink += out[0]
	}
}

func BenchmarkRowsBatchSymKL1000x8(b *testing.B)     { benchmarkRowsBatch(b, "symkl", 8, false) }
func BenchmarkRowsBatchSymKLFast1000x8(b *testing.B) { benchmarkRowsBatch(b, "symkl", 8, true) }
func BenchmarkRowsBatchJSDFast1000x8(b *testing.B)   { benchmarkRowsBatch(b, "jsd", 8, true) }

func BenchmarkKernelKL(b *testing.B)        { benchmarkKernel(b, "kl") }
func BenchmarkKernelSymKL(b *testing.B)     { benchmarkKernel(b, "symkl") }
func BenchmarkKernelJSD(b *testing.B)       { benchmarkKernel(b, "jsd") }
func BenchmarkKernelJSDist(b *testing.B)    { benchmarkKernel(b, "jsdist") }
func BenchmarkKernelHellinger(b *testing.B) { benchmarkKernel(b, "hellinger") }
func BenchmarkKernelL1(b *testing.B)        { benchmarkKernel(b, "l1") }
func BenchmarkKernelL2(b *testing.B)        { benchmarkKernel(b, "l2") }
func BenchmarkKernelChi2(b *testing.B)      { benchmarkKernel(b, "chi2") }
