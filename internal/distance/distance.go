// Package distance provides the dissimilarity measures used by the monitor.
//
// The paper compares pmf vectors with the Kullback–Leibler distance (§II,
// citing Kullback & Leibler 1951) for the cheap change gate, and feeds pmfs
// to LOF, which only requires a dissimilarity. KL is neither symmetric nor
// a metric, so this package also supplies symmetrised and metric
// alternatives (Jensen–Shannon, Hellinger, L1, L2, χ²): metric distances
// enable the VP-tree k-NN index, and all of them back the distance ablation
// bench (experiment A-distance in DESIGN.md).
package distance

import (
	"fmt"
	"math"
)

// Func computes the dissimilarity between two equal-length vectors.
// Implementations must be non-negative and zero for identical inputs.
type Func func(p, q []float64) float64

// Distance couples a Func with its identity and properties.
type Distance struct {
	Name   string
	F      Func
	Metric bool // satisfies the triangle inequality (enables VP-tree)
	// Rows, when non-nil, is the exact one-query-vs-many-rows form of F
	// over a flat row-major matrix: bit-for-bit equal to calling F per
	// row, but cache-friendly and free of per-pair call overhead. Use
	// RowsOf, which falls back to a generic loop when Rows is nil.
	Rows RowsFunc
	// RowsBatch, when non-nil, is the many-queries-vs-many-rows form:
	// bit-for-bit equal to calling Rows per query, but sweeping each
	// matrix row once per batch. Use RowsBatchOf, which falls back to a
	// per-query loop when RowsBatch is nil.
	RowsBatch RowsBatchFunc
}

// eps guards logarithms and divisions against zero components when callers
// pass unsmoothed pmfs. Smoothed pmfs (pmf.Counts.Normalize with eps > 0)
// never hit this floor.
const eps = 1e-12

// KL returns the Kullback–Leibler divergence D(p‖q) in nats. It is the
// paper's choice for comparing the new-window pmf against the past pmf.
func KL(p, q []float64) float64 {
	assertSameLen(p, q)
	var d float64
	for i := range p {
		pi := p[i]
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < eps {
			qi = eps
		}
		d += pi * math.Log(pi/qi)
	}
	if d < 0 { // numerical noise for near-identical inputs
		d = 0
	}
	return d
}

// SymmetricKL returns D(p‖q) + D(q‖p), the symmetrised ("Jeffreys")
// Kullback–Leibler distance. This is the usual reading of the paper's
// "Kullback-Leibler distance".
func SymmetricKL(p, q []float64) float64 {
	return KL(p, q) + KL(q, p)
}

// JensenShannon returns the Jensen–Shannon divergence, the
// entropy-smoothed, bounded (by ln 2) symmetrisation of KL.
func JensenShannon(p, q []float64) float64 {
	assertSameLen(p, q)
	var d float64
	for i := range p {
		pi, qi := p[i], q[i]
		mi := 0.5 * (pi + qi)
		if pi > 0 && mi > 0 {
			d += 0.5 * pi * math.Log(pi/mi)
		}
		if qi > 0 && mi > 0 {
			d += 0.5 * qi * math.Log(qi/mi)
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// JensenShannonDist returns sqrt(JSD), which is a true metric.
func JensenShannonDist(p, q []float64) float64 {
	return math.Sqrt(JensenShannon(p, q))
}

// Hellinger returns the Hellinger distance, a metric on distributions
// bounded by 1.
func Hellinger(p, q []float64) float64 {
	assertSameLen(p, q)
	var s float64
	for i := range p {
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		s += d * d
	}
	return math.Sqrt(0.5 * s)
}

// L1 returns the Manhattan distance (twice the total-variation distance for
// distributions).
func L1(p, q []float64) float64 {
	assertSameLen(p, q)
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s
}

// L2 returns the Euclidean distance.
func L2(p, q []float64) float64 {
	assertSameLen(p, q)
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ChiSquare returns the (symmetrised) χ² distance
// Σ (p_i - q_i)² / (p_i + q_i).
func ChiSquare(p, q []float64) float64 {
	assertSameLen(p, q)
	var s float64
	for i := range p {
		sum := p[i] + q[i]
		if sum <= 0 {
			continue
		}
		d := p[i] - q[i]
		s += d * d / sum
	}
	return s
}

func assertSameLen(p, q []float64) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("distance: dimension mismatch %d != %d", len(p), len(q)))
	}
}

// Catalog of named distances, used by command-line flags and ablations.
var catalog = map[string]Distance{
	"kl":        {Name: "kl", F: KL, Metric: false, Rows: KLRows},
	"symkl":     {Name: "symkl", F: SymmetricKL, Metric: false, Rows: SymmetricKLRows, RowsBatch: SymmetricKLRowsBatch},
	"jsd":       {Name: "jsd", F: JensenShannon, Metric: false, Rows: JensenShannonRows},
	"jsdist":    {Name: "jsdist", F: JensenShannonDist, Metric: true, Rows: JensenShannonDistRows},
	"hellinger": {Name: "hellinger", F: Hellinger, Metric: true, Rows: HellingerRows},
	"l1":        {Name: "l1", F: L1, Metric: true, Rows: L1Rows},
	"l2":        {Name: "l2", F: L2, Metric: true, Rows: L2Rows},
	"chi2":      {Name: "chi2", F: ChiSquare, Metric: false, Rows: ChiSquareRows},
}

// ByName looks a distance up by its catalogue name.
func ByName(name string) (Distance, error) {
	d, ok := catalog[name]
	if !ok {
		return Distance{}, fmt.Errorf("distance: unknown distance %q (have %v)", name, Names())
	}
	return d, nil
}

// Must returns the catalogue entry for name, panicking on an unknown name.
// It is intended for static defaults (e.g. core.NewConfig), where a miss is
// a programming error.
func Must(name string) Distance {
	d, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Names lists the catalogue in a fixed order.
func Names() []string {
	return []string{"kl", "symkl", "jsd", "jsdist", "hellinger", "l1", "l2", "chi2"}
}
