package distance

import (
	"fmt"
	"math"
)

// This file holds the row-kernel forms of the catalogue distances: scoring
// one query vector against every row of a flat row-major reference matrix
// in a single pass. The LOF hot path is "one query vs n reference points";
// doing it through a flat matrix keeps the reference data contiguous in
// cache and removes the per-pair closure call of the scalar Func.
//
// Two tiers exist:
//
//   - RowsOf returns an exact kernel: bit-for-bit identical to calling the
//     scalar Func row by row (same operations in the same order), so the
//     monitor's default path produces byte-identical reports before and
//     after the flat-matrix refactor.
//   - LogRows precomputes per-row logarithms for the KL family (kl,
//     symkl), removing every math.Log call from the per-row inner loop.
//     It is approximate in the last ulps (log(p/q) != log p - log q in
//     floating point), so it is reserved for the condensed reference sets,
//     which are approximate by construction.

// RowsFunc computes the distance from q to each row of the flat row-major
// matrix rows (len(rows) must be a multiple of dim) and writes the i-th
// distance into out[i]. out must have length len(rows)/dim.
type RowsFunc func(q, rows []float64, dim int, out []float64)

// RowsOf returns the exact row kernel of d: bit-for-bit equal to invoking
// d.F on every row. Specialised kernels exist for every catalogue entry;
// an unknown Func falls back to a generic per-row loop over d.F.
func RowsOf(d Distance) RowsFunc {
	if d.Rows != nil {
		return d.Rows
	}
	return func(q, rows []float64, dim int, out []float64) {
		genericRows(d.F, q, rows, dim, out)
	}
}

func genericRows(f Func, q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		out[i] = f(q, rows[i*dim:(i+1)*dim])
	}
}

func checkRows(q, rows []float64, dim int, out []float64) {
	if len(q) != dim {
		panic(fmt.Sprintf("distance: query dimension %d != row dimension %d", len(q), dim))
	}
	if dim <= 0 || len(rows)%dim != 0 {
		panic(fmt.Sprintf("distance: matrix length %d not a multiple of dim %d", len(rows), dim))
	}
	if len(out) != len(rows)/dim {
		panic(fmt.Sprintf("distance: out length %d != row count %d", len(out), len(rows)/dim))
	}
}

// The specialised exact kernels below repeat the scalar kernels' arithmetic
// verbatim (same expressions, same order, same eps handling) inside a flat
// row loop. Any change to a scalar kernel in distance.go must be mirrored
// here or the bit-exactness tests in rows_test.go will fail.

// KLRows is the exact row form of KL: out[i] = KL(q, row_i).
func KLRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var d float64
		for j, pj := range q {
			if pj <= 0 {
				continue
			}
			qj := row[j]
			if qj < eps {
				qj = eps
			}
			d += pj * math.Log(pj/qj)
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// SymmetricKLRows is the exact row form of SymmetricKL:
// out[i] = KL(q, row_i) + KL(row_i, q).
func SymmetricKLRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var fwd float64
		for j, pj := range q {
			if pj <= 0 {
				continue
			}
			qj := row[j]
			if qj < eps {
				qj = eps
			}
			fwd += pj * math.Log(pj/qj)
		}
		if fwd < 0 {
			fwd = 0
		}
		var rev float64
		for j, pj := range row {
			if pj <= 0 {
				continue
			}
			qj := q[j]
			if qj < eps {
				qj = eps
			}
			rev += pj * math.Log(pj/qj)
		}
		if rev < 0 {
			rev = 0
		}
		out[i] = fwd + rev
	}
}

// JensenShannonRows is the exact row form of JensenShannon.
func JensenShannonRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var d float64
		for j, pj := range q {
			qj := row[j]
			mj := 0.5 * (pj + qj)
			if pj > 0 && mj > 0 {
				d += 0.5 * pj * math.Log(pj/mj)
			}
			if qj > 0 && mj > 0 {
				d += 0.5 * qj * math.Log(qj/mj)
			}
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// JensenShannonDistRows is the exact row form of JensenShannonDist.
func JensenShannonDistRows(q, rows []float64, dim int, out []float64) {
	JensenShannonRows(q, rows, dim, out)
	for i := range out {
		out[i] = math.Sqrt(out[i])
	}
}

// HellingerRows is the exact row form of Hellinger.
func HellingerRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			d := math.Sqrt(pj) - math.Sqrt(row[j])
			s += d * d
		}
		out[i] = math.Sqrt(0.5 * s)
	}
}

// L1Rows is the exact row form of L1.
func L1Rows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			s += math.Abs(pj - row[j])
		}
		out[i] = s
	}
}

// L2Rows is the exact row form of L2.
func L2Rows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			d := pj - row[j]
			s += d * d
		}
		out[i] = math.Sqrt(s)
	}
}

// ChiSquareRows is the exact row form of ChiSquare.
func ChiSquareRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			qj := row[j]
			sum := pj + qj
			if sum <= 0 {
				continue
			}
			d := pj - qj
			s += d * d / sum
		}
		out[i] = s
	}
}

// LogRows precomputes per-element floored logarithms of a reference
// matrix, enabling KL-family row kernels with no math.Log call in the
// per-row inner loop. With L[i] = log(max(x_i, eps)):
//
//	KL(q ‖ r)     ≈ Σ_{q_i>0} q_i (Lq_i − Lr_i)
//	symKL(q, r)   ≈ KL(q ‖ r) + KL(r ‖ q)
//
// The results differ from the scalar kernels in the last ulps (and for
// components in (0, eps), which smoothed pmfs never produce), so LogRows
// backs only the condensed — already approximate — scoring path; the
// uncondensed path uses the exact kernels above.
type LogRows struct {
	dim  int
	rows []float64 // the reference matrix, retained
	logs []float64 // log(max(rows[i], eps)), elementwise
}

// NewLogRows builds the log table over a flat row-major matrix. The matrix
// is retained, not copied; it must not be mutated afterwards.
func NewLogRows(rows []float64, dim int) *LogRows {
	if dim <= 0 || len(rows)%dim != 0 {
		panic(fmt.Sprintf("distance: matrix length %d not a multiple of dim %d", len(rows), dim))
	}
	logs := make([]float64, len(rows))
	for i, x := range rows {
		if x < eps {
			x = eps
		}
		logs[i] = math.Log(x)
	}
	return &LogRows{dim: dim, rows: rows, logs: logs}
}

// Len returns the number of rows in the table.
func (t *LogRows) Len() int { return len(t.rows) / t.dim }

// Dim returns the row dimensionality.
func (t *LogRows) Dim() int { return t.dim }

// QueryLogs fills qlogs[i] = log(max(q[i], eps)) — the per-query half of
// the precomputation, done once per query instead of once per row.
func QueryLogs(q, qlogs []float64) {
	if len(q) != len(qlogs) {
		panic(fmt.Sprintf("distance: query length %d != log buffer %d", len(q), len(qlogs)))
	}
	for i, x := range q {
		if x < eps {
			x = eps
		}
		qlogs[i] = math.Log(x)
	}
}

// KLRows writes out[i] ≈ KL(q ‖ row_i) using the precomputed logs. qlogs
// must come from QueryLogs(q, ...).
func (t *LogRows) KLRows(q, qlogs, out []float64) {
	checkRows(q, t.rows, t.dim, out)
	dim := t.dim
	for i := range out {
		base := i * dim
		logs := t.logs[base : base+dim]
		var d float64
		for j, pj := range q {
			if pj <= 0 {
				continue
			}
			d += pj * (qlogs[j] - logs[j])
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// SymKLRows writes out[i] ≈ symKL(q, row_i) using the precomputed logs;
// both KL directions are clamped at zero separately, matching the scalar
// kernel's convention. qlogs must come from QueryLogs(q, ...).
func (t *LogRows) SymKLRows(q, qlogs, out []float64) {
	checkRows(q, t.rows, t.dim, out)
	dim := t.dim
	for i := range out {
		base := i * dim
		row := t.rows[base : base+dim]
		logs := t.logs[base : base+dim]
		var fwd, rev float64
		for j, pj := range q {
			rj := row[j]
			diff := qlogs[j] - logs[j]
			if pj > 0 {
				fwd += pj * diff
			}
			if rj > 0 {
				rev -= rj * diff
			}
		}
		if fwd < 0 {
			fwd = 0
		}
		if rev < 0 {
			rev = 0
		}
		out[i] = fwd + rev
	}
}

// FastRowsFor reports whether the KL-family fast path applies to d and, if
// so, which LogRows method drives it: "kl" and "symkl" benefit from
// precomputed logs; every other catalogue distance either has no log in
// its inner loop or (jsd) mixes query and row inside the logarithm.
func FastRowsFor(name string) bool {
	return name == "kl" || name == "symkl"
}
