package distance

import (
	"fmt"
	"math"
)

// This file holds the row-kernel forms of the catalogue distances: scoring
// one query vector against every row of a flat row-major reference matrix
// in a single pass. The LOF hot path is "one query vs n reference points";
// doing it through a flat matrix keeps the reference data contiguous in
// cache and removes the per-pair closure call of the scalar Func.
//
// Two tiers exist:
//
//   - RowsOf returns an exact kernel: bit-for-bit identical to calling the
//     scalar Func row by row (same operations in the same order), so the
//     monitor's default path produces byte-identical reports before and
//     after the flat-matrix refactor.
//   - LogRows precomputes per-row logarithms for the KL family (kl,
//     symkl), removing every math.Log call from the per-row inner loop.
//     It is approximate in the last ulps (log(p/q) != log p - log q in
//     floating point), so it is reserved for the condensed reference sets,
//     which are approximate by construction.

// RowsFunc computes the distance from q to each row of the flat row-major
// matrix rows (len(rows) must be a multiple of dim) and writes the i-th
// distance into out[i]. out must have length len(rows)/dim.
type RowsFunc func(q, rows []float64, dim int, out []float64)

// RowsOf returns the exact row kernel of d: bit-for-bit equal to invoking
// d.F on every row. Specialised kernels exist for every catalogue entry;
// an unknown Func falls back to a generic per-row loop over d.F.
func RowsOf(d Distance) RowsFunc {
	if d.Rows != nil {
		return d.Rows
	}
	return func(q, rows []float64, dim int, out []float64) {
		genericRows(d.F, q, rows, dim, out)
	}
}

func genericRows(f Func, q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		out[i] = f(q, rows[i*dim:(i+1)*dim])
	}
}

func checkRows(q, rows []float64, dim int, out []float64) {
	if len(q) != dim {
		panic(fmt.Sprintf("distance: query dimension %d != row dimension %d", len(q), dim))
	}
	if dim <= 0 || len(rows)%dim != 0 {
		panic(fmt.Sprintf("distance: matrix length %d not a multiple of dim %d", len(rows), dim))
	}
	if len(out) != len(rows)/dim {
		panic(fmt.Sprintf("distance: out length %d != row count %d", len(out), len(rows)/dim))
	}
}

// The specialised exact kernels below repeat the scalar kernels' arithmetic
// verbatim (same expressions, same order, same eps handling) inside a flat
// row loop. Any change to a scalar kernel in distance.go must be mirrored
// here or the bit-exactness tests in rows_test.go will fail.

// KLRows is the exact row form of KL: out[i] = KL(q, row_i).
func KLRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var d float64
		for j, pj := range q {
			if pj <= 0 {
				continue
			}
			qj := row[j]
			if qj < eps {
				qj = eps
			}
			d += pj * math.Log(pj/qj)
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// SymmetricKLRows is the exact row form of SymmetricKL:
// out[i] = KL(q, row_i) + KL(row_i, q).
//
// The forward and reverse passes are fused into one sweep over the row
// (half the memory traffic of the two-loop form). Fusing is bit-exact:
// each direction keeps its own accumulator, so the addition sequence per
// accumulator — and therefore every rounding step — is unchanged.
func SymmetricKLRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var fwd, rev float64
		for j, pj := range q {
			rj := row[j]
			if pj > 0 {
				qj := rj
				if qj < eps {
					qj = eps
				}
				fwd += pj * math.Log(pj/qj)
			}
			if rj > 0 {
				qj := pj
				if qj < eps {
					qj = eps
				}
				rev += rj * math.Log(rj/qj)
			}
		}
		if fwd < 0 {
			fwd = 0
		}
		if rev < 0 {
			rev = 0
		}
		out[i] = fwd + rev
	}
}

// RowsBatchFunc scores a batch of queries against every row of a flat
// matrix in one pass: qs is nq query vectors flattened row-major, and the
// result is query-major, out[k*nrows+i] = d(q_k, row_i). Batched kernels
// iterate row-outer/query-inner so each matrix row is loaded into cache
// once per batch instead of once per query.
type RowsBatchFunc func(qs, rows []float64, dim, nq int, out []float64)

// RowsBatchOf returns the batched row kernel of d: bit-for-bit equal to
// invoking RowsOf(d) per query. Distances without a specialised batch
// kernel fall back to a per-query loop (correct, but without the
// row-amortization).
func RowsBatchOf(d Distance) RowsBatchFunc {
	if d.RowsBatch != nil {
		return d.RowsBatch
	}
	rows := RowsOf(d)
	return func(qs, flat []float64, dim, nq int, out []float64) {
		checkRowsBatch(qs, flat, dim, nq, out)
		n := len(flat) / dim
		for k := 0; k < nq; k++ {
			rows(qs[k*dim:(k+1)*dim], flat, dim, out[k*n:(k+1)*n])
		}
	}
}

func checkRowsBatch(qs, rows []float64, dim, nq int, out []float64) {
	if dim <= 0 || len(rows)%dim != 0 {
		panic(fmt.Sprintf("distance: matrix length %d not a multiple of dim %d", len(rows), dim))
	}
	if len(qs) != nq*dim {
		panic(fmt.Sprintf("distance: query batch length %d != %d queries × dim %d", len(qs), nq, dim))
	}
	if len(out) != nq*(len(rows)/dim) {
		panic(fmt.Sprintf("distance: out length %d != %d queries × %d rows", len(out), nq, len(rows)/dim))
	}
}

// SymmetricKLRowsBatch is the batched exact symkl kernel. Each matrix row
// is swept once for the whole query batch; the per-(query, row) arithmetic
// is identical to SymmetricKLRows, so the results are bit-for-bit equal to
// the per-query kernel whatever the batch size.
func SymmetricKLRowsBatch(qs, rows []float64, dim, nq int, out []float64) {
	checkRowsBatch(qs, rows, dim, nq, out)
	n := len(rows) / dim
	for i := 0; i < n; i++ {
		row := rows[i*dim : (i+1)*dim]
		for k := 0; k < nq; k++ {
			q := qs[k*dim : (k+1)*dim]
			var fwd, rev float64
			for j, pj := range q {
				rj := row[j]
				if pj > 0 {
					qj := rj
					if qj < eps {
						qj = eps
					}
					fwd += pj * math.Log(pj/qj)
				}
				if rj > 0 {
					qj := pj
					if qj < eps {
						qj = eps
					}
					rev += rj * math.Log(rj/qj)
				}
			}
			if fwd < 0 {
				fwd = 0
			}
			if rev < 0 {
				rev = 0
			}
			out[k*n+i] = fwd + rev
		}
	}
}

// JensenShannonRows is the exact row form of JensenShannon.
func JensenShannonRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var d float64
		for j, pj := range q {
			qj := row[j]
			mj := 0.5 * (pj + qj)
			if pj > 0 && mj > 0 {
				d += 0.5 * pj * math.Log(pj/mj)
			}
			if qj > 0 && mj > 0 {
				d += 0.5 * qj * math.Log(qj/mj)
			}
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// JensenShannonDistRows is the exact row form of JensenShannonDist.
func JensenShannonDistRows(q, rows []float64, dim int, out []float64) {
	JensenShannonRows(q, rows, dim, out)
	for i := range out {
		out[i] = math.Sqrt(out[i])
	}
}

// HellingerRows is the exact row form of Hellinger.
func HellingerRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			d := math.Sqrt(pj) - math.Sqrt(row[j])
			s += d * d
		}
		out[i] = math.Sqrt(0.5 * s)
	}
}

// L1Rows is the exact row form of L1.
func L1Rows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			s += math.Abs(pj - row[j])
		}
		out[i] = s
	}
}

// L2Rows is the exact row form of L2.
func L2Rows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			d := pj - row[j]
			s += d * d
		}
		out[i] = math.Sqrt(s)
	}
}

// ChiSquareRows is the exact row form of ChiSquare.
func ChiSquareRows(q, rows []float64, dim int, out []float64) {
	checkRows(q, rows, dim, out)
	for i := range out {
		row := rows[i*dim : (i+1)*dim]
		var s float64
		for j, pj := range q {
			qj := row[j]
			sum := pj + qj
			if sum <= 0 {
				continue
			}
			d := pj - qj
			s += d * d / sum
		}
		out[i] = s
	}
}

// LogRows precomputes per-element floored logarithms of a reference
// matrix, enabling KL-family row kernels with no math.Log call in the
// per-row inner loop. With L[i] = log(max(x_i, eps)):
//
//	KL(q ‖ r)     ≈ Σ_{q_i>0} q_i (Lq_i − Lr_i)
//	symKL(q, r)   ≈ KL(q ‖ r) + KL(r ‖ q)
//	JSD(q, r)     ≈ ½Σ q_i Lq_i + ½Σ r_i Lr_i − Σ m_i log m_i,  m = (q+r)/2
//
// The kl/symkl inner loops are branch-free multiply-adds over the log
// tables (a zero component contributes an exact ±0, which IEEE addition
// ignores, so eliminating the zero-skip branches changes no result bit);
// the jsd form halves the logs per element by precomputing both negentropy
// halves. The results differ from the scalar kernels in the last ulps (and
// for components in (0, eps), which smoothed pmfs never produce), so
// LogRows backs only opt-in paths: condensed reference sets — approximate
// by construction — and models fitted with FastKernels; the default path
// uses the exact kernels above.
type LogRows struct {
	dim    int
	rows   []float64 // the reference matrix, retained
	logs   []float64 // log(max(rows[i], eps)), elementwise
	negent []float64 // per row i: Σ_j row_ij · logs_ij (the jsd row-entropy half)
}

// NewLogRows builds the log table over a flat row-major matrix. The matrix
// is retained, not copied; it must not be mutated afterwards.
func NewLogRows(rows []float64, dim int) *LogRows {
	if dim <= 0 || len(rows)%dim != 0 {
		panic(fmt.Sprintf("distance: matrix length %d not a multiple of dim %d", len(rows), dim))
	}
	logs := make([]float64, len(rows))
	for i, x := range rows {
		if x < eps {
			x = eps
		}
		logs[i] = math.Log(x)
	}
	n := len(rows) / dim
	negent := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < dim; j++ {
			s += rows[i*dim+j] * logs[i*dim+j]
		}
		negent[i] = s
	}
	return &LogRows{dim: dim, rows: rows, logs: logs, negent: negent}
}

// Len returns the number of rows in the table.
func (t *LogRows) Len() int { return len(t.rows) / t.dim }

// Dim returns the row dimensionality.
func (t *LogRows) Dim() int { return t.dim }

// QueryLogs fills qlogs[i] = log(max(q[i], eps)) — the per-query half of
// the precomputation, done once per query instead of once per row.
func QueryLogs(q, qlogs []float64) {
	if len(q) != len(qlogs) {
		panic(fmt.Sprintf("distance: query length %d != log buffer %d", len(q), len(qlogs)))
	}
	for i, x := range q {
		if x < eps {
			x = eps
		}
		qlogs[i] = math.Log(x)
	}
}

// KLRows writes out[i] ≈ KL(q ‖ row_i) using the precomputed logs. qlogs
// must come from QueryLogs(q, ...). The inner loop is a branch-free
// multiply-add: a zero q component contributes pj·diff = ±0, which leaves
// every IEEE partial sum unchanged, so skipping the old pj > 0 test is
// value-identical and lets the loop pipeline.
func (t *LogRows) KLRows(q, qlogs, out []float64) {
	checkRows(q, t.rows, t.dim, out)
	dim := t.dim
	for i := range out {
		base := i * dim
		logs := t.logs[base : base+dim]
		var d float64
		for j, pj := range q {
			d += pj * (qlogs[j] - logs[j])
		}
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// SymKLRows writes out[i] ≈ symKL(q, row_i) using the precomputed logs;
// both KL directions are clamped at zero separately, matching the scalar
// kernel's convention. qlogs must come from QueryLogs(q, ...). Branch-free
// like KLRows: zero components add exact ±0 to either accumulator.
func (t *LogRows) SymKLRows(q, qlogs, out []float64) {
	checkRows(q, t.rows, t.dim, out)
	dim := t.dim
	for i := range out {
		base := i * dim
		row := t.rows[base : base+dim]
		logs := t.logs[base : base+dim]
		var fwd, rev float64
		for j, pj := range q {
			diff := qlogs[j] - logs[j]
			fwd += pj * diff
			rev -= row[j] * diff
		}
		if fwd < 0 {
			fwd = 0
		}
		if rev < 0 {
			rev = 0
		}
		out[i] = fwd + rev
	}
}

// QueryNegEntropy returns Σ_j q_j · log(max(q_j, eps)) — the per-query
// negentropy half of the fast JSD decomposition, computed once per query
// instead of once per row.
func QueryNegEntropy(q []float64) float64 {
	var s float64
	for _, x := range q {
		lx := x
		if lx < eps {
			lx = eps
		}
		s += x * math.Log(lx)
	}
	return s
}

// JSDRows writes out[i] ≈ JSD(q, row_i) via the entropy decomposition
//
//	JSD(p, r) = ½Σ p_j log p_j + ½Σ r_j log r_j − Σ m_j log m_j
//
// with m = (p+r)/2: the per-row and per-query negentropy halves come from
// the precomputed tables, so only the mixture term costs a log per element
// — half the logs of the exact kernel. qent must come from
// QueryNegEntropy(q). Accurate to the last ulps on smoothed pmfs; an
// identical query and row give an exact 0.
func (t *LogRows) JSDRows(q []float64, qent float64, out []float64) {
	checkRows(q, t.rows, t.dim, out)
	dim := t.dim
	for i := range out {
		base := i * dim
		row := t.rows[base : base+dim]
		var ment float64
		for j, pj := range q {
			m := 0.5 * (pj + row[j])
			lm := m
			if lm < eps {
				lm = eps
			}
			ment += m * math.Log(lm)
		}
		d := 0.5*qent + 0.5*t.negent[i] - ment
		if d < 0 {
			d = 0
		}
		out[i] = d
	}
}

// KLRowsBatch is the batched form of KLRows: qs and qlogs are nq query
// vectors flattened row-major, out is query-major (out[k*n+i] for query k
// against row i). The matrix is swept row-outer so each row is touched
// once per batch; per-(query, row) arithmetic is identical to KLRows, so
// results are bit-for-bit equal to the per-query kernel.
func (t *LogRows) KLRowsBatch(qs, qlogs []float64, nq int, out []float64) {
	checkRowsBatch(qs, t.rows, t.dim, nq, out)
	dim, n := t.dim, t.Len()
	for i := 0; i < n; i++ {
		logs := t.logs[i*dim : (i+1)*dim]
		for k := 0; k < nq; k++ {
			q := qs[k*dim : (k+1)*dim]
			ql := qlogs[k*dim : (k+1)*dim]
			var d float64
			for j, pj := range q {
				d += pj * (ql[j] - logs[j])
			}
			if d < 0 {
				d = 0
			}
			out[k*n+i] = d
		}
	}
}

// SymKLRowsBatch is the batched form of SymKLRows; see KLRowsBatch for the
// layout. Bit-for-bit equal to the per-query kernel.
func (t *LogRows) SymKLRowsBatch(qs, qlogs []float64, nq int, out []float64) {
	checkRowsBatch(qs, t.rows, t.dim, nq, out)
	dim, n := t.dim, t.Len()
	for i := 0; i < n; i++ {
		row := t.rows[i*dim : (i+1)*dim]
		logs := t.logs[i*dim : (i+1)*dim]
		for k := 0; k < nq; k++ {
			q := qs[k*dim : (k+1)*dim]
			ql := qlogs[k*dim : (k+1)*dim]
			var fwd, rev float64
			for j, pj := range q {
				diff := ql[j] - logs[j]
				fwd += pj * diff
				rev -= row[j] * diff
			}
			if fwd < 0 {
				fwd = 0
			}
			if rev < 0 {
				rev = 0
			}
			out[k*n+i] = fwd + rev
		}
	}
}

// JSDRowsBatch is the batched form of JSDRows; qents[k] must come from
// QueryNegEntropy of query k. Bit-for-bit equal to the per-query kernel.
func (t *LogRows) JSDRowsBatch(qs, qents []float64, nq int, out []float64) {
	checkRowsBatch(qs, t.rows, t.dim, nq, out)
	if len(qents) != nq {
		panic(fmt.Sprintf("distance: %d query negentropies for %d queries", len(qents), nq))
	}
	dim, n := t.dim, t.Len()
	for i := 0; i < n; i++ {
		row := t.rows[i*dim : (i+1)*dim]
		for k := 0; k < nq; k++ {
			q := qs[k*dim : (k+1)*dim]
			var ment float64
			for j, pj := range q {
				m := 0.5 * (pj + row[j])
				lm := m
				if lm < eps {
					lm = eps
				}
				ment += m * math.Log(lm)
			}
			d := 0.5*qents[k] + 0.5*t.negent[i] - ment
			if d < 0 {
				d = 0
			}
			out[k*n+i] = d
		}
	}
}

// FastRowsFor reports whether the precomputed-log fast path applies to d:
// "kl" and "symkl" drop every log from the inner loop, "jsd" halves them
// via the entropy decomposition; every other catalogue distance has no log
// to amortize.
func FastRowsFor(name string) bool {
	return name == "kl" || name == "symkl" || name == "jsd"
}
