package distance

import (
	"math"
	"math/rand"
	"testing"
)

// randRows draws n random pmf-shaped rows of the given dimension into a
// flat matrix; zeroFrac components are hard zeros to exercise the kernels'
// zero/eps handling.
func randRows(rng *rand.Rand, n, dim int, zeroFrac float64) []float64 {
	flat := make([]float64, n*dim)
	for r := 0; r < n; r++ {
		row := flat[r*dim : (r+1)*dim]
		var sum float64
		for i := range row {
			if rng.Float64() < zeroFrac {
				continue
			}
			row[i] = rng.Float64() + 1e-4
			sum += row[i]
		}
		if sum > 0 {
			for i := range row {
				row[i] /= sum
			}
		}
	}
	return flat
}

// TestRowKernelsBitExact checks the contract the flat LOF refactor leans
// on: every catalogue row kernel produces bit-for-bit the same values as
// calling the scalar Func row by row, including rows and queries with
// hard-zero components.
func TestRowKernelsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dim = 64, 26
	for _, zeroFrac := range []float64{0, 0.3} {
		rows := randRows(rng, n, dim, zeroFrac)
		queries := randRows(rng, 8, dim, zeroFrac)
		for _, name := range Names() {
			d := Must(name)
			kernel := RowsOf(d)
			out := make([]float64, n)
			for qi := 0; qi < 8; qi++ {
				q := queries[qi*dim : (qi+1)*dim]
				kernel(q, rows, dim, out)
				for r := 0; r < n; r++ {
					want := d.F(q, rows[r*dim:(r+1)*dim])
					if out[r] != want { // bit-exact, no tolerance
						t.Fatalf("%s (zeroFrac %g): row %d: kernel %v != scalar %v",
							name, zeroFrac, r, out[r], want)
					}
				}
			}
		}
	}
}

// TestRowsOfGenericFallback checks that a Distance without a specialised
// kernel still gets a correct row form.
func TestRowsOfGenericFallback(t *testing.T) {
	d := Distance{Name: "custom-l2", F: L2} // no Rows field
	rng := rand.New(rand.NewSource(8))
	rows := randRows(rng, 10, 5, 0)
	q := randRows(rng, 1, 5, 0)
	out := make([]float64, 10)
	RowsOf(d)(q, rows, 5, out)
	for r := 0; r < 10; r++ {
		if want := L2(q, rows[r*5:(r+1)*5]); out[r] != want {
			t.Fatalf("generic fallback row %d: %v != %v", r, out[r], want)
		}
	}
}

// TestLogRowsCloseToScalar checks the fast KL-family path against the
// scalar kernels: not bit-exact by design, but within tight relative
// tolerance on smoothed (strictly positive) pmfs.
func TestLogRowsCloseToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, dim = 64, 26
	rows := randRows(rng, n, dim, 0) // strictly positive, like smoothed pmfs
	table := NewLogRows(rows, dim)
	if table.Len() != n || table.Dim() != dim {
		t.Fatalf("table shape %dx%d, want %dx%d", table.Len(), table.Dim(), n, dim)
	}
	q := randRows(rng, 1, dim, 0)
	qlogs := make([]float64, dim)
	QueryLogs(q, qlogs)
	out := make([]float64, n)

	table.SymKLRows(q, qlogs, out)
	for r := 0; r < n; r++ {
		want := SymmetricKL(q, rows[r*dim:(r+1)*dim])
		if math.Abs(out[r]-want) > 1e-9*(1+want) {
			t.Fatalf("fast symkl row %d: %v, scalar %v", r, out[r], want)
		}
	}
	table.KLRows(q, qlogs, out)
	for r := 0; r < n; r++ {
		want := KL(q, rows[r*dim:(r+1)*dim])
		if math.Abs(out[r]-want) > 1e-9*(1+want) {
			t.Fatalf("fast kl row %d: %v, scalar %v", r, out[r], want)
		}
	}
}

// TestLogRowsNonNegativeOnDuplicates: identical query and row must give a
// clean zero through the clamping, not a tiny negative.
func TestLogRowsNonNegativeOnDuplicates(t *testing.T) {
	row := []float64{0.2, 0.3, 0.5}
	table := NewLogRows(row, 3)
	qlogs := make([]float64, 3)
	QueryLogs(row, qlogs)
	out := make([]float64, 1)
	table.SymKLRows(row, qlogs, out)
	if out[0] != 0 {
		t.Fatalf("symkl(self) = %v, want 0", out[0])
	}
}

func TestFastRowsFor(t *testing.T) {
	for name, want := range map[string]bool{
		"kl": true, "symkl": true, "jsd": true, "jsdist": false, "l2": false, "hellinger": false,
	} {
		if got := FastRowsFor(name); got != want {
			t.Fatalf("FastRowsFor(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestLogRowsJSDCloseToScalar checks the fast JSD entropy-decomposition
// kernel against the scalar Func: not bit-exact by design (the
// decomposition reassociates the sum), but within tight tolerance on
// smoothed and on zero-bearing pmfs alike.
func TestLogRowsJSDCloseToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, dim = 64, 26
	for _, zeroFrac := range []float64{0, 0.3} {
		rows := randRows(rng, n, dim, zeroFrac)
		table := NewLogRows(rows, dim)
		q := randRows(rng, 1, dim, zeroFrac)
		out := make([]float64, n)
		table.JSDRows(q, QueryNegEntropy(q), out)
		for r := 0; r < n; r++ {
			want := JensenShannon(q, rows[r*dim:(r+1)*dim])
			if math.Abs(out[r]-want) > 1e-9*want+1e-12 {
				t.Fatalf("fast jsd (zeroFrac %g) row %d: %v, scalar %v", zeroFrac, r, out[r], want)
			}
		}
	}
}

// TestLogRowsJSDSelfIsZero: the decomposition cancels exactly for an
// identical query and row — the clamp must not be doing the work.
func TestLogRowsJSDSelfIsZero(t *testing.T) {
	row := []float64{0.2, 0.3, 0.5}
	table := NewLogRows(row, 3)
	out := make([]float64, 1)
	table.JSDRows(row, QueryNegEntropy(row), out)
	if out[0] != 0 {
		t.Fatalf("jsd(self) = %v, want 0", out[0])
	}
}

// TestBatchKernelsBitEqualSingle checks the batch contract ScoreBatch
// leans on: every batched kernel — the exact symkl kernel, the generic
// fallback, and the three fast LogRows forms — produces bit-for-bit the
// values of its per-query form.
func TestBatchKernelsBitEqualSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim, nq = 64, 26, 7
	for _, zeroFrac := range []float64{0, 0.3} {
		rows := randRows(rng, n, dim, zeroFrac)
		qs := randRows(rng, nq, dim, zeroFrac)

		// Exact kernels, specialised and generic fallback.
		for _, name := range Names() {
			d := Must(name)
			batch := RowsBatchOf(d)
			got := make([]float64, nq*n)
			batch(qs, rows, dim, nq, got)
			want := make([]float64, n)
			for k := 0; k < nq; k++ {
				RowsOf(d)(qs[k*dim:(k+1)*dim], rows, dim, want)
				for i := range want {
					if got[k*n+i] != want[i] {
						t.Fatalf("%s (zeroFrac %g): batch[%d,%d] = %v != single %v",
							name, zeroFrac, k, i, got[k*n+i], want[i])
					}
				}
			}
		}

		// Fast LogRows kernels.
		table := NewLogRows(rows, dim)
		qlogs := make([]float64, nq*dim)
		QueryLogs(qs, qlogs)
		qents := make([]float64, nq)
		for k := 0; k < nq; k++ {
			qents[k] = QueryNegEntropy(qs[k*dim : (k+1)*dim])
		}
		got := make([]float64, nq*n)
		want := make([]float64, n)

		table.SymKLRowsBatch(qs, qlogs, nq, got)
		for k := 0; k < nq; k++ {
			table.SymKLRows(qs[k*dim:(k+1)*dim], qlogs[k*dim:(k+1)*dim], want)
			for i := range want {
				if got[k*n+i] != want[i] {
					t.Fatalf("fast symkl (zeroFrac %g): batch[%d,%d] = %v != single %v",
						zeroFrac, k, i, got[k*n+i], want[i])
				}
			}
		}
		table.KLRowsBatch(qs, qlogs, nq, got)
		for k := 0; k < nq; k++ {
			table.KLRows(qs[k*dim:(k+1)*dim], qlogs[k*dim:(k+1)*dim], want)
			for i := range want {
				if got[k*n+i] != want[i] {
					t.Fatalf("fast kl (zeroFrac %g): batch[%d,%d] = %v != single %v",
						zeroFrac, k, i, got[k*n+i], want[i])
				}
			}
		}
		table.JSDRowsBatch(qs, qents, nq, got)
		for k := 0; k < nq; k++ {
			table.JSDRows(qs[k*dim:(k+1)*dim], qents[k], want)
			for i := range want {
				if got[k*n+i] != want[i] {
					t.Fatalf("fast jsd (zeroFrac %g): batch[%d,%d] = %v != single %v",
						zeroFrac, k, i, got[k*n+i], want[i])
				}
			}
		}
	}
}
