package distance

import (
	"math"
	"math/rand"
	"testing"
)

// randomPMF draws a smoothed random distribution of dimension d.
func randomPMF(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	var sum float64
	for i := range p {
		p[i] = rng.Float64() + 0.01
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestPropertiesAcrossCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range Names() {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		for trial := 0; trial < 200; trial++ {
			dim := 2 + rng.Intn(30)
			p := randomPMF(rng, dim)
			q := randomPMF(rng, dim)
			v := d.F(p, q)
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s: negative or NaN distance %g", name, v)
			}
			if z := d.F(p, p); z > 1e-9 {
				t.Fatalf("%s: d(p,p) = %g, want ~0", name, z)
			}
		}
	}
}

func TestSymmetry(t *testing.T) {
	symmetric := []string{"symkl", "jsd", "jsdist", "hellinger", "l1", "l2", "chi2"}
	rng := rand.New(rand.NewSource(2))
	for _, name := range symmetric {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			p := randomPMF(rng, 8)
			q := randomPMF(rng, 8)
			a, b := d.F(p, q), d.F(q, p)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: asymmetric, d(p,q)=%g d(q,p)=%g", name, a, b)
			}
		}
	}
	// Sanity: plain KL really is asymmetric, otherwise the symmetric test
	// proves nothing.
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	if math.Abs(KL(p, q)-KL(q, p)) < 1e-6 {
		t.Fatal("KL unexpectedly symmetric on a test pair")
	}
}

func TestTriangleInequalityForMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range Names() {
		d, _ := ByName(name)
		if !d.Metric {
			continue
		}
		for trial := 0; trial < 500; trial++ {
			dim := 2 + rng.Intn(12)
			a := randomPMF(rng, dim)
			b := randomPMF(rng, dim)
			c := randomPMF(rng, dim)
			if d.F(a, c) > d.F(a, b)+d.F(b, c)+1e-12 {
				t.Fatalf("%s: triangle inequality violated: d(a,c)=%g > %g+%g",
					name, d.F(a, c), d.F(a, b), d.F(b, c))
			}
		}
	}
}

func TestKLHandComputed(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	// D(p‖q) = 0.5 ln(0.5/0.25) + 0.5 ln(0.5/0.75) = 0.5 ln(4/3)
	want := 0.5 * math.Log(4.0/3.0)
	if got := KL(p, q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KL(p,q) = %g, want %g", got, want)
	}
	// D(q‖p) = 0.25 ln(0.5) + 0.75 ln(1.5)
	want2 := 0.25*math.Log(0.5) + 0.75*math.Log(1.5)
	if got := KL(q, p); math.Abs(got-want2) > 1e-12 {
		t.Fatalf("KL(q,p) = %g, want %g", got, want2)
	}
	if got := SymmetricKL(p, q); math.Abs(got-(want+want2)) > 1e-12 {
		t.Fatalf("SymmetricKL = %g, want %g", got, want+want2)
	}
}

func TestJensenShannonBound(t *testing.T) {
	// JSD is bounded by ln 2, reached for disjoint supports.
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := JensenShannon(p, q); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("JSD of disjoint supports = %g, want ln2 = %g", got, math.Log(2))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	for _, name := range Names() {
		d, err := ByName(name)
		if err != nil || d.Name != name || d.F == nil {
			t.Fatalf("catalogue entry %q broken: %+v err=%v", name, d, err)
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	L2([]float64{1}, []float64{0.5, 0.5})
}
