package lof

import (
	"math/rand"
	"testing"

	"enduratrace/internal/distance"
)

// benchPoints draws n pmf-shaped reference vectors of dimension dim
// (normalised, strictly positive — the shape the monitor feeds LOF).
func benchPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		var sum float64
		for j := range p {
			p[j] = rng.Float64() + 1e-3
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		pts[i] = p
	}
	return pts
}

// benchmarkScore measures Scorer.Score — the monitoring hot path, run on
// every gate trip — for one index/distance/condensation combination. The
// before/after comparison for the flat-matrix refactor is the uncondensed
// Brute* numbers vs the Condensed* numbers at the same n.
func benchmarkScore(b *testing.B, n int, d distance.Distance, opts FitOptions) {
	const dim = 26 // mediasim pmf (25 event types) + rate feature
	pts := benchPoints(n, dim, 1)
	m, err := Fit(pts, 20, d, opts)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchPoints(64, dim, 2)
	sc := m.NewScorer()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sc.Score(queries[i%len(queries)])
	}
	_ = sink
}

func BenchmarkScoreBruteSymKL1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("symkl"), FitOptions{})
}

func BenchmarkScoreBruteSymKL3000(b *testing.B) {
	benchmarkScore(b, 3000, distance.Must("symkl"), FitOptions{})
}

// BenchmarkScoreCondensedSymKL1000 is the headline hot-path number: the
// same 1000-point reference set condensed to 200 rows, scored through the
// flat fast-KL kernels. Compare against BenchmarkScoreBruteSymKL1000.
func BenchmarkScoreCondensedSymKL1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("symkl"), FitOptions{CondenseTarget: 200, Seed: 1})
}

func BenchmarkScoreCondensedSymKL3000(b *testing.B) {
	benchmarkScore(b, 3000, distance.Must("symkl"), FitOptions{CondenseTarget: 200, Seed: 1})
}

func BenchmarkScoreBruteL21000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("l2"), FitOptions{})
}

func BenchmarkScoreVPTreeL21000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("l2"), FitOptions{UseVPTree: true, Seed: 1})
}

func BenchmarkScoreBruteHellinger1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("hellinger"), FitOptions{})
}

func BenchmarkScoreVPTreeHellinger1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("hellinger"), FitOptions{UseVPTree: true, Seed: 1})
}

// benchmarkScoreBatch measures Scorer.ScoreBatch at batch size nq — the
// serve path's whole-window drain. Per-op cost divided by nq against the
// matching Score benchmark shows the matrix-sweep amortisation.
func benchmarkScoreBatch(b *testing.B, n, nq int, opts FitOptions) {
	const dim = 26
	pts := benchPoints(n, dim, 1)
	m, err := Fit(pts, 20, distance.Must("symkl"), opts)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchPoints(nq, dim, 2)
	out := make([]float64, nq)
	sc := m.NewScorer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.ScoreBatch(queries, out)
	}
}

func BenchmarkScoreBatchBruteSymKL1000x8(b *testing.B) {
	benchmarkScoreBatch(b, 1000, 8, FitOptions{})
}

func BenchmarkScoreBatchFastSymKL1000x8(b *testing.B) {
	benchmarkScoreBatch(b, 1000, 8, FitOptions{FastKernels: true})
}

// BenchmarkScoreFastSymKL1000 is the single-query form of the FastKernels
// opt-in, for comparison with BenchmarkScoreBruteSymKL1000.
func BenchmarkScoreFastSymKL1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("symkl"), FitOptions{FastKernels: true})
}

// BenchmarkFitBruteSymKL1000 measures the learning step (pairwise kNN at
// fit time), the other cost the ROADMAP perf item cares about.
func BenchmarkFitBruteSymKL1000(b *testing.B) {
	pts := benchPoints(1000, 26, 1)
	d := distance.Must("symkl")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(pts, 20, d, FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitCondensedSymKL1000 measures fit with condensation: the FPS
// pass costs O(target·n) row-kernel distances, but the kNN stage then
// runs on target rows with the fast kernels.
func BenchmarkFitCondensedSymKL1000(b *testing.B) {
	pts := benchPoints(1000, 26, 1)
	d := distance.Must("symkl")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(pts, 20, d, FitOptions{CondenseTarget: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
