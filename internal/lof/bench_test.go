package lof

import (
	"math/rand"
	"testing"

	"enduratrace/internal/distance"
)

// benchPoints draws n pmf-shaped reference vectors of dimension dim
// (normalised, strictly positive — the shape the monitor feeds LOF).
func benchPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		var sum float64
		for j := range p {
			p[j] = rng.Float64() + 1e-3
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		pts[i] = p
	}
	return pts
}

// benchmarkScore measures Model.Score — the monitoring hot path, run on
// every gate trip — for one index/distance combination.
func benchmarkScore(b *testing.B, n int, d distance.Distance, useVPTree bool) {
	const dim = 26 // mediasim pmf (25 event types) + rate feature
	pts := benchPoints(n, dim, 1)
	m, err := Fit(pts, 20, d, FitOptions{UseVPTree: useVPTree, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchPoints(64, dim, 2)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Score(queries[i%len(queries)])
	}
	_ = sink
}

func BenchmarkScoreBruteSymKL1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("symkl"), false)
}

func BenchmarkScoreBruteSymKL3000(b *testing.B) {
	benchmarkScore(b, 3000, distance.Must("symkl"), false)
}

func BenchmarkScoreBruteL21000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("l2"), false)
}

func BenchmarkScoreVPTreeL21000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("l2"), true)
}

func BenchmarkScoreBruteHellinger1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("hellinger"), false)
}

func BenchmarkScoreVPTreeHellinger1000(b *testing.B) {
	benchmarkScore(b, 1000, distance.Must("hellinger"), true)
}

// BenchmarkFitBruteSymKL1000 measures the learning step (pairwise kNN at
// fit time), the other cost the ROADMAP perf item cares about.
func BenchmarkFitBruteSymKL1000(b *testing.B) {
	pts := benchPoints(1000, 26, 1)
	d := distance.Must("symkl")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(pts, 20, d, FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
