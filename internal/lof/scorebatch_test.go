package lof

import (
	"math/rand"
	"testing"

	"enduratrace/internal/distance"
)

// TestScoreBatchMatchesScore: ScoreBatch must equal per-query Score
// bit-for-bit on every index configuration — the exact brute path, the
// opt-in fast-kernel paths (symkl, kl, jsd), the condensed model, and
// the VP-tree fallback. Batching only reorders kernel loops; it must
// never change a score.
func TestScoreBatchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := pmfPoints(rng, 300, 8)
	cases := []struct {
		name string
		dist string
		opts FitOptions
	}{
		{"brute-exact-symkl", "symkl", FitOptions{}},
		{"brute-exact-l2", "l2", FitOptions{}},
		{"brute-fast-symkl", "symkl", FitOptions{FastKernels: true}},
		{"brute-fast-kl", "kl", FitOptions{FastKernels: true}},
		{"brute-fast-jsd", "jsd", FitOptions{FastKernels: true}},
		{"brute-condensed", "symkl", FitOptions{CondenseTarget: 80, Seed: 1}},
		{"vptree-fallback", "hellinger", FitOptions{UseVPTree: true, Seed: 1}},
	}
	queries := pmfPoints(rng, 17, 8) // odd size: exercises a non-full tail batch upstream
	for _, tc := range cases {
		m, err := Fit(pts, 10, distance.Must(tc.dist), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		single := m.NewScorer()
		want := make([]float64, len(queries))
		for i, q := range queries {
			want[i] = single.Score(q)
		}
		batch := m.NewScorer()
		got := make([]float64, len(queries))
		batch.ScoreBatch(queries, got)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: query %d: ScoreBatch %v != Score %v", tc.name, i, got[i], want[i])
			}
		}
		// A singleton batch takes the fallback path; it must agree too.
		batch.ScoreBatch(queries[:1], got[:1])
		if got[0] != want[0] {
			t.Errorf("%s: singleton batch %v != Score %v", tc.name, got[0], want[0])
		}
	}
}

// TestScoreBatchZeroAlloc: after warmup, batched scoring must not
// allocate — the serve scoring goroutine leans on this.
func TestScoreBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := pmfPoints(rng, 300, 8)
	queries := pmfPoints(rng, 8, 8)
	out := make([]float64, len(queries))
	for _, opts := range []FitOptions{{}, {FastKernels: true}} {
		m, err := Fit(pts, 10, distance.Must("symkl"), opts)
		if err != nil {
			t.Fatal(err)
		}
		sc := m.NewScorer()
		sc.ScoreBatch(queries, out) // warm the scratch
		if allocs := testing.AllocsPerRun(100, func() { sc.ScoreBatch(queries, out) }); allocs != 0 {
			t.Errorf("FastKernels=%v: ScoreBatch allocates %v/op, want 0", opts.FastKernels, allocs)
		}
	}
}

// TestScoreBatchPanicsOnBadShape: shape mismatches are programming
// errors and must fail loudly, not silently truncate.
func TestScoreBatchPanicsOnBadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := pmfPoints(rng, 50, 8)
	m, err := Fit(pts, 5, distance.Must("symkl"), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.NewScorer()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	qs := pmfPoints(rng, 3, 8)
	mustPanic("out too short", func() { sc.ScoreBatch(qs, make([]float64, 2)) })
	mustPanic("bad query dim", func() {
		sc.ScoreBatch([][]float64{qs[0], {0.5, 0.5}, qs[2]}, make([]float64, 3))
	})
}

// TestFastKernelsMatchExactClosely: the FastKernels opt-in must track
// the exact model tightly — same anomaly verdicts, tiny score drift.
func TestFastKernelsMatchExactClosely(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := pmfPoints(rng, 400, 8)
	exact, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{FastKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	se, sf := exact.NewScorer(), fast.NewScorer()
	for _, q := range pmfPoints(rng, 50, 8) {
		a, b := se.Score(q), sf.Score(q)
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-6*(1+a) {
			t.Fatalf("fast kernels drifted: exact %v vs fast %v", a, b)
		}
	}
	outlier := []float64{0.93, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01}
	if a, b := se.Score(outlier), sf.Score(outlier); a < 2 || b < 2 {
		t.Fatalf("outlier: exact %v vs fast %v, want both >> 1", a, b)
	}
}
