package lof

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"enduratrace/internal/distance"
)

// pmfPoints draws n smoothed-pmf-shaped points (strictly positive,
// normalised) — the shape the monitor feeds LOF.
func pmfPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		var sum float64
		for j := range p {
			p[j] = rng.Float64() + 1e-3
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		pts[i] = p
	}
	return pts
}

func TestCondenseShrinksModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := pmfPoints(rng, 400, 8)
	m, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 60 {
		t.Fatalf("condensed model has %d points, want 60", m.Len())
	}
	if m.Cond == nil || m.Cond.OriginalN != 400 || m.Cond.KeptN != 60 {
		t.Fatalf("condense report %+v, want 400 -> 60", m.Cond)
	}
	// The report quantiles summarise the full original set under the
	// condensed model; for i.i.d. points they must be finite, ordered and
	// near 1.
	c := m.Cond
	if !(c.P50 <= c.P90 && c.P90 <= c.P95 && c.P95 <= c.P99) {
		t.Fatalf("unordered quantiles %+v", c)
	}
	if c.P50 < 0.5 || c.P99 > 10 || math.IsInf(c.P99, 0) || math.IsNaN(c.P50) {
		t.Fatalf("implausible quantiles %+v", c)
	}
	// Every condensed row must be one of the original points.
	orig := make(map[[8]float64]bool, len(pts))
	for _, p := range pts {
		var k [8]float64
		copy(k[:], p)
		orig[k] = true
	}
	for i := 0; i < m.Len(); i++ {
		var k [8]float64
		copy(k[:], m.Row(i))
		if !orig[k] {
			t.Fatalf("condensed row %d is not an original point", i)
		}
	}
}

func TestCondenseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := pmfPoints(rng, 200, 6)
	fit := func() *Model {
		m, err := Fit(pts, 8, distance.Must("symkl"), FitOptions{CondenseTarget: 40, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := fit(), fit()
	q := pmfPoints(rng, 1, 6)[0]
	if sa, sb := a.Score(q), b.Score(q); sa != sb {
		t.Fatalf("condensed fits disagree: %v vs %v", sa, sb)
	}
	for i := 0; i < a.Len(); i++ {
		for j, v := range a.Row(i) {
			if b.Row(i)[j] != v {
				t.Fatalf("condensed matrices differ at row %d", i)
			}
		}
	}
}

// TestCondenseNoOpWhenTargetCoversSet: a target >= n keeps every point
// (no report) but still routes scoring through the fast kernels — the
// reload path relies on this being a pure no-op selection.
func TestCondenseNoOpWhenTargetCoversSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := pmfPoints(rng, 50, 6)
	m, err := Fit(pts, 8, distance.Must("symkl"), FitOptions{CondenseTarget: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 50 || m.Cond != nil {
		t.Fatalf("no-op condensation: len %d cond %+v, want 50/nil", m.Len(), m.Cond)
	}
}

func TestCondenseTargetMustExceedK(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := pmfPoints(rng, 50, 4)
	if _, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: 10}); err == nil {
		t.Fatal("Fit accepted CondenseTarget == K")
	}
	if _, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: 5}); err == nil {
		t.Fatal("Fit accepted CondenseTarget < K")
	}
}

// TestCondenseDuplicateHeavySet: farthest-point sampling stops early when
// the remaining points duplicate kept ones; with only K or fewer distinct
// points the fit must fail loudly instead of building a degenerate model.
func TestCondenseDuplicateHeavySet(t *testing.T) {
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{0.5, 0.5} // all identical
	}
	_, err := Fit(pts, 3, distance.Must("l2"), FitOptions{CondenseTarget: 10})
	if !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("err = %v, want ErrTooFewPoints (1 distinct point)", err)
	}
}

// TestCondensedScoresTrackExact: condensation is approximate, but on a
// well-covered cluster the condensed score must stay close to the exact
// model's for both inliers and the planted outlier's verdict.
func TestCondensedScoresTrackExact(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := pmfPoints(rng, 500, 8)
	exact, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inlier := pmfPoints(rng, 1, 8)[0]
	se, sc := exact.Score(inlier), cond.Score(inlier)
	if math.Abs(se-sc) > 0.5*se {
		t.Fatalf("inlier: exact %v vs condensed %v", se, sc)
	}
	// A far-off corner pmf must be flagged hard by both.
	outlier := []float64{0.93, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01}
	if se, sc = exact.Score(outlier), cond.Score(outlier); sc < 2 || se < 2 {
		t.Fatalf("outlier: exact %v vs condensed %v, want both >> 1", se, sc)
	}
}

// TestScorerMatchesModelScore: the per-goroutine Scorer and the
// convenience Model.Score must agree exactly, condensed or not.
func TestScorerMatchesModelScore(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := pmfPoints(rng, 300, 8)
	for _, target := range []int{0, 80} {
		m, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: target, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		sc := m.NewScorer()
		for _, q := range pmfPoints(rng, 20, 8) {
			if a, b := sc.Score(q), m.Score(q); a != b {
				t.Fatalf("target %d: scorer %v != model %v", target, a, b)
			}
		}
	}
}

// TestScorerZeroAlloc is the allocation-regression gate for the scoring
// hot path: after warmup, Scorer.Score must not allocate — on the exact
// brute path, the condensed fast-KL path, and the VP-tree path.
func TestScorerZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := pmfPoints(rng, 300, 8)
	cases := []struct {
		name string
		dist string
		opts FitOptions
	}{
		{"brute-exact", "symkl", FitOptions{}},
		{"brute-condensed-fast", "symkl", FitOptions{CondenseTarget: 80, Seed: 1}},
		{"vptree", "hellinger", FitOptions{UseVPTree: true, Seed: 1}},
	}
	q := pmfPoints(rng, 1, 8)[0]
	for _, tc := range cases {
		m, err := Fit(pts, 10, distance.Must(tc.dist), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		sc := m.NewScorer()
		sc.Score(q) // warm the scratch
		var sink float64
		if allocs := testing.AllocsPerRun(100, func() { sink += sc.Score(q) }); allocs != 0 {
			t.Errorf("%s: Scorer.Score allocates %v/op, want 0", tc.name, allocs)
		}
		_ = sink
	}
}

// TestConcurrentScorersRaceClean drives many Scorers over one shared
// Model; run under -race this is the shared-immutable-model guarantee.
func TestConcurrentScorersRaceClean(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	pts := pmfPoints(rng, 200, 8)
	m, err := Fit(pts, 10, distance.Must("symkl"), FitOptions{CondenseTarget: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := pmfPoints(rng, 32, 8)
	want := make([]float64, len(queries))
	base := m.NewScorer()
	for i, q := range queries {
		want[i] = base.Score(q)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			sc := m.NewScorer()
			for rep := 0; rep < 50; rep++ {
				for i, q := range queries {
					if got := sc.Score(q); got != want[i] {
						done <- errors.New("concurrent scorer diverged")
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
