package lof

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"enduratrace/internal/distance"
)

// Neighbor is one k-nearest-neighbour query result.
type Neighbor struct {
	Idx  int     // index of the neighbour in the fitted point set
	Dist float64 // distance from the query to the neighbour
}

// Scratch holds the reusable buffers of one k-NN/scoring goroutine: the
// row-kernel distance output, the bounded selection heap, the sorted
// neighbour result, and the query-log buffer of the fast KL path. Buffers
// grow on first use and are reused afterwards, so steady-state queries
// allocate nothing. A Scratch must not be shared between goroutines.
type Scratch struct {
	dists []float64
	heap  neighborHeap
	out   []Neighbor
	qlogs []float64
	// Batch-scoring buffers: the flattened query block, the nq×n distance
	// matrix, and the per-query negative entropies of the fast JSD path.
	qflat  []float64
	bdists []float64
	qents  []float64
}

func (s *Scratch) floats(n int) []float64 {
	if cap(s.dists) < n {
		s.dists = make([]float64, n)
	}
	s.dists = s.dists[:n]
	return s.dists
}

func (s *Scratch) logBuf(n int) []float64 {
	if cap(s.qlogs) < n {
		s.qlogs = make([]float64, n)
	}
	s.qlogs = s.qlogs[:n]
	return s.qlogs
}

func (s *Scratch) resetHeap(k int) *neighborHeap {
	if cap(s.heap.items) < k {
		s.heap.items = make([]Neighbor, 0, k)
	}
	s.heap.items = s.heap.items[:0]
	s.heap.cap = k
	return &s.heap
}

func (s *Scratch) neighborBuf(n int) []Neighbor {
	if cap(s.out) < n {
		s.out = make([]Neighbor, n)
	}
	s.out = s.out[:n]
	return s.out
}

func (s *Scratch) flatBuf(n int) []float64 {
	if cap(s.qflat) < n {
		s.qflat = make([]float64, n)
	}
	s.qflat = s.qflat[:n]
	return s.qflat
}

func (s *Scratch) batchDists(n int) []float64 {
	if cap(s.bdists) < n {
		s.bdists = make([]float64, n)
	}
	s.bdists = s.bdists[:n]
	return s.bdists
}

func (s *Scratch) entBuf(n int) []float64 {
	if cap(s.qents) < n {
		s.qents = make([]float64, n)
	}
	s.qents = s.qents[:n]
	return s.qents
}

// Index answers k-nearest-neighbour queries over a fixed point set stored
// as a flat row-major matrix.
//
// KNN returns the k nearest points to q in ascending distance order (fewer
// if the set is smaller than k). When skip >= 0, the point with that index
// is excluded — used when querying a training point against its own set.
// The result is backed by s and only valid until s's next query.
type Index interface {
	KNN(q []float64, k, skip int, s *Scratch) []Neighbor
	Len() int
}

// neighborHeap is a bounded max-heap on Dist used to keep the k best
// candidates during a scan.
type neighborHeap struct {
	items []Neighbor
	cap   int
}

func (h *neighborHeap) worst() float64 {
	if len(h.items) < h.cap {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

func (h *neighborHeap) push(n Neighbor) {
	if len(h.items) < h.cap {
		h.items = append(h.items, n)
		h.up(len(h.items) - 1)
		return
	}
	if n.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = n
	h.down(0)
}

func (h *neighborHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *neighborHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// drainSorted empties the heap into dst in ascending distance order using
// in-place heapsort on the max-heap (no allocation). The heap is left
// empty; dst must have length len(h.items).
func (h *neighborHeap) drainSorted(dst []Neighbor) []Neighbor {
	items := h.items
	for n := len(items); n > 1; n-- {
		items[0], items[n-1] = items[n-1], items[0]
		h.items = items[:n-1]
		h.down(0)
	}
	h.items = items
	copy(dst, items)
	h.items = items[:0]
	return dst
}

// BruteIndex answers k-NN queries by a single row-kernel pass over the
// flat reference matrix followed by bounded-heap selection. It accepts any
// dissimilarity (including the non-metric KL family), which makes it the
// default index for pmf points.
type BruteIndex struct {
	flat      []float64
	dim       int
	n         int
	rows      distance.RowsFunc
	rowsBatch distance.RowsBatchFunc
	logs      *distance.LogRows // non-nil switches to the fast KL-family path
	name      string
}

// NewBruteIndex builds a brute-force index over the flat row-major matrix
// (n = len(flat)/dim rows). The slice is retained, not copied.
func NewBruteIndex(flat []float64, dim int, d distance.Distance) *BruteIndex {
	if dim <= 0 || len(flat)%dim != 0 {
		panic(fmt.Sprintf("lof: matrix length %d not a multiple of dim %d", len(flat), dim))
	}
	return &BruteIndex{
		flat:      flat,
		dim:       dim,
		n:         len(flat) / dim,
		rows:      distance.RowsOf(d),
		rowsBatch: distance.RowsBatchOf(d),
		name:      d.Name,
	}
}

// EnableFastKernels precomputes the per-row log table and switches the
// index to the fast (approximate, see distance.LogRows) KL-family row
// kernels. It is a no-op for distances outside the KL family.
func (b *BruteIndex) EnableFastKernels() {
	if distance.FastRowsFor(b.name) {
		b.logs = distance.NewLogRows(b.flat, b.dim)
	}
}

// Len implements Index.
func (b *BruteIndex) Len() int { return b.n }

// KNN implements Index.
func (b *BruteIndex) KNN(q []float64, k, skip int, s *Scratch) []Neighbor {
	if k <= 0 {
		return nil
	}
	dists := s.floats(b.n)
	b.fillDists(q, s, dists)
	return selectK(dists, k, skip, s)
}

// fillDists writes the distance from q to every reference row into dists
// (length b.n), through the fast log-table kernels when enabled.
func (b *BruteIndex) fillDists(q []float64, s *Scratch, dists []float64) {
	if b.logs != nil {
		switch b.name {
		case "symkl":
			qlogs := s.logBuf(b.dim)
			distance.QueryLogs(q, qlogs)
			b.logs.SymKLRows(q, qlogs, dists)
		case "kl":
			qlogs := s.logBuf(b.dim)
			distance.QueryLogs(q, qlogs)
			b.logs.KLRows(q, qlogs, dists)
		case "jsd":
			b.logs.JSDRows(q, distance.QueryNegEntropy(q), dists)
		default:
			panic(fmt.Sprintf("lof: fast kernels enabled for unsupported distance %q", b.name))
		}
		return
	}
	b.rows(q, b.flat, b.dim, dists)
}

// distsBatch computes the full nq×b.n distance matrix between the
// flattened query block and the reference rows in one batched sweep, so
// each matrix row is loaded once per batch instead of once per query.
// Query k's distances land in out[k*b.n : (k+1)*b.n], bit-for-bit equal
// to fillDists on that query alone.
func (b *BruteIndex) distsBatch(qflat []float64, nq int, s *Scratch, out []float64) {
	if b.logs != nil {
		switch b.name {
		case "symkl":
			qlogs := s.logBuf(nq * b.dim)
			distance.QueryLogs(qflat, qlogs)
			b.logs.SymKLRowsBatch(qflat, qlogs, nq, out)
		case "kl":
			qlogs := s.logBuf(nq * b.dim)
			distance.QueryLogs(qflat, qlogs)
			b.logs.KLRowsBatch(qflat, qlogs, nq, out)
		case "jsd":
			qents := s.entBuf(nq)
			for k := 0; k < nq; k++ {
				qents[k] = distance.QueryNegEntropy(qflat[k*b.dim : (k+1)*b.dim])
			}
			b.logs.JSDRowsBatch(qflat, qents, nq, out)
		default:
			panic(fmt.Sprintf("lof: fast kernels enabled for unsupported distance %q", b.name))
		}
		return
	}
	b.rowsBatch(qflat, b.flat, b.dim, nq, out)
}

// selectK runs bounded-heap selection over a filled distance row,
// returning the k nearest in ascending order (excluding index skip when
// skip >= 0). The result is backed by s.
func selectK(dists []float64, k, skip int, s *Scratch) []Neighbor {
	h := s.resetHeap(k)
	for i, d := range dists {
		if i == skip {
			continue
		}
		if d < h.worst() {
			h.push(Neighbor{Idx: i, Dist: d})
		}
	}
	return h.drainSorted(s.neighborBuf(len(h.items)))
}

// VPTree is a vantage-point tree supporting k-NN queries under a metric
// distance. Build is O(n log n) expected; queries prune using the triangle
// inequality. Using it with a non-metric dissimilarity silently returns
// wrong neighbours, so NewVPTree refuses non-metric distances.
type VPTree struct {
	flat []float64
	dim  int
	n    int
	dist distance.Func
	root *vpNode
}

type vpNode struct {
	idx     int     // vantage point index into the matrix
	radius  float64 // median distance from vantage to its subtree points
	inside  *vpNode // points with d <= radius
	outside *vpNode
}

// NewVPTree builds a VP-tree over the flat row-major matrix. d must be a
// metric (d.Metric). seed controls vantage-point selection; any fixed
// value gives a deterministic tree.
func NewVPTree(flat []float64, dim int, d distance.Distance, seed int64) (*VPTree, error) {
	if !d.Metric {
		return nil, fmt.Errorf("lof: VP-tree requires a metric distance, %q is not", d.Name)
	}
	if dim <= 0 || len(flat)%dim != 0 {
		return nil, fmt.Errorf("lof: matrix length %d not a multiple of dim %d", len(flat), dim)
	}
	t := &VPTree{flat: flat, dim: dim, n: len(flat) / dim, dist: d.F}
	idxs := make([]int, t.n)
	for i := range idxs {
		idxs[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idxs, rng)
	return t, nil
}

func (t *VPTree) row(i int) []float64 {
	return t.flat[i*t.dim : (i+1)*t.dim]
}

func (t *VPTree) build(idxs []int, rng *rand.Rand) *vpNode {
	if len(idxs) == 0 {
		return nil
	}
	// Pick a random vantage point and move it to the front.
	vi := rng.Intn(len(idxs))
	idxs[0], idxs[vi] = idxs[vi], idxs[0]
	node := &vpNode{idx: idxs[0]}
	rest := idxs[1:]
	if len(rest) == 0 {
		return node
	}
	vp := t.row(node.idx)
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = t.dist(vp, t.row(id))
	}
	// Partition around the median distance.
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	node.radius = dists[order[mid]]
	inside := make([]int, 0, mid+1)
	outside := make([]int, 0, len(order)-mid)
	for _, o := range order {
		if dists[o] <= node.radius {
			inside = append(inside, rest[o])
		} else {
			outside = append(outside, rest[o])
		}
	}
	// Degenerate case: all points at the same distance end up inside; split
	// arbitrarily to guarantee progress.
	if len(outside) == 0 && len(inside) > 1 {
		half := len(inside) / 2
		outside = inside[half:]
		inside = inside[:half]
	}
	node.inside = t.build(inside, rng)
	node.outside = t.build(outside, rng)
	return node
}

// Len implements Index.
func (t *VPTree) Len() int { return t.n }

// KNN implements Index.
func (t *VPTree) KNN(q []float64, k, skip int, s *Scratch) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := s.resetHeap(k)
	t.search(t.root, q, skip, h)
	return h.drainSorted(s.neighborBuf(len(h.items)))
}

func (t *VPTree) search(n *vpNode, q []float64, skip int, h *neighborHeap) {
	if n == nil {
		return
	}
	d := t.dist(q, t.row(n.idx))
	if n.idx != skip && d < h.worst() {
		h.push(Neighbor{Idx: n.idx, Dist: d})
	}
	if d <= n.radius {
		t.search(n.inside, q, skip, h)
		if d+h.worst() >= n.radius {
			t.search(n.outside, q, skip, h)
		}
	} else {
		t.search(n.outside, q, skip, h)
		if d-h.worst() <= n.radius {
			t.search(n.inside, q, skip, h)
		}
	}
}
