package lof

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"enduratrace/internal/distance"
)

// Neighbor is one k-nearest-neighbour query result.
type Neighbor struct {
	Idx  int     // index of the neighbour in the fitted point set
	Dist float64 // distance from the query to the neighbour
}

// Index answers k-nearest-neighbour queries over a fixed point set.
//
// KNN returns the k nearest points to q in ascending distance order (fewer
// if the set is smaller than k). When skip >= 0, the point with that index
// is excluded — used when querying a training point against its own set.
type Index interface {
	KNN(q []float64, k, skip int) []Neighbor
	Len() int
}

// neighborHeap is a bounded max-heap on Dist used to keep the k best
// candidates during a scan.
type neighborHeap struct {
	items []Neighbor
	cap   int
}

func newNeighborHeap(k int) *neighborHeap {
	return &neighborHeap{items: make([]Neighbor, 0, k), cap: k}
}

func (h *neighborHeap) worst() float64 {
	if len(h.items) < h.cap {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

func (h *neighborHeap) push(n Neighbor) {
	if len(h.items) < h.cap {
		h.items = append(h.items, n)
		h.up(len(h.items) - 1)
		return
	}
	if n.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = n
	h.down(0)
}

func (h *neighborHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *neighborHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (h *neighborHeap) sorted() []Neighbor {
	out := make([]Neighbor, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}

// BruteIndex answers k-NN queries by linear scan. It accepts any
// dissimilarity (including the non-metric KL family), which makes it the
// default index for pmf points.
type BruteIndex struct {
	points [][]float64
	dist   distance.Func
}

// NewBruteIndex builds a brute-force index over points. The slice is
// retained, not copied.
func NewBruteIndex(points [][]float64, dist distance.Func) *BruteIndex {
	return &BruteIndex{points: points, dist: dist}
}

// Len implements Index.
func (b *BruteIndex) Len() int { return len(b.points) }

// KNN implements Index.
func (b *BruteIndex) KNN(q []float64, k, skip int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := newNeighborHeap(k)
	for i, p := range b.points {
		if i == skip {
			continue
		}
		d := b.dist(q, p)
		if d < h.worst() {
			h.push(Neighbor{Idx: i, Dist: d})
		}
	}
	return h.sorted()
}

// VPTree is a vantage-point tree supporting k-NN queries under a metric
// distance. Build is O(n log n) expected; queries prune using the triangle
// inequality. Using it with a non-metric dissimilarity silently returns
// wrong neighbours, so NewVPTree refuses non-metric distances.
type VPTree struct {
	points [][]float64
	dist   distance.Func
	root   *vpNode
}

type vpNode struct {
	idx     int     // vantage point index into points
	radius  float64 // median distance from vantage to its subtree points
	inside  *vpNode // points with d <= radius
	outside *vpNode
}

// NewVPTree builds a VP-tree over points. d must be a metric (d.Metric).
// seed controls vantage-point selection; any fixed value gives a
// deterministic tree.
func NewVPTree(points [][]float64, d distance.Distance, seed int64) (*VPTree, error) {
	if !d.Metric {
		return nil, fmt.Errorf("lof: VP-tree requires a metric distance, %q is not", d.Name)
	}
	t := &VPTree{points: points, dist: d.F}
	idxs := make([]int, len(points))
	for i := range idxs {
		idxs[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(idxs, rng)
	return t, nil
}

func (t *VPTree) build(idxs []int, rng *rand.Rand) *vpNode {
	if len(idxs) == 0 {
		return nil
	}
	// Pick a random vantage point and move it to the front.
	vi := rng.Intn(len(idxs))
	idxs[0], idxs[vi] = idxs[vi], idxs[0]
	node := &vpNode{idx: idxs[0]}
	rest := idxs[1:]
	if len(rest) == 0 {
		return node
	}
	vp := t.points[node.idx]
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = t.dist(vp, t.points[id])
	}
	// Partition around the median distance.
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	node.radius = dists[order[mid]]
	inside := make([]int, 0, mid+1)
	outside := make([]int, 0, len(order)-mid)
	for _, o := range order {
		if dists[o] <= node.radius {
			inside = append(inside, rest[o])
		} else {
			outside = append(outside, rest[o])
		}
	}
	// Degenerate case: all points at the same distance end up inside; split
	// arbitrarily to guarantee progress.
	if len(outside) == 0 && len(inside) > 1 {
		half := len(inside) / 2
		outside = inside[half:]
		inside = inside[:half]
	}
	node.inside = t.build(inside, rng)
	node.outside = t.build(outside, rng)
	return node
}

// Len implements Index.
func (t *VPTree) Len() int { return len(t.points) }

// KNN implements Index.
func (t *VPTree) KNN(q []float64, k, skip int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := newNeighborHeap(k)
	t.search(t.root, q, skip, h)
	return h.sorted()
}

func (t *VPTree) search(n *vpNode, q []float64, skip int, h *neighborHeap) {
	if n == nil {
		return
	}
	d := t.dist(q, t.points[n.idx])
	if n.idx != skip && d < h.worst() {
		h.push(Neighbor{Idx: n.idx, Dist: d})
	}
	if d <= n.radius {
		t.search(n.inside, q, skip, h)
		if d+h.worst() >= n.radius {
			t.search(n.outside, q, skip, h)
		}
	} else {
		t.search(n.outside, q, skip, h)
		if d-h.worst() <= n.radius {
			t.search(n.inside, q, skip, h)
		}
	}
}
