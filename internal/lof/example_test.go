package lof_test

import (
	"fmt"

	"enduratrace/internal/distance"
	"enduratrace/internal/lof"
)

// ExampleFit fits a LOF model over a small 2-D reference set and shows
// the model's shape. In enduratrace the points are window pmfs, but Fit
// accepts any fixed-dimension float vectors.
func ExampleFit() {
	points := [][]float64{
		{0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1}, {0.1, 0.1},
		{0.05, 0.05}, {0.9, 0.9},
	}
	model, err := lof.Fit(points, 2, distance.Must("l2"), lof.FitOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("points:", model.Len())
	fmt.Println("dim:", model.Dim())
	// The per-point training LOF is precomputed at fit time; the cluster
	// points sit near 1, the straggler at (0.9, 0.9) scores far higher.
	fmt.Println("straggler is the most outlying:", model.ScoreTrain(5) > model.ScoreTrain(0))
	// Output:
	// points: 6
	// dim: 2
	// straggler is the most outlying: true
}

// ExampleScorer_Score scores query points against a fitted model. Each
// goroutine should own one Scorer: scoring reuses the scorer's scratch
// buffers and is allocation-free in steady state, while the Model itself
// stays immutable and shareable.
func ExampleScorer_Score() {
	var points [][]float64
	for i := 0; i < 20; i++ {
		points = append(points, []float64{float64(i%5) * 0.01, float64(i/5) * 0.01})
	}
	model, err := lof.Fit(points, 3, distance.Must("l2"), lof.FitOptions{})
	if err != nil {
		panic(err)
	}
	sc := model.NewScorer()
	inlier := sc.Score([]float64{0.02, 0.015}) // inside the grid
	outlier := sc.Score([]float64{0.50, 0.50}) // far outside
	fmt.Println("inlier near 1:", inlier < 1.5)
	fmt.Println("outlier well above 1:", outlier > 2)
	// Output:
	// inlier near 1: true
	// outlier well above 1: true
}
