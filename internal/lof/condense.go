package lof

import (
	"math"
	"math/rand"
	"sort"

	"enduratrace/internal/distance"
	"enduratrace/internal/stats"
)

// Reference-set condensation: the LOF hot path costs one distance
// evaluation per reference row per gate trip, so a 1000-row reference set
// makes symkl scoring ~1000 kernel calls. Farthest-point sampling keeps a
// target-sized subset that covers the reference distribution's support
// (each greedy step adds the point farthest from everything kept so far),
// after which k-distance and lrd are recomputed on the condensed set. The
// score is approximate — CondenseReport carries the train-score quantiles
// of the full original set under the condensed model so the accuracy loss
// stays visible next to an uncondensed learn's quantiles.

// CondenseReport describes a fit-time condensation and its accuracy cost.
type CondenseReport struct {
	// OriginalN and KeptN are the reference-set sizes before and after
	// farthest-point sampling.
	OriginalN int `json:"original_n"`
	KeptN     int `json:"kept_n"`
	// P50/P90/P95/P99 are quantiles of the LOF of every original
	// reference point under the condensed model (kept points use their
	// train score, dropped points are scored as queries). Compare against
	// the train quantiles of an uncondensed learn: inflation here is the
	// accuracy price of condensation.
	P50 float64 `json:"train_p50"`
	P90 float64 `json:"train_p90"`
	P95 float64 `json:"train_p95"`
	P99 float64 `json:"train_p99"`
}

// farthestPointIndices greedily selects target row indices from the flat
// n×dim matrix by farthest-point sampling under d: the seed-chosen start
// row, then repeatedly the row whose minimum distance to the selected set
// is largest (ties break on the lower index). The result is sorted
// ascending, so the condensed matrix preserves the original row order.
func farthestPointIndices(flat []float64, n, dim, target int, d distance.Distance, seed int64) []int {
	rows := distance.RowsOf(d)
	minDist := make([]float64, n)
	selected := make([]int, 0, target)

	rng := rand.New(rand.NewSource(seed))
	start := rng.Intn(n)
	selected = append(selected, start)
	rows(flat[start*dim:(start+1)*dim], flat, dim, minDist)

	scratch := make([]float64, n)
	for len(selected) < target {
		best, bestDist := -1, math.Inf(-1)
		for i, md := range minDist {
			if md > bestDist {
				best, bestDist = i, md
			}
		}
		if bestDist <= 0 {
			// Every remaining row duplicates a kept one; more rows add
			// nothing to the condensed support.
			break
		}
		selected = append(selected, best)
		rows(flat[best*dim:(best+1)*dim], flat, dim, scratch)
		for i, sd := range scratch {
			if sd < minDist[i] {
				minDist[i] = sd
			}
		}
	}

	// Ascending original order keeps the condensed matrix deterministic
	// and stable with respect to the input layout.
	sort.Ints(selected)
	return selected
}

// fillQuantiles scores every original reference point under the condensed
// model m and records the quantiles. keep maps condensed row i to its
// original row keep[i].
func (c *CondenseReport) fillQuantiles(m *Model, origFlat []float64, origN int, keep []int) {
	condIdx := make(map[int]int, len(keep))
	for ci, oi := range keep {
		condIdx[oi] = ci
	}
	scores := make([]float64, origN)
	sc := m.NewScorer()
	for i := 0; i < origN; i++ {
		if ci, kept := condIdx[i]; kept {
			scores[i] = m.train[ci]
		} else {
			scores[i] = sc.Score(origFlat[i*m.dim : (i+1)*m.dim])
		}
	}
	c.P50 = stats.Quantile(scores, 0.50)
	c.P90 = stats.Quantile(scores, 0.90)
	c.P95 = stats.Quantile(scores, 0.95)
	c.P99 = stats.Quantile(scores, 0.99)
}
