// Package lof implements the Local Outlier Factor anomaly score of Breunig,
// Kriegel, Ng & Sander (SIGMOD 2000), the detector at the heart of the
// paper's monitoring approach (§II).
//
// A Model is fitted on the pmf points of a reference trace (the learning
// step). Scoring a new point compares the density around it with the
// density around its K nearest reference points: LOF ≈ 1 means the point
// sits inside a cluster of regular behaviour, LOF ≥ α > 1 flags an outlier.
//
// The fitted model is immutable: the reference points live in one flat
// row-major matrix, and every per-point quantity (k-distance, local
// reachability density, training score) is precomputed at fit time. One
// Model can therefore back any number of concurrent streams; each stream
// scores through its own Scorer, a cheap handle carrying the reusable
// scratch that makes steady-state scoring allocation-free.
package lof

import (
	"errors"
	"fmt"
	"math"

	"enduratrace/internal/distance"
)

// Model is a fitted LOF reference model. It retains the reference points
// as a flat row-major matrix and the per-point quantities (k-distance,
// local reachability density, train score) needed to score unseen points
// in O(k·n) with the brute index or O(k·log n) expected with a VP-tree.
// A fitted Model is immutable and safe to share across goroutines.
type Model struct {
	K    int
	Dist distance.Distance

	// Cond describes the fit-time reference-set condensation, nil when
	// condensation was disabled or was a no-op.
	Cond *CondenseReport

	n, dim int
	flat   []float64 // n×dim row-major reference matrix

	index Index
	// Per reference point, computed at fit time:
	kdist []float64 // distance to the K-th nearest reference neighbour
	lrd   []float64 // local reachability density
	train []float64 // LOF of the point within the reference set
}

// ErrTooFewPoints is returned when the reference set cannot support K
// neighbours per point.
var ErrTooFewPoints = errors.New("lof: reference set too small for K")

// FitOptions tunes model construction.
type FitOptions struct {
	// UseVPTree selects the VP-tree k-NN index; requires a metric distance.
	// The default brute-force index works with any dissimilarity.
	UseVPTree bool
	// Seed controls VP-tree vantage selection and condensation's starting
	// point (ignored when neither applies).
	Seed int64
	// CondenseTarget, when positive, condenses the reference set down to
	// at most that many rows by farthest-point sampling before fitting,
	// recomputing k-distance and lrd on the condensed set; it must exceed
	// K. Condensation also enables the fast (approximate) KL-family row
	// kernels on the brute index — the condensed model is approximate by
	// construction, and Model.Cond reports the train-score quantiles of
	// the full original set so the accuracy loss is visible. Zero keeps
	// every point and the bit-exact kernels.
	CondenseTarget int
	// FastKernels enables the precomputed-log KL-family row kernels
	// (distance.LogRows) on the brute index even without condensation.
	// They are approximate — within ~1e-9 relative of the exact kernels —
	// and several times faster, which is what a high-rate serve path
	// needs. No-op for distances outside the KL family (kl, symkl, jsd)
	// and when UseVPTree is set.
	FastKernels bool
}

// Fit builds a LOF model over the reference points with neighbourhood size
// k. points must contain at least k+1 vectors of equal dimension. The
// point data is copied into the model's flat matrix; the input slice is
// not retained.
func Fit(points [][]float64, k int, d distance.Distance, opts FitOptions) (*Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lof: K must be positive, got %d", k)
	}
	if len(points) <= k {
		return nil, fmt.Errorf("%w: %d points, K=%d", ErrTooFewPoints, len(points), k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("lof: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	flat := make([]float64, len(points)*dim)
	for i, p := range points {
		copy(flat[i*dim:(i+1)*dim], p)
	}

	var cond *CondenseReport
	var keep []int
	origFlat, origN := flat, len(points)
	if opts.CondenseTarget > 0 {
		if opts.CondenseTarget <= k {
			return nil, fmt.Errorf("lof: CondenseTarget %d must exceed K %d", opts.CondenseTarget, k)
		}
		if opts.CondenseTarget < origN {
			keep = farthestPointIndices(flat, origN, dim, opts.CondenseTarget, d, opts.Seed)
			if len(keep) <= k {
				return nil, fmt.Errorf("%w: condensation kept %d distinct points, K=%d",
					ErrTooFewPoints, len(keep), k)
			}
			condensed := make([]float64, len(keep)*dim)
			for i, src := range keep {
				copy(condensed[i*dim:(i+1)*dim], flat[src*dim:(src+1)*dim])
			}
			flat = condensed
			cond = &CondenseReport{OriginalN: origN, KeptN: len(keep)}
		}
	}

	m := &Model{K: k, Dist: d, Cond: cond, n: len(flat) / dim, dim: dim, flat: flat}
	if opts.UseVPTree {
		t, err := NewVPTree(flat, dim, d, opts.Seed)
		if err != nil {
			return nil, err
		}
		m.index = t
	} else {
		b := NewBruteIndex(flat, dim, d)
		if opts.CondenseTarget > 0 || opts.FastKernels {
			b.EnableFastKernels()
		}
		m.index = b
	}

	n := m.n
	m.kdist = make([]float64, n)
	m.lrd = make([]float64, n)
	m.train = make([]float64, n)
	nbrs := make([]Neighbor, n*k) // fit-time only; the model keeps kdist/lrd
	var s Scratch
	for i := 0; i < n; i++ {
		nb := m.index.KNN(m.Row(i), k, i, &s)
		copy(nbrs[i*k:(i+1)*k], nb)
		m.kdist[i] = nb[len(nb)-1].Dist
	}
	for i := 0; i < n; i++ {
		m.lrd[i] = m.lrdOf(nbrs[i*k : (i+1)*k])
	}
	for i := 0; i < n; i++ {
		m.train[i] = m.ratioMean(nbrs[i*k:(i+1)*k], m.lrd[i])
	}

	if cond != nil {
		cond.fillQuantiles(m, origFlat, origN, keep)
	}
	return m, nil
}

// lrdOf computes the local reachability density given a point's K nearest
// neighbours: 1 / mean(reach-dist), where
// reach-dist(p, o) = max(kdist(o), d(p, o)).
// A zero mean reachability (duplicated points) yields +Inf, per the paper's
// convention for duplicate-heavy data.
func (m *Model) lrdOf(nbrs []Neighbor) float64 {
	var sum float64
	for _, nb := range nbrs {
		rd := nb.Dist
		if kd := m.kdist[nb.Idx]; kd > rd {
			rd = kd
		}
		sum += rd
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(nbrs)) / sum
}

func (m *Model) ratioMean(nbrs []Neighbor, lrdP float64) float64 {
	if len(nbrs) == 0 {
		return 1
	}
	var sum float64
	for _, nb := range nbrs {
		sum += lrdRatio(m.lrd[nb.Idx], lrdP)
	}
	return sum / float64(len(nbrs))
}

// lrdRatio computes lrdO/lrdP with the Inf conventions: Inf/Inf = 1 (a
// duplicate point inside a cluster of duplicates is perfectly regular),
// finite/Inf = 0, Inf/finite = +Inf.
func lrdRatio(lrdO, lrdP float64) float64 {
	oInf, pInf := math.IsInf(lrdO, 1), math.IsInf(lrdP, 1)
	switch {
	case oInf && pInf:
		return 1
	case pInf:
		return 0
	case oInf:
		return math.Inf(1)
	default:
		return lrdO / lrdP
	}
}

// Scorer is a per-goroutine scoring handle over a shared immutable Model.
// It owns the neighbour/distance scratch, so steady-state Score calls
// allocate nothing. Scorers are cheap; create one per goroutine (a Scorer
// itself is not safe for concurrent use, the underlying Model is).
type Scorer struct {
	m *Model
	s Scratch
}

// NewScorer returns a scoring handle over m.
func (m *Model) NewScorer() *Scorer { return &Scorer{m: m} }

// Score returns the LOF of an unseen point q against the reference model.
// Values near 1 indicate q is embedded in a cluster of regular reference
// points; values >= alpha > 1 indicate an outlier (§II).
//
//enduratrace:zeroalloc
func (sc *Scorer) Score(q []float64) float64 {
	m := sc.m
	nbrs := m.index.KNN(q, m.K, -1, &sc.s)
	lrdQ := m.lrdOf(nbrs)
	return m.ratioMean(nbrs, lrdQ)
}

// ScoreBatch scores len(qs) points in one pass, writing their LOF values
// into out (which must have the same length). Results are bit-identical
// to calling Score on each query in order: batching only flips the kernel
// loop order so each reference-matrix row is loaded once per batch, never
// the per-(query,row) arithmetic. Indexes other than the brute index, and
// batches of fewer than two queries, fall back to per-query scoring.
//
//enduratrace:zeroalloc
func (sc *Scorer) ScoreBatch(qs [][]float64, out []float64) {
	if len(out) != len(qs) {
		//lint:ignore zeroalloc panic-path formatting; never reached on the hot path
		panic(fmt.Sprintf("lof: ScoreBatch out length %d != %d queries", len(out), len(qs)))
	}
	m := sc.m
	b, ok := m.index.(*BruteIndex)
	if !ok || len(qs) < 2 {
		for i, q := range qs {
			out[i] = sc.Score(q)
		}
		return
	}
	nq := len(qs)
	//lint:ignore zeroalloc amortized scratch growth in the inlined flatBuf; steady-state zero
	qflat := sc.s.flatBuf(nq * m.dim)
	for i, q := range qs {
		if len(q) != m.dim {
			//lint:ignore zeroalloc panic-path formatting; never reached on the hot path
			panic(fmt.Sprintf("lof: ScoreBatch query %d has dimension %d, want %d", i, len(q), m.dim))
		}
		copy(qflat[i*m.dim:(i+1)*m.dim], q)
	}
	//lint:ignore zeroalloc amortized scratch growth in the inlined batchDists; steady-state zero
	dists := sc.s.batchDists(nq * b.n)
	b.distsBatch(qflat, nq, &sc.s, dists)
	for i := 0; i < nq; i++ {
		nbrs := selectK(dists[i*b.n:(i+1)*b.n], m.K, -1, &sc.s)
		out[i] = m.ratioMean(nbrs, m.lrdOf(nbrs))
	}
}

// Score is the convenience form of Scorer.Score for one-off queries; it
// allocates fresh scratch per call. Hot paths should hold a Scorer.
func (m *Model) Score(q []float64) float64 {
	sc := Scorer{m: m}
	return sc.Score(q)
}

// ScoreTrain returns the classic LOF of reference point i within the
// reference set itself (its own point excluded from its neighbourhood),
// precomputed at fit time. It is used by tests against hand-checked
// examples and by threshold diagnostics.
func (m *Model) ScoreTrain(i int) float64 { return m.train[i] }

// TrainScores returns the LOF of every reference point within the reference
// set. Useful to choose alpha: the (1-ε) quantile of training scores is a
// natural floor for the threshold.
func (m *Model) TrainScores() []float64 {
	out := make([]float64, m.n)
	copy(out, m.train)
	return out
}

// Row returns reference point i as a subslice of the flat matrix; callers
// must not mutate it.
func (m *Model) Row(i int) []float64 {
	return m.flat[i*m.dim : (i+1)*m.dim]
}

// Rows returns the flat row-major reference matrix; callers must not
// mutate it.
func (m *Model) Rows() []float64 { return m.flat }

// PointRows returns the reference points as a slice of row views into the
// flat matrix (no data copy); used by model serialisation.
func (m *Model) PointRows() [][]float64 {
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Dim returns the dimensionality of the reference points.
func (m *Model) Dim() int { return m.dim }

// Len returns the number of reference points (after condensation).
func (m *Model) Len() int { return m.n }
