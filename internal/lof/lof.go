// Package lof implements the Local Outlier Factor anomaly score of Breunig,
// Kriegel, Ng & Sander (SIGMOD 2000), the detector at the heart of the
// paper's monitoring approach (§II).
//
// A Model is fitted on the pmf points of a reference trace (the learning
// step). Scoring a new point compares the density around it with the
// density around its K nearest reference points: LOF ≈ 1 means the point
// sits inside a cluster of regular behaviour, LOF ≥ α > 1 flags an outlier.
package lof

import (
	"errors"
	"fmt"
	"math"

	"enduratrace/internal/distance"
)

// Model is a fitted LOF reference model. It retains the reference points
// and the per-point quantities (k-distance, local reachability density)
// needed to score unseen points in O(k·n) with the brute index or
// O(k·log n) expected with a VP-tree.
type Model struct {
	K      int
	Points [][]float64
	Dist   distance.Distance

	index Index
	// Per reference point, computed at fit time:
	kdist []float64    // distance to the K-th nearest reference neighbour
	nbrs  [][]Neighbor // the K nearest reference neighbours
	lrd   []float64    // local reachability density
}

// ErrTooFewPoints is returned when the reference set cannot support K
// neighbours per point.
var ErrTooFewPoints = errors.New("lof: reference set too small for K")

// FitOptions tunes model construction.
type FitOptions struct {
	// UseVPTree selects the VP-tree k-NN index; requires a metric distance.
	// The default brute-force index works with any dissimilarity.
	UseVPTree bool
	// Seed controls VP-tree vantage selection (ignored for brute force).
	Seed int64
}

// Fit builds a LOF model over the reference points with neighbourhood size
// k. points must contain at least k+1 vectors of equal dimension. The point
// slice is retained.
func Fit(points [][]float64, k int, d distance.Distance, opts FitOptions) (*Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lof: K must be positive, got %d", k)
	}
	if len(points) <= k {
		return nil, fmt.Errorf("%w: %d points, K=%d", ErrTooFewPoints, len(points), k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("lof: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	m := &Model{K: k, Points: points, Dist: d}
	if opts.UseVPTree {
		t, err := NewVPTree(points, d, opts.Seed)
		if err != nil {
			return nil, err
		}
		m.index = t
	} else {
		m.index = NewBruteIndex(points, d.F)
	}

	n := len(points)
	m.kdist = make([]float64, n)
	m.nbrs = make([][]Neighbor, n)
	m.lrd = make([]float64, n)

	for i, p := range points {
		nb := m.index.KNN(p, k, i)
		m.nbrs[i] = nb
		m.kdist[i] = nb[len(nb)-1].Dist
	}
	for i := range points {
		m.lrd[i] = m.lrdOf(m.nbrs[i])
	}
	return m, nil
}

// lrdOf computes the local reachability density given a point's K nearest
// neighbours: 1 / mean(reach-dist), where
// reach-dist(p, o) = max(kdist(o), d(p, o)).
// A zero mean reachability (duplicated points) yields +Inf, per the paper's
// convention for duplicate-heavy data.
func (m *Model) lrdOf(nbrs []Neighbor) float64 {
	var sum float64
	for _, nb := range nbrs {
		rd := nb.Dist
		if kd := m.kdist[nb.Idx]; kd > rd {
			rd = kd
		}
		sum += rd
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(nbrs)) / sum
}

// Score returns the LOF of an unseen point q against the reference model.
// Values near 1 indicate q is embedded in a cluster of regular reference
// points; values >= alpha > 1 indicate an outlier (§II).
func (m *Model) Score(q []float64) float64 {
	nbrs := m.index.KNN(q, m.K, -1)
	lrdQ := m.lrdOf(nbrs)
	return m.ratioMean(nbrs, lrdQ)
}

// ScoreTrain returns the classic LOF of reference point i within the
// reference set itself (its own point excluded from its neighbourhood).
// It is used by tests against hand-checked examples and by threshold
// diagnostics.
func (m *Model) ScoreTrain(i int) float64 {
	return m.ratioMean(m.nbrs[i], m.lrd[i])
}

func (m *Model) ratioMean(nbrs []Neighbor, lrdP float64) float64 {
	if len(nbrs) == 0 {
		return 1
	}
	var sum float64
	for _, nb := range nbrs {
		sum += lrdRatio(m.lrd[nb.Idx], lrdP)
	}
	return sum / float64(len(nbrs))
}

// lrdRatio computes lrdO/lrdP with the Inf conventions: Inf/Inf = 1 (a
// duplicate point inside a cluster of duplicates is perfectly regular),
// finite/Inf = 0, Inf/finite = +Inf.
func lrdRatio(lrdO, lrdP float64) float64 {
	oInf, pInf := math.IsInf(lrdO, 1), math.IsInf(lrdP, 1)
	switch {
	case oInf && pInf:
		return 1
	case pInf:
		return 0
	case oInf:
		return math.Inf(1)
	default:
		return lrdO / lrdP
	}
}

// TrainScores returns the LOF of every reference point within the reference
// set. Useful to choose alpha: the (1-ε) quantile of training scores is a
// natural floor for the threshold.
func (m *Model) TrainScores() []float64 {
	out := make([]float64, len(m.Points))
	for i := range m.Points {
		out[i] = m.ScoreTrain(i)
	}
	return out
}

// Dim returns the dimensionality of the reference points.
func (m *Model) Dim() int {
	if len(m.Points) == 0 {
		return 0
	}
	return len(m.Points[0])
}

// Len returns the number of reference points.
func (m *Model) Len() int { return len(m.Points) }
