package lof

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"enduratrace/internal/distance"
)

func l2() distance.Distance {
	d, err := distance.ByName("l2")
	if err != nil {
		panic(err)
	}
	return d
}

// cluster draws n gaussian points around center with the given sigma.
func cluster(rng *rand.Rand, n, dim int, center, sigma float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = center + rng.NormFloat64()*sigma
		}
		pts[i] = p
	}
	return pts
}

func TestPlantedOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := cluster(rng, 80, 3, 0, 0.05)
	m, err := Fit(ref, 10, l2(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inlier := []float64{0.01, -0.02, 0.015}
	if s := m.Score(inlier); s >= 1.3 {
		t.Fatalf("inlier LOF = %g, want < 1.3", s)
	}
	outlier := []float64{2, 2, 2}
	if s := m.Score(outlier); s <= 1.5 {
		t.Fatalf("outlier LOF = %g, want > 1.5", s)
	}
}

func TestTooFewPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := cluster(rng, 5, 2, 0, 1)
	if _, err := Fit(pts, 5, l2(), FitOptions{}); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("Fit with n == k: err = %v, want ErrTooFewPoints", err)
	}
	if _, err := Fit(pts, 4, l2(), FitOptions{}); err != nil {
		t.Fatalf("Fit with n == k+1 failed: %v", err)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit([][]float64{{1}, {2}}, 0, l2(), FitOptions{}); err == nil {
		t.Fatal("Fit accepted k=0")
	}
	ragged := [][]float64{{1, 2}, {3}, {4, 5}}
	if _, err := Fit(ragged, 1, l2(), FitOptions{}); err == nil {
		t.Fatal("Fit accepted ragged dimensions")
	}
}

func TestVPTreeRequiresMetric(t *testing.T) {
	kl, err := distance.ByName("symkl")
	if err != nil {
		t.Fatal(err)
	}
	flat := []float64{0.5, 0.5, 0.4, 0.6, 0.3, 0.7}
	if _, err := NewVPTree(flat, 2, kl, 1); err == nil {
		t.Fatal("VP-tree accepted a non-metric distance")
	}
}

func TestBruteVsVPTreeIdenticalScores(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 200)
	for i := range pts {
		p := make([]float64, 5)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	brute, err := Fit(pts, 8, l2(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := Fit(pts, 8, l2(), FitOptions{UseVPTree: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		b, v := brute.ScoreTrain(i), vp.ScoreTrain(i)
		if math.Abs(b-v) > 1e-9 {
			t.Fatalf("train point %d: brute %g != vptree %g", i, b, v)
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := make([]float64, 5)
		for j := range q {
			q[j] = rng.Float64() * 1.5
		}
		b, v := brute.Score(q), vp.Score(q)
		if math.Abs(b-v) > 1e-9 {
			t.Fatalf("query %v: brute %g != vptree %g", q, b, v)
		}
	}
}

func TestKNNOrderAndSkip(t *testing.T) {
	flat := []float64{0, 1, 2, 4, 8}
	idx := NewBruteIndex(flat, 1, l2())
	var s Scratch
	nb := idx.KNN([]float64{0}, 3, -1, &s)
	if len(nb) != 3 || nb[0].Idx != 0 || nb[1].Idx != 1 || nb[2].Idx != 2 {
		t.Fatalf("KNN order wrong: %+v", nb)
	}
	for i := 1; i < len(nb); i++ {
		if nb[i].Dist < nb[i-1].Dist {
			t.Fatalf("KNN not ascending: %+v", nb)
		}
	}
	nb = idx.KNN([]float64{0}, 3, 0, &s)
	for _, n := range nb {
		if n.Idx == 0 {
			t.Fatalf("skip ignored: %+v", nb)
		}
	}
}

func TestDuplicatePointsInfConventions(t *testing.T) {
	// A cluster of identical points: every training LOF must be 1 (Inf/Inf
	// convention), and a distant query must still score an outlier.
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{1, 1}
	}
	m, err := Fit(pts, 3, l2(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if s := m.ScoreTrain(i); s != 1 {
			t.Fatalf("duplicate train point %d: LOF = %g, want 1", i, s)
		}
	}
	if s := m.Score([]float64{5, 5}); !math.IsInf(s, 1) {
		t.Fatalf("distant query against duplicates: LOF = %g, want +Inf", s)
	}
	if s := m.Score([]float64{1, 1}); s != 1 {
		t.Fatalf("duplicate query: LOF = %g, want 1", s)
	}
}
