// Package sweep is the batch-experiment subsystem: a Grid expands
// parameter axes (distance × alpha × perturbation factor × K × seeds)
// into a deterministic job list, a bounded worker pool runs the jobs in
// parallel (each eval.Run is independent and seeded), and a streaming
// Aggregator folds per-seed eval.Reports into per-cell summaries with
// multi-seed 95% confidence intervals. Soak runs one arbitrarily long
// cell with periodic progress in constant memory.
//
// It is what turns the repo from a one-shot reproduction of the paper's
// §III experiment into a benchmark machine: `enduratrace sweep` and
// `enduratrace soak` are thin CLI wrappers around this package.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"enduratrace/internal/distance"
	"enduratrace/internal/eval"
)

// RunSeedOffset is the reference↔run stream separation used by sweeps.
// Sweeps enumerate adjacent seeds (s, s+1, ...), so the single-experiment
// offset of 1 would make seed s's perturbed run replay seed s+1's
// reference stream; a giant offset keeps every stream distinct.
const RunSeedOffset = 1 << 32

// Grid is a batch-experiment specification: the cross product of the axis
// slices, run once per seed, every cell sharing Base for everything the
// axes don't override.
type Grid struct {
	// Base supplies durations, the perturbation schedule and the monitor
	// configuration. Axis values overwrite Base's seed, factor, alpha, K
	// and both distances per job.
	Base eval.Options `json:"-"`

	// Distances lists distance-catalogue names applied to both the gate
	// and the LOF model (the A-distance ablation axis).
	Distances []string `json:"distances"`
	// Alphas lists LOF anomaly thresholds.
	Alphas []float64 `json:"alphas"`
	// Factors lists CPU perturbation slowdown factors.
	Factors []float64 `json:"factors"`
	// Ks lists LOF neighbourhood sizes.
	Ks []int `json:"ks"`
	// Seeds lists experiment seeds; every cell runs once per seed.
	Seeds []int64 `json:"seeds"`
}

// Cell identifies one parameter combination — every axis except the seed.
type Cell struct {
	Distance string  `json:"distance"`
	Alpha    float64 `json:"alpha"`
	Factor   float64 `json:"factor"`
	K        int     `json:"k"`
}

func (c Cell) String() string {
	return fmt.Sprintf("%s α=%g f=%g k=%d", c.Distance, c.Alpha, c.Factor, c.K)
}

// Job is one (cell, seed) experiment. Index is the job's position in the
// deterministic expansion order.
type Job struct {
	Index int
	Cell  Cell
	Seed  int64
}

// DefaultGrid returns the default distance-ablation sweep: every
// gate-capable catalogue distance crossed with the tuned alpha / factor /
// K from eval.DefaultOptions, at CI-sized durations (a 40 s reference run
// and a 2-minute perturbed run with two factor-3 perturbations), over
// seeds 1..nSeeds.
func DefaultGrid(nSeeds int) Grid {
	base := eval.DefaultOptions()
	base.RefDuration = 40 * time.Second
	base.RunDuration = 2 * time.Minute
	base.PerturbFirst = 30 * time.Second
	base.PerturbPeriod = 50 * time.Second
	base.PerturbDuration = 15 * time.Second
	base.RunSeedOffset = RunSeedOffset
	seeds := make([]int64, nSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return Grid{
		Base:      base,
		Distances: []string{"symkl", "jsd", "hellinger", "l1", "l2", "chi2"},
		Alphas:    []float64{base.Core.Alpha},
		Factors:   []float64{base.Factor},
		Ks:        []int{base.Core.K},
		Seeds:     seeds,
	}
}

// Validate reports specification errors: empty or duplicated axes, unknown
// distance names, non-positive K.
func (g Grid) Validate() error {
	if len(g.Distances) == 0 || len(g.Alphas) == 0 || len(g.Factors) == 0 ||
		len(g.Ks) == 0 || len(g.Seeds) == 0 {
		return fmt.Errorf("sweep: every axis needs at least one value (distances=%d alphas=%d factors=%d ks=%d seeds=%d)",
			len(g.Distances), len(g.Alphas), len(g.Factors), len(g.Ks), len(g.Seeds))
	}
	seenD := make(map[string]bool, len(g.Distances))
	for _, name := range g.Distances {
		if _, err := distance.ByName(name); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if seenD[name] {
			return fmt.Errorf("sweep: duplicate distance %q", name)
		}
		seenD[name] = true
	}
	seenF := make(map[float64]bool)
	for _, a := range g.Alphas {
		if seenF[a] {
			return fmt.Errorf("sweep: duplicate alpha %g", a)
		}
		seenF[a] = true
	}
	seenF = make(map[float64]bool)
	for _, f := range g.Factors {
		if seenF[f] {
			return fmt.Errorf("sweep: duplicate factor %g", f)
		}
		seenF[f] = true
	}
	seenK := make(map[int]bool)
	for _, k := range g.Ks {
		if k <= 0 {
			return fmt.Errorf("sweep: K must be positive, got %d", k)
		}
		if seenK[k] {
			return fmt.Errorf("sweep: duplicate K %d", k)
		}
		seenK[k] = true
	}
	seenS := make(map[int64]bool)
	for _, s := range g.Seeds {
		if seenS[s] {
			return fmt.Errorf("sweep: duplicate seed %d", s)
		}
		seenS[s] = true
	}
	return nil
}

// Cells expands the axes into the deterministic cell order: distance
// outermost, then alpha, factor, K.
func (g Grid) Cells() []Cell {
	cells := make([]Cell, 0, len(g.Distances)*len(g.Alphas)*len(g.Factors)*len(g.Ks))
	for _, d := range g.Distances {
		for _, a := range g.Alphas {
			for _, f := range g.Factors {
				for _, k := range g.Ks {
					cells = append(cells, Cell{Distance: d, Alpha: a, Factor: f, K: k})
				}
			}
		}
	}
	return cells
}

// Jobs expands the grid into its deterministic job list: cells in Cells
// order, each crossed with every seed in Seeds order.
func (g Grid) Jobs() ([]Job, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	jobs := make([]Job, 0, len(cells)*len(g.Seeds))
	for _, c := range cells {
		for _, s := range g.Seeds {
			jobs = append(jobs, Job{Index: len(jobs), Cell: c, Seed: s})
		}
	}
	return jobs, nil
}

// Options materialises the eval configuration for one job: Base with the
// job's seed and cell axes applied.
func (g Grid) Options(j Job) (eval.Options, error) {
	o := g.Base
	d, err := distance.ByName(j.Cell.Distance)
	if err != nil {
		return o, fmt.Errorf("sweep: %w", err)
	}
	o.Seed = j.Seed
	o.Factor = j.Cell.Factor
	o.Core.Alpha = j.Cell.Alpha
	o.Core.K = j.Cell.K
	o.Core.GateDistance = d
	o.Core.LOFDistance = d
	return o, nil
}

// gridFile is the JSON shape accepted by ParseGrid: the axis slices plus
// optional Go-syntax duration overrides for the base experiment.
type gridFile struct {
	Distances []string  `json:"distances"`
	Alphas    []float64 `json:"alphas"`
	Factors   []float64 `json:"factors"`
	Ks        []int     `json:"ks"`
	Seeds     []int64   `json:"seeds"`

	RefDuration     string `json:"ref_duration,omitempty"`
	RunDuration     string `json:"run_duration,omitempty"`
	PerturbFirst    string `json:"perturb_first,omitempty"`
	PerturbPeriod   string `json:"perturb_period,omitempty"`
	PerturbDuration string `json:"perturb_duration,omitempty"`
	Slack           string `json:"slack,omitempty"`
	Warmup          string `json:"warmup,omitempty"`
}

// ParseGrid decodes a JSON grid specification onto base: non-empty axis
// arrays replace base's (the result keeps def's axes for ones the file
// omits), and duration fields ("40s", "2m", ...) override the base
// experiment shape. Unknown keys are rejected — a misspelled axis must
// not silently run the default experiment.
func ParseGrid(data []byte, def Grid) (Grid, error) {
	var f gridFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid file: %w", err)
	}
	g := def
	if len(f.Distances) > 0 {
		g.Distances = f.Distances
	}
	if len(f.Alphas) > 0 {
		g.Alphas = f.Alphas
	}
	if len(f.Factors) > 0 {
		g.Factors = f.Factors
	}
	if len(f.Ks) > 0 {
		g.Ks = f.Ks
	}
	if len(f.Seeds) > 0 {
		g.Seeds = f.Seeds
	}
	for _, d := range []struct {
		raw string
		dst *time.Duration
	}{
		{f.RefDuration, &g.Base.RefDuration},
		{f.RunDuration, &g.Base.RunDuration},
		{f.PerturbFirst, &g.Base.PerturbFirst},
		{f.PerturbPeriod, &g.Base.PerturbPeriod},
		{f.PerturbDuration, &g.Base.PerturbDuration},
		{f.Slack, &g.Base.Slack},
		{f.Warmup, &g.Base.Warmup},
	} {
		if d.raw == "" {
			continue
		}
		v, err := time.ParseDuration(d.raw)
		if err != nil {
			return Grid{}, fmt.Errorf("sweep: parsing grid file duration: %w", err)
		}
		*d.dst = v
	}
	return g, g.Validate()
}
