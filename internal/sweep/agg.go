package sweep

import (
	"fmt"
	"math"
	"sort"

	"enduratrace/internal/eval"
	"enduratrace/internal/stats"
)

// Metric summarises one quantity across a cell's seeds: sample mean with
// a Student-t 95% confidence half-width, plus the observed range.
type Metric struct {
	Mean float64 `json:"mean"`
	// CI95 is the 95% confidence half-width of the mean (0 with fewer
	// than two samples).
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

func metricOf(r *stats.Running) Metric {
	return Metric{
		Mean: r.Mean(),
		CI95: r.ConfidenceInterval(0.95),
		Min:  r.Min(),
		Max:  r.Max(),
		N:    r.N(),
	}
}

// CellSummary is the aggregated outcome of one cell across its seeds; a
// BENCH_sweep.json file is a JSON array of these.
type CellSummary struct {
	Cell
	Seeds []int64 `json:"seeds"`

	// Reduction aggregates the per-seed reduction factors over the seeds
	// that recorded anything; UnrecordedSeeds counts the rest (their
	// reduction is undefined — effectively infinite).
	Reduction       Metric `json:"reduction"`
	UnrecordedSeeds int    `json:"unrecorded_seeds"`

	Precision Metric `json:"precision"`
	Recall    Metric `json:"recall"`

	// DeltaSMs/DeltaEMs aggregate the per-seed mean detection latencies
	// over the seeds that detected at least one perturbation.
	DeltaSMs Metric `json:"delta_s_ms"`
	DeltaEMs Metric `json:"delta_e_ms"`

	// DetectedPerturbations / TotalPerturbations are summed across seeds.
	DetectedPerturbations int `json:"detected_perturbations"`
	TotalPerturbations    int `json:"total_perturbations"`

	Windows       int64 `json:"windows"`
	Anomalies     int64 `json:"anomalies"`
	RecordedBytes int64 `json:"recorded_bytes"`
	FullBytes     int64 `json:"full_bytes"`
}

// cellAcc is the streaming state per cell: Welford accumulators only,
// never the reports themselves.
type cellAcc struct {
	seeds      []int64
	reduction  stats.Running
	precision  stats.Running
	recall     stats.Running
	deltaS     stats.Running
	deltaE     stats.Running
	unrecorded int
	detected   int
	total      int
	windows    int64
	anomalies  int64
	recBytes   int64
	fullBytes  int64
}

// Aggregator folds per-seed eval.Reports into per-cell summaries as they
// arrive, in any order, holding O(cells) state. It is not safe for
// concurrent use; Run serialises Add calls.
type Aggregator struct {
	order []Cell
	cells map[Cell]*cellAcc
}

// NewAggregator pre-registers the cells in their deterministic grid order
// so Summaries comes out grid-ordered regardless of job completion order.
func NewAggregator(cells []Cell) *Aggregator {
	a := &Aggregator{cells: make(map[Cell]*cellAcc, len(cells))}
	for _, c := range cells {
		a.order = append(a.order, c)
		a.cells[c] = &cellAcc{}
	}
	return a
}

// Add folds one seed's report into its cell.
func (a *Aggregator) Add(cell Cell, seed int64, rep *eval.Report) {
	acc, ok := a.cells[cell]
	if !ok {
		acc = &cellAcc{}
		a.order = append(a.order, cell)
		a.cells[cell] = acc
	}
	acc.seeds = append(acc.seeds, seed)
	if rep.ReductionFactor != nil {
		acc.reduction.Add(*rep.ReductionFactor)
	} else {
		acc.unrecorded++
	}
	// Like reduction, the ratios are folded only where defined: a seed
	// that flagged nothing has no precision, and one whose windows never
	// overlapped truth has no recall — literal 0s would bias the mean.
	if rep.ScoredAnomalousWindows > 0 {
		acc.precision.Add(rep.Precision)
	}
	if rep.TruthWindows > 0 {
		acc.recall.Add(rep.Recall)
	}
	if rep.DetectedPerturbations > 0 {
		acc.deltaS.Add(rep.MeanDeltaSMs)
		acc.deltaE.Add(rep.MeanDeltaEMs)
	}
	acc.detected += rep.DetectedPerturbations
	acc.total += rep.TotalPerturbations
	acc.windows += int64(rep.Windows)
	acc.anomalies += int64(rep.Anomalies)
	acc.recBytes += rep.RecordedBytes
	acc.fullBytes += rep.FullBytes
}

// Summaries returns the per-cell summaries in grid order, skipping cells
// that never received a report.
func (a *Aggregator) Summaries() []CellSummary {
	out := make([]CellSummary, 0, len(a.order))
	for _, c := range a.order {
		acc := a.cells[c]
		if len(acc.seeds) == 0 {
			continue
		}
		seeds := append([]int64(nil), acc.seeds...)
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		out = append(out, CellSummary{
			Cell:                  c,
			Seeds:                 seeds,
			Reduction:             metricOf(&acc.reduction),
			UnrecordedSeeds:       acc.unrecorded,
			Precision:             metricOf(&acc.precision),
			Recall:                metricOf(&acc.recall),
			DeltaSMs:              metricOf(&acc.deltaS),
			DeltaEMs:              metricOf(&acc.deltaE),
			DetectedPerturbations: acc.detected,
			TotalPerturbations:    acc.total,
			Windows:               acc.windows,
			Anomalies:             acc.anomalies,
			RecordedBytes:         acc.recBytes,
			FullBytes:             acc.fullBytes,
		})
	}
	return out
}

// SortKeys lists the metrics SortSummaries accepts.
func SortKeys() []string {
	return []string{"reduction", "precision", "recall", "delta_s", "delta_e", "detected"}
}

// SortSummaries orders summaries by the named metric, best first
// (descending for reduction/precision/recall/detected, ascending for the
// latency deltas). The sort is stable, so ties keep grid order.
func SortSummaries(ss []CellSummary, metric string) error {
	var key func(CellSummary) float64
	desc := true
	switch metric {
	case "reduction":
		// A cell whose seeds recorded nothing has N==0 and Mean 0, which
		// the descending sort deliberately ranks last: its "infinite"
		// reduction is vacuous (it detected nothing), and the table renders
		// it as n/a with unrecorded_seeds disclosing the cause.
		key = func(s CellSummary) float64 { return s.Reduction.Mean }
	case "precision":
		key = func(s CellSummary) float64 { return s.Precision.Mean }
	case "recall":
		key = func(s CellSummary) float64 { return s.Recall.Mean }
	case "detected":
		key = func(s CellSummary) float64 {
			if s.TotalPerturbations == 0 {
				return 0
			}
			return float64(s.DetectedPerturbations) / float64(s.TotalPerturbations)
		}
	case "delta_s":
		// A cell with no detections has no latency at all — rank it last,
		// not as a perfect 0 ms.
		key = func(s CellSummary) float64 {
			if s.DeltaSMs.N == 0 {
				return math.Inf(1)
			}
			return s.DeltaSMs.Mean
		}
		desc = false
	case "delta_e":
		key = func(s CellSummary) float64 {
			if s.DeltaEMs.N == 0 {
				return math.Inf(1)
			}
			return s.DeltaEMs.Mean
		}
		desc = false
	default:
		return fmt.Errorf("sweep: unknown sort metric %q (have %v)", metric, SortKeys())
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if desc {
			return key(ss[i]) > key(ss[j])
		}
		return key(ss[i]) < key(ss[j])
	})
	return nil
}
