package sweep

import (
	"time"

	"enduratrace/internal/eval"
)

// SoakOptions configures a long-horizon single-cell run.
type SoakOptions struct {
	// Eval is the experiment to run; RunDuration is the soak horizon and
	// may be hours long — decisions are scored online (eval.Scorer), so
	// memory stays constant regardless.
	Eval eval.Options
	// Every is the trace time between progress reports (default 30 s).
	Every time.Duration
	// OnProgress, when non-nil, receives periodic progress augmented with
	// wall-clock pacing.
	OnProgress func(SoakProgress)
}

// SoakProgress is a soak progress tick.
type SoakProgress struct {
	eval.Progress
	// Wall is the wall-clock time since the monitored run started.
	Wall time.Duration
	// Rate is trace seconds processed per wall second (how much faster
	// than real time the soak is running).
	Rate float64
}

// Soak runs one long cell: a plain eval.Run with progress plumbed
// through. The report is identical to what eval.Run would produce for the
// same options — soak mode changes observability, not results.
func Soak(o SoakOptions) (*eval.Report, error) {
	opts := o.Eval
	if o.OnProgress != nil {
		opts.ProgressInterval = o.Every
		start := time.Now() // includes the learning step, as the operator experiences it
		opts.OnProgress = func(p eval.Progress) {
			wall := time.Since(start)
			rate := 0.0
			if wall > 0 {
				rate = p.TraceTime.Seconds() / wall.Seconds()
			}
			o.OnProgress(SoakProgress{Progress: p, Wall: wall, Rate: rate})
		}
	}
	return eval.Run(opts)
}
