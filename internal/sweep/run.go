package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"enduratrace/internal/core"
	"enduratrace/internal/eval"
)

// RunOptions tunes sweep execution.
type RunOptions struct {
	// Workers bounds the number of concurrent eval runs; <= 0 means
	// GOMAXPROCS.
	Workers int
	// OnResult, when non-nil, observes every job result as it completes
	// (in completion order, which is nondeterministic). Calls are
	// serialised with the aggregation, so it needs no locking of its own.
	OnResult func(Result)
}

// Result is one finished job.
type Result struct {
	Job     Job
	Report  *eval.Report
	Err     error
	Elapsed time.Duration
}

// learnKey identifies the learning-relevant job axes: alpha and factor
// play no part in the learning step (alpha only thresholds monitoring,
// and the reference run is always clean), so every job agreeing on seed,
// distance and K shares one immutable learned model.
type learnKey struct {
	Seed     int64
	Distance string
	K        int
}

// learnEntry is the once-guarded slot of one shared model: the first
// worker to need the key learns it, concurrent workers for other cells
// block on the Once and then monitor their own streams against the same
// in-memory model — the MultiMonitor pattern applied to the sweep.
type learnEntry struct {
	once sync.Once
	l    *core.Learned
	err  error
}

// Run expands the grid, executes every job on a bounded worker pool, and
// streams the results into per-cell summaries, which come back in grid
// order. Reports are folded as they arrive and then dropped, so memory is
// O(cells), not O(jobs). When jobs fail, the remaining jobs still run and
// the joined errors are returned alongside the summaries of the cells
// that did complete.
//
// Jobs that share their learning configuration (same seed, distance and
// K — e.g. an alpha or factor axis) learn once and share the fitted model
// across concurrent workers; learning is deterministic per key, so the
// results are identical to learning per job, just cheaper.
func Run(g Grid, opts RunOptions) ([]CellSummary, error) {
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Pre-register every learn key so workers only read the map.
	models := make(map[learnKey]*learnEntry)
	for _, j := range jobs {
		key := learnKey{Seed: j.Seed, Distance: j.Cell.Distance, K: j.Cell.K}
		if models[key] == nil {
			models[key] = &learnEntry{}
		}
	}

	jobCh := make(chan Job)
	resCh := make(chan Result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				start := time.Now()
				var res Result
				res.Job = j
				o, err := g.Options(j)
				if err == nil {
					entry := models[learnKey{Seed: j.Seed, Distance: j.Cell.Distance, K: j.Cell.K}]
					entry.once.Do(func() {
						entry.l, entry.err = eval.Learn(o)
					})
					if err = entry.err; err == nil {
						res.Report, err = eval.RunWithLearned(o, entry.l)
					}
				}
				if err != nil {
					res.Err = fmt.Errorf("sweep: job %d (%s seed %d): %w", j.Index, j.Cell, j.Seed, err)
				}
				res.Elapsed = time.Since(start)
				resCh <- res
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
		wg.Wait()
		close(resCh)
	}()

	agg := NewAggregator(g.Cells())
	var errs []error
	for res := range resCh {
		if res.Err != nil {
			errs = append(errs, res.Err)
		} else {
			agg.Add(res.Job.Cell, res.Job.Seed, res.Report)
		}
		if opts.OnResult != nil {
			opts.OnResult(res)
		}
	}
	return agg.Summaries(), errors.Join(errs...)
}
