package sweep

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"enduratrace/internal/eval"
)

// tinyGrid is a sweep sized for tests: a 20 s reference run and a 40 s
// perturbed run with one 10 s factor-3 perturbation per job.
func tinyGrid() Grid {
	g := DefaultGrid(1)
	g.Base.RefDuration = 20 * time.Second
	g.Base.RunDuration = 40 * time.Second
	g.Base.PerturbFirst = 15 * time.Second
	g.Base.PerturbPeriod = 60 * time.Second
	g.Base.PerturbDuration = 10 * time.Second
	g.Distances = []string{"symkl"}
	return g
}

func TestJobsDeterministicAndUnique(t *testing.T) {
	g := DefaultGrid(3)
	g.Alphas = []float64{2.0, 2.5}
	g.Ks = []int{10, 20}

	jobs1, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jobs2, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs1, jobs2) {
		t.Fatal("two expansions of the same grid differ")
	}
	want := len(g.Distances) * len(g.Alphas) * len(g.Factors) * len(g.Ks) * len(g.Seeds)
	if len(jobs1) != want {
		t.Fatalf("%d jobs, want %d", len(jobs1), want)
	}
	type key struct {
		c Cell
		s int64
	}
	seen := make(map[key]bool, len(jobs1))
	for i, j := range jobs1 {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		k := key{j.Cell, j.Seed}
		if seen[k] {
			t.Fatalf("duplicate job %+v", j)
		}
		seen[k] = true
	}
	if cells := g.Cells(); len(cells)*len(g.Seeds) != want {
		t.Fatalf("Cells() has %d entries, want %d", len(cells), want/len(g.Seeds))
	}
}

func TestValidateRejectsBadGrids(t *testing.T) {
	bad := []func(*Grid){
		func(g *Grid) { g.Distances = nil },
		func(g *Grid) { g.Seeds = nil },
		func(g *Grid) { g.Distances = []string{"nope"} },
		func(g *Grid) { g.Distances = []string{"l2", "l2"} },
		func(g *Grid) { g.Alphas = []float64{2, 2} },
		func(g *Grid) { g.Ks = []int{0} },
		func(g *Grid) { g.Ks = []int{20, 20} },
		func(g *Grid) { g.Seeds = []int64{1, 1} },
	}
	for i, mutate := range bad {
		g := DefaultGrid(2)
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("bad grid %d accepted", i)
		}
	}
}

func TestParseGrid(t *testing.T) {
	def := DefaultGrid(2)
	data := []byte(`{
		"distances": ["l1", "l2"],
		"seeds": [7, 8, 9],
		"run_duration": "90s",
		"perturb_first": "20s"
	}`)
	g, err := ParseGrid(data, def)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Distances, []string{"l1", "l2"}) {
		t.Fatalf("distances %v", g.Distances)
	}
	if !reflect.DeepEqual(g.Seeds, []int64{7, 8, 9}) {
		t.Fatalf("seeds %v", g.Seeds)
	}
	// Omitted axes keep the defaults.
	if !reflect.DeepEqual(g.Alphas, def.Alphas) || !reflect.DeepEqual(g.Ks, def.Ks) {
		t.Fatalf("alphas/ks %v/%v, want defaults", g.Alphas, g.Ks)
	}
	if g.Base.RunDuration != 90*time.Second || g.Base.PerturbFirst != 20*time.Second {
		t.Fatalf("durations %v/%v", g.Base.RunDuration, g.Base.PerturbFirst)
	}
	if g.Base.RefDuration != def.Base.RefDuration {
		t.Fatalf("ref duration %v changed", g.Base.RefDuration)
	}

	if _, err := ParseGrid([]byte(`{"run_duration": "forever"}`), def); err == nil {
		t.Fatal("bad duration accepted")
	}
	if _, err := ParseGrid([]byte(`{"distances": ["nope"]}`), def); err == nil {
		t.Fatal("unknown distance accepted")
	}
	if _, err := ParseGrid([]byte(`not json`), def); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestSingleCellMatchesEval is the acceptance check that the sweep machinery
// adds nothing to the science: a 1-cell × 1-seed sweep's report byte-matches
// a direct eval.Run with the same materialised options.
func TestSingleCellMatchesEval(t *testing.T) {
	g := tinyGrid()

	var got *eval.Report
	summaries, err := Run(g, RunOptions{Workers: 1, OnResult: func(r Result) {
		if r.Err != nil {
			t.Errorf("job error: %v", r.Err)
			return
		}
		got = r.Report
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no report observed")
	}

	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := g.Options(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("sweep report differs from direct eval:\n%s\n%s", gotJSON, wantJSON)
	}

	if len(summaries) != 1 {
		t.Fatalf("%d summaries, want 1", len(summaries))
	}
	s := summaries[0]
	if s.Precision.N != 1 || s.Precision.Mean != want.Precision {
		t.Fatalf("summary precision %+v, want mean %g", s.Precision, want.Precision)
	}
	if want.ReductionFactor != nil && s.Reduction.Mean != *want.ReductionFactor {
		t.Fatalf("summary reduction %+v, want %g", s.Reduction, *want.ReductionFactor)
	}
	if s.Precision.CI95 != 0 {
		t.Fatalf("single-seed CI must be 0, got %g", s.Precision.CI95)
	}
}

// TestRunAggregatesSeeds runs one cell over three seeds on two workers and
// checks the multi-seed statistics.
func TestRunAggregatesSeeds(t *testing.T) {
	g := tinyGrid()
	g.Seeds = []int64{1, 2, 3}

	var results int
	summaries, err := Run(g, RunOptions{Workers: 2, OnResult: func(r Result) {
		if r.Err != nil {
			t.Errorf("job error: %v", r.Err)
		}
		results++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if results != 3 {
		t.Fatalf("observed %d results, want 3", results)
	}
	if len(summaries) != 1 {
		t.Fatalf("%d summaries, want 1", len(summaries))
	}
	s := summaries[0]
	if !reflect.DeepEqual(s.Seeds, []int64{1, 2, 3}) {
		t.Fatalf("seeds %v", s.Seeds)
	}
	if s.Precision.N != 3 || s.Recall.N != 3 {
		t.Fatalf("metric N %d/%d, want 3", s.Precision.N, s.Recall.N)
	}
	for _, m := range []Metric{s.Precision, s.Recall, s.Reduction} {
		if m.Mean < m.Min || m.Mean > m.Max {
			t.Fatalf("mean %g outside [%g, %g]", m.Mean, m.Min, m.Max)
		}
		if m.CI95 < 0 {
			t.Fatalf("negative CI %g", m.CI95)
		}
	}
	if s.TotalPerturbations != 3 { // one perturbation per seed's schedule
		t.Fatalf("total perturbations %d, want 3", s.TotalPerturbations)
	}
	if s.Windows <= 0 || s.FullBytes <= 0 {
		t.Fatalf("degenerate totals: %+v", s)
	}

	// Summaries marshal cleanly (the BENCH_sweep.json shape).
	raw, err := json.Marshal(summaries)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"distance", "alpha", "factor", "k", "seeds",
		"reduction", "precision", "recall", "delta_s_ms", "delta_e_ms"} {
		if _, ok := decoded[0][key]; !ok {
			t.Fatalf("summary JSON missing %q", key)
		}
	}
}

func TestSortSummaries(t *testing.T) {
	ss := []CellSummary{
		{Cell: Cell{Distance: "a"}, Reduction: Metric{Mean: 2}, DeltaSMs: Metric{Mean: 30, N: 2}},
		{Cell: Cell{Distance: "b"}, Reduction: Metric{Mean: 5}, DeltaSMs: Metric{Mean: 10, N: 2}},
		{Cell: Cell{Distance: "c"}, Reduction: Metric{Mean: 3}, DeltaSMs: Metric{Mean: 20, N: 2}},
		// d detected nothing: its zero-valued latency metric must sort
		// last, not as a perfect 0 ms.
		{Cell: Cell{Distance: "d"}, Reduction: Metric{Mean: 1}, DeltaSMs: Metric{Mean: 0, N: 0}},
	}
	if err := SortSummaries(ss, "reduction"); err != nil {
		t.Fatal(err)
	}
	if ss[0].Distance != "b" || ss[3].Distance != "d" {
		t.Fatalf("reduction sort order: %s %s %s %s", ss[0].Distance, ss[1].Distance, ss[2].Distance, ss[3].Distance)
	}
	if err := SortSummaries(ss, "delta_s"); err != nil {
		t.Fatal(err)
	}
	if ss[0].Distance != "b" || ss[2].Distance != "a" || ss[3].Distance != "d" {
		t.Fatalf("delta_s sort order: %s %s %s %s", ss[0].Distance, ss[1].Distance, ss[2].Distance, ss[3].Distance)
	}
	if err := SortSummaries(ss, "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

// TestSoakMatchesEval checks that soak mode changes observability, not
// results: the report equals a plain eval.Run on the same fixture, and
// progress ticks arrive in order.
func TestSoakMatchesEval(t *testing.T) {
	g := tinyGrid()
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := g.Options(jobs[0])
	if err != nil {
		t.Fatal(err)
	}

	var ticks []SoakProgress
	got, err := Soak(SoakOptions{
		Eval:       opts,
		Every:      10 * time.Second,
		OnProgress: func(p SoakProgress) { ticks = append(ticks, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("soak report differs from eval:\n%s\n%s", gotJSON, wantJSON)
	}
	if len(ticks) < 2 {
		t.Fatalf("got %d progress ticks, want >= 2", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i].TraceTime <= ticks[i-1].TraceTime {
			t.Fatalf("trace time not increasing: %v then %v", ticks[i-1].TraceTime, ticks[i].TraceTime)
		}
	}
}

func TestParseGridRejectsUnknownKeys(t *testing.T) {
	// A misspelled axis must error, not silently run the default grid.
	if _, err := ParseGrid([]byte(`{"alpha": [1.5]}`), DefaultGrid(2)); err == nil {
		t.Fatal("unknown key accepted")
	}
}

// TestSharedModelAcrossAlphaCells: cells that differ only in alpha share
// one learned model per (seed, distance, K), concurrently — the result of
// every cell must still byte-match a standalone eval.Run that learns its
// own model, because learning is deterministic and alpha plays no part
// in it. Run under -race this also exercises the shared immutable model
// from multiple monitoring goroutines.
func TestSharedModelAcrossAlphaCells(t *testing.T) {
	g := tinyGrid()
	g.Alphas = []float64{2.0, 2.5, 3.0}

	reports := make(map[float64]*eval.Report)
	_, err := Run(g, RunOptions{Workers: 3, OnResult: func(r Result) {
		if r.Err != nil {
			t.Errorf("job error: %v", r.Err)
			return
		}
		reports[r.Job.Cell.Alpha] = r.Report
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("%d cell reports, want 3", len(reports))
	}

	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		opts, err := g.Options(j)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(reports[j.Cell.Alpha])
		wantJSON, _ := json.Marshal(want)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("alpha %g: shared-model sweep differs from standalone eval:\n%s\n%s",
				j.Cell.Alpha, gotJSON, wantJSON)
		}
	}
}
