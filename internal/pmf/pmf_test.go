package pmf

import (
	"math"
	"testing"
	"time"

	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

func win(types ...trace.EventType) window.Window {
	w := window.Window{Start: 0, End: 40 * time.Millisecond}
	for i, t := range types {
		w.Events = append(w.Events, trace.Event{TS: time.Duration(i) * time.Millisecond, Type: t})
	}
	return w
}

func TestNormalizeSumsToOneWithSmoothing(t *testing.T) {
	for _, eps := range []float64{0, 0.1, 0.5, 2} {
		c := Counts{3, 0, 7, 1}
		v := c.Normalize(eps)
		if err := v.Validate(); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if eps > 0 {
			for i, x := range v {
				if x <= 0 {
					t.Fatalf("eps=%g: component %d not strictly positive: %g", eps, i, x)
				}
			}
		}
	}
}

func TestNormalizeEmptyWindowIsUniform(t *testing.T) {
	v := Counts{0, 0, 0, 0}.Normalize(0)
	for _, x := range v {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("empty counts normalise to %v, want uniform", v)
		}
	}
}

func TestFromWindowFoldsOverflowTypes(t *testing.T) {
	w := win(0, 1, 9, 200) // types 9 and 200 exceed dim 4
	c := FromWindow(w, 4)
	if c[0] != 1 || c[1] != 1 || c[3] != 2 {
		t.Fatalf("fold-over counts wrong: %v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("total %g, want 4", c.Total())
	}
}

func TestMergeIsConvexCombination(t *testing.T) {
	v := Vector{0.5, 0.5}
	n := Vector{0.9, 0.1}
	v.Merge(n, 0.25)
	want := Vector{0.75*0.5 + 0.25*0.9, 0.75*0.5 + 0.25*0.1}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("merged = %v, want %v", v, want)
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("merge broke distribution: %v", err)
	}
}

func TestMergePanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for lambda 0")
		}
	}()
	v := Vector{1}
	v.Merge(Vector{1}, 0)
}

func TestEntropy(t *testing.T) {
	if h := Uniform(8).Entropy(); math.Abs(h-math.Log(8)) > 1e-12 {
		t.Fatalf("uniform entropy %g, want ln 8", h)
	}
	if h := (Vector{1, 0, 0}).Entropy(); h != 0 {
		t.Fatalf("point-mass entropy %g, want 0", h)
	}
}

func TestFeaturizerRateFeature(t *testing.T) {
	f := Featurizer{Dim: 4, Smoothing: 0.5, IncludeRate: true, RateScale: 10}
	if f.FeatureDim() != 5 {
		t.Fatalf("FeatureDim = %d, want 5", f.FeatureDim())
	}
	// 5 events against a scale of 10 → rate 0.5.
	v := f.Features(win(0, 1, 2, 3, 0))
	if math.Abs(v[4]-0.5) > 1e-12 {
		t.Fatalf("rate feature = %g, want 0.5", v[4])
	}
	// 20 events saturate at 1: only rate drops matter.
	types := make([]trace.EventType, 20)
	v = f.Features(win(types...))
	if v[4] != 1 {
		t.Fatalf("saturated rate = %g, want 1", v[4])
	}
	// The pmf prefix remains a distribution.
	if err := f.PMFOnly(v).Validate(); err != nil {
		t.Fatalf("pmf prefix invalid: %v", err)
	}
}

func TestFeaturizerWithoutRateIsPlainPMF(t *testing.T) {
	f := Featurizer{Dim: 4, Smoothing: 0}
	v := f.Features(win(0, 0, 1, 3))
	if len(v) != 4 {
		t.Fatalf("dim %d, want 4", len(v))
	}
	want := Vector{0.5, 0.25, 0, 0.25}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("pmf = %v, want %v", v, want)
		}
	}
}

func TestMeanCount(t *testing.T) {
	ws := []window.Window{win(0, 1), win(0, 1, 2, 3)}
	if m := MeanCount(ws); m != 3 {
		t.Fatalf("MeanCount = %g, want 3", m)
	}
	if m := MeanCount(nil); m != 0 {
		t.Fatalf("MeanCount(nil) = %g, want 0", m)
	}
}

func TestTypeCountsOver(t *testing.T) {
	evs := []trace.Event{{Type: 0}, {Type: 2}, {Type: 2}, {Type: 99}}
	c := TypeCountsOver(evs, 3)
	if c[0] != 1 || c[1] != 0 || c[2] != 3 {
		t.Fatalf("counts = %v", c)
	}
}

// TestIntoVariantsMatchAllocating: the buffer-reuse forms must reproduce
// the allocating forms bit-for-bit, even into dirty buffers.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	w := win(0, 0, 1, 3, 2, 2, 7)

	c := make(Counts, 4)
	for i := range c {
		c[i] = 99 // dirty
	}
	FromWindowInto(w, c)
	want := FromWindow(w, 4)
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("FromWindowInto = %v, want %v", c, want)
		}
	}

	dst := make(Vector, 4)
	for i := range dst {
		dst[i] = -1 // dirty
	}
	c.NormalizeInto(dst, 0.5)
	wantV := c.Normalize(0.5)
	for i := range dst {
		if dst[i] != wantV[i] {
			t.Fatalf("NormalizeInto = %v, want %v", dst, wantV)
		}
	}

	for _, f := range []Featurizer{
		{Dim: 4, Smoothing: 0.5},
		{Dim: 4, Smoothing: 0.5, IncludeRate: true, RateScale: 10},
	} {
		buf := make(Vector, f.FeatureDim())
		cnt := make(Counts, f.Dim)
		got := f.FeaturesInto(buf, cnt, w)
		wantF := f.Features(w)
		for i := range got {
			if got[i] != wantF[i] {
				t.Fatalf("FeaturesInto (rate=%v) = %v, want %v", f.IncludeRate, got, wantF)
			}
		}
	}
}

// TestFeaturesIntoZeroAlloc: the steady-state featurization path of the
// monitor must not allocate.
func TestFeaturesIntoZeroAlloc(t *testing.T) {
	f := Featurizer{Dim: 4, Smoothing: 0.5, IncludeRate: true, RateScale: 10}
	w := win(0, 0, 1, 3, 2)
	buf := make(Vector, f.FeatureDim())
	cnt := make(Counts, f.Dim)
	if allocs := testing.AllocsPerRun(100, func() { f.FeaturesInto(buf, cnt, w) }); allocs != 0 {
		t.Fatalf("FeaturesInto allocates %v/op, want 0", allocs)
	}
}

// TestIntoVariantsRejectBadBuffers: length mismatches must fail loudly.
func TestIntoVariantsRejectBadBuffers(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted a bad buffer", name)
			}
		}()
		fn()
	}
	c := Counts{1, 2, 3}
	mustPanic("NormalizeInto", func() { c.NormalizeInto(make(Vector, 2), 0) })
	f := Featurizer{Dim: 3, IncludeRate: true}
	mustPanic("FeaturesInto short dst", func() { f.FeaturesInto(make(Vector, 3), make(Counts, 3), win(0)) })
	mustPanic("FeaturesInto short cnt", func() { f.FeaturesInto(make(Vector, 4), make(Counts, 2), win(0)) })
}
