// Package pmf implements the probability-mass-function window abstraction
// of §II: each trace window is summarised as a vector giving, for each
// event type, the occurrence frequency of that type in the window. These
// vectors are the points LOF operates on and the operands of the
// Kullback–Leibler gate.
package pmf

import (
	"fmt"
	"math"

	"enduratrace/internal/trace"
	"enduratrace/internal/window"
)

// Vector is a discrete distribution over event types: Vector[i] is the
// probability of event type i. A valid Vector is non-negative and sums to 1
// (within floating-point tolerance); the zero-length Vector is invalid.
type Vector []float64

// Counts is a raw per-type occurrence count for one window, before
// normalisation. Keeping counts separate lets the monitor also use the
// total event rate, which pure pmfs normalise away.
type Counts []float64

// FromWindow builds the per-type counts of a window. Event types >= dim are
// folded into the last bucket so that an unregistered type cannot index out
// of range (this mirrors real trace decoders, which map unknown records to
// an "other" channel).
func FromWindow(w window.Window, dim int) Counts {
	c := make(Counts, dim)
	FromWindowInto(w, c)
	return c
}

// FromWindowInto is the buffer-reuse form of FromWindow: it zeroes dst and
// accumulates w's per-type counts into it, with len(dst) as the fold
// dimension. The monitor's steady state calls this once per window, so it
// must not allocate.
func FromWindowInto(w window.Window, dst Counts) {
	dim := len(dst)
	for i := range dst {
		dst[i] = 0
	}
	for _, ev := range w.Events {
		i := int(ev.Type)
		if i >= dim {
			i = dim - 1
		}
		dst[i]++
	}
}

// Total returns the sum of counts (the window's event count).
func (c Counts) Total() float64 {
	var s float64
	for _, v := range c {
		s += v
	}
	return s
}

// Normalize converts counts to a pmf using additive (Laplace) smoothing with
// parameter eps >= 0. Smoothing keeps every component strictly positive so
// that Kullback–Leibler divergence is finite; eps = 0 gives the plain
// maximum-likelihood pmf (components may be zero). An all-zero count vector
// normalises to the uniform distribution: an empty window carries no type
// information.
func (c Counts) Normalize(eps float64) Vector {
	v := make(Vector, len(c))
	c.NormalizeInto(v, eps)
	return v
}

// NormalizeInto is the buffer-reuse form of Normalize: it writes the
// smoothed pmf of c into dst, which must have the same length as c.
func (c Counts) NormalizeInto(dst Vector, eps float64) {
	n := len(c)
	if len(dst) != n {
		panic(fmt.Sprintf("pmf: NormalizeInto dst length %d != counts length %d", len(dst), n))
	}
	total := c.Total() + eps*float64(n)
	if total == 0 {
		u := 1.0 / float64(n)
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i, x := range c {
		dst[i] = (x + eps) / total
	}
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Validate returns an error unless v is a proper distribution.
func (v Vector) Validate() error {
	if len(v) == 0 {
		return fmt.Errorf("pmf: empty vector")
	}
	var s float64
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("pmf: component %d is %v", i, x)
		}
		if x < 0 {
			return fmt.Errorf("pmf: negative component %d = %g", i, x)
		}
		s += x
	}
	if math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("pmf: components sum to %g, want 1", s)
	}
	return nil
}

// Merge updates v in place as an exponentially-weighted average with n:
//
//	v = (1-lambda)*v + lambda*n
//
// This is the paper's Ppmf update: when the new window is similar to the
// past, it is merged into the past pmf so the model tracks slow behaviour
// drift (§II, "Online anomaly detection"). lambda must be in (0, 1].
func (v Vector) Merge(n Vector, lambda float64) {
	if len(v) != len(n) {
		panic(fmt.Sprintf("pmf: merging vectors of different dimension %d != %d", len(v), len(n)))
	}
	if lambda <= 0 || lambda > 1 {
		panic(fmt.Sprintf("pmf: merge weight %g outside (0,1]", lambda))
	}
	for i := range v {
		v[i] = (1-lambda)*v[i] + lambda*n[i]
	}
}

// Entropy returns the Shannon entropy of v in nats.
func (v Vector) Entropy() float64 {
	var h float64
	for _, p := range v {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Uniform returns the uniform distribution of dimension dim.
func Uniform(dim int) Vector {
	v := make(Vector, dim)
	u := 1.0 / float64(dim)
	for i := range v {
		v[i] = u
	}
	return v
}

// Featurizer converts windows into the feature vectors consumed by the
// detector. The paper uses the plain pmf; IncludeRate optionally appends a
// normalised event-rate component so that pure rate collapses (a stalled
// decoder emitting the same mix, only slower) remain visible. RateScale is
// the event count mapped to rate feature 1.0 (typically the reference
// windows' mean count).
type Featurizer struct {
	Dim         int     // number of event types (vector dimensionality)
	Smoothing   float64 // additive smoothing epsilon
	IncludeRate bool    // append event-rate feature
	RateScale   float64 // count mapped to 1.0 when IncludeRate
}

// FeatureDim reports the dimensionality of produced feature vectors.
func (f Featurizer) FeatureDim() int {
	if f.IncludeRate {
		return f.Dim + 1
	}
	return f.Dim
}

// Features converts one window into a feature vector.
//
// Note: with IncludeRate the result is no longer a distribution (it does not
// sum to 1); it remains a valid LOF point but must not be fed to KL-style
// divergences. The monitor keeps the KL gate on the pmf prefix.
func (f Featurizer) Features(w window.Window) Vector {
	return f.FeaturesInto(make(Vector, f.FeatureDim()), make(Counts, f.Dim), w)
}

// FeaturesInto is the buffer-reuse form of Features: dst (length
// FeatureDim) receives the feature vector, cnt (length Dim) is the count
// scratch. Both are overwritten; dst is returned. Steady-state window
// featurization reuses the same two buffers and allocates nothing.
func (f Featurizer) FeaturesInto(dst Vector, cnt Counts, w window.Window) Vector {
	if len(dst) != f.FeatureDim() || len(cnt) != f.Dim {
		panic(fmt.Sprintf("pmf: FeaturesInto buffers %d/%d, want %d/%d",
			len(dst), len(cnt), f.FeatureDim(), f.Dim))
	}
	FromWindowInto(w, cnt)
	cnt.NormalizeInto(dst[:f.Dim], f.Smoothing)
	if !f.IncludeRate {
		return dst
	}
	scale := f.RateScale
	if scale <= 0 {
		scale = 1
	}
	r := cnt.Total() / scale
	if r > 1 {
		r = 1 // saturate: only rate *drops* matter for stalls
	}
	dst[f.Dim] = r
	return dst
}

// PMFOnly returns the pmf prefix of a feature vector produced by Features.
func (f Featurizer) PMFOnly(v Vector) Vector {
	return v[:f.Dim]
}

// MeanCount returns the mean event count per window over ws; it is the
// recommended RateScale for a reference trace.
func MeanCount(ws []window.Window) float64 {
	if len(ws) == 0 {
		return 0
	}
	var s float64
	for _, w := range ws {
		s += float64(len(w.Events))
	}
	return s / float64(len(ws))
}

// TypeCountsOver accumulates total per-type counts across an event slice;
// a convenience for summary statistics and tests.
func TypeCountsOver(evs []trace.Event, dim int) Counts {
	c := make(Counts, dim)
	for _, ev := range evs {
		i := int(ev.Type)
		if i >= dim {
			i = dim - 1
		}
		c[i]++
	}
	return c
}
