//go:build !race

package alert

// raceEnabled reports whether the race detector is compiled in; the
// selftest's allocation assertion is skipped under instrumentation.
const raceEnabled = false
