package alert

import "sync"

// tokenBucket is the delivery rate limiter. Three modes, picked by the
// construction parameters:
//
//   - rate > 0: classic token bucket — refills rate tokens/s up to burst
//     (burst <= 0 defaults to rate, a one-second window).
//   - rate == 0, burst > 0: fixed budget — burst tokens, never refilled.
//     The deterministic mode the fake-clock selftest uses.
//   - rate == 0, burst <= 0: unlimited (take always succeeds).
//
// Time is the pipeline clock in nanoseconds, so fake clocks drive refill
// exactly.
type tokenBucket struct {
	mu        sync.Mutex
	rate      float64 // tokens per second
	burst     float64
	tokens    float64 //enduratrace:guarded-by mu
	lastNs    int64   //enduratrace:guarded-by mu
	unlimited bool
}

func newTokenBucket(rate, burst float64, nowNs int64) *tokenBucket {
	if rate <= 0 && burst <= 0 {
		return &tokenBucket{unlimited: true}
	}
	if rate > 0 && burst <= 0 {
		burst = rate
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, lastNs: nowNs}
}

// take consumes one token if available.
func (b *tokenBucket) take(nowNs int64) bool {
	if b.unlimited {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate > 0 && nowNs > b.lastNs {
		b.tokens += float64(nowNs-b.lastNs) / 1e9 * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastNs = nowNs
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
