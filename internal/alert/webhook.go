package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// WebhookOptions tunes a WebhookSink.
type WebhookOptions struct {
	// Retries is how many times a retryable failure (transport error or
	// 5xx) is retried after the first attempt (default 2, so 3 attempts).
	Retries int
	// Backoff is the first retry delay; it doubles per retry (default
	// 250ms). Waits are cut short by the delivery context.
	Backoff time.Duration
	// MaxBody bounds how much of a response body is read — oversized
	// (or hostile) responses are truncated, never buffered whole
	// (default 4096 bytes).
	MaxBody int64
	// Client substitutes the HTTP client (default http.DefaultClient;
	// per-attempt deadlines come from the delivery context either way).
	Client *http.Client
	// Name overrides the sink's metrics label (default "webhook").
	Name string
}

func (o WebhookOptions) withDefaults() WebhookOptions {
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 4096
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Name == "" {
		o.Name = "webhook"
	}
	return o
}

// WebhookSink POSTs each notification as JSON to one URL, with bounded
// retries: transport errors and 5xx responses back off and retry (the
// remote may be restarting), 4xx responses fail immediately (retrying a
// rejection is spam), and the delivery context caps the whole attempt
// train — a hung webhook costs one delivery slot, never a scoring stall
// (the dispatch queue is the buffer in between).
type WebhookSink struct {
	url  string
	opts WebhookOptions
	// sleep is the inter-retry wait, swapped out by tests to assert the
	// backoff schedule without wall-clock waits.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewWebhookSink builds a webhook sink for url.
func NewWebhookSink(url string, opts WebhookOptions) *WebhookSink {
	return &WebhookSink{url: url, opts: opts.withDefaults(), sleep: sleepCtx}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *WebhookSink) Name() string { return s.opts.Name }

func (s *WebhookSink) Deliver(ctx context.Context, n Notification) error {
	payload, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("alert: webhook encode: %w", err)
	}
	backoff := s.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= s.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := s.sleep(ctx, backoff); err != nil {
				return fmt.Errorf("alert: webhook %s: %w (after %v)", s.url, err, lastErr)
			}
			backoff *= 2
		}
		retryable, err := s.post(ctx, payload)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("alert: webhook %s: %w (after %v)", s.url, ctx.Err(), lastErr)
		}
	}
	return lastErr
}

// post runs one attempt; retryable reports whether another attempt could
// help (transport failure or 5xx).
func (s *WebhookSink) post(ctx context.Context, payload []byte) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(payload))
	if err != nil {
		return false, fmt.Errorf("alert: webhook %s: %w", s.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return true, fmt.Errorf("alert: webhook %s: %w", s.url, err)
	}
	// Read at most MaxBody bytes (the error detail), then drain a little
	// more so keep-alive can reuse the connection — but never the whole
	// body: an oversized response is the server's problem, not ours.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, s.opts.MaxBody))
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return false, nil
	case resp.StatusCode >= 500:
		return true, fmt.Errorf("alert: webhook %s: %s: %q", s.url, resp.Status, truncate(body, 256))
	default:
		return false, fmt.Errorf("alert: webhook %s: %s: %q", s.url, resp.Status, truncate(body, 256))
	}
}

func (s *WebhookSink) Close() error { return nil }
