package alert

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recordedSleep swaps the webhook's inter-retry wait for a recorder, so
// backoff schedules are asserted without wall-clock time.
func recordedSleep(sink *WebhookSink) *[]time.Duration {
	var waits []time.Duration
	sink.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	return &waits
}

func testNotification() Notification {
	return Notification{
		Kind: KindFiring, Stream: "s0", Model: "m0",
		Wall: selftestEpoch, GateDist: 2.5, LOF: 3.1, WindowIndex: 7, Trips: 3,
	}
}

func TestWebhookDeliversJSON(t *testing.T) {
	var got Notification
	var contentType string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		contentType = r.Header.Get("Content-Type")
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Errorf("decode: %v", err)
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{})
	if err := sink.Deliver(context.Background(), testNotification()); err != nil {
		t.Fatal(err)
	}
	if contentType != "application/json" {
		t.Fatalf("content type %q", contentType)
	}
	want := testNotification()
	if got.Stream != want.Stream || got.Kind != want.Kind || got.Trips != want.Trips {
		t.Fatalf("server saw %+v, want %+v", got, want)
	}
}

func TestWebhookRetriesServerErrorsWithBackoff(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 2, Backoff: 100 * time.Millisecond})
	waits := recordedSleep(sink)
	if err := sink.Deliver(context.Background(), testNotification()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server got %d calls, want 3", calls.Load())
	}
	// The backoff schedule doubles: base, then 2x.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(*waits) != len(want) || (*waits)[0] != want[0] || (*waits)[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", *waits, want)
	}
}

func TestWebhookExhaustsRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "still broken", http.StatusInternalServerError)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 2, Backoff: time.Millisecond})
	recordedSleep(sink)
	err := sink.Deliver(context.Background(), testNotification())
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if calls.Load() != 3 {
		t.Fatalf("server got %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("error %q does not carry the status", err)
	}
}

func TestWebhookDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 5, Backoff: time.Millisecond})
	recordedSleep(sink)
	if err := sink.Deliver(context.Background(), testNotification()); err == nil {
		t.Fatal("4xx reported success")
	}
	if calls.Load() != 1 {
		t.Fatalf("retried a 4xx: %d calls, want 1", calls.Load())
	}
}

func TestWebhookTimeoutCancelsAttemptTrain(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 5, Backoff: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sink.Deliver(ctx, testNotification())
	if err == nil {
		t.Fatal("timed-out delivery reported success")
	}
	// The deadline must cut the whole train short — no hour-long backoff.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delivery took %v, want prompt cancellation", elapsed)
	}
	<-started // exactly one attempt reached the server
	select {
	case <-started:
		t.Fatal("cancelled delivery attempted again")
	default:
	}
}

func TestWebhookTruncatesOversizedResponses(t *testing.T) {
	big := strings.Repeat("x", 1<<20) // 1 MiB error body
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, big, http.StatusInternalServerError)
	}))
	defer srv.Close()

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 0, MaxBody: 64})
	recordedSleep(sink)
	err := sink.Deliver(context.Background(), testNotification())
	if err == nil {
		t.Fatal("5xx reported success")
	}
	// The error carries at most the bounded prefix, never the megabyte.
	if len(err.Error()) > 1024 {
		t.Fatalf("error message is %d bytes — oversized body not truncated", len(err.Error()))
	}
	if !strings.Contains(err.Error(), "xxx") {
		t.Fatalf("error %q lost the body prefix", err)
	}
}

func TestWebhookTransportErrorRetries(t *testing.T) {
	// A server that closes immediately: connection refused on every
	// attempt is retryable up to the budget.
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	srv.Close() // now nothing listens at srv.URL

	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 2, Backoff: time.Millisecond})
	waits := recordedSleep(sink)
	if err := sink.Deliver(context.Background(), testNotification()); err == nil {
		t.Fatal("refused connection reported success")
	}
	if len(*waits) != 2 {
		t.Fatalf("%d backoff waits, want 2 (transport errors retry)", len(*waits))
	}
}

// TestWebhookErrorsNeverBlockStateMachine wires a failing webhook into a
// full pipeline: scoring-side Observe stays non-blocking, errors land in
// the sink's books, and the state machine keeps transitioning.
func TestWebhookErrorsNeverBlockStateMachine(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	clk := newFakeClock(selftestEpoch)
	sink := NewWebhookSink(srv.URL, WebhookOptions{Retries: 1, Backoff: time.Millisecond})
	p := NewPipeline(Options{
		MinTrips: 1, ClearAfter: time.Minute, DedupTTL: -1,
		DeliveryTimeout: 5 * time.Second,
		Sinks:           []Sink{sink}, Clock: clk.now,
	})
	s := p.Register("s0", "m0")
	const incidents = 3
	for i := 0; i < incidents; i++ {
		clk.advance(time.Second)
		start := time.Now()
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 2})
		if took := time.Since(start); took > time.Second {
			t.Fatalf("Observe blocked %v behind a failing webhook", took)
		}
		clk.advance(time.Minute)
		s.Observe(Observation{})
	}
	s.Close()
	if !p.Drain(30 * time.Second) {
		t.Fatal("queue did not drain")
	}
	b := p.Books()
	if err := b.Balanced(); err != nil {
		t.Fatal(err)
	}
	if len(b.Sinks) != 1 || b.Sinks[0].Errors != 2*incidents || b.Sinks[0].Delivered != 0 {
		t.Fatalf("sink books %+v, want %d errors 0 delivered", b.Sinks, 2*incidents)
	}
	if b.Fired != incidents || b.Resolved != incidents {
		t.Fatalf("state machine stalled: fired/resolved %d/%d, want %d/%d", b.Fired, b.Resolved, incidents, incidents)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
