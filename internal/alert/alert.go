// Package alert turns the monitor's per-window decisions into operator
// notifications. A daemon watching millions of streams is useless if a
// human has to poll /stats, but raw gate trips are far too noisy to page
// on: one flapping stream would bury every real incident. The pipeline
// between a decision and a delivered notification is therefore explicit,
// and every notification ends in exactly one accounted bucket:
//
//	decision ─→ per-stream state machine ─→ transition (firing/resolved)
//	             (MinTrips / ClearAfter        │
//	              hysteresis)                  ├─ deduped      (TTL seen-set)
//	                                           ├─ rate-limited (global bucket)
//	                                           ├─ queue-dropped (dispatch full)
//	                                           └─ enqueued ─→ dispatcher ─→ sinks
//	                                                           (one goroutine;    │
//	                                                            per-sink buckets) ├─ delivered
//	                                                                              ├─ rate-limited
//	                                                                              └─ errors
//
// The state machine runs on the stream's scoring goroutine and is
// allocation-free when nothing is wrong (the no-alert fast path); the
// dispatch queue is the decoupling point, so a slow webhook can never
// backpressure scoring — overflow is counted, never waited on. Books
// balance by construction: fired + resolved == deduped + rate-limited +
// queue-dropped + enqueued, and per sink enqueued == delivered +
// rate-limited + errors once the queue drains (Books.Balanced verifies
// exactly this; the flapping selftest drives it).
package alert

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// State is a stream's position in the alert lifecycle.
type State uint32

const (
	// StateIdle: never fired, no trips outstanding.
	StateIdle State = iota
	// StatePending: consecutive trips accumulating toward MinTrips.
	StatePending
	// StateFiring: an incident is open; a firing notification was emitted.
	StateFiring
	// StateResolved: a past incident resolved; behaves like idle, kept
	// distinct so "resolved → pending re-fire" is an observable edge.
	StateResolved
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	}
	return "unknown"
}

// Kind labels a notification: an incident opening or closing.
type Kind uint8

const (
	KindFiring Kind = iota + 1
	KindResolved
)

func (k Kind) String() string {
	switch k {
	case KindFiring:
		return "firing"
	case KindResolved:
		return "resolved"
	}
	return "unknown"
}

// MarshalText makes Kind render as its name in JSON payloads.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the name back (webhook consumers round-trip the
// payload; tests do too).
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "firing":
		*k = KindFiring
	case "resolved":
		*k = KindResolved
	default:
		return fmt.Errorf("alert: unknown kind %q", b)
	}
	return nil
}

// Observation is one window's verdict, fed from the monitor's decision
// callback. The pipeline picks its trip predicate from Options.TripOnGate.
type Observation struct {
	GateTripped bool
	Anomalous   bool
	GateDist    float64
	LOF         float64
	WindowIndex int
}

// Notification is one alert transition on its way to the sinks.
type Notification struct {
	Kind   Kind   `json:"kind"`
	Stream string `json:"stream"`
	Model  string `json:"model"`
	// Wall is the pipeline-clock time of the transition.
	Wall time.Time `json:"wall"`
	// GateDist and LOF are the verdict of the window that armed the
	// incident (for firing) or that the incident fired with (for
	// resolved). WindowIndex locates that window in the stream.
	GateDist    float64 `json:"gate_dist"`
	LOF         float64 `json:"lof"`
	WindowIndex int     `json:"window_index"`
	// Trips is how many consecutive tripped windows armed the incident.
	Trips int `json:"trips"`
	// FiredWall and DurationS are set on resolved notifications: when the
	// incident fired and how long it stayed open.
	FiredWall time.Time `json:"fired_wall,omitzero"`
	DurationS float64   `json:"duration_s,omitempty"`
}

// MarshalJSON renders non-finite scores as null: gate distances are
// legitimately +Inf for disjoint distributions, but JSON has no Inf/NaN
// and one such window must not break every webhook payload and the whole
// GET /alerts body with a marshal error.
func (n Notification) MarshalJSON() ([]byte, error) {
	type plain Notification // no methods: the default encoding
	return json.Marshal(struct {
		plain
		GateDist jsonFloat `json:"gate_dist"`
		LOF      jsonFloat `json:"lof"`
	}{plain: plain(n), GateDist: jsonFloat(n.GateDist), LOF: jsonFloat(n.LOF)})
}

// jsonFloat marshals like float64 but maps NaN/±Inf to null.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// Options configures a Pipeline.
type Options struct {
	// MinTrips is the hysteresis arm count: an incident fires on the
	// MinTrips-th consecutive tripped window (default 3). A clear window
	// while pending resets the count — one isolated trip never pages.
	MinTrips int
	// ClearAfter is the resolution hysteresis: a firing incident resolves
	// on the first clear window at least ClearAfter after the incident's
	// last tripped window (default 30s).
	ClearAfter time.Duration
	// TripOnGate makes every gate trip count toward firing; the default
	// (false) counts only anomalous windows (LOF >= alpha), the
	// already-filtered signal.
	TripOnGate bool
	// DedupTTL is the content-dedup window: a second notification with the
	// same (stream, model, quantized gate distance, kind) key within the
	// TTL is counted deduped and not delivered. 0 means the default 5m;
	// negative disables dedup.
	DedupTTL time.Duration
	// DedupQuantum is the gate-distance quantization step for the dedup
	// key (default 0.01): distances within one quantum dedup together.
	DedupQuantum float64
	// GlobalRate and GlobalBurst token-bucket every notification before
	// the queue: Rate > 0 refills Rate tokens/s up to Burst; Rate == 0
	// with Burst > 0 is a fixed budget of Burst notifications (no refill
	// — the deterministic selftest mode); both zero means unlimited.
	GlobalRate  float64
	GlobalBurst float64
	// SinkRate and SinkBurst are the same bucket per sink, applied by the
	// dispatcher at delivery time.
	SinkRate  float64
	SinkBurst float64
	// QueueLen bounds the dispatch queue (default 256). A full queue drops
	// the notification and counts it — scoring never waits on a sink.
	QueueLen int
	// DeliveryTimeout bounds one sink delivery (default 10s).
	DeliveryTimeout time.Duration
	// Sinks receive every notification that survives dedup and rate
	// limiting. The pipeline owns them: Close closes each exactly once.
	Sinks []Sink
	// Clock substitutes the time source (default time.Now). The selftest
	// drives a fake clock through here; it must be safe for concurrent
	// use (the dispatcher reads it too).
	Clock func() time.Time
	// OnTransition, when set, observes every state-machine transition
	// synchronously on the scoring goroutine, before dedup and rate
	// limiting — the persistence hook (serve appends transitions to the
	// anomaly store through it). It must not block for long.
	OnTransition func(Notification)
	// RecentCap bounds the recent-notification ring served by GET /alerts
	// (default 128).
	RecentCap int
}

func (o Options) withDefaults() Options {
	if o.MinTrips <= 0 {
		o.MinTrips = 3
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 30 * time.Second
	}
	if o.DedupTTL == 0 {
		o.DedupTTL = 5 * time.Minute
	}
	if o.DedupQuantum <= 0 {
		o.DedupQuantum = 0.01
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.DeliveryTimeout <= 0 {
		o.DeliveryTimeout = 10 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.RecentCap <= 0 {
		o.RecentCap = 128
	}
	return o
}

// modelCounters is one model's share of the pipeline books.
type modelCounters struct {
	fired    atomic.Int64
	resolved atomic.Int64
	deduped  atomic.Int64
}

// Pipeline is the alerting stage: build with NewPipeline, Register a
// Stream per served stream, feed Observations from the decision callback,
// Close when serving stops. All methods are safe for concurrent use;
// Stream.Observe is additionally allocation-free when idle.
type Pipeline struct {
	opts  Options
	clock func() time.Time
	dedup *dedupSet
	gbkt  *tokenBucket
	disp  *dispatcher

	rlGlobal     atomic.Int64 // notifications refused by the global bucket
	queueDropped atomic.Int64 // notifications refused by a full queue
	enqueued     atomic.Int64 // notifications handed to the dispatcher

	mu       sync.Mutex
	models   map[string]*modelCounters //enduratrace:guarded-by mu
	streams  map[*Stream]struct{}      //enduratrace:guarded-by mu
	recent   []Notification            //enduratrace:guarded-by mu
	recentAt int                       //enduratrace:guarded-by mu
	hook     func(Notification)        //enduratrace:guarded-by mu
}

// NewPipeline validates the options and builds a running pipeline (the
// dispatcher goroutine starts immediately).
func NewPipeline(opts Options) *Pipeline {
	opts = opts.withDefaults()
	p := &Pipeline{
		opts:    opts,
		clock:   opts.Clock,
		models:  make(map[string]*modelCounters),
		streams: make(map[*Stream]struct{}),
		recent:  make([]Notification, 0, opts.RecentCap),
		hook:    opts.OnTransition,
	}
	if opts.DedupTTL > 0 {
		p.dedup = newDedupSet(opts.DedupTTL)
	}
	p.gbkt = newTokenBucket(opts.GlobalRate, opts.GlobalBurst, p.nowNs())
	p.disp = newDispatcher(opts.QueueLen, opts.Sinks, opts.SinkRate, opts.SinkBurst,
		opts.DeliveryTimeout, p.clock)
	return p
}

// SetTransitionHook installs the OnTransition callback after construction
// (serve wires the anomaly-store persistence here). Call before any
// stream is registered.
func (p *Pipeline) SetTransitionHook(hook func(Notification)) {
	p.mu.Lock()
	p.hook = hook
	p.mu.Unlock()
}

func (p *Pipeline) nowNs() int64 { return p.clock().UnixNano() }

func (p *Pipeline) modelCounters(model string) *modelCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	mc := p.models[model]
	if mc == nil {
		mc = &modelCounters{}
		p.models[model] = mc
	}
	return mc
}

// Register creates the alert state for one served stream. Observe must be
// called from a single goroutine (the stream's scoring goroutine); Close
// from that same goroutine when the stream ends.
func (p *Pipeline) Register(stream, model string) *Stream {
	s := &Stream{
		p:      p,
		stream: stream,
		model:  model,
		mc:     p.modelCounters(model),
	}
	p.mu.Lock()
	p.streams[s] = struct{}{}
	p.mu.Unlock()
	return s
}

// Close shuts the pipeline down: the dispatch queue is closed and drained
// exactly once (every already-queued notification still reaches the
// sinks), then every sink is closed exactly once. Idempotent; returns the
// first sink-close error.
func (p *Pipeline) Close() error { return p.disp.Close() }

// Drain blocks until every enqueued notification has been processed by
// the dispatcher or the timeout expires; it reports whether the queue
// fully drained. Streams must be quiet (no concurrent transitions) for
// the answer to be stable — the selftests call it after every stream
// closed.
func (p *Pipeline) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if p.disp.processed.Load() >= p.enqueued.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Stream is one served stream's alert state machine. Owned by the
// stream's scoring goroutine: Observe and Close must not be called
// concurrently with each other. The admin surface reads only the atomic
// fields.
type Stream struct {
	p      *Pipeline
	stream string
	model  string
	mc     *modelCounters

	state atomic.Uint32 // State; written by owner, read by admin

	// Owner-goroutine-only state machine fields.
	trips     int     // consecutive trips while pending
	everFired bool    // picks Idle vs Resolved on reset
	lastTrip  int64   // clock ns of the last tripped window
	firedAt   int64   // clock ns the open incident fired
	armDist   float64 // gate distance of the window that armed the incident
	armLOF    float64
	armIndex  int
	armTrips  int

	// Admin/test-visible incident counters.
	fired    atomic.Int64
	resolved atomic.Int64
}

// Stream and Model identify the stream this state machine watches.
func (s *Stream) Stream() string { return s.stream }
func (s *Stream) Model() string  { return s.model }

// State returns the machine's current state (safe from any goroutine).
func (s *Stream) State() State { return State(s.state.Load()) }

// Fired and Resolved count this stream's incidents (safe from any
// goroutine).
func (s *Stream) Fired() int64    { return s.fired.Load() }
func (s *Stream) Resolved() int64 { return s.resolved.Load() }

// Observe advances the state machine with one window's verdict. The
// no-alert fast path — a clear window on an idle or resolved stream —
// returns without locking, reading the clock, or allocating.
//
//enduratrace:zeroalloc
func (s *Stream) Observe(o Observation) {
	tripped := o.Anomalous
	if s.p.opts.TripOnGate {
		tripped = o.GateTripped
	}
	st := State(s.state.Load())
	if !tripped && (st == StateIdle || st == StateResolved) {
		return // the fast path: nothing outstanding, nothing tripped
	}

	now := s.p.nowNs()
	switch st {
	case StateIdle, StateResolved:
		// tripped (the clear case returned above): start arming.
		s.trips = 1
		s.lastTrip = now
		s.armDist, s.armLOF, s.armIndex = o.GateDist, o.LOF, o.WindowIndex
		if s.trips >= s.p.opts.MinTrips {
			s.fire(now)
		} else {
			s.state.Store(uint32(StatePending))
		}
	case StatePending:
		if !tripped {
			// Hysteresis: consecutive trips required; one clear disarms.
			s.reset()
			return
		}
		s.trips++
		s.lastTrip = now
		s.armDist, s.armLOF, s.armIndex = o.GateDist, o.LOF, o.WindowIndex
		if s.trips >= s.p.opts.MinTrips {
			s.fire(now)
		}
	case StateFiring:
		if tripped {
			s.lastTrip = now
			return
		}
		if now-s.lastTrip >= int64(s.p.opts.ClearAfter) {
			s.resolve(now)
		}
	}
}

// Close ends the stream's alert life: an open incident resolves (the
// stream going away closes it), and the stream leaves the admin listing.
// Call once, from the owning goroutine, after the last Observe.
func (s *Stream) Close() {
	if State(s.state.Load()) == StateFiring {
		s.resolve(s.p.nowNs())
	}
	s.p.mu.Lock()
	delete(s.p.streams, s)
	s.p.mu.Unlock()
}

func (s *Stream) reset() {
	if s.everFired {
		s.state.Store(uint32(StateResolved))
	} else {
		s.state.Store(uint32(StateIdle))
	}
	s.trips = 0
}

// fire opens the incident: Pending (or a first-trip arm) → Firing.
func (s *Stream) fire(now int64) {
	s.state.Store(uint32(StateFiring))
	s.everFired = true
	s.firedAt = now
	s.armTrips = s.trips
	s.fired.Add(1)
	s.mc.fired.Add(1)
	s.p.emit(Notification{
		Kind:        KindFiring,
		Stream:      s.stream,
		Model:       s.model,
		Wall:        time.Unix(0, now).UTC(),
		GateDist:    s.armDist,
		LOF:         s.armLOF,
		WindowIndex: s.armIndex,
		Trips:       s.trips,
	}, now)
}

// resolve closes the incident: Firing → Resolved.
func (s *Stream) resolve(now int64) {
	s.reset()
	s.resolved.Add(1)
	s.mc.resolved.Add(1)
	s.p.emit(Notification{
		Kind:        KindResolved,
		Stream:      s.stream,
		Model:       s.model,
		Wall:        time.Unix(0, now).UTC(),
		GateDist:    s.armDist,
		LOF:         s.armLOF,
		WindowIndex: s.armIndex,
		Trips:       s.armTrips,
		FiredWall:   time.Unix(0, s.firedAt).UTC(),
		DurationS:   float64(now-s.firedAt) / 1e9,
	}, now)
}

// emit routes one transition: persistence hook, recent ring, then the
// terminal buckets — dedup, global rate limit, dispatch queue. Exactly
// one bucket counts each notification; none of them blocks.
func (p *Pipeline) emit(n Notification, now int64) {
	p.mu.Lock()
	hook := p.hook
	if len(p.recent) < cap(p.recent) {
		p.recent = append(p.recent, n)
	} else {
		p.recent[p.recentAt] = n
		p.recentAt = (p.recentAt + 1) % cap(p.recent)
	}
	p.mu.Unlock()
	if hook != nil {
		hook(n)
	}
	if p.dedup != nil {
		key := EncodeKey(Key{
			Stream: n.Stream,
			Model:  n.Model,
			Kind:   n.Kind,
			Bucket: QuantizeDist(n.GateDist, p.opts.DedupQuantum),
		})
		if p.dedup.seen(string(key), now) {
			p.modelCounters(n.Model).deduped.Add(1)
			return
		}
	}
	if !p.gbkt.take(now) {
		p.rlGlobal.Add(1)
		return
	}
	if !p.disp.enqueue(n) {
		p.queueDropped.Add(1)
		return
	}
	p.enqueued.Add(1)
}

// QuantizeDist maps a gate distance onto its dedup bucket: distances
// within one quantum share a bucket. Non-finite distances get sentinel
// buckets so corrupt scores still dedup stably.
func QuantizeDist(dist, quantum float64) int64 {
	switch {
	case math.IsNaN(dist):
		return math.MaxInt64
	case math.IsInf(dist, 1):
		return math.MaxInt64 - 1
	case math.IsInf(dist, -1):
		return math.MinInt64 + 1
	}
	v := math.Round(dist / quantum)
	if v >= math.MaxInt64-2 {
		return math.MaxInt64 - 2
	}
	if v <= math.MinInt64+2 {
		return math.MinInt64 + 2
	}
	return int64(v)
}
