package alert

import (
	"testing"
	"time"
)

// BenchmarkAlertObserveQuiet is the cost alerting adds to every clear
// window on a healthy stream — the fast path the serve loop pays per
// decision. Must stay allocation-free.
func BenchmarkAlertObserveQuiet(b *testing.B) {
	clk := newFakeClock(selftestEpoch)
	p := NewPipeline(Options{MinTrips: 3, Clock: clk.now})
	defer p.Close()
	s := p.Register("bench-0", "bench")
	obs := Observation{GateDist: 0.2, LOF: 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(obs)
	}
}

// BenchmarkAlertObserveFlapping alternates trip and clear so the state
// machine churns pending/disarm without ever firing — the worst case
// that emits nothing.
func BenchmarkAlertObserveFlapping(b *testing.B) {
	clk := newFakeClock(selftestEpoch)
	p := NewPipeline(Options{MinTrips: 3, Clock: clk.now})
	defer p.Close()
	s := p.Register("bench-0", "bench")
	trip := Observation{Anomalous: true, GateDist: 2.0, LOF: 2.0}
	clear := Observation{GateDist: 0.2, LOF: 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			s.Observe(trip)
		} else {
			s.Observe(clear)
		}
	}
}

// BenchmarkAlertFireResolve measures a full incident round trip —
// transition emission, dedup lookup, bucket, enqueue — with a discard
// sink draining concurrently.
func BenchmarkAlertFireResolve(b *testing.B) {
	clk := newFakeClock(selftestEpoch)
	p := NewPipeline(Options{
		MinTrips:   1,
		ClearAfter: time.Second,
		DedupTTL:   -1, // measure the full emit path, not the dedup shortcut
		QueueLen:   4096,
		Sinks:      []Sink{&funcSink{name: "discard"}},
		Clock:      clk.now,
	})
	defer p.Close()
	s := p.Register("bench-0", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i & 1023), LOF: 2, WindowIndex: i})
		clk.advance(time.Second)
		s.Observe(Observation{})
	}
	b.StopTimer()
	p.Drain(30 * time.Second)
}

// BenchmarkAlertDedupHit is the steady-state cost of a repeat
// notification: key encode + seen-set hit, no delivery.
func BenchmarkAlertDedupHit(b *testing.B) {
	clk := newFakeClock(selftestEpoch)
	p := NewPipeline(Options{
		MinTrips:   1,
		ClearAfter: time.Second,
		DedupTTL:   time.Hour,
		Clock:      clk.now,
	})
	defer p.Close()
	s := p.Register("bench-0", "bench")
	trip := Observation{Anomalous: true, GateDist: 2.0, LOF: 2.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.advance(time.Second)
		s.Observe(trip) // fires; every fire past the first dedups
		clk.advance(time.Second)
		s.Observe(Observation{})
	}
}

// BenchmarkAlertKeyEncode isolates the dedup key codec.
func BenchmarkAlertKeyEncode(b *testing.B) {
	k := Key{Stream: "stream-12345", Model: "model-7", Kind: KindFiring, Bucket: 1234}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeKey(k)
	}
}
