package alert

import (
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"
)

func TestDedupSetTTL(t *testing.T) {
	d := newDedupSet(time.Minute)
	now := selftestEpoch.UnixNano()
	if d.seen("k", now) {
		t.Fatal("fresh key reported seen")
	}
	if !d.seen("k", now+int64(30*time.Second)) {
		t.Fatal("repeat within TTL not deduped")
	}
	// A hit does not refresh: expiry counts from the first delivery.
	if d.seen("k", now+int64(time.Minute)) {
		t.Fatal("key still seen at TTL from first delivery")
	}
	if !d.seen("k", now+int64(90*time.Second)) {
		t.Fatal("re-armed key not deduped")
	}
}

func TestDedupSetGC(t *testing.T) {
	d := newDedupSet(time.Minute)
	now := selftestEpoch.UnixNano()
	for i := 0; i < 100; i++ {
		d.seen(strings.Repeat("k", i+1), now)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d, want 100", d.Len())
	}
	// Past the TTL, the next insert sweeps everything expired.
	d.seen("fresh", now+int64(2*time.Minute))
	if d.Len() != 1 {
		t.Fatalf("len after GC = %d, want 1", d.Len())
	}
}

func TestTokenBucketModes(t *testing.T) {
	now := selftestEpoch.UnixNano()

	t.Run("unlimited", func(t *testing.T) {
		b := newTokenBucket(0, 0, now)
		for i := 0; i < 1000; i++ {
			if !b.take(now) {
				t.Fatal("unlimited bucket refused a take")
			}
		}
	})

	t.Run("fixed budget never refills", func(t *testing.T) {
		b := newTokenBucket(0, 3, now)
		for i := 0; i < 3; i++ {
			if !b.take(now) {
				t.Fatalf("take %d refused within budget", i)
			}
		}
		if b.take(now + int64(time.Hour)) {
			t.Fatal("fixed budget refilled")
		}
	})

	t.Run("classic refill", func(t *testing.T) {
		b := newTokenBucket(2, 2, now) // 2/s, burst 2
		if !b.take(now) || !b.take(now) {
			t.Fatal("burst refused")
		}
		if b.take(now) {
			t.Fatal("empty bucket granted a take")
		}
		if !b.take(now + int64(500*time.Millisecond)) {
			t.Fatal("no refill after 500ms at 2/s")
		}
		// Refill caps at burst: after an hour only 2 tokens, not 7200.
		later := now + int64(time.Hour)
		if !b.take(later) || !b.take(later) {
			t.Fatal("capped refill refused")
		}
		if b.take(later) {
			t.Fatal("refill exceeded burst")
		}
	})

	t.Run("burst defaults to rate", func(t *testing.T) {
		b := newTokenBucket(5, 0, now)
		for i := 0; i < 5; i++ {
			if !b.take(now) {
				t.Fatalf("take %d refused, want burst=rate=5", i)
			}
		}
		if b.take(now) {
			t.Fatal("6th take granted, want burst 5")
		}
	})
}

func TestQuantizeDist(t *testing.T) {
	cases := []struct {
		dist, quantum float64
		want          int64
	}{
		{0, 0.01, 0},
		{1.004, 0.01, 100},
		{1.006, 0.01, 101},
		{-1.004, 0.01, -100},
		{math.NaN(), 0.01, math.MaxInt64},
		{math.Inf(1), 0.01, math.MaxInt64 - 1},
		{math.Inf(-1), 0.01, math.MinInt64 + 1},
		{1e300, 0.01, math.MaxInt64 - 2},
		{-1e300, 0.01, math.MinInt64 + 2},
	}
	for _, tc := range cases {
		if got := QuantizeDist(tc.dist, tc.quantum); got != tc.want {
			t.Errorf("QuantizeDist(%g, %g) = %d, want %d", tc.dist, tc.quantum, got, tc.want)
		}
	}
	// Distances within one quantum share a bucket — the dedup property.
	if QuantizeDist(1.112, 0.01) != QuantizeDist(1.108, 0.01) {
		t.Error("near distances landed in different buckets")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []Key{
		{Stream: "s", Model: "m", Kind: KindFiring, Bucket: 0},
		{Stream: "", Model: "", Kind: KindResolved, Bucket: -1},
		{Stream: "stream/with/slashes", Model: "model name", Kind: KindFiring, Bucket: math.MaxInt64},
		{Stream: strings.Repeat("x", maxKeyNameLen), Model: "m", Kind: KindResolved, Bucket: math.MinInt64},
		{Stream: "unicode-é世界", Model: "\x00\xff", Kind: KindFiring, Bucket: 42},
	}
	for _, k := range cases {
		enc := EncodeKey(k)
		got, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("DecodeKey(%q): %v", enc, err)
		}
		if got != k {
			t.Fatalf("round trip: got %+v, want %+v", got, k)
		}
	}
	// Distinct identities must never encode to the same key (the
	// length-prefix property: "ab"+"c" vs "a"+"bc").
	a := string(EncodeKey(Key{Stream: "ab", Model: "c", Kind: KindFiring}))
	b := string(EncodeKey(Key{Stream: "a", Model: "bc", Kind: KindFiring}))
	if a == b {
		t.Fatal("distinct (stream, model) pairs collided")
	}
}

func TestDecodeKeyRejects(t *testing.T) {
	good := EncodeKey(Key{Stream: "s", Model: "m", Kind: KindFiring, Bucket: 7})
	cases := map[string][]byte{
		"empty":          nil,
		"one byte":       {keyVersion},
		"bad version":    append([]byte{99}, good[1:]...),
		"bad kind":       append([]byte{keyVersion, 99}, good[2:]...),
		"truncated name": good[:4],
		"trailing bytes": append(append([]byte{}, good...), 0),
		"oversized name": append([]byte{keyVersion, byte(KindFiring)}, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, b := range cases {
		if _, err := DecodeKey(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestEmitBuckets(t *testing.T) {
	t.Run("dedup counts per model", func(t *testing.T) {
		p, clk := newTestPipeline(t, Options{MinTrips: 1, ClearAfter: time.Minute, DedupTTL: time.Hour})
		s := p.Register("s0", "m0")
		obs := Observation{Anomalous: true, GateDist: 1.5, LOF: 2}
		clk.advance(time.Second)
		s.Observe(obs) // fires, delivered
		clk.advance(time.Minute)
		s.Observe(Observation{}) // resolves, delivered
		clk.advance(time.Second)
		s.Observe(obs) // re-fires, same key → deduped
		s.Close()      // resolves again, same key → deduped
		if !p.Drain(5 * time.Second) {
			t.Fatal("queue did not drain")
		}
		b := p.Books()
		if err := b.Balanced(); err != nil {
			t.Fatal(err)
		}
		if b.Fired != 2 || b.Resolved != 2 || b.Deduped != 2 || b.Enqueued != 2 {
			t.Fatalf("books = %+v, want fired 2 resolved 2 deduped 2 enqueued 2", b)
		}
		if len(b.Models) != 1 || b.Models[0].Deduped != 2 {
			t.Fatalf("model books = %+v, want m0 deduped 2", b.Models)
		}
	})

	t.Run("dedup disabled by negative TTL", func(t *testing.T) {
		p, clk := newTestPipeline(t, Options{MinTrips: 1, ClearAfter: time.Minute, DedupTTL: -1})
		s := p.Register("s0", "m0")
		obs := Observation{Anomalous: true, GateDist: 1.5, LOF: 2}
		for i := 0; i < 3; i++ {
			clk.advance(time.Second)
			s.Observe(obs)
			clk.advance(time.Minute)
			s.Observe(Observation{})
		}
		s.Close()
		if !p.Drain(5 * time.Second) {
			t.Fatal("queue did not drain")
		}
		b := p.Books()
		if b.Deduped != 0 || b.Enqueued != 6 {
			t.Fatalf("books = %+v, want deduped 0 enqueued 6", b)
		}
	})

	t.Run("queue overflow drops and counts", func(t *testing.T) {
		// A sink stuck in Deliver wedges the worker; the queue fills and
		// further transitions drop without blocking Observe.
		block := make(chan struct{})
		stuck := &funcSink{
			name: "stuck",
			deliver: func(ctx context.Context, _ Notification) error {
				select {
				case <-block:
				case <-ctx.Done():
				}
				return nil
			},
		}
		clk := newFakeClock(selftestEpoch)
		p := NewPipeline(Options{
			MinTrips: 1, ClearAfter: time.Minute, DedupTTL: -1,
			QueueLen: 2, DeliveryTimeout: time.Hour,
			Sinks: []Sink{stuck}, Clock: clk.now,
		})
		s := p.Register("s0", "m0")
		// First transition may be in-flight with the worker; the queue
		// holds 2 more; everything past 3 must drop.
		const transitions = 10
		for i := 0; i < transitions/2; i++ {
			clk.advance(time.Second)
			s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 2})
			clk.advance(time.Minute)
			s.Observe(Observation{})
		}
		// Drops are counted synchronously in Observe, so the books are
		// already final for the pre-queue buckets.
		b := p.Books()
		if b.QueueDropped < transitions-4 {
			t.Fatalf("queue dropped %d, want >= %d", b.QueueDropped, transitions-4)
		}
		if b.QueueDropped+b.Enqueued != transitions {
			t.Fatalf("dropped %d + enqueued %d != %d transitions", b.QueueDropped, b.Enqueued, transitions)
		}
		close(block)
		s.Close()
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if err := p.Books().Balanced(); err != nil {
			t.Fatal(err)
		}
	})
}

// funcSink adapts closures to the Sink interface for tests.
type funcSink struct {
	name    string
	deliver func(context.Context, Notification) error
	closeFn func() error
}

func (f *funcSink) Name() string { return f.name }
func (f *funcSink) Deliver(ctx context.Context, n Notification) error {
	if f.deliver == nil {
		return nil
	}
	return f.deliver(ctx, n)
}
func (f *funcSink) Close() error {
	if f.closeFn == nil {
		return nil
	}
	return f.closeFn()
}

func TestSinkErrorsCountAndDoNotBlock(t *testing.T) {
	clk := newFakeClock(selftestEpoch)
	failing := &funcSink{
		name:    "failing",
		deliver: func(context.Context, Notification) error { return context.DeadlineExceeded },
	}
	p := NewPipeline(Options{
		MinTrips: 1, ClearAfter: time.Minute, DedupTTL: -1,
		Sinks: []Sink{failing}, Clock: clk.now,
	})
	s := p.Register("s0", "m0")
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 2})
		clk.advance(time.Minute)
		s.Observe(Observation{})
	}
	s.Close()
	if !p.Drain(5 * time.Second) {
		t.Fatal("queue did not drain")
	}
	b := p.Books()
	if err := b.Balanced(); err != nil {
		t.Fatal(err)
	}
	if len(b.Sinks) != 1 || b.Sinks[0].Errors != 6 || b.Sinks[0].Delivered != 0 {
		t.Fatalf("sink books = %+v, want 6 errors 0 delivered", b.Sinks)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseReturnsFirstSinkError(t *testing.T) {
	clk := newFakeClock(selftestEpoch)
	boom := &funcSink{name: "boom", closeFn: func() error { return context.Canceled }}
	p := NewPipeline(Options{Sinks: []Sink{boom}, Clock: clk.now})
	if err := p.Close(); err != context.Canceled {
		t.Fatalf("close = %v, want %v", err, context.Canceled)
	}
	// Idempotent: the same error again, sinks not re-closed.
	if err := p.Close(); err != context.Canceled {
		t.Fatalf("second close = %v, want %v", err, context.Canceled)
	}
}

func TestSnapshotRecentRingWraps(t *testing.T) {
	p, clk := newTestPipeline(t, Options{MinTrips: 1, ClearAfter: time.Minute, DedupTTL: -1, RecentCap: 4})
	s := p.Register("s0", "m0")
	for i := 0; i < 4; i++ { // 8 transitions through a 4-slot ring
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 2, WindowIndex: 2 * i})
		clk.advance(time.Minute)
		s.Observe(Observation{WindowIndex: 2*i + 1})
	}
	s.Close()
	recent := p.Snapshot().Recent
	// Both transitions of an incident carry the arming window's index, so
	// the ring's last four entries are incidents 2 and 3, oldest first.
	want := []struct {
		kind Kind
		idx  int
	}{{KindFiring, 4}, {KindResolved, 4}, {KindFiring, 6}, {KindResolved, 6}}
	if len(recent) != len(want) {
		t.Fatalf("recent holds %d, want %d", len(recent), len(want))
	}
	for i, w := range want {
		if recent[i].Kind != w.kind || recent[i].WindowIndex != w.idx {
			t.Fatalf("recent[%d] = %v window %d, want %v window %d",
				i, recent[i].Kind, recent[i].WindowIndex, w.kind, w.idx)
		}
	}
}

func TestSlogSinkDelivers(t *testing.T) {
	var buf strings.Builder
	sink := NewSlogSink(slog.New(slog.NewTextHandler(&buf, nil)))
	n := Notification{Kind: KindFiring, Stream: "s0", Model: "m0", GateDist: 2.5, LOF: 3, Trips: 3}
	if err := sink.Deliver(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alert firing") || !strings.Contains(buf.String(), "s0") {
		t.Fatalf("log output %q missing alert line", buf.String())
	}
}

func TestExecSinkRuns(t *testing.T) {
	sink := NewExecSink("grep -q '\"stream\":\"s0\"'")
	n := Notification{Kind: KindFiring, Stream: "s0", Model: "m0"}
	if err := sink.Deliver(context.Background(), n); err != nil {
		t.Fatalf("exec sink with matching stdin: %v", err)
	}
	fail := NewExecSink("grep -q no-such-stream")
	if err := fail.Deliver(context.Background(), n); err == nil {
		t.Fatal("exec sink swallowed a failing command")
	}
}

func TestFlappingSelftest(t *testing.T) {
	if err := FlappingSelftest(slog.New(slog.DiscardHandler)); err != nil {
		t.Fatal(err)
	}
}

// TestNotificationMarshalNonFinite: gate distances are legitimately +Inf
// (disjoint distributions), but encoding/json refuses non-finite floats —
// the custom marshaler must map them to null instead of erroring out the
// whole payload.
func TestNotificationMarshalNonFinite(t *testing.T) {
	n := Notification{
		Kind:     KindFiring,
		Stream:   "s",
		Model:    "m",
		GateDist: math.Inf(1),
		LOF:      math.NaN(),
		Trips:    3,
	}
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("non-finite notification failed to marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("marshaled notification is not valid JSON: %v\n%s", err, b)
	}
	if m["gate_dist"] != nil || m["lof"] != nil {
		t.Fatalf("non-finite scores not null: gate_dist=%v lof=%v", m["gate_dist"], m["lof"])
	}
	// Finite values survive untouched through the custom marshaler.
	n.GateDist, n.LOF = 1.5, 3.25
	b, err = json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["gate_dist"] != 1.5 || m["lof"] != 3.25 || m["kind"] != "firing" || m["trips"] != 3.0 {
		t.Fatalf("finite notification fields mangled: %v", m)
	}
}
