package alert

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// FlappingSelftest is the alerting pipeline's end-to-end proof: a
// fake-clock choreographed set of flapping streams driving every
// state-machine edge, with exactly-once and books-balance assertions at
// each step. It runs in three acts, each against a fresh pipeline so the
// expected counts are independent:
//
//  1. Hysteresis + dedup: per stream — MinTrips-1 trips then a clear
//     (must NOT fire), MinTrips trips (fires exactly on the last),
//     extra trips (no re-fire), a clear at ClearAfter-1ns (no resolve),
//     a clear at ClearAfter (resolves once). Then one stream re-fires
//     with the same gate distance and both its transitions dedup.
//     Finally the no-alert fast path is measured allocation-free.
//  2. Global rate limit: a fixed-budget bucket (GlobalBurst tokens, no
//     refill) admits exactly GlobalBurst of the generated transitions;
//     the rest count rate-limited.
//  3. Per-sink rate limit: two sinks each with their own fixed budget
//     deliver exactly that many; the overflow counts against the sink.
//
// Every act ends with Drain + Books.Balanced — the issue-level equation
// fired == delivered + deduped + rate_limited + errors — and an
// idempotent double Close.
func FlappingSelftest(log *slog.Logger) error {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	var errs []error
	if err := selftestHysteresis(log); err != nil {
		errs = append(errs, err)
	}
	if err := selftestGlobalBudget(log); err != nil {
		errs = append(errs, err)
	}
	if err := selftestSinkBudget(log); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// fakeClock is a concurrency-safe manual clock (the dispatcher goroutine
// reads it while the harness advances it).
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock(start time.Time) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(start.UnixNano())
	return c
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()).UTC() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// captureSink records every delivered notification.
type captureSink struct {
	name string

	mu     sync.Mutex
	notes  []Notification
	closed int
}

func newCaptureSink(name string) *captureSink { return &captureSink{name: name} }

func (c *captureSink) Name() string { return c.name }

func (c *captureSink) Deliver(_ context.Context, n Notification) error {
	c.mu.Lock()
	c.notes = append(c.notes, n)
	c.mu.Unlock()
	return nil
}

func (c *captureSink) Close() error {
	c.mu.Lock()
	c.closed++
	c.mu.Unlock()
	return nil
}

func (c *captureSink) delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.notes)
}

func (c *captureSink) closes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// selftestEpoch anchors the fake clocks (any fixed instant works; a real
// date keeps rendered notifications legible).
var selftestEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// checker accumulates assertion failures instead of stopping at the
// first — one run reports every broken invariant.
type checker struct{ errs []error }

func (c *checker) failf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

func (c *checker) assert(ok bool, format string, args ...any) {
	if !ok {
		c.failf(format, args...)
	}
}

func (c *checker) err() error { return errors.Join(c.errs...) }

// drainAndClose is every act's epilogue: queue drained, books balanced,
// double Close idempotent, sink closed exactly once.
func drainAndClose(ck *checker, act string, p *Pipeline, sinks ...*captureSink) Books {
	ck.assert(p.Drain(5*time.Second), "%s: dispatch queue did not drain", act)
	books := p.Books()
	if err := books.Balanced(); err != nil {
		ck.failf("%s: %w", act, err)
	}
	if err := p.Close(); err != nil {
		ck.failf("%s: close: %w", act, err)
	}
	if err := p.Close(); err != nil {
		ck.failf("%s: second close: %w", act, err)
	}
	for _, s := range sinks {
		ck.assert(s.closes() == 1, "%s: sink %s closed %d times, want exactly 1", act, s.Name(), s.closes())
	}
	return books
}

// selftestHysteresis is act 1: state-machine edges, dedup, exactly-once
// firing/resolution, and the allocation-free fast path.
func selftestHysteresis(log *slog.Logger) error {
	const (
		nStreams   = 4
		minTrips   = 3
		clearAfter = 30 * time.Second
	)
	ck := &checker{}
	clk := newFakeClock(selftestEpoch)
	sink := newCaptureSink("capture")

	// The transition hook observes every state-machine edge before dedup
	// and rate limiting — the exactly-once ledger.
	var hookMu sync.Mutex
	transitions := make(map[string][]Notification)
	p := NewPipeline(Options{
		MinTrips:     minTrips,
		ClearAfter:   clearAfter,
		DedupTTL:     time.Hour, // covers the whole choreography
		DedupQuantum: 0.01,
		Sinks:        []Sink{sink},
		Clock:        clk.now,
		OnTransition: func(n Notification) {
			hookMu.Lock()
			transitions[n.Stream] = append(transitions[n.Stream], n)
			hookMu.Unlock()
		},
	})

	trip := func(s *Stream, dist float64, idx int) {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateTripped: true, GateDist: dist, LOF: 2.5, WindowIndex: idx})
	}
	clear := func(s *Stream, idx int) {
		s.Observe(Observation{GateDist: 0.1, LOF: 1.0, WindowIndex: idx})
	}

	streams := make([]*Stream, nStreams)
	for i := range streams {
		streams[i] = p.Register(fmt.Sprintf("flap-%d", i), "selftest")
	}

	idx := 0
	fireResolveOnce := func(s *Stream, dist float64, wantFired, wantResolved int64) {
		// Almost-armed: MinTrips-1 trips, then a clear — must disarm.
		for t := 0; t < minTrips-1; t++ {
			idx++
			trip(s, dist, idx)
		}
		ck.assert(s.State() == StatePending, "%s: after %d trips state %v, want pending", s.Stream(), minTrips-1, s.State())
		clk.advance(time.Second)
		idx++
		clear(s, idx)
		ck.assert(s.Fired() == wantFired-1, "%s: fired after disarm = %d, want %d", s.Stream(), s.Fired(), wantFired-1)
		ck.assert(s.State() != StateFiring && s.State() != StatePending,
			"%s: state after disarm = %v, want idle/resolved", s.Stream(), s.State())

		// Arm for real: fires exactly on the MinTrips-th trip.
		for t := 0; t < minTrips; t++ {
			ck.assert(s.Fired() == wantFired-1, "%s: fired before trip %d = %d, want %d", s.Stream(), t+1, s.Fired(), wantFired-1)
			idx++
			trip(s, dist, idx)
		}
		fireIdx := idx
		ck.assert(s.Fired() == wantFired, "%s: fired after %d trips = %d, want %d", s.Stream(), minTrips, s.Fired(), wantFired)
		ck.assert(s.State() == StateFiring, "%s: state after firing = %v", s.Stream(), s.State())

		// Extra trips while firing: no re-fire.
		for t := 0; t < 2; t++ {
			idx++
			trip(s, dist, idx)
		}
		ck.assert(s.Fired() == wantFired, "%s: fired after extra trips = %d, want %d", s.Stream(), s.Fired(), wantFired)

		// A clear one nanosecond short of ClearAfter must not resolve...
		clk.advance(clearAfter - time.Nanosecond)
		idx++
		clear(s, idx)
		ck.assert(s.State() == StateFiring, "%s: resolved %v early before ClearAfter", s.Stream(), clearAfter)
		ck.assert(s.Resolved() == wantResolved-1, "%s: resolved early = %d, want %d", s.Stream(), s.Resolved(), wantResolved-1)

		// ...and at exactly ClearAfter it resolves, once.
		clk.advance(time.Nanosecond)
		idx++
		clear(s, idx)
		ck.assert(s.Resolved() == wantResolved, "%s: resolved = %d, want %d", s.Stream(), s.Resolved(), wantResolved)
		ck.assert(s.State() == StateResolved, "%s: state after resolve = %v", s.Stream(), s.State())
		idx++
		clear(s, idx) // further clears are the fast path: no double resolve
		ck.assert(s.Resolved() == wantResolved, "%s: double resolve: %d", s.Stream(), s.Resolved())

		// The firing transition carries the arming evidence.
		hookMu.Lock()
		seq := transitions[s.Stream()]
		hookMu.Unlock()
		want := 2 * int(wantFired)
		if ck.assert(len(seq) == want, "%s: %d transitions, want %d", s.Stream(), len(seq), want); len(seq) == want {
			firing, resolved := seq[want-2], seq[want-1]
			ck.assert(firing.Kind == KindFiring && resolved.Kind == KindResolved,
				"%s: transition kinds %v/%v, want firing/resolved", s.Stream(), firing.Kind, resolved.Kind)
			ck.assert(firing.Trips == minTrips, "%s: firing trips %d, want %d", s.Stream(), firing.Trips, minTrips)
			ck.assert(firing.WindowIndex == fireIdx, "%s: firing window %d, want %d", s.Stream(), firing.WindowIndex, fireIdx)
			//lint:ignore floateq asserts the injected distance propagated bit-exactly, no arithmetic in between
			ck.assert(firing.GateDist == dist, "%s: firing dist %g, want %g", s.Stream(), firing.GateDist, dist)
			ck.assert(resolved.DurationS > 0, "%s: resolved duration %g, want > 0", s.Stream(), resolved.DurationS)
			ck.assert(resolved.FiredWall.Equal(firing.Wall), "%s: resolved fired_wall %v != firing wall %v",
				s.Stream(), resolved.FiredWall, firing.Wall)
		}
	}

	// Act 1a: every stream runs the full trip/clear/trip choreography with
	// a stream-unique gate distance (no cross-stream dedup).
	for i, s := range streams {
		fireResolveOnce(s, 1.0+float64(i), 1, 1)
	}

	// Act 1b: resolved → pending → re-fire on stream 0 with the SAME gate
	// distance: both transitions hit the dedup set (exact re-notification
	// within the TTL), yet the state machine still counts the incident.
	fireResolveOnce(streams[0], 1.0, 2, 2)

	// Act 1c: the no-alert fast path allocates nothing. Measured with the
	// runtime's own malloc counter (this runs inside the binary, not a
	// test); the dispatcher is idle after Drain so the loop is the only
	// foreground activity. Skipped under the race detector.
	ck.assert(p.Drain(5*time.Second), "hysteresis: queue did not drain before alloc check")
	if !raceEnabled {
		quiet := Observation{GateDist: 0.1, LOF: 1.0, WindowIndex: idx}
		s := streams[1]
		const iters = 100000
		best := ^uint64(0)
		for trial := 0; trial < 3 && best > 0; trial++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < iters; i++ {
				s.Observe(quiet)
			}
			runtime.ReadMemStats(&after)
			if d := after.Mallocs - before.Mallocs; d < best {
				best = d
			}
		}
		ck.assert(best == 0, "fast path allocated (%d mallocs over %d observes)", best, iters)
	}

	// Admin view before the streams go away.
	snap := p.Snapshot()
	ck.assert(p.FiringStreams() == 0, "hysteresis: %d streams still firing", p.FiringStreams())
	ck.assert(len(snap.Streams) == nStreams, "hysteresis: snapshot lists %d streams, want %d", len(snap.Streams), nStreams)
	for _, st := range snap.Streams {
		ck.assert(st.State == "resolved", "hysteresis: snapshot stream %s state %q, want resolved", st.Stream, st.State)
	}
	ck.assert(len(snap.Recent) == 2*(nStreams+1), "hysteresis: %d recent notifications, want %d", len(snap.Recent), 2*(nStreams+1))

	// Closing a resolved stream emits nothing further.
	for _, s := range streams {
		s.Close()
	}

	books := drainAndClose(ck, "hysteresis", p, sink)
	wantFired := int64(nStreams + 1)
	ck.assert(books.Fired == wantFired, "hysteresis: books fired %d, want %d", books.Fired, wantFired)
	ck.assert(books.Resolved == wantFired, "hysteresis: books resolved %d, want %d", books.Resolved, wantFired)
	ck.assert(books.Deduped == 2, "hysteresis: books deduped %d, want 2", books.Deduped)
	ck.assert(books.RateLimited() == 0, "hysteresis: books rate-limited %d, want 0", books.RateLimited())
	wantDelivered := int64(2 * nStreams)
	ck.assert(books.Enqueued == wantDelivered, "hysteresis: books enqueued %d, want %d", books.Enqueued, wantDelivered)
	ck.assert(int64(sink.delivered()) == wantDelivered, "hysteresis: sink saw %d, want %d", sink.delivered(), wantDelivered)

	log.Info("alert selftest: hysteresis+dedup act passed",
		"streams", nStreams, "fired", books.Fired, "resolved", books.Resolved,
		"deduped", books.Deduped, "delivered", sink.delivered())
	return ck.err()
}

// selftestGlobalBudget is act 2: the global fixed-budget bucket admits
// exactly its burst; everything past it counts rate-limited.
func selftestGlobalBudget(log *slog.Logger) error {
	const (
		budget     = 3
		incidents  = 8
		clearAfter = 10 * time.Second
	)
	ck := &checker{}
	clk := newFakeClock(selftestEpoch)
	sink := newCaptureSink("capture")
	p := NewPipeline(Options{
		MinTrips:    1,
		ClearAfter:  clearAfter,
		DedupTTL:    -1, // every transition is fresh: the bucket is the only gate
		GlobalRate:  0,
		GlobalBurst: budget,
		Sinks:       []Sink{sink},
		Clock:       clk.now,
	})
	s := p.Register("budget-0", "selftest")
	for i := 0; i < incidents; i++ {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 3, WindowIndex: 2 * i})
		clk.advance(clearAfter)
		s.Observe(Observation{GateDist: 0.1, LOF: 1, WindowIndex: 2*i + 1})
	}
	ck.assert(s.Fired() == incidents, "budget: fired %d, want %d", s.Fired(), int64(incidents))
	ck.assert(s.Resolved() == incidents, "budget: resolved %d, want %d", s.Resolved(), int64(incidents))
	s.Close()

	books := drainAndClose(ck, "budget", p, sink)
	const transitions = 2 * incidents
	ck.assert(books.Enqueued == budget, "budget: enqueued %d, want %d", books.Enqueued, int64(budget))
	ck.assert(books.RateLimitedGlobal == transitions-budget,
		"budget: rate-limited %d, want %d", books.RateLimitedGlobal, int64(transitions-budget))
	ck.assert(int64(sink.delivered()) == budget, "budget: sink saw %d, want %d", sink.delivered(), int64(budget))

	log.Info("alert selftest: global rate-limit act passed",
		"transitions", transitions, "delivered", sink.delivered(), "rate_limited", books.RateLimitedGlobal)
	return ck.err()
}

// selftestSinkBudget is act 3: per-sink fixed budgets — each of two
// sinks delivers exactly its own allowance out of the shared queue.
func selftestSinkBudget(log *slog.Logger) error {
	const (
		sinkBudget = 2
		incidents  = 3
		clearAfter = 10 * time.Second
	)
	ck := &checker{}
	clk := newFakeClock(selftestEpoch)
	a, b := newCaptureSink("capture-a"), newCaptureSink("capture-b")
	p := NewPipeline(Options{
		MinTrips:   1,
		ClearAfter: clearAfter,
		DedupTTL:   -1,
		SinkRate:   0,
		SinkBurst:  sinkBudget,
		Sinks:      []Sink{a, b},
		Clock:      clk.now,
	})
	s := p.Register("sinkbudget-0", "selftest")
	for i := 0; i < incidents; i++ {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 3, WindowIndex: 2 * i})
		clk.advance(clearAfter)
		s.Observe(Observation{GateDist: 0.1, LOF: 1, WindowIndex: 2*i + 1})
	}
	s.Close()

	books := drainAndClose(ck, "sink-budget", p, a, b)
	const transitions = 2 * incidents
	ck.assert(books.Enqueued == transitions, "sink-budget: enqueued %d, want %d", books.Enqueued, int64(transitions))
	for _, sb := range books.Sinks {
		ck.assert(sb.Delivered == sinkBudget, "sink-budget: sink %s delivered %d, want %d", sb.Name, sb.Delivered, int64(sinkBudget))
		ck.assert(sb.RateLimited == transitions-sinkBudget,
			"sink-budget: sink %s rate-limited %d, want %d", sb.Name, sb.RateLimited, int64(transitions-sinkBudget))
	}
	ck.assert(a.delivered() == sinkBudget && b.delivered() == sinkBudget,
		"sink-budget: captures saw %d/%d, want %d each", a.delivered(), b.delivered(), sinkBudget)

	log.Info("alert selftest: per-sink rate-limit act passed",
		"transitions", transitions, "per_sink_delivered", sinkBudget)
	return ck.err()
}
