package alert

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os/exec"
)

// Sink delivers notifications somewhere an operator will see them. The
// dispatcher calls Deliver sequentially from one goroutine with a
// per-delivery context deadline; a Deliver error is counted against the
// sink and never retried by the dispatcher (sinks own their retry
// policy, like WebhookSink's bounded backoff). Close is called exactly
// once, after the dispatch queue has drained.
type Sink interface {
	// Name labels the sink in metrics and the books.
	Name() string
	// Deliver sends one notification; ctx bounds the attempt(s).
	Deliver(ctx context.Context, n Notification) error
	// Close releases sink resources after the final delivery.
	Close() error
}

// SlogSink logs every notification through a slog.Logger — the sink of
// last resort: zero configuration, never fails.
type SlogSink struct {
	log *slog.Logger
}

// NewSlogSink builds the logging sink (nil logger uses slog.Default).
func NewSlogSink(log *slog.Logger) *SlogSink {
	if log == nil {
		log = slog.Default()
	}
	return &SlogSink{log: log}
}

func (s *SlogSink) Name() string { return "log" }

func (s *SlogSink) Deliver(_ context.Context, n Notification) error {
	attrs := []any{
		"stream", n.Stream, "model", n.Model,
		"gate_dist", n.GateDist, "lof", n.LOF,
		"window", n.WindowIndex, "trips", n.Trips,
	}
	switch n.Kind {
	case KindFiring:
		s.log.Warn("alert firing", attrs...)
	case KindResolved:
		s.log.Info("alert resolved", append(attrs, "duration_s", n.DurationS)...)
	default:
		s.log.Warn("alert (unknown kind)", attrs...)
	}
	return nil
}

func (s *SlogSink) Close() error { return nil }

// ExecSink runs a shell command per notification with the notification's
// JSON on stdin — the ad-hoc integration hook (pipe into mailx, a
// chatops script, whatever the operator has). The delivery context kills
// commands that outstay the delivery timeout.
type ExecSink struct {
	command string
}

// NewExecSink builds the exec hook; command runs via `sh -c`.
func NewExecSink(command string) *ExecSink { return &ExecSink{command: command} }

func (s *ExecSink) Name() string { return "exec" }

func (s *ExecSink) Deliver(ctx context.Context, n Notification) error {
	payload, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("alert: exec sink encode: %w", err)
	}
	cmd := exec.CommandContext(ctx, "sh", "-c", s.command)
	cmd.Stdin = bytes.NewReader(payload)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("alert: exec sink %q: %w (output %q)", s.command, err, truncate(out, 512))
	}
	return nil
}

func (s *ExecSink) Close() error { return nil }

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "...(truncated)"
}
