package alert

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentStreamsOneDispatcher is the race audit: many scoring
// goroutines drive their own streams into one pipeline while an admin
// goroutine reads snapshots and metrics-style counters. Run under -race;
// the books must balance when the dust settles.
func TestConcurrentStreamsOneDispatcher(t *testing.T) {
	const (
		nStreams  = 16
		incidents = 25
	)
	clk := newFakeClock(selftestEpoch)
	sink := newCaptureSink("capture")
	p := NewPipeline(Options{
		MinTrips:   2,
		ClearAfter: time.Millisecond,
		DedupTTL:   -1, // every transition delivered: exact books below
		Sinks:      []Sink{sink},
		Clock:      clk.now,
	})

	// An admin goroutine hammers the read surface concurrently (throttled
	// so it audits races without starving the workers).
	stopAdmin := make(chan struct{})
	var adminWG sync.WaitGroup
	adminWG.Add(1)
	go func() {
		defer adminWG.Done()
		for {
			select {
			case <-stopAdmin:
				return
			default:
				_ = p.Snapshot()
				_ = p.FiringStreams()
				_ = p.QueueDepth()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := p.Register(streamName(i), "race")
			for inc := 0; inc < incidents; inc++ {
				// Two trips arm and fire; clears until resolution. Every
				// goroutine advances the shared clock — concurrent clock
				// writers are part of the audit — and it only moves
				// forward, so the clear loop terminates.
				s.Observe(Observation{Anomalous: true, GateDist: float64(inc), LOF: 2, WindowIndex: 2 * inc})
				s.Observe(Observation{Anomalous: true, GateDist: float64(inc), LOF: 2, WindowIndex: 2 * inc})
				if s.State() != StateFiring {
					t.Errorf("stream %d incident %d did not fire", i, inc)
					return
				}
				for s.State() == StateFiring {
					clk.advance(time.Millisecond)
					s.Observe(Observation{GateDist: 0.1, LOF: 1})
				}
			}
			s.Close()
		}(i)
	}
	wg.Wait()
	close(stopAdmin)
	adminWG.Wait()

	if !p.Drain(10 * time.Second) {
		t.Fatal("queue did not drain")
	}
	b := p.Books()
	if err := b.Balanced(); err != nil {
		t.Fatal(err)
	}
	const wantEach = int64(nStreams * incidents)
	if b.Fired != wantEach || b.Resolved != wantEach {
		t.Fatalf("books fired/resolved = %d/%d, want %d/%d", b.Fired, b.Resolved, wantEach, wantEach)
	}
	// No dedup, no rate limit, default queue is deep enough at this pace:
	// every transition must have reached the sink or been counted dropped.
	if got := b.Enqueued + b.QueueDropped; got != 2*wantEach {
		t.Fatalf("enqueued %d + dropped %d != %d transitions", b.Enqueued, b.QueueDropped, 2*wantEach)
	}
	if int64(sink.delivered()) != b.Enqueued {
		t.Fatalf("sink saw %d, books enqueued %d", sink.delivered(), b.Enqueued)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closes() != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closes())
	}
}

func streamName(i int) string { return fmt.Sprintf("race-%d", i) }

// TestConcurrentCloseDrainsOnce: many goroutines race Close while the
// queue still holds work; the drain happens exactly once, every queued
// notification reaches the sink, and each caller gets the same error.
func TestConcurrentCloseDrainsOnce(t *testing.T) {
	clk := newFakeClock(selftestEpoch)
	slow := newCaptureSink("slow")
	gate := make(chan struct{})
	slowSink := &funcSink{
		name: "slow",
		deliver: func(ctx context.Context, n Notification) error {
			<-gate // hold the queue full until every closer is racing
			return slow.Deliver(ctx, n)
		},
		closeFn: slow.Close,
	}
	p := NewPipeline(Options{
		MinTrips: 1, ClearAfter: time.Millisecond, DedupTTL: -1,
		QueueLen: 64, Sinks: []Sink{slowSink}, Clock: clk.now,
	})
	s := p.Register("s0", "m0")
	const incidents = 8
	for i := 0; i < incidents; i++ {
		clk.advance(time.Second)
		s.Observe(Observation{Anomalous: true, GateDist: float64(i), LOF: 2})
		clk.advance(time.Second)
		s.Observe(Observation{})
	}
	s.Close()
	enqueued := p.Books().Enqueued

	const closers = 8
	errs := make(chan error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.Close()
		}()
	}
	close(gate) // let the worker drain while the closers race
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	if got := int64(slow.delivered()); got != enqueued {
		t.Fatalf("drained %d notifications, want %d", got, enqueued)
	}
	if slow.closes() != 1 {
		t.Fatalf("capture closed %d times, want exactly 1", slow.closes())
	}
	b := p.Books()
	if err := b.Balanced(); err != nil {
		t.Fatal(err)
	}
	// Enqueue after close: refused and counted, never a send-on-closed panic.
	if p.disp.enqueue(Notification{}) {
		t.Fatal("enqueue succeeded after close")
	}
}
