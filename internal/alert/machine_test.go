package alert

import (
	"testing"
	"time"
)

// newTestPipeline builds a hookless pipeline on a fake clock with no
// sinks — state-machine tests watch the stream counters and the books.
func newTestPipeline(t *testing.T, opts Options) (*Pipeline, *fakeClock) {
	t.Helper()
	clk := newFakeClock(selftestEpoch)
	opts.Clock = clk.now
	p := NewPipeline(opts)
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
	})
	return p, clk
}

// step is one observed window in a choreography: advance the clock,
// observe trip/clear, expect a state and incident counts.
type step struct {
	advance      time.Duration
	trip         bool
	wantState    State
	wantFired    int64
	wantResolved int64
}

func runSteps(t *testing.T, clk *fakeClock, s *Stream, steps []step) {
	t.Helper()
	for i, st := range steps {
		if st.advance > 0 {
			clk.advance(st.advance)
		}
		s.Observe(Observation{
			Anomalous:   st.trip,
			GateTripped: st.trip,
			GateDist:    2.0,
			LOF:         2.0,
			WindowIndex: i,
		})
		if got := s.State(); got != st.wantState {
			t.Fatalf("step %d: state = %v, want %v", i, got, st.wantState)
		}
		if got := s.Fired(); got != st.wantFired {
			t.Fatalf("step %d: fired = %d, want %d", i, got, st.wantFired)
		}
		if got := s.Resolved(); got != st.wantResolved {
			t.Fatalf("step %d: resolved = %d, want %d", i, got, st.wantResolved)
		}
	}
}

func TestStateMachineTransitions(t *testing.T) {
	const clearAfter = 30 * time.Second
	sec := time.Second

	cases := []struct {
		name  string
		opts  Options
		steps []step
	}{
		{
			name: "fires exactly on the min-trips-th consecutive trip",
			opts: Options{MinTrips: 3, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StatePending, 0, 0},
				{sec, true, StatePending, 0, 0},
				{sec, true, StateFiring, 1, 0},
			},
		},
		{
			name: "one clear while pending disarms the count",
			opts: Options{MinTrips: 3, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StatePending, 0, 0},
				{sec, true, StatePending, 0, 0},
				{sec, false, StateIdle, 0, 0}, // hysteresis: back to zero
				{sec, true, StatePending, 0, 0},
				{sec, true, StatePending, 0, 0}, // trips restart, not resume
				{sec, true, StateFiring, 1, 0},
			},
		},
		{
			name: "min-trips one fires immediately",
			opts: Options{MinTrips: 1, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StateFiring, 1, 0},
			},
		},
		{
			name: "extra trips while firing do not re-fire",
			opts: Options{MinTrips: 2, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StatePending, 0, 0},
				{sec, true, StateFiring, 1, 0},
				{sec, true, StateFiring, 1, 0},
				{sec, true, StateFiring, 1, 0},
			},
		},
		{
			name: "clear one nanosecond before clear-after stays firing",
			opts: Options{MinTrips: 1, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StateFiring, 1, 0},
				{clearAfter - time.Nanosecond, false, StateFiring, 1, 0},
			},
		},
		{
			name: "clear at exactly clear-after resolves",
			opts: Options{MinTrips: 1, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StateFiring, 1, 0},
				{clearAfter, false, StateResolved, 1, 1},
			},
		},
		{
			name: "clear one window past clear-after resolves",
			opts: Options{MinTrips: 1, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StateFiring, 1, 0},
				{clearAfter - time.Nanosecond, false, StateFiring, 1, 0},
				{2 * time.Nanosecond, false, StateResolved, 1, 1},
			},
		},
		{
			name: "trips while firing push the resolution window out",
			opts: Options{MinTrips: 1, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StateFiring, 1, 0},
				{clearAfter - sec, true, StateFiring, 1, 0}, // refreshes lastTrip
				{clearAfter - time.Nanosecond, false, StateFiring, 1, 0},
				{time.Nanosecond, false, StateResolved, 1, 1},
			},
		},
		{
			name: "resolved re-arms and re-fires",
			opts: Options{MinTrips: 2, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StatePending, 0, 0},
				{sec, true, StateFiring, 1, 0},
				{clearAfter, false, StateResolved, 1, 1},
				{sec, true, StatePending, 1, 1}, // resolved → pending, not idle
				{sec, true, StateFiring, 2, 1},
				{clearAfter, false, StateResolved, 2, 2},
			},
		},
		{
			name: "resolved disarm returns to resolved, not idle",
			opts: Options{MinTrips: 3, ClearAfter: clearAfter},
			steps: []step{
				{sec, true, StatePending, 0, 0},
				{sec, true, StatePending, 0, 0},
				{sec, true, StateFiring, 1, 0},
				{clearAfter, false, StateResolved, 1, 1},
				{sec, true, StatePending, 1, 1},
				{sec, false, StateResolved, 1, 1},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, clk := newTestPipeline(t, tc.opts)
			s := p.Register("s0", "m0")
			runSteps(t, clk, s, tc.steps)
			s.Close()
		})
	}
}

func TestTripPredicate(t *testing.T) {
	gateOnly := Observation{GateTripped: true, Anomalous: false, GateDist: 2, LOF: 1}

	t.Run("default counts only anomalous windows", func(t *testing.T) {
		p, _ := newTestPipeline(t, Options{MinTrips: 1})
		s := p.Register("s0", "m0")
		s.Observe(gateOnly)
		if s.State() != StateIdle || s.Fired() != 0 {
			t.Fatalf("gate-only trip fired: state %v fired %d", s.State(), s.Fired())
		}
		s.Close()
	})

	t.Run("trip-on-gate counts every gate trip", func(t *testing.T) {
		p, clk := newTestPipeline(t, Options{MinTrips: 1, TripOnGate: true})
		clk.advance(time.Second)
		s := p.Register("s0", "m0")
		s.Observe(gateOnly)
		if s.State() != StateFiring || s.Fired() != 1 {
			t.Fatalf("gate trip ignored: state %v fired %d", s.State(), s.Fired())
		}
		s.Close()
	})
}

func TestStreamCloseResolvesOpenIncident(t *testing.T) {
	p, clk := newTestPipeline(t, Options{MinTrips: 1, ClearAfter: time.Minute})
	s := p.Register("s0", "m0")
	clk.advance(time.Second)
	s.Observe(Observation{Anomalous: true, GateDist: 3, LOF: 3})
	if s.State() != StateFiring {
		t.Fatalf("state = %v, want firing", s.State())
	}
	clk.advance(time.Second)
	s.Close()
	if s.Resolved() != 1 {
		t.Fatalf("close left the incident open: resolved = %d", s.Resolved())
	}
	if got := len(p.Snapshot().Streams); got != 0 {
		t.Fatalf("closed stream still listed (%d rows)", got)
	}
	b := p.Books()
	if b.Fired != 1 || b.Resolved != 1 {
		t.Fatalf("books fired/resolved = %d/%d, want 1/1", b.Fired, b.Resolved)
	}
}

func TestStreamCloseWhileResolvedEmitsNothing(t *testing.T) {
	p, clk := newTestPipeline(t, Options{MinTrips: 1, ClearAfter: time.Second})
	s := p.Register("s0", "m0")
	clk.advance(time.Second)
	s.Observe(Observation{Anomalous: true, GateDist: 3, LOF: 3})
	clk.advance(time.Second)
	s.Observe(Observation{})
	if s.State() != StateResolved {
		t.Fatalf("state = %v, want resolved", s.State())
	}
	s.Close()
	if s.Resolved() != 1 {
		t.Fatalf("close double-resolved: %d", s.Resolved())
	}
}

func TestObserveFastPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	p, _ := newTestPipeline(t, Options{MinTrips: 3})
	s := p.Register("s0", "m0")
	quiet := Observation{GateDist: 0.2, LOF: 1.0}
	if allocs := testing.AllocsPerRun(1000, func() { s.Observe(quiet) }); allocs != 0 {
		t.Fatalf("no-alert fast path allocates %.1f per observe, want 0", allocs)
	}
	s.Close()
}
