package alert

import (
	"fmt"
	"sort"
)

// SinkBooks is one sink's delivery accounting.
type SinkBooks struct {
	Name        string `json:"name"`
	Delivered   int64  `json:"delivered"`
	RateLimited int64  `json:"rate_limited"`
	Errors      int64  `json:"errors"`
}

// ModelBooks is one model's transition accounting.
type ModelBooks struct {
	Model    string `json:"model"`
	Fired    int64  `json:"fired"`
	Resolved int64  `json:"resolved"`
	Deduped  int64  `json:"deduped"`
}

// Books is the pipeline's full ledger. Every transition the state
// machines emit lands in exactly one pre-queue bucket (Deduped,
// RateLimitedGlobal, QueueDropped, Enqueued), and every processed
// notification lands in exactly one per-sink bucket.
type Books struct {
	Fired             int64 `json:"fired"`
	Resolved          int64 `json:"resolved"`
	Deduped           int64 `json:"deduped"`
	RateLimitedGlobal int64 `json:"rate_limited_global"`
	QueueDropped      int64 `json:"queue_dropped"`
	Enqueued          int64 `json:"enqueued"`
	Processed         int64 `json:"processed"`

	Sinks  []SinkBooks  `json:"sinks"`
	Models []ModelBooks `json:"models"`
}

// RateLimited sums the global and per-sink rate-limit buckets — the
// "rate_limited" term of the issue-level balance equation.
func (b Books) RateLimited() int64 {
	total := b.RateLimitedGlobal
	for _, s := range b.Sinks {
		total += s.RateLimited
	}
	return total
}

// Balanced verifies the delivery books after the queue has drained
// (Pipeline.Drain): transitions == deduped + rate-limited-global +
// queue-dropped + enqueued, enqueued all processed, and per sink
// processed == delivered + rate-limited + errors. With a single sink
// this is exactly `fired == delivered + deduped + rate_limited + errors`
// over fired+resolved notifications.
func (b Books) Balanced() error {
	transitions := b.Fired + b.Resolved
	if got := b.Deduped + b.RateLimitedGlobal + b.QueueDropped + b.Enqueued; got != transitions {
		return fmt.Errorf("alert: books: %d transitions != deduped %d + rate-limited %d + queue-dropped %d + enqueued %d",
			transitions, b.Deduped, b.RateLimitedGlobal, b.QueueDropped, b.Enqueued)
	}
	if b.Processed != b.Enqueued {
		return fmt.Errorf("alert: books: processed %d != enqueued %d (queue not drained?)", b.Processed, b.Enqueued)
	}
	for _, s := range b.Sinks {
		if got := s.Delivered + s.RateLimited + s.Errors; got != b.Processed {
			return fmt.Errorf("alert: books: sink %q delivered %d + rate-limited %d + errors %d != processed %d",
				s.Name, s.Delivered, s.RateLimited, s.Errors, b.Processed)
		}
	}
	var modelFired, modelResolved, modelDeduped int64
	for _, m := range b.Models {
		modelFired += m.Fired
		modelResolved += m.Resolved
		modelDeduped += m.Deduped
	}
	if modelFired != b.Fired || modelResolved != b.Resolved || modelDeduped != b.Deduped {
		return fmt.Errorf("alert: books: per-model totals fired %d/resolved %d/deduped %d != aggregate %d/%d/%d",
			modelFired, modelResolved, modelDeduped, b.Fired, b.Resolved, b.Deduped)
	}
	return nil
}

// StreamStatus is one registered stream's row in GET /alerts.
type StreamStatus struct {
	Stream   string `json:"stream"`
	Model    string `json:"model"`
	State    string `json:"state"`
	Fired    int64  `json:"fired"`
	Resolved int64  `json:"resolved"`
}

// Snapshot is the admin view of the pipeline (GET /alerts).
type Snapshot struct {
	Books      Books          `json:"books"`
	QueueDepth int64          `json:"queue_depth"`
	Streams    []StreamStatus `json:"streams"`
	Recent     []Notification `json:"recent"`
}

// Books assembles the current ledger. Counter reads are individually
// atomic; for an exactly-balancing snapshot, quiesce and Drain first.
func (p *Pipeline) Books() Books {
	b := Books{
		RateLimitedGlobal: p.rlGlobal.Load(),
		QueueDropped:      p.queueDropped.Load(),
		Enqueued:          p.enqueued.Load(),
		Processed:         p.disp.processed.Load(),
	}
	p.mu.Lock()
	names := make([]string, 0, len(p.models))
	for name := range p.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mc := p.models[name]
		mb := ModelBooks{
			Model:    name,
			Fired:    mc.fired.Load(),
			Resolved: mc.resolved.Load(),
			Deduped:  mc.deduped.Load(),
		}
		b.Fired += mb.Fired
		b.Resolved += mb.Resolved
		b.Deduped += mb.Deduped
		b.Models = append(b.Models, mb)
	}
	p.mu.Unlock()
	for _, e := range p.disp.sinks {
		b.Sinks = append(b.Sinks, SinkBooks{
			Name:        e.sink.Name(),
			Delivered:   e.delivered.Load(),
			RateLimited: e.rateLimited.Load(),
			Errors:      e.errors.Load(),
		})
	}
	return b
}

// QueueDepth reports notifications queued or in delivery.
func (p *Pipeline) QueueDepth() int64 { return p.disp.depth.Load() }

// Snapshot assembles the full admin view: books, queue depth, live
// stream states (firing first, then pending, then the rest, each group
// sorted by stream id), and the recent-notification ring (oldest first).
func (p *Pipeline) Snapshot() Snapshot {
	snap := Snapshot{
		Books:      p.Books(),
		QueueDepth: p.QueueDepth(),
	}
	p.mu.Lock()
	for s := range p.streams {
		snap.Streams = append(snap.Streams, StreamStatus{
			Stream:   s.stream,
			Model:    s.model,
			State:    s.State().String(),
			Fired:    s.fired.Load(),
			Resolved: s.resolved.Load(),
		})
	}
	if n := len(p.recent); n > 0 {
		snap.Recent = make([]Notification, 0, n)
		if n == cap(p.recent) {
			snap.Recent = append(snap.Recent, p.recent[p.recentAt:]...)
			snap.Recent = append(snap.Recent, p.recent[:p.recentAt]...)
		} else {
			snap.Recent = append(snap.Recent, p.recent...)
		}
	}
	p.mu.Unlock()
	rank := func(state string) int {
		switch state {
		case "firing":
			return 0
		case "pending":
			return 1
		}
		return 2
	}
	sort.Slice(snap.Streams, func(i, j int) bool {
		ri, rj := rank(snap.Streams[i].State), rank(snap.Streams[j].State)
		if ri != rj {
			return ri < rj
		}
		return snap.Streams[i].Stream < snap.Streams[j].Stream
	})
	return snap
}

// FiringStreams counts registered streams currently firing (the
// enduratrace_alerts_firing gauge).
func (p *Pipeline) FiringStreams() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for s := range p.streams {
		if s.State() == StateFiring {
			n++
		}
	}
	return n
}
