package alert

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// The dedup key is a compact binary encoding of (stream, model, kind,
// quantized gate distance). It is the map key of the TTL'd seen-set, and
// — because a corrupt or adversarial stream name must never let two
// distinct identities collide — the encoding is length-prefixed and
// round-trips exactly (FuzzAlertKey hammers both directions).

// keyVersion is the encoding version byte leading every key.
const keyVersion = 1

// maxKeyNameLen bounds the stream/model fields when decoding, mirroring
// the anomaly store's name bound.
const maxKeyNameLen = 4096

// Key is the decoded form of a dedup key.
type Key struct {
	Stream string
	Model  string
	Kind   Kind
	Bucket int64 // quantized gate distance (see QuantizeDist)
}

// EncodeKey serialises a key: version byte, kind byte, length-prefixed
// stream and model, zigzag-varint bucket.
func EncodeKey(k Key) []byte {
	buf := make([]byte, 0, 2+2*binary.MaxVarintLen64+len(k.Stream)+len(k.Model)+binary.MaxVarintLen64)
	buf = append(buf, keyVersion, byte(k.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(k.Stream)))
	buf = append(buf, k.Stream...)
	buf = binary.AppendUvarint(buf, uint64(len(k.Model)))
	buf = append(buf, k.Model...)
	buf = binary.AppendVarint(buf, k.Bucket)
	return buf
}

// DecodeKey parses an encoded key. Arbitrary input must yield an error,
// never a panic — the fuzz target asserts exactly that, plus that every
// successful decode re-encodes to the identical bytes.
func DecodeKey(b []byte) (Key, error) {
	var k Key
	if len(b) < 2 {
		return k, fmt.Errorf("alert: key too short (%d bytes)", len(b))
	}
	if b[0] != keyVersion {
		return k, fmt.Errorf("alert: key version %d, want %d", b[0], keyVersion)
	}
	k.Kind = Kind(b[1])
	if k.Kind != KindFiring && k.Kind != KindResolved {
		return k, fmt.Errorf("alert: key kind %d unknown", b[1])
	}
	rest := b[2:]
	name := func(what string) (string, error) {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return "", fmt.Errorf("alert: key %s length: truncated", what)
		}
		if sz != uvarintLen(n) {
			return "", fmt.Errorf("alert: key %s length: non-minimal varint", what)
		}
		rest = rest[sz:]
		if n > maxKeyNameLen || n > uint64(len(rest)) {
			return "", fmt.Errorf("alert: key %s length %d exceeds remaining %d", what, n, len(rest))
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	var err error
	if k.Stream, err = name("stream"); err != nil {
		return Key{}, err
	}
	if k.Model, err = name("model"); err != nil {
		return Key{}, err
	}
	bucket, sz := binary.Varint(rest)
	if sz <= 0 {
		return Key{}, fmt.Errorf("alert: key bucket: truncated")
	}
	// Zigzag first, then the same minimality rule: the encoding is
	// canonical, so every identity has exactly one byte representation.
	if sz != uvarintLen(uint64(bucket)<<1^uint64(bucket>>63)) {
		return Key{}, fmt.Errorf("alert: key bucket: non-minimal varint")
	}
	if len(rest[sz:]) != 0 {
		return Key{}, fmt.Errorf("alert: key has %d trailing bytes", len(rest[sz:]))
	}
	k.Bucket = bucket
	return k, nil
}

// uvarintLen is the minimal encoded size of v (decode-side canonicality
// check: AppendUvarint always emits exactly this many bytes).
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// dedupSet is the TTL'd seen-set behind content dedup. Expiry is lazy:
// a hit past its deadline reads as unseen and re-arms, and a full sweep
// runs at most once per TTL so inserts stay O(1) amortised.
type dedupSet struct {
	mu  sync.Mutex
	ttl int64
	// seenAt maps notification key -> expiry ns.
	//enduratrace:guarded-by mu
	seenAt map[string]int64
	lastGC int64 //enduratrace:guarded-by mu
}

func newDedupSet(ttl time.Duration) *dedupSet {
	return &dedupSet{ttl: int64(ttl), seenAt: make(map[string]int64)}
}

// seen reports whether key was marked within the TTL, marking it either
// way (a miss arms the key; a hit refreshes nothing, so a steady repeat
// dedups until the TTL from its first delivery expires).
func (d *dedupSet) seen(key string, now int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if now-d.lastGC >= d.ttl {
		d.lastGC = now
		for k, exp := range d.seenAt {
			if now >= exp {
				delete(d.seenAt, k)
			}
		}
	}
	if exp, ok := d.seenAt[key]; ok && now < exp {
		return true
	}
	d.seenAt[key] = now + d.ttl
	return false
}

// Len reports the live entry count (tests only).
func (d *dedupSet) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seenAt)
}
