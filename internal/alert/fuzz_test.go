package alert

import (
	"bytes"
	"math"
	"testing"
)

// FuzzAlertKey hammers the dedup-key codec from both directions:
// arbitrary bytes must decode to an error or to a key that re-encodes to
// the identical bytes (no two byte strings alias one identity), and
// never panic.
func FuzzAlertKey(f *testing.F) {
	// Well-formed seeds spanning the interesting shapes.
	seeds := []Key{
		{Stream: "s0", Model: "m0", Kind: KindFiring, Bucket: 0},
		{Stream: "", Model: "", Kind: KindResolved, Bucket: -1},
		{Stream: "flap-0", Model: "selftest", Kind: KindFiring, Bucket: 100},
		{Stream: "stream/with/slashes", Model: "model name", Kind: KindResolved, Bucket: math.MaxInt64},
		{Stream: "é世界", Model: "\x00\xff", Kind: KindFiring, Bucket: math.MinInt64},
	}
	for _, k := range seeds {
		f.Add(EncodeKey(k))
	}
	// Malformed seeds: truncations, bad version/kind, trailing garbage,
	// oversized length prefixes.
	f.Add([]byte{})
	f.Add([]byte{keyVersion})
	f.Add([]byte{keyVersion, 0})
	f.Add([]byte{99, byte(KindFiring), 0, 0, 0})
	f.Add([]byte{keyVersion, byte(KindFiring), 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(append(EncodeKey(seeds[0]), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeKey(data)
		if err != nil {
			return // rejection is a fine outcome; panicking is not
		}
		if len(k.Stream) > maxKeyNameLen || len(k.Model) > maxKeyNameLen {
			t.Fatalf("decode accepted oversized names (%d/%d)", len(k.Stream), len(k.Model))
		}
		if k.Kind != KindFiring && k.Kind != KindResolved {
			t.Fatalf("decode accepted kind %d", k.Kind)
		}
		// Canonical codec: a successful decode re-encodes byte-identically,
		// so no two distinct byte strings can share a decoded identity.
		re := EncodeKey(k)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in  %q\n out %q (key %+v)", data, re, k)
		}
		// And the identity round-trips once more.
		k2, err := DecodeKey(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if k2 != k {
			t.Fatalf("round trip drifted: %+v vs %+v", k, k2)
		}
	})
}
