package alert

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// sinkEntry is one sink plus its delivery-side books.
type sinkEntry struct {
	sink        Sink
	bucket      *tokenBucket
	delivered   atomic.Int64
	rateLimited atomic.Int64
	errors      atomic.Int64
}

// dispatcher decouples the scoring goroutines from sink I/O: transitions
// land in a bounded channel (enqueue never blocks — a full queue is the
// caller's drop signal) and a single worker goroutine delivers them to
// every sink in order. Close is exactly-once: the queue closes under the
// same lock enqueue holds (no send-on-closed race), the worker drains
// everything already queued, and only then do the sinks close.
type dispatcher struct {
	ch        chan Notification
	sinks     []*sinkEntry
	timeout   time.Duration
	clock     func() time.Time
	processed atomic.Int64 // notifications fully handled by the worker
	depth     atomic.Int64 // notifications queued or in delivery

	mu          sync.Mutex
	closed      bool  //enduratrace:guarded-by mu
	sinksClosed bool  //enduratrace:guarded-by mu
	closeErr    error //enduratrace:guarded-by mu
	done        chan struct{}
}

func newDispatcher(queueLen int, sinks []Sink, sinkRate, sinkBurst float64,
	timeout time.Duration, clock func() time.Time) *dispatcher {
	d := &dispatcher{
		ch:      make(chan Notification, queueLen),
		timeout: timeout,
		clock:   clock,
		done:    make(chan struct{}),
	}
	nowNs := clock().UnixNano()
	for _, s := range sinks {
		d.sinks = append(d.sinks, &sinkEntry{
			sink:   s,
			bucket: newTokenBucket(sinkRate, sinkBurst, nowNs),
		})
	}
	go d.run()
	return d
}

// enqueue offers one notification; false means the queue is full or the
// dispatcher is closed (the caller counts the drop). Never blocks.
func (d *dispatcher) enqueue(n Notification) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	select {
	case d.ch <- n:
		d.depth.Add(1)
		return true
	default:
		return false
	}
}

func (d *dispatcher) run() {
	defer close(d.done)
	for n := range d.ch {
		d.deliver(n)
		d.depth.Add(-1)
		d.processed.Add(1)
	}
}

func (d *dispatcher) deliver(n Notification) {
	nowNs := d.clock().UnixNano()
	for _, e := range d.sinks {
		if !e.bucket.take(nowNs) {
			e.rateLimited.Add(1)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
		err := e.sink.Deliver(ctx, n)
		cancel()
		if err != nil {
			e.errors.Add(1)
		} else {
			e.delivered.Add(1)
		}
	}
}

// Close shuts the dispatcher down exactly once: no further enqueues are
// admitted, the worker drains the already-queued notifications, then the
// sinks close. Safe to call concurrently and repeatedly; every call
// returns the same first sink-close error.
func (d *dispatcher) Close() error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.ch)
	}
	d.mu.Unlock()
	<-d.done // wait for the drain — every caller returns after it completes
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.sinksClosed {
		d.sinksClosed = true
		for _, e := range d.sinks {
			if err := e.sink.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
	}
	return d.closeErr
}
